//! # fppn — Fixed-Priority Process Networks
//!
//! Facade crate for the DATE'15 reproduction *"Models for Deterministic
//! Execution of Real-Time Multiprocessor Applications"* (Poplavko, Socci,
//! Bourgos, Bensalem, Bozga).
//!
//! This crate re-exports the whole workspace under stable module names:
//!
//! * [`time`] — exact rational time ([`time::TimeQ`]).
//! * [`core`] — the FPPN model of computation and its zero-delay semantics.
//! * [`taskgraph`] — task-graph derivation and analysis (§III-A).
//! * [`sched`] — compile-time static scheduling (§III-B).
//! * [`sim`] — discrete-event platform simulator and online policy (§IV).
//! * [`serve`] — compile-once/run-many control plane: artifact cache,
//!   worker pool and tenant budgets.
//! * [`runtime`] — multi-threaded shared-memory runtime.
//! * [`ta`] — timed-automata substrate and FPPN→TA translation (§V tooling).
//! * [`apps`] — the paper's applications (Fig. 1, FFT, FMS) and workload
//!   generators.
//!
//! See `examples/quickstart.rs` for an end-to-end tour: build a network,
//! validate it, derive the task graph, schedule it, and simulate it while
//! checking deterministic outputs.

#![forbid(unsafe_code)]

pub use fppn_apps as apps;
pub use fppn_core as core;
pub use fppn_runtime as runtime;
pub use fppn_sched as sched;
pub use fppn_serve as serve;
pub use fppn_sim as sim;
pub use fppn_ta as ta;
pub use fppn_taskgraph as taskgraph;
pub use fppn_time as time;
