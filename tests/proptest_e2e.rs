//! End-to-end property tests over randomly generated FPPN workloads.

use fppn::apps::{random_workload, WorkloadConfig};
use fppn::core::{run_zero_delay, JobOrdering};
use fppn::sched::{list_schedule, Heuristic};
use fppn::sim::{clip_stimuli, random_stimuli, simulate, ExecTimeModel, SimConfig};
use fppn::taskgraph::{derive_task_graph, load, AsapAlap};
use fppn::time::TimeQ;
use proptest::prelude::*;

fn workload_cfg() -> impl Strategy<Value = WorkloadConfig> {
    (2usize..6, 0usize..3, 150u32..700, any::<u64>()).prop_map(
        |(periodic, sporadic, density, seed)| WorkloadConfig {
            periodic,
            sporadic,
            channel_density_permille: density,
            seed,
            ..WorkloadConfig::default()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Scheduler output always satisfies arrival/precedence/mutex, and any
    /// deadline-feasible claim survives re-verification.
    #[test]
    fn list_scheduler_is_structurally_sound(cfg in workload_cfg(), m in 1usize..4) {
        let w = random_workload(&cfg);
        let derived = derive_task_graph(&w.net, &w.wcet).unwrap();
        let schedule = list_schedule(&derived.graph, m, Heuristic::AlapEdf);
        match schedule.check_feasible(&derived.graph) {
            Ok(()) => {}
            Err(violations) => {
                // Only deadline misses are permitted failures.
                for v in violations {
                    prop_assert!(
                        matches!(v, fppn::sched::FeasibilityViolation::DeadlineMissed { .. }),
                        "structural violation: {v}"
                    );
                }
            }
        }
    }

    /// ASAP/ALAP really bound any schedule the list scheduler produces.
    #[test]
    fn asap_alap_bound_actual_schedules(cfg in workload_cfg(), m in 1usize..4) {
        let w = random_workload(&cfg);
        let derived = derive_task_graph(&w.net, &w.wcet).unwrap();
        let schedule = list_schedule(&derived.graph, m, Heuristic::BLevel);
        if schedule.check_feasible(&derived.graph).is_err() {
            return Ok(()); // bounds only claimed for feasible schedules
        }
        let times = AsapAlap::compute(&derived.graph);
        for id in derived.graph.job_ids() {
            let p = schedule.placement(id);
            prop_assert!(p.start >= times.asap(id));
            prop_assert!(schedule.completion(&derived.graph, id) <= times.alap(id));
        }
    }

    /// The load lower-bounds the processor count of feasible schedules.
    #[test]
    fn load_is_a_valid_lower_bound(cfg in workload_cfg()) {
        let w = random_workload(&cfg);
        let derived = derive_task_graph(&w.net, &w.wcet).unwrap();
        let bound = load(&derived.graph).min_processors();
        for m in 1..bound {
            let schedule = list_schedule(&derived.graph, m, Heuristic::AlapEdf);
            prop_assert!(
                schedule.check_feasible(&derived.graph).is_err(),
                "schedule on {m} < ⌈load⌉ = {bound} processors cannot be feasible"
            );
        }
    }

    /// Cross-backend determinism on random workloads and stimuli.
    #[test]
    fn outputs_are_a_function_of_stimuli_only(
        cfg in workload_cfg(),
        m in 1usize..4,
        exec_seed in any::<u64>(),
    ) {
        let w = random_workload(&cfg);
        let derived = derive_task_graph(&w.net, &w.wcet).unwrap();
        let frames = 2u64;
        let horizon = TimeQ::from_int(frames as i64) * derived.hyperperiod;
        let stimuli = random_stimuli(&w.net, horizon, 500, cfg.seed ^ 0x5a5a);
        let stimuli = clip_stimuli(&w.net, &derived, &stimuli, frames);

        let mut behaviors = w.bank.instantiate();
        let reference =
            run_zero_delay(&w.net, &mut behaviors, &stimuli, horizon, JobOrdering::MinRankFirst)
                .unwrap();

        let schedule = list_schedule(&derived.graph, m, Heuristic::AlapEdf);
        let run = simulate(
            &w.net,
            &w.bank,
            &stimuli,
            &derived,
            &schedule,
            &SimConfig {
                frames,
                exec_time: ExecTimeModel::typical_jitter(exec_seed),
                ..SimConfig::default()
            },
        )
        .unwrap();
        prop_assert_eq!(run.observables.diff(&reference.observables), None);
    }
}
