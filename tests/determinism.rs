//! The flagship determinism test (Prop. 2.1 / Prop. 4.1): for the paper's
//! applications and random workloads, every execution backend — zero-delay
//! reference (both FP linearizations), the discrete-event simulator (any
//! processor count, any execution-time draw, with and without overhead)
//! and the multi-threaded runtime — produces identical observable value
//! sequences for identical stimuli.

use fppn::apps::{fft_network, fft_wcet, fig1_network, fig1_wcet, random_workload, WorkloadConfig};
use fppn::core::{run_zero_delay, Fppn, JobOrdering, Observables, Stimuli};
use fppn::runtime::{run_threaded, RuntimeConfig};
use fppn::sched::{list_schedule, Heuristic};
use fppn::sim::{clip_stimuli, random_stimuli, simulate, ExecTimeModel, OverheadModel, SimConfig};
use fppn::taskgraph::{derive_task_graph, DerivedTaskGraph, WcetModel};
use fppn::time::TimeQ;

/// Runs every backend over `frames` frames and asserts equal observables.
fn assert_all_backends_agree(
    net: &Fppn,
    bank: &fppn::core::BehaviorBank,
    wcet: &WcetModel,
    raw_stimuli: &Stimuli,
    frames: u64,
    label: &str,
) {
    let derived: DerivedTaskGraph = derive_task_graph(net, wcet).expect("derivable");
    let stimuli = clip_stimuli(net, &derived, raw_stimuli, frames);
    let horizon = TimeQ::from_int(frames as i64) * derived.hyperperiod;

    let reference: Observables = {
        let mut behaviors = bank.instantiate();
        run_zero_delay(net, &mut behaviors, &stimuli, horizon, JobOrdering::MinRankFirst)
            .expect("reference run")
            .observables
    };
    // Alternative linearization (Prop. 2.1).
    {
        let mut behaviors = bank.instantiate();
        let alt =
            run_zero_delay(net, &mut behaviors, &stimuli, horizon, JobOrdering::MaxRankFirst)
                .expect("alt run");
        assert_eq!(
            alt.observables.diff(&reference),
            None,
            "{label}: zero-delay linearization changed outputs"
        );
    }
    // Simulator across processor counts, exec-time models, overheads.
    for processors in 1..=3usize {
        for heuristic in [Heuristic::AlapEdf, Heuristic::BLevel] {
            let schedule = list_schedule(&derived.graph, processors, heuristic);
            for (exec, overhead) in [
                (ExecTimeModel::Wcet, OverheadModel::NONE),
                (ExecTimeModel::typical_jitter(7), OverheadModel::NONE),
                (ExecTimeModel::Wcet, OverheadModel::constant(TimeQ::from_ms(5))),
            ] {
                let run = simulate(
                    net,
                    bank,
                    &stimuli,
                    &derived,
                    &schedule,
                    &SimConfig {
                        frames,
                        overhead,
                        exec_time: exec,
                        ..SimConfig::default()
                    },
                )
                .expect("simulate");
                assert_eq!(
                    run.observables.diff(&reference),
                    None,
                    "{label}: sim diverged ({processors} procs, {heuristic}, {exec:?}, {overhead:?})"
                );
            }
        }
    }
    // Threaded runtime, repeated to vary OS interleavings.
    let schedule = list_schedule(&derived.graph, 2, Heuristic::AlapEdf);
    for rep in 0..3 {
        let run = run_threaded(
            net,
            bank,
            &stimuli,
            &derived,
            &schedule,
            &RuntimeConfig {
                frames,
                us_per_ms: 0,
            },
        )
        .expect("threaded");
        assert_eq!(
            run.observables.diff(&reference),
            None,
            "{label}: threaded rep {rep} diverged"
        );
    }
}

#[test]
fn fig1_is_deterministic_across_backends() {
    let (net, bank, ids) = fig1_network();
    let mut stimuli = Stimuli::new();
    stimuli.arrivals(
        ids.coef_b,
        fppn::core::SporadicTrace::new(vec![TimeQ::from_ms(120), TimeQ::from_ms(390)]),
    );
    assert_all_backends_agree(&net, &bank, &fig1_wcet(), &stimuli, 4, "fig1");
}

#[test]
fn fft_is_deterministic_across_backends() {
    let (net, bank, _) = fft_network();
    assert_all_backends_agree(&net, &bank, &fft_wcet(), &Stimuli::new(), 3, "fft");
}

#[test]
fn random_workloads_are_deterministic_across_backends() {
    for seed in 0..6 {
        let w = random_workload(&WorkloadConfig {
            periodic: 5,
            sporadic: 2,
            seed,
            ..WorkloadConfig::default()
        });
        let derived = derive_task_graph(&w.net, &w.wcet).expect("derivable");
        let horizon = TimeQ::from_int(2) * derived.hyperperiod;
        let stimuli = random_stimuli(&w.net, horizon, 500, seed * 31 + 1);
        assert_all_backends_agree(
            &w.net,
            &w.bank,
            &w.wcet,
            &stimuli,
            2,
            &format!("workload seed {seed}"),
        );
    }
}
