//! Cross-crate reproduction of Figs. 3 and 4: the derived task graph of
//! the Fig. 1 network and its feasible two-processor static schedule.

use fppn::apps::{fig1_network, fig1_wcet};
use fppn::sched::{find_feasible, list_schedule, Heuristic};
use fppn::taskgraph::{derive_task_graph, load, necessary_condition, AsapAlap};
use fppn::time::TimeQ;

fn ms(v: i64) -> TimeQ {
    TimeQ::from_ms(v)
}

#[test]
fn fig4_two_processor_schedule_is_feasible() {
    let (net, _, _) = fig1_network();
    let derived = derive_task_graph(&net, &fig1_wcet()).unwrap();

    // 10 jobs x 25 ms = 250 ms of work in a 200 ms frame: one processor is
    // impossible (Prop. 3.1), exactly why Fig. 4 uses two.
    let l = load(&derived.graph);
    assert!(l.load > TimeQ::ONE);
    assert!(necessary_condition(&derived.graph, 1).is_err());
    assert!(necessary_condition(&derived.graph, 2).is_ok());

    let (schedule, _h) =
        find_feasible(&derived.graph, 2, &Heuristic::ALL).expect("Fig. 4: feasible on 2 procs");
    assert!(schedule.check_feasible(&derived.graph).is_ok());
    assert!(schedule.makespan(&derived.graph) <= ms(200));
    // Both processors are actually used.
    assert!(!schedule.processor_order(0).is_empty());
    assert!(!schedule.processor_order(1).is_empty());
}

#[test]
fn alap_edf_matches_fig4_on_first_try() {
    let (net, _, _) = fig1_network();
    let derived = derive_task_graph(&net, &fig1_wcet()).unwrap();
    let schedule = list_schedule(&derived.graph, 2, Heuristic::AlapEdf);
    assert!(schedule.check_feasible(&derived.graph).is_ok());
}

#[test]
fn asap_alap_windows_of_fig3() {
    let (net, _, ids) = fig1_network();
    let derived = derive_task_graph(&net, &fig1_wcet()).unwrap();
    let times = AsapAlap::compute(&derived.graph);
    let g = &derived.graph;
    // InputA[1] heads several chains; the tightest is
    // InputA -> FilterB[1] -> OutputB[1] with OutputB[1] due at 100:
    // ALAP(InputA[1]) = 100 - 2*25 = 50.
    let i1 = g.find(ids.input_a, 1).unwrap();
    assert_eq!(times.asap(i1), ms(0));
    assert_eq!(times.alap(i1), ms(50));
    // OutputB[2] arrives at 100 and closes the frame.
    let ob2 = g.find(ids.output_b, 2).unwrap();
    assert_eq!(times.asap(ob2), ms(100));
    assert_eq!(times.alap(ob2), ms(200));
    // Every job fits its window (necessary condition part 1).
    for id in g.job_ids() {
        assert!(times.asap(id) + g.job(id).wcet <= times.alap(id), "{}", g.job(id));
    }
}

#[test]
fn all_heuristics_that_claim_feasibility_are_verified() {
    let (net, _, _) = fig1_network();
    let derived = derive_task_graph(&net, &fig1_wcet()).unwrap();
    for h in Heuristic::ALL {
        for m in 2..=3 {
            let s = list_schedule(&derived.graph, m, h);
            if s.check_feasible(&derived.graph).is_ok() {
                // Feasibility claims must be internally consistent.
                assert!(s.makespan(&derived.graph) <= derived.hyperperiod, "{h}/{m}");
            }
        }
    }
}
