//! Prop. 4.1 — "When based on a feasible static-schedule input, the
//! static-order policy always meets the deadlines and correctly implements
//! the real-time semantics of FPPN" — validated empirically: any actual
//! execution-time draw `≤ C_i` under a deadline-feasible schedule misses
//! no deadline, across many random workloads and seeds. WCET *overruns*
//! may miss deadlines but must still preserve determinism.

use fppn::apps::{random_workload, WorkloadConfig};
use fppn::core::{run_zero_delay, JobOrdering};
use fppn::sched::{find_feasible, Heuristic};
use fppn::sim::{clip_stimuli, random_stimuli, simulate, ExecTimeModel, SimConfig};
use fppn::taskgraph::derive_task_graph;
use fppn::time::TimeQ;

#[test]
fn feasible_schedule_plus_bounded_exec_times_never_miss() {
    let mut tested = 0;
    for seed in 0..12u64 {
        let w = random_workload(&WorkloadConfig {
            periodic: 5,
            sporadic: 2,
            wcet_range_ms: (1, 15),
            seed,
            ..WorkloadConfig::default()
        });
        let derived = derive_task_graph(&w.net, &w.wcet).unwrap();
        let Some((schedule, _)) = find_feasible(&derived.graph, 2, &Heuristic::ALL) else {
            continue; // this workload needs more processors; skip
        };
        tested += 1;
        let frames = 3;
        let horizon = TimeQ::from_int(frames as i64) * derived.hyperperiod;
        let stimuli = random_stimuli(&w.net, horizon, 600, seed ^ 0xabcd);
        let stimuli = clip_stimuli(&w.net, &derived, &stimuli, frames);
        for jitter_seed in 0..4 {
            let run = simulate(
                &w.net,
                &w.bank,
                &stimuli,
                &derived,
                &schedule,
                &SimConfig {
                    frames,
                    exec_time: ExecTimeModel::typical_jitter(jitter_seed),
                    ..SimConfig::default()
                },
            )
            .unwrap();
            assert_eq!(
                run.stats.deadline_misses, 0,
                "seed {seed} jitter {jitter_seed}: Prop 4.1 violated"
            );
        }
    }
    assert!(tested >= 6, "too few feasible workloads tested ({tested})");
}

#[test]
fn wcet_overruns_may_miss_but_stay_deterministic() {
    let w = random_workload(&WorkloadConfig {
        periodic: 5,
        sporadic: 1,
        wcet_range_ms: (5, 20),
        // Calibrated so the 3x overrun below actually overloads the
        // 2-processor schedule (the workload stream is PRNG-dependent).
        seed: 2,
        ..WorkloadConfig::default()
    });
    let derived = derive_task_graph(&w.net, &w.wcet).unwrap();
    let (schedule, _) =
        find_feasible(&derived.graph, 2, &Heuristic::ALL).expect("base schedule feasible");
    let frames = 3;
    let horizon = TimeQ::from_int(frames as i64) * derived.hyperperiod;
    let stimuli = random_stimuli(&w.net, horizon, 500, 77);
    let stimuli = clip_stimuli(&w.net, &derived, &stimuli, frames);

    // 3x WCET overrun: deadlines will fall, outputs must not change.
    let overrun = simulate(
        &w.net,
        &w.bank,
        &stimuli,
        &derived,
        &schedule,
        &SimConfig {
            frames,
            exec_time: ExecTimeModel::Scaled { num: 3, den: 1 },
            ..SimConfig::default()
        },
    )
    .unwrap();
    assert!(
        overrun.stats.deadline_misses > 0,
        "expected overload to miss deadlines"
    );
    let mut behaviors = w.bank.instantiate();
    let reference =
        run_zero_delay(&w.net, &mut behaviors, &stimuli, horizon, JobOrdering::default()).unwrap();
    assert_eq!(overrun.observables.diff(&reference.observables), None);
}
