//! Golden-trace snapshot tests.
//!
//! The observable sequences of the paper's two fully-specified
//! applications (Fig. 1 example network, §V-A FFT) under the zero-delay
//! reference semantics are pinned to checked-in snapshots
//! (`tests/golden/*.txt`). The determinism suite proves all backends agree
//! with the zero-delay reference; this suite pins what the reference
//! *itself* computes, so a refactor cannot silently change semantics while
//! remaining self-consistent.
//!
//! To regenerate after an *intentional* semantics change, run with
//! `GOLDEN_PRINT=1 cargo test -q --test golden_traces -- --nocapture` and
//! copy the printed blocks into the snapshot files.

use std::fmt::Write as _;

use fppn::apps::{fft_network, fft_wcet, fig1_network, fig1_wcet};
use fppn::core::{run_zero_delay, Fppn, JobOrdering, Observables, SporadicTrace, Stimuli};
use fppn::sched::{list_schedule, Heuristic};
use fppn::sim::{
    adversarial_stimuli, clip_stimuli, simulate_parallel, simulate_pipelined, simulate_seq,
    AdversarialClass, SimConfig,
};
use fppn::taskgraph::derive_task_graph;
use fppn::time::TimeQ;

/// Renders observables into a stable, human-auditable text form:
/// one line per channel (named) and one per external output port.
fn render(net: &Fppn, obs: &Observables) -> String {
    let mut out = String::new();
    for (c, log) in obs.channels.iter().enumerate() {
        let name = net.channels()[c].name();
        write!(out, "channel {name}:").unwrap();
        for v in log {
            write!(out, " {v}").unwrap();
        }
        out.push('\n');
    }
    for ((pid, port), samples) in &obs.outputs {
        let pname = net.process(*pid).name();
        write!(out, "output {pname}[{}]:", port.index()).unwrap();
        for (k, v) in samples {
            write!(out, " ({k}, {v})").unwrap();
        }
        out.push('\n');
    }
    out
}

fn check(label: &str, net: &Fppn, obs: &Observables, expected: &str) {
    let actual = render(net, obs);
    if std::env::var("GOLDEN_PRINT").is_ok() {
        println!("=== {label} ===\n{actual}=== end {label} ===");
    }
    assert_eq!(
        actual.trim_end(),
        expected.trim_end(),
        "{label}: observable trace diverged from tests/golden/{label}.txt \
         (set GOLDEN_PRINT=1 to print the new trace)"
    );
}

#[test]
fn fig1_zero_delay_trace_is_pinned() {
    let (net, bank, ids) = fig1_network();
    // Same stimulus as the determinism suite: CoefB fires at 120 and 390 ms.
    let mut stimuli = Stimuli::new();
    stimuli.arrivals(
        ids.coef_b,
        SporadicTrace::new(vec![TimeQ::from_ms(120), TimeQ::from_ms(390)]),
    );
    // 4 hyperperiods of 200 ms.
    let horizon = TimeQ::from_ms(800);
    let mut behaviors = bank.instantiate();
    let run = run_zero_delay(&net, &mut behaviors, &stimuli, horizon, JobOrdering::MinRankFirst)
        .expect("fig1 reference run");
    check("fig1", &net, &run.observables, include_str!("golden/fig1.txt"));
}

/// The parallel simulation backend must reproduce the *pinned* traces —
/// not merely agree with the reference of the same build — so a semantics
/// drift in the parallel rounds cannot hide behind a matching drift in
/// the zero-delay executor.
#[test]
fn parallel_backend_reproduces_golden_traces() {
    // Fig. 1, same stimulus as the pinned reference, 4 frames.
    {
        let (net, bank, ids) = fig1_network();
        let mut stimuli = Stimuli::new();
        stimuli.arrivals(
            ids.coef_b,
            SporadicTrace::new(vec![TimeQ::from_ms(120), TimeQ::from_ms(390)]),
        );
        let derived = derive_task_graph(&net, &fig1_wcet()).expect("derivable");
        let frames = 4;
        let stimuli = clip_stimuli(&net, &derived, &stimuli, frames);
        let schedule = list_schedule(&derived.graph, 2, Heuristic::AlapEdf);
        let run = simulate_parallel(
            &net,
            &bank,
            &stimuli,
            &derived,
            &schedule,
            &SimConfig {
                frames,
                workers: 4,
                ..SimConfig::default()
            },
        )
        .expect("fig1 parallel simulation");
        check("fig1", &net, &run.observables, include_str!("golden/fig1.txt"));
    }
    // FFT pipeline, 3 frames.
    {
        let (net, bank, _) = fft_network();
        let derived = derive_task_graph(&net, &fft_wcet()).expect("derivable");
        let schedule = list_schedule(&derived.graph, 2, Heuristic::AlapEdf);
        let run = simulate_parallel(
            &net,
            &bank,
            &Stimuli::new(),
            &derived,
            &schedule,
            &SimConfig {
                frames: 3,
                workers: 4,
                ..SimConfig::default()
            },
        )
        .expect("fft parallel simulation");
        check("fft", &net, &run.observables, include_str!("golden/fft.txt"));
    }
}

/// Adversarial-stimulus golden traces on the paper's Fig. 1 network: the
/// observable sequences under a boundary-aligned burst, a maximal-density
/// flood and an arrival-tie storm (seed-pinned) are snapshot-pinned, and
/// every backend — sequential oracle, parallel, sharded data plane,
/// streaming pipeline — must reproduce them exactly. This extends the
/// uniform-stimulus snapshots above to the stimuli that actually sit on
/// the server-window edge cases.
#[test]
fn adversarial_traces_are_pinned_across_backends() {
    for (class, expected) in [
        (
            AdversarialClass::BoundaryBurst,
            include_str!("golden/fig1_boundary_burst.txt"),
        ),
        (
            AdversarialClass::MaxDensityFlood,
            include_str!("golden/fig1_max_density_flood.txt"),
        ),
        (
            AdversarialClass::ArrivalTieStorm,
            include_str!("golden/fig1_arrival_tie_storm.txt"),
        ),
    ] {
        let (net, bank, _) = fig1_network();
        let derived = derive_task_graph(&net, &fig1_wcet()).expect("derivable");
        let frames = 4u64;
        let horizon = TimeQ::from_int(frames as i64) * derived.hyperperiod;
        let stimuli = adversarial_stimuli(&net, &derived, horizon, class, 0x601D);
        let stimuli = clip_stimuli(&net, &derived, &stimuli, frames);
        let schedule = list_schedule(&derived.graph, 2, Heuristic::AlapEdf);
        let config = SimConfig {
            frames,
            ..SimConfig::default()
        };
        let label = format!("fig1_{}", class.name());
        let seq = simulate_seq(&net, &bank, &stimuli, &derived, &schedule, &config)
            .expect("sequential oracle");
        check(&label, &net, &seq.observables, expected);
        for parallel_behaviors in [false, true] {
            let par = simulate_parallel(
                &net,
                &bank,
                &stimuli,
                &derived,
                &schedule,
                &SimConfig {
                    workers: 4,
                    parallel_behaviors,
                    ..config
                },
            )
            .expect("parallel backend");
            check(&label, &net, &par.observables, expected);
        }
        let pipe = simulate_pipelined(
            &net,
            &bank,
            &stimuli,
            &derived,
            &schedule,
            &SimConfig {
                workers: 4,
                pipeline: true,
                ..config
            },
        )
        .expect("pipelined backend");
        check(&label, &net, &pipe.observables, expected);
    }
}

#[test]
fn fft_zero_delay_trace_is_pinned() {
    let (net, bank, _) = fft_network();
    // 3 hyperperiods (all FFT processes share the 200 ms period) of the
    // closed pipeline on its built-in test signal.
    let horizon = TimeQ::from_int(3) * TimeQ::from_ms(200);
    let mut behaviors = bank.instantiate();
    let run = run_zero_delay(
        &net,
        &mut behaviors,
        &Stimuli::new(),
        horizon,
        JobOrdering::MinRankFirst,
    )
    .expect("fft reference run");
    check("fft", &net, &run.observables, include_str!("golden/fft.txt"));
}
