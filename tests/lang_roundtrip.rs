//! The FPPN language frontend produces the same model as the programmatic
//! builder: the Fig. 1 network written in the DSL derives an identical
//! task graph and executes identically.

use fppn::apps::{fig1_network, fig1_wcet};
use fppn::core::lang::parse_network;
use fppn::core::{run_zero_delay, JobCtx, JobOrdering, PortId, Stimuli, Value};
use fppn::taskgraph::{derive_task_graph, WcetModel};
use fppn::time::TimeQ;

const FIG1_DSL: &str = r#"
    network fig1 {
        process InputA  periodic(T = 200ms) { input sample; }
        process FilterB periodic(T = 200ms);
        process FilterA periodic(T = 100ms);
        process OutputA periodic(T = 200ms) { output out1; }
        process NormA   periodic(T = 200ms);
        process CoefB   sporadic(m = 2, T = 700ms);
        process OutputB periodic(T = 100ms) { output out2; }

        channel fifo       c_in_a     : InputA  -> FilterA;
        channel fifo       c_in_b     : InputA  -> FilterB;
        channel fifo       c_a_norm   : FilterA -> NormA;
        channel blackboard c_feedback : NormA   -> FilterA;
        channel fifo       c_norm_out : NormA   -> OutputA;
        channel blackboard c_coef     : CoefB   -> FilterB;
        channel blackboard c_b_out    : FilterB -> OutputB;

        priority InputA  -> FilterA;
        priority InputA  -> FilterB;
        priority InputA  -> NormA;
        priority FilterA -> NormA;
        priority NormA   -> OutputA;
        priority CoefB   -> FilterB;
        priority FilterB -> OutputB;
    }
"#;

#[test]
fn dsl_fig1_derives_the_same_task_graph() {
    let (reference_net, _, _) = fig1_network();
    let parsed = parse_network(FIG1_DSL).unwrap();
    let (dsl_net, _) = parsed.build().unwrap();

    assert_eq!(dsl_net.process_count(), reference_net.process_count());
    assert_eq!(dsl_net.channels().len(), reference_net.channels().len());

    let d_ref = derive_task_graph(&reference_net, &fig1_wcet()).unwrap();
    let d_dsl = derive_task_graph(&dsl_net, &fig1_wcet()).unwrap();
    assert_eq!(d_dsl.hyperperiod, d_ref.hyperperiod);
    assert_eq!(d_dsl.graph.job_count(), d_ref.graph.job_count());
    assert_eq!(d_dsl.graph.edge_count(), d_ref.graph.edge_count());
    assert_eq!(d_dsl.reduced_edges, d_ref.reduced_edges);

    // Same jobs by (process-name, k, A, D, C); ids may differ because
    // declaration orders differ.
    let key = |net: &fppn::core::Fppn, d: &fppn::taskgraph::DerivedTaskGraph| {
        let mut v: Vec<(String, u64, TimeQ, TimeQ, TimeQ)> = d
            .graph
            .jobs()
            .iter()
            .map(|j| {
                (
                    net.process(j.process).name().to_owned(),
                    j.k,
                    j.arrival,
                    j.deadline,
                    j.wcet,
                )
            })
            .collect();
        v.sort();
        v
    };
    assert_eq!(key(&dsl_net, &d_dsl), key(&reference_net, &d_ref));
}

#[test]
fn dsl_network_executes_with_attached_behaviors() {
    let mut parsed = parse_network(
        "network tiny { \
           process gen periodic(T = 50ms); \
           process out periodic(T = 100ms) { output o; } \
           channel fifo c : gen -> out; \
           priority gen -> out; }",
    )
    .unwrap();
    let c = parsed.channel("c").unwrap();
    parsed
        .behavior("gen", move || {
            Box::new(move |ctx: &mut JobCtx<'_>| ctx.write(c, Value::Int(ctx.k() as i64)))
        })
        .unwrap();
    parsed
        .behavior("out", move || {
            Box::new(move |ctx: &mut JobCtx<'_>| {
                let a = ctx.read_value(c);
                let b = ctx.read_value(c);
                ctx.write_output(PortId::from_index(0), Value::List(vec![a, b]));
            })
        })
        .unwrap();
    let (net, bank) = parsed.build().unwrap();
    let derived = derive_task_graph(&net, &WcetModel::uniform(TimeQ::from_ms(5))).unwrap();
    assert_eq!(derived.hyperperiod, TimeQ::from_ms(100));
    let mut behaviors = bank.instantiate();
    let run = run_zero_delay(
        &net,
        &mut behaviors,
        &Stimuli::new(),
        TimeQ::from_ms(200),
        JobOrdering::default(),
    )
    .unwrap();
    let out = &run.observables.outputs[0].1;
    assert_eq!(out.len(), 2);
    // At t = 0 only gen[1] has produced; at t = 100, gen[2] and gen[3]
    // (gen runs before out at equal timestamps: gen -> out in FP).
    assert_eq!(out[0].1, Value::List(vec![Value::Int(1), Value::Absent]));
    assert_eq!(out[1].1, Value::List(vec![Value::Int(2), Value::Int(3)]));
}
