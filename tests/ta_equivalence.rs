//! Equivalence of the timed-automata translation (the paper's
//! code-generation pipeline) with the discrete-event simulator: for the
//! same network, schedule and stimuli under WCET execution, the TA network
//! must reproduce the §IV policy timeline step for step.

use fppn::apps::{fig1_network, fig1_wcet, random_workload, WorkloadConfig};
use fppn::core::{SporadicTrace, Stimuli};
use fppn::sched::{list_schedule, Heuristic};
use fppn::sim::{clip_stimuli, random_stimuli, simulate, SimConfig};
use fppn::ta::{extract_timings, simulate_network, translate, StopReason};
use fppn::taskgraph::derive_task_graph;
use fppn::time::TimeQ;

fn assert_ta_matches_sim(
    net: &fppn::core::Fppn,
    bank: &fppn::core::BehaviorBank,
    wcet: &fppn::taskgraph::WcetModel,
    raw_stimuli: &Stimuli,
    processors: usize,
    frames: u64,
    label: &str,
) {
    let derived = derive_task_graph(net, wcet).unwrap();
    let stimuli = clip_stimuli(net, &derived, raw_stimuli, frames);
    let schedule = list_schedule(&derived.graph, processors, Heuristic::AlapEdf);

    let run = simulate(
        net,
        bank,
        &stimuli,
        &derived,
        &schedule,
        &SimConfig {
            frames,
            ..SimConfig::default()
        },
    )
    .unwrap();

    let translation = translate(net, &derived, &schedule, &stimuli, frames);
    let horizon = TimeQ::from_int(frames as i64 + 1) * derived.hyperperiod;
    let trace = simulate_network(&translation.network, horizon, translation.step_bound());
    assert_eq!(trace.stopped, StopReason::Quiescent, "{label}: TA must finish");
    let timings = extract_timings(&trace);

    assert_eq!(
        timings.len(),
        run.records.len(),
        "{label}: round counts differ"
    );
    for t in &timings {
        let rec = run
            .records
            .iter()
            .find(|r| r.frame == t.frame && r.job == t.job)
            .unwrap_or_else(|| panic!("{label}: no sim record for frame {} {:?}", t.frame, t.job));
        assert_eq!(rec.skipped, t.skipped, "{label}: skip mismatch for {t:?}");
        if !t.skipped {
            assert_eq!(rec.start, t.start, "{label}: start mismatch for {t:?}");
            assert_eq!(
                rec.completion, t.completion,
                "{label}: completion mismatch for {t:?}"
            );
        }
    }
}

#[test]
fn fig1_ta_translation_matches_simulator() {
    let (net, bank, ids) = fig1_network();
    let mut stimuli = Stimuli::new();
    stimuli.arrivals(
        ids.coef_b,
        SporadicTrace::new(vec![TimeQ::from_ms(50), TimeQ::from_ms(250)]),
    );
    for processors in 1..=2 {
        assert_ta_matches_sim(
            &net,
            &bank,
            &fig1_wcet(),
            &stimuli,
            processors,
            3,
            &format!("fig1 x{processors}"),
        );
    }
}

#[test]
fn random_workload_ta_translation_matches_simulator() {
    for seed in 0..5 {
        let w = random_workload(&WorkloadConfig {
            periodic: 4,
            sporadic: 1,
            seed,
            ..WorkloadConfig::default()
        });
        let derived = derive_task_graph(&w.net, &w.wcet).unwrap();
        let horizon = TimeQ::from_int(2) * derived.hyperperiod;
        let stimuli = random_stimuli(&w.net, horizon, 400, seed + 99);
        assert_ta_matches_sim(
            &w.net,
            &w.bank,
            &w.wcet,
            &stimuli,
            2,
            2,
            &format!("workload {seed}"),
        );
    }
}
