//! The §V-B avionics experiment (Fig. 7): derive, analyze, schedule and
//! simulate the Flight Management System subsystem with random pilot
//! commands, then run it on the real multi-threaded runtime.
//!
//! Run with: `cargo run --example fms_avionics`

use fppn::apps::{fms_network, fms_sporadics, fms_wcet, FmsVariant};
use fppn::core::{run_zero_delay, JobOrdering};
use fppn::runtime::{run_threaded, RuntimeConfig};
use fppn::sched::{list_schedule, min_processors, Heuristic};
use fppn::sim::{clip_stimuli, random_sporadic_trace, simulate, SimConfig};
use fppn::taskgraph::{derive_task_graph, load};
use fppn::time::TimeQ;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (net, bank, ids) = fms_network(FmsVariant::Reduced);
    let wcet = fms_wcet(&ids);
    let derived = derive_task_graph(&net, &wcet)?;
    let l = load(&derived.graph);
    println!(
        "FMS: {} processes; H = {} s; {} jobs, {} edges (unreduced {}); load = {:.4}",
        net.process_count(),
        (derived.hyperperiod / TimeQ::from_secs(1)).to_f64(),
        derived.graph.job_count(),
        derived.graph.edge_count(),
        derived.graph.edge_count() + derived.reduced_edges,
        l.load.to_f64()
    );

    // Pilot commands: random sporadic arrivals over two hyperperiods.
    let frames = 2;
    let horizon = TimeQ::from_int(frames as i64) * derived.hyperperiod;
    let mut stimuli = fppn::core::Stimuli::new();
    for (i, sp) in fms_sporadics(&ids).into_iter().enumerate() {
        let ev = net.process(sp).event();
        stimuli.arrivals(
            sp,
            random_sporadic_trace(ev.burst(), ev.period(), horizon, 300, 42 + i as u64),
        );
    }
    let stimuli = clip_stimuli(&net, &derived, &stimuli, frames);

    // "a single-processor mapping encountered no deadline misses."
    let schedule1 = list_schedule(&derived.graph, 1, Heuristic::AlapEdf);
    let run1 = simulate(
        &net,
        &bank,
        &stimuli,
        &derived,
        &schedule1,
        &SimConfig {
            frames,
            ..SimConfig::default()
        },
    )?;
    println!(
        "1 processor: {} jobs executed, {} slots skipped, {} deadline misses",
        run1.stats.executed, run1.stats.skipped, run1.stats.deadline_misses
    );

    // "we still generated schedules for different number of processors."
    for m in 2..=4usize {
        let s = list_schedule(&derived.graph, m, Heuristic::AlapEdf);
        let feasible = s.check_feasible(&derived.graph).is_ok();
        println!(
            "{m} processors: makespan {} ms, feasible = {feasible}",
            s.makespan(&derived.graph)
        );
    }

    // Determinism across platforms: zero-delay vs simulator vs threads.
    let mut behaviors = bank.instantiate();
    let reference = run_zero_delay(&net, &mut behaviors, &stimuli, horizon, JobOrdering::default())?;
    assert_eq!(run1.observables.diff(&reference.observables), None);
    let schedule2 = list_schedule(&derived.graph, 2, Heuristic::AlapEdf);
    let threaded = run_threaded(
        &net,
        &bank,
        &stimuli,
        &derived,
        &schedule2,
        &RuntimeConfig {
            frames,
            us_per_ms: 0,
        },
    )?;
    assert_eq!(threaded.observables.diff(&reference.observables), None);
    println!("determinism: zero-delay == simulator(1 proc) == threads(2 procs) ✓");

    // Minimal processor count per Prop. 3.1 + the heuristic portfolio.
    if let Some((m, _, h)) = min_processors(&derived.graph, &Heuristic::ALL, 4) {
        println!("minimum processors for a feasible static schedule: {m} (via {h})");
    }

    // A glimpse of the flight outputs.
    let fuel = reference
        .observables
        .outputs
        .iter()
        .find(|((p, _), _)| *p == ids.performance)
        .map(|(_, v)| v)
        .expect("fuel output");
    println!(
        "fuel prediction over {} s: {:.1} kg -> {:.1} kg",
        (horizon / TimeQ::from_secs(1)).to_f64(),
        fuel.first().and_then(|(_, v)| v.as_float()).unwrap_or(0.0),
        fuel.last().and_then(|(_, v)| v.as_float()).unwrap_or(0.0),
    );
    Ok(())
}
