//! The sporadic-server mechanism of §III-A/§IV (Fig. 2), demonstrated:
//! how real sporadic arrivals map onto periodic server slots, how unused
//! slots are marked *false*, and how the window boundary rule depends on
//! the functional priority between a sporadic process and its user.
//!
//! Run with: `cargo run --example sporadic_servers`

use fppn::core::{
    ChannelKind, EventSpec, FppnBuilder, JobCtx, ProcessSpec, SporadicTrace, Stimuli, Value,
};
use fppn::sched::{list_schedule, Heuristic};
use fppn::sim::{clip_stimuli, simulate, SimConfig};
use fppn::taskgraph::{derive_task_graph, WcetModel};
use fppn::time::TimeQ;

fn build(cfg_priority: bool) -> (fppn::core::Fppn, fppn::core::BehaviorBank, fppn::core::ProcessId) {
    let ms = TimeQ::from_ms;
    let mut b = FppnBuilder::new();
    let user =
        b.process(ProcessSpec::new("user", EventSpec::periodic(ms(200))).with_output("seen"));
    let cfg = b.process(ProcessSpec::new(
        "cfg",
        EventSpec::sporadic(2, ms(700)),
    ));
    let ch = b.channel("config", cfg, user, ChannelKind::Blackboard);
    if cfg_priority {
        b.priority(cfg, user);
    } else {
        b.priority(user, cfg);
    }
    b.behavior(cfg, move || {
        Box::new(move |ctx: &mut JobCtx<'_>| ctx.write(ch, Value::Int(ctx.k() as i64)))
    });
    b.behavior(user, move || {
        Box::new(move |ctx: &mut JobCtx<'_>| {
            let v = ctx.read_value(ch);
            ctx.write_output(fppn::core::PortId::from_index(0), v);
        })
    });
    let (net, bank) = b.build().expect("valid");
    (net, bank, cfg)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ms = TimeQ::from_ms;
    println!("sporadic cfg: burst m = 2 per T = 700 ms; user period T_u = 200 ms");
    println!("=> server: 2 slots per 200 ms window (Fig. 2)\n");

    // One arrival strictly inside a window, one exactly on a boundary.
    let arrivals = vec![ms(150), ms(400)];
    println!("arrivals: 150 ms (inside (200-window)), 400 ms (exactly at a boundary)\n");

    for cfg_priority in [true, false] {
        let (net, bank, cfg) = build(cfg_priority);
        let derived = derive_task_graph(&net, &WcetModel::uniform(ms(10)))?;
        let server = derived.server(cfg).expect("cfg has a server");
        let rule = if server.priority_over_user {
            "(b - T', b]  — boundary arrival handled in the closing window"
        } else {
            "[b - T', b)  — boundary arrival postponed to the next window"
        };
        println!(
            "cfg {} user  |  window rule: {rule}",
            if cfg_priority { "→" } else { "←" }
        );

        let frames = 4;
        let mut stimuli = Stimuli::new();
        stimuli.arrivals(cfg, SporadicTrace::new(arrivals.clone()));
        let stimuli = clip_stimuli(&net, &derived, &stimuli, frames);
        let schedule = list_schedule(&derived.graph, 1, Heuristic::AlapEdf);
        let run = simulate(
            &net,
            &bank,
            &stimuli,
            &derived,
            &schedule,
            &SimConfig {
                frames,
                ..SimConfig::default()
            },
        )?;
        for rec in &run.records {
            if rec.process == cfg && !rec.skipped {
                println!(
                    "  cfg[{}] invoked at {} ms, executed [{}, {}] ms (server slot of frame {})",
                    rec.global_k, rec.invoked_at, rec.start, rec.completion, rec.frame
                );
            }
        }
        println!(
            "  slots skipped as false: {} of {}",
            run.stats.skipped,
            run.stats.skipped + run.records.iter().filter(|r| r.process == cfg && !r.skipped).count()
        );
        let user_out = &run.observables.outputs[0].1;
        let seen: Vec<String> = user_out.iter().map(|(k, v)| format!("user[{k}]={v}")).collect();
        println!("  user observations: {}\n", seen.join("  "));
    }
    println!(
        "note: with cfg → user the boundary arrival at 400 ms is visible to the\n\
         user job invoked at 400 ms; with user → cfg it only becomes visible at 600 ms."
    );
    Ok(())
}
