//! The §V-A FFT experiment (Figs. 5 & 6): run the 14-process FFT pipeline
//! on a simulated MPPA-like platform with the measured runtime overheads,
//! on one and two processors.
//!
//! Run with: `cargo run --example fft_stream`

use fppn::apps::{fft_network, fft_wcet};
use fppn::core::{run_zero_delay, JobOrdering, Stimuli};
use fppn::sched::{list_schedule, Heuristic};
use fppn::sim::{simulate, OverheadModel, SimConfig};
use fppn::taskgraph::{derive_task_graph, load};
use fppn::time::TimeQ;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (net, bank, ids) = fft_network();
    let derived = derive_task_graph(&net, &fft_wcet())?;
    let l = load(&derived.graph);
    println!(
        "FFT: {} processes, task graph {} jobs / {} edges, H = {} ms, load = {} ≈ {:.2}",
        net.process_count(),
        derived.graph.job_count(),
        derived.graph.edge_count(),
        derived.hyperperiod,
        l.load,
        l.load.to_f64()
    );
    // The paper models the frame-management overhead as an extra job with
    // a precedence edge to the generator; adding its 41 ms to the frame
    // work gives the effective load that explains the 1-processor misses.
    let overhead = OverheadModel::mppa_fft();
    let with_ovh =
        (derived.graph.total_work() + overhead.first_frame) / derived.hyperperiod;
    println!(
        "load including first-frame runtime overhead: {:.3} (paper: ≈ 1.2)",
        with_ovh.to_f64()
    );

    let frames = 10;
    for processors in [1usize, 2] {
        let schedule = list_schedule(&derived.graph, processors, Heuristic::AlapEdf);
        let run = simulate(
            &net,
            &bank,
            &Stimuli::new(),
            &derived,
            &schedule,
            &SimConfig {
                frames,
                overhead,
                ..SimConfig::default()
            },
        )?;
        println!(
            "\n{processors} processor(s): {} jobs over {frames} frames, {} deadline misses, max lateness {} ms",
            run.stats.executed, run.stats.deadline_misses, run.stats.max_lateness
        );
        if processors == 2 {
            let horizon = TimeQ::from_int(2) * derived.hyperperiod;
            println!("Gantt of the first two frames (rows M0, M1, runtime):");
            print!("{}", run.gantt.render_ascii(horizon, 72));
        }
    }

    // Determinism: the spectrum is identical whatever the mapping.
    let mut behaviors = bank.instantiate();
    let horizon = TimeQ::from_int(frames as i64) * derived.hyperperiod;
    let reference = run_zero_delay(
        &net,
        &mut behaviors,
        &Stimuli::new(),
        horizon,
        JobOrdering::default(),
    )?;
    let schedule = list_schedule(&derived.graph, 2, Heuristic::AlapEdf);
    let run2 = simulate(
        &net,
        &bank,
        &Stimuli::new(),
        &derived,
        &schedule,
        &SimConfig {
            frames,
            overhead,
            ..SimConfig::default()
        },
    )?;
    assert_eq!(run2.observables.diff(&reference.observables), None);
    println!("\ndeterminism check across mappings: ✓");

    // Show one spectrum.
    let spectrum = reference
        .observables
        .outputs
        .iter()
        .find(|((p, _), _)| *p == ids.consumer)
        .map(|(_, v)| v)
        .expect("consumer output");
    println!("first spectrum frame: {}", spectrum[0].1);
    Ok(())
}
