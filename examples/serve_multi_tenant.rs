//! Compile-once / run-many: three tenants with very different networks
//! (the §V-B avionics FMS, the §V-A FFT pipeline, and a behavior-heavy
//! synthetic workload) share one `fppn_serve::Server` — one artifact
//! cache, one worker pool, per-tenant budgets and deadline-miss
//! accounting.
//!
//! Run with: `cargo run --example serve_multi_tenant`

use std::sync::Arc;
use std::time::Instant;

use fppn::apps::{
    fft_network, fft_wcet, fms_network, fms_wcet, synthetic_fppn, FmsVariant, SyntheticFppnConfig,
};
use fppn::core::Stimuli;
use fppn::serve::{AdmissionError, RunRequest, Server};
use fppn::sim::{clip_stimuli, random_stimuli, CompileConfig, SimConfig};
use fppn::time::TimeQ;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One control plane for everyone: a 4-worker pool plus the shared
    // content-hash-keyed artifact cache.
    let server = Server::new(4);
    server.register_tenant("avionics", 32); // FMS regression farm
    server.register_tenant("dsp", 32); // FFT parameter sweeps
    server.register_tenant("fuzz", 4); // deliberately tiny budget

    // --- Tenant networks -------------------------------------------------
    let (fms_net, fms_bank, fms_ids) = fms_network(FmsVariant::Original);
    let (fft_net, fft_bank, _) = fft_network();
    let synth = synthetic_fppn(&SyntheticFppnConfig {
        shape: fppn::apps::SyntheticGraphConfig {
            jobs: 24,
            depth: 4,
            ..Default::default()
        },
        compute_iters: (500, 2_000),
        sporadic: 2,
        ..SyntheticFppnConfig::default()
    });

    // --- Compile once per (network, config) key --------------------------
    // The first get_or_compile per key is a miss (runs derivation +
    // scheduling + table build); every later one is hash + lookup +
    // Arc::clone — the compile phase is provably skipped (see
    // crates/bench/tests/cache_alloc.rs).
    let t0 = Instant::now();
    let fms_cfg = CompileConfig::new(fms_wcet(&fms_ids), 2);
    let fms_art = server.cache().get_or_compile(&fms_net, &fms_cfg)?;
    let fms_compile = t0.elapsed();

    let fft_art = server
        .cache()
        .get_or_compile(&fft_net, &CompileConfig::new(fft_wcet(), 2))?;
    let synth_art = server
        .cache()
        .get_or_compile(&synth.net, &CompileConfig::new(synth.wcet.clone(), 4))?;

    let t1 = Instant::now();
    let again = server.cache().get_or_compile(&fms_net, &fms_cfg)?;
    let fms_lookup = t1.elapsed();
    assert!(Arc::ptr_eq(&fms_art, &again));
    println!(
        "artifact cache: {} misses, {} hits | FMS compile {fms_compile:.2?} vs warm lookup {fms_lookup:.2?}",
        server.cache().misses(),
        server.cache().hits(),
    );
    for (name, art) in [("fms", &fms_art), ("fft", &fft_art), ("synthetic", &synth_art)] {
        println!(
            "  {name:<9} key {:016x} | {} jobs on {} processors",
            art.content_hash(),
            art.derived().graph.job_count(),
            art.tables().processors(),
        );
    }

    // --- Queue runs from all three tenants -------------------------------
    let fms_bank = Arc::new(fms_bank);
    let fft_bank = Arc::new(fft_bank);
    let synth_bank = Arc::new(synth.bank);

    let mut tickets = Vec::new();
    // Avionics: the same FMS artifact under 8 different sporadic traces.
    for seed in 0..8u64 {
        let frames = 2;
        let raw = random_stimuli(&fms_net, TimeQ::from_ms(60_000), 400, seed);
        tickets.push(server.submit(
            "avionics",
            RunRequest::new(
                Arc::clone(&fms_art),
                Arc::clone(&fms_bank),
                clip_stimuli(&fms_net, fms_art.derived(), &raw, frames),
                SimConfig {
                    frames,
                    ..SimConfig::default()
                },
            ),
        )?);
    }
    // DSP: FFT at increasing horizons.
    for frames in [4u64, 8, 16] {
        tickets.push(server.submit(
            "dsp",
            RunRequest::new(
                Arc::clone(&fft_art),
                Arc::clone(&fft_bank),
                Stimuli::new(),
                SimConfig {
                    frames,
                    ..SimConfig::default()
                },
            ),
        )?);
    }
    // Fuzz: budget 4 — queue until admission control says no.
    let mut rejected = 0usize;
    for seed in 0..6u64 {
        let frames = 2;
        let raw = random_stimuli(&synth.net, TimeQ::from_ms(10_000), 500, seed);
        let req = RunRequest::new(
            Arc::clone(&synth_art),
            Arc::clone(&synth_bank),
            clip_stimuli(&synth.net, synth_art.derived(), &raw, frames),
            SimConfig {
                frames,
                ..SimConfig::default()
            },
        );
        match server.submit("fuzz", req) {
            Ok(t) => tickets.push(t),
            Err(AdmissionError::BudgetExhausted { tenant, budget }) => {
                rejected += 1;
                println!("admission: tenant {tenant:?} exhausted its budget of {budget}");
            }
            Err(e) => return Err(e.into()),
        }
    }
    assert_eq!(rejected, 2, "budget 4 admits 4 of 6 fuzz runs");

    // --- Drain the pool and report per-tenant accounting ------------------
    let queued = tickets.len();
    let t2 = Instant::now();
    let mut total_misses = 0usize;
    for ticket in tickets {
        total_misses += ticket.wait()?.deadline_misses;
    }
    println!(
        "\n{queued} runs drained in {:.2?} ({total_misses} deadline misses overall)",
        t2.elapsed()
    );
    for tenant in ["avionics", "dsp", "fuzz"] {
        let s = server.tenant_stats(tenant).expect("registered");
        println!(
            "  {tenant:<9} admitted {:>2}/{:<2} | completed {:>2} | deadline misses {}",
            s.admitted, s.budget, s.completed, s.deadline_misses,
        );
    }
    println!(
        "cache after the storm: still {} miss(es), {} hits — every run reused its artifact",
        server.cache().misses(),
        server.cache().hits(),
    );
    Ok(())
}
