//! Two extensions in one tour: the FPPN textual language (§V: "an
//! FPPN-related programming language was defined") and pipelined
//! scheduling (§VI future work).
//!
//! A deep processing chain with deadlines beyond its period is rejected by
//! the paper's non-pipelined scheduler but admitted once frames may
//! overlap.
//!
//! Run with: `cargo run --example dsl_and_pipelining`

use fppn::core::lang::parse_network;
use fppn::core::{JobCtx, Value};
use fppn::sched::{list_schedule, Heuristic};
use fppn::taskgraph::{
    derive_task_graph, necessary_condition, unroll_for_pipelining, WcetModel,
};
use fppn::time::TimeQ;

const SRC: &str = r#"
    # A sonar-like chain: sample -> beamform -> detect, 100 ms rate,
    # but each wave is allowed 200 ms of end-to-end latency (d > T).
    network sonar {
        process sample   periodic(T = 100ms, d = 200ms);
        process beamform periodic(T = 100ms, d = 200ms);
        process detect   periodic(T = 100ms, d = 200ms) { output hits; }

        channel fifo ping  : sample   -> beamform;
        channel fifo beams : beamform -> detect;

        priority sample   -> beamform;
        priority beamform -> detect;
    }
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ms = TimeQ::from_ms;
    let mut parsed = parse_network(SRC)?;
    println!("parsed network {:?} from the FPPN language", parsed.name());

    let ping = parsed.channel("ping").expect("channel");
    let beams = parsed.channel("beams").expect("channel");
    parsed.behavior("sample", move || {
        Box::new(move |ctx: &mut JobCtx<'_>| ctx.write(ping, Value::Int(ctx.k() as i64)))
    })?;
    parsed.behavior("beamform", move || {
        Box::new(move |ctx: &mut JobCtx<'_>| {
            if let Some(Value::Int(v)) = ctx.read(ping) {
                ctx.write(beams, Value::Int(v * v));
            }
        })
    })?;
    let (net, _bank) = parsed.build()?;

    // Each stage takes 40 ms: a 120 ms wave in a 100 ms period.
    let wcet = WcetModel::uniform(ms(40));
    let derived = derive_task_graph(&net, &wcet)?;
    println!(
        "\nnon-pipelined derivation (deadlines truncated to H = {} ms):",
        derived.hyperperiod
    );
    match necessary_condition(&derived.graph, 64) {
        Ok(()) => println!("  admitted (unexpected)"),
        Err(e) => println!("  rejected on any processor count: {e}"),
    }

    for factor in [2u64, 4, 8] {
        let unrolled = unroll_for_pipelining(&net, &derived, factor);
        let ok2 = necessary_condition(&unrolled, 2).is_ok();
        let schedule = list_schedule(&unrolled, 2, Heuristic::AlapEdf);
        let feasible = schedule.check_feasible(&unrolled).is_ok();
        println!(
            "pipelined x{factor}: {} jobs, Prop. 3.1 on 2 procs = {}, \
             list schedule feasible = {}, makespan = {} ms over {} ms of frames",
            unrolled.job_count(),
            ok2,
            feasible,
            schedule.makespan(&unrolled),
            unrolled.hyperperiod()
        );
    }
    println!(
        "\nthe overlapped schedule sustains the 100 ms rate while honouring the\n\
         200 ms per-wave deadline — the buffering/pipelining extension of §VI."
    );
    Ok(())
}
