//! Quickstart: build an FPPN, derive its task graph, schedule it, and run
//! it on the simulated multiprocessor — checking deterministic outputs
//! against the zero-delay reference.
//!
//! Run with: `cargo run --example quickstart`

use fppn::core::{
    run_zero_delay, ChannelKind, EventSpec, FppnBuilder, JobCtx, JobOrdering, PortId,
    ProcessSpec, SporadicTrace, Stimuli, Value,
};
use fppn::sched::{find_feasible, Heuristic};
use fppn::sim::{clip_stimuli, simulate, SimConfig};
use fppn::taskgraph::{derive_task_graph, load, WcetModel};
use fppn::time::TimeQ;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ms = TimeQ::from_ms;

    // 1. Model: a sensor -> controller -> actuator chain with a sporadic
    //    gain reconfiguration, in the style of the paper's Fig. 1.
    let mut b = FppnBuilder::new();
    let sensor = b.process(ProcessSpec::new("sensor", EventSpec::periodic(ms(100))));
    let control = b.process(ProcessSpec::new("control", EventSpec::periodic(ms(100))));
    let actuator =
        b.process(ProcessSpec::new("actuator", EventSpec::periodic(ms(200))).with_output("cmd"));
    let tune = b.process(ProcessSpec::new(
        "tune",
        EventSpec::sporadic(1, ms(300)).with_deadline(ms(250)),
    ));

    let meas = b.channel("measurement", sensor, control, ChannelKind::Fifo);
    let cmd = b.channel("command", control, actuator, ChannelKind::Fifo);
    let gain = b.channel("gain", tune, control, ChannelKind::Blackboard);

    // Functional priority: every channel-sharing pair must be ordered.
    b.priority(sensor, control);
    b.priority(control, actuator);
    b.priority(tune, control);

    // 2. Behaviors: plain Rust closures, invoked once per job.
    b.behavior(sensor, move || {
        Box::new(move |ctx: &mut JobCtx<'_>| {
            let sample = (ctx.k() as i64 * 13) % 50;
            ctx.write(meas, Value::Int(sample));
        })
    });
    b.behavior(control, move || {
        Box::new(move |ctx: &mut JobCtx<'_>| {
            let g = ctx.read_value(gain).as_int().unwrap_or(2);
            if let Some(Value::Int(x)) = ctx.read(meas) {
                ctx.write(cmd, Value::Int(g * x));
            }
        })
    });
    b.behavior(actuator, move || {
        Box::new(move |ctx: &mut JobCtx<'_>| {
            // 200 ms period vs 100 ms producer: drain both samples.
            let a = ctx.read_value(cmd);
            let b = ctx.read_value(cmd);
            ctx.write_output(PortId::from_index(0), Value::List(vec![a, b]));
        })
    });
    b.behavior(tune, move || {
        Box::new(move |ctx: &mut JobCtx<'_>| ctx.write(gain, Value::Int(2 + ctx.k() as i64)))
    });

    let (net, bank) = b.build()?;
    println!(
        "network: {} processes, {} channels",
        net.process_count(),
        net.channels().len()
    );

    // 3. Task graph (§III-A) and analysis.
    let wcet = WcetModel::uniform(ms(20));
    let derived = derive_task_graph(&net, &wcet)?;
    let l = load(&derived.graph);
    println!(
        "task graph: H = {} ms, {} jobs, {} edges, load = {} (≥ {} processors)",
        derived.hyperperiod,
        derived.graph.job_count(),
        derived.graph.edge_count(),
        l.load,
        l.min_processors()
    );

    // 4. Compile-time schedule (§III-B).
    let (schedule, heuristic) =
        find_feasible(&derived.graph, 2, &Heuristic::ALL).expect("feasible on 2 processors");
    println!(
        "schedule: 2 processors via {heuristic}, makespan {} ms",
        schedule.makespan(&derived.graph)
    );

    // 5. Online execution (§IV) with sporadic arrivals, vs the zero-delay
    //    reference (Prop. 4.1).
    let frames = 5;
    let mut stimuli = Stimuli::new();
    stimuli.arrivals(tune, SporadicTrace::new(vec![ms(40), ms(420), ms(780)]));
    let stimuli = clip_stimuli(&net, &derived, &stimuli, frames);

    let run = simulate(
        &net,
        &bank,
        &stimuli,
        &derived,
        &schedule,
        &SimConfig {
            frames,
            ..SimConfig::default()
        },
    )?;
    println!(
        "simulated {} frames: {} jobs executed, {} sporadic slots skipped, {} deadline misses",
        frames, run.stats.executed, run.stats.skipped, run.stats.deadline_misses
    );

    let mut behaviors = bank.instantiate();
    let horizon = TimeQ::from_int(frames as i64) * derived.hyperperiod;
    let reference = run_zero_delay(&net, &mut behaviors, &stimuli, horizon, JobOrdering::default())?;
    match run.observables.diff(&reference.observables) {
        None => println!("determinism check: simulator outputs == zero-delay reference ✓"),
        Some(d) => println!("DETERMINISM VIOLATION:\n{d}"),
    }

    println!("\nGantt (first {} ms):", horizon);
    print!("{}", run.gantt.render_ascii(horizon, 72));
    Ok(())
}
