//! Regression test for the artifact cache's zero-alloc hit path: once an
//! artifact is cached, `get_or_compile` for an equal `(network, config)`
//! pair must hash the key, look it up and clone the `Arc` without a
//! single heap allocation — the compile phase is provably skipped.
//!
//! Same counting-`#[global_allocator]` trick as `alloc_zero.rs` (an
//! integration test is its own crate root, so the allocator is local to
//! this binary); the scoped `#[allow]` overrides the crate's
//! `unsafe_code = "deny"` lint for the one `GlobalAlloc` impl.

use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

struct CountingAlloc;

#[allow(unsafe_code)]
mod counting_impl {
    use super::{CountingAlloc, ALLOCATIONS, Ordering};
    use std::alloc::{GlobalAlloc, Layout, System};

    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
            System.alloc(layout)
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout)
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
            System.realloc(ptr, layout, new_size)
        }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

#[test]
fn cache_hits_allocate_nothing() {
    use fppn_apps::{fms_network, fms_wcet, FmsVariant};
    use fppn_serve::ArtifactCache;
    use fppn_sim::CompileConfig;

    let (net, _, ids) = fms_network(FmsVariant::Original);
    let cfg = CompileConfig::new(fms_wcet(&ids), 4);
    let cache = ArtifactCache::new();

    // Warm-up: the one and only compile.
    let warm = cache.get_or_compile(&net, &cfg).expect("FMS compiles");
    assert_eq!((cache.hits(), cache.misses()), (0, 1));

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..10 {
        let hit = cache.get_or_compile(&net, &cfg).expect("cache hit");
        assert_eq!(hit.content_hash(), warm.content_hash());
    }
    let delta = ALLOCATIONS.load(Ordering::Relaxed) - before;
    assert_eq!(
        delta, 0,
        "cache-hit get_or_compile allocated {delta} times; the hit path \
         must be hash + lookup + Arc::clone, no compile-phase work"
    );
    assert_eq!((cache.hits(), cache.misses()), (10, 1));
}

/// The cross-run result cache's hit path, held to the same standard: once
/// a `(artifact, stimuli, config)` result is cached, re-keying the same
/// request and looking it up must be hash + lookup + `Arc::clone` — zero
/// heap allocations, no simulation work.
#[test]
fn run_cache_hits_allocate_nothing() {
    use std::sync::Arc;

    use fppn_apps::{fms_network, fms_wcet, FmsVariant};
    use fppn_serve::{run_key, RunCache};
    use fppn_sim::{CompileConfig, CompiledNetwork, SimConfig};

    let (net, bank, ids) = fms_network(FmsVariant::Original);
    let bank = Arc::new(bank);
    let artifact = CompiledNetwork::compile(net, &CompileConfig::new(fms_wcet(&ids), 4))
        .expect("FMS compiles");
    let stimuli = fppn_core::Stimuli::new();
    let config = SimConfig {
        frames: 2,
        ..SimConfig::default()
    };
    let run = Arc::new(
        artifact
            .simulate(&bank, &stimuli, &config)
            .expect("FMS run"),
    );

    let cache = RunCache::new(4);
    cache.insert(
        run_key(&artifact, &stimuli, &config),
        Arc::clone(&bank),
        Arc::clone(&run),
    );

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..10 {
        let key = run_key(&artifact, &stimuli, &config);
        let hit = cache.lookup(key, &bank).expect("warm cache hit");
        assert!(Arc::ptr_eq(&hit, &run), "hit must share the cached run");
    }
    let delta = ALLOCATIONS.load(Ordering::Relaxed) - before;
    assert_eq!(
        delta, 0,
        "run-cache hit path allocated {delta} times; keying and lookup \
         must be hash + lookup + Arc::clone"
    );
    assert_eq!((cache.hits(), cache.misses()), (10, 0));
}
