//! Regression test for the SoA round engine's zero-alloc steady state:
//! after one warm-up pass, recomputing every round of a pinned FMS
//! workload into the reused [`fppn_sim::hotpath::SeqRounds`] scratch
//! buffers must perform **zero** heap allocations.
//!
//! The test binary installs its own counting `#[global_allocator]` (an
//! integration test is a separate crate root, so this never affects the
//! library or other tests) and therefore runs under a plain
//! `cargo test -q` — no feature flags needed. The scoped `#[allow]`
//! overrides the crate's `unsafe_code = "deny"` lint for the one
//! `GlobalAlloc` impl.

use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

struct CountingAlloc;

#[allow(unsafe_code)]
mod counting_impl {
    use super::{CountingAlloc, ALLOCATIONS, Ordering};
    use std::alloc::{GlobalAlloc, Layout, System};

    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
            System.alloc(layout)
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout)
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
            System.realloc(ptr, layout, new_size)
        }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_round_computation_allocates_nothing() {
    use fppn_apps::{fms_network, fms_wcet, FmsVariant};
    use fppn_sched::{list_schedule, Heuristic};
    use fppn_sim::hotpath::SeqRounds;
    use fppn_sim::{SimConfig, StaticTables};
    use fppn_taskgraph::derive_task_graph;

    let (net, _, ids) = fms_network(FmsVariant::Original);
    let derived = derive_task_graph(&net, &fms_wcet(&ids)).expect("derivable");
    let schedule = list_schedule(&derived.graph, 4, Heuristic::AlapEdf);
    let tables = StaticTables::build(&net, &derived, &schedule);
    let stimuli = fppn_core::Stimuli::new();
    let cfg = SimConfig {
        frames: 8,
        ..SimConfig::default()
    };
    let mut rounds =
        SeqRounds::new(&net, &stimuli, &derived, &tables, &cfg).expect("round tables");

    // Warm-up: grows every scratch buffer to its final capacity.
    let n = rounds.compute().expect("warm-up compute");
    assert!(n > 1_000, "pinned workload should be non-trivial, got {n} rounds");

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..3 {
        let again = rounds.compute().expect("steady-state compute");
        assert_eq!(again, n, "round count must be stable across recomputes");
    }
    let delta = ALLOCATIONS.load(Ordering::Relaxed) - before;
    assert_eq!(
        delta, 0,
        "steady-state round loop allocated {delta} times; the RoundScratch \
         buffers are supposed to be fully reused after warm-up"
    );
}

/// Same gate with cooperative cancellation armed: a live (never-tripping)
/// deadline token's per-boundary checks — a relaxed atomic load plus an
/// occasional `Instant::now()` — must not cost the round loop its
/// zero-alloc steady state. This is what lets `fppn-serve` put a deadline
/// on every pooled run for free.
#[test]
fn steady_state_with_armed_cancel_token_allocates_nothing() {
    use fppn_apps::{fms_network, fms_wcet, FmsVariant};
    use fppn_sched::{list_schedule, Heuristic};
    use fppn_sim::hotpath::SeqRounds;
    use fppn_sim::{CancelToken, SimConfig, StaticTables};
    use fppn_taskgraph::derive_task_graph;
    use std::time::Duration;

    let (net, _, ids) = fms_network(FmsVariant::Original);
    let derived = derive_task_graph(&net, &fms_wcet(&ids)).expect("derivable");
    let schedule = list_schedule(&derived.graph, 4, Heuristic::AlapEdf);
    let tables = StaticTables::build(&net, &derived, &schedule);
    let stimuli = fppn_core::Stimuli::new();
    let cfg = SimConfig {
        frames: 8,
        ..SimConfig::default()
    };
    // A deadline far enough out that the token never trips mid-test, so
    // every compute exercises the armed checks end to end.
    let token = CancelToken::with_deadline(Duration::from_secs(3600));
    let mut rounds =
        SeqRounds::new(&net, &stimuli, &derived, &tables, &cfg).expect("round tables");
    rounds.set_cancel(&token);

    let n = rounds.compute().expect("warm-up compute");
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..3 {
        let again = rounds.compute().expect("steady-state compute");
        assert_eq!(again, n, "round count must be stable across recomputes");
    }
    let delta = ALLOCATIONS.load(Ordering::Relaxed) - before;
    assert_eq!(
        delta, 0,
        "armed cancellation checks allocated {delta} times on the \
         steady-state round path; they must stay allocation-free"
    );
    assert!(!token.is_cancelled(), "the far deadline tripped mid-test");
}

/// Same gate with the frame memo engaged (`SimConfig::memo`): after the
/// warm-up compute has populated the memo and grown every entry buffer,
/// steady-state recomputes must replay hit frames — fingerprint, table
/// scan, record copy — without a single heap allocation. A memo that
/// allocates per hit would trade the zero-alloc steady state for its
/// speedup; this pins that it does neither.
#[test]
fn steady_state_with_frame_memo_allocates_nothing() {
    use fppn_apps::{fms_network, fms_wcet, FmsVariant};
    use fppn_sched::{list_schedule, Heuristic};
    use fppn_sim::hotpath::SeqRounds;
    use fppn_sim::{SimConfig, StaticTables};
    use fppn_taskgraph::derive_task_graph;

    let (net, _, ids) = fms_network(FmsVariant::Original);
    let derived = derive_task_graph(&net, &fms_wcet(&ids)).expect("derivable");
    let schedule = list_schedule(&derived.graph, 4, Heuristic::AlapEdf);
    let tables = StaticTables::build(&net, &derived, &schedule);
    let stimuli = fppn_core::Stimuli::new();
    let cfg = SimConfig {
        frames: 8,
        memo: true,
        ..SimConfig::default()
    };
    let mut rounds =
        SeqRounds::new(&net, &stimuli, &derived, &tables, &cfg).expect("round tables");

    // Warm-up: grows the scratch buffers *and* the memo entry buffers.
    let n = rounds.compute().expect("warm-up compute");
    let (warm_hits, warm_misses) = rounds.memo_stats();
    assert!(
        warm_hits > 0,
        "the pinned periodic workload must replay frames ({warm_hits}h/{warm_misses}m)"
    );

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..3 {
        let again = rounds.compute().expect("steady-state compute");
        assert_eq!(again, n, "round count must be stable across recomputes");
    }
    let delta = ALLOCATIONS.load(Ordering::Relaxed) - before;
    let (hits, _) = rounds.memo_stats();
    assert!(hits > warm_hits, "steady-state computes must keep hitting");
    assert_eq!(
        delta, 0,
        "memoized steady-state round loop allocated {delta} times; hit \
         replay must reuse the memo entry buffers, not the allocator"
    );
}
