//! Criterion benches, one group per paper figure: how fast the tool-chain
//! regenerates each artifact (derivation, scheduling, simulation, TA
//! translation).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use fppn_apps::{fft_network, fft_wcet, fig1_network, fig1_wcet, fms_network, fms_wcet, FmsVariant};
use fppn_core::Stimuli;
use fppn_sched::{list_schedule, Heuristic};
use fppn_sim::{simulate, OverheadModel, SimConfig};
use fppn_ta::{simulate_network, translate};
use fppn_taskgraph::{derive_task_graph, load, AsapAlap};
use fppn_time::TimeQ;

fn fig1_example(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig1_example_network");
    g.bench_function("build_and_validate", |b| {
        b.iter(|| fig1_network().0.process_count())
    });
    g.finish();
}

fn fig3_derivation(c: &mut Criterion) {
    let (net, _, _) = fig1_network();
    let wcet = fig1_wcet();
    let mut g = c.benchmark_group("fig3_task_graph");
    g.bench_function("derive", |b| b.iter(|| derive_task_graph(&net, &wcet).unwrap()));
    let derived = derive_task_graph(&net, &wcet).unwrap();
    g.bench_function("asap_alap", |b| b.iter(|| AsapAlap::compute(&derived.graph)));
    g.bench_function("load", |b| b.iter(|| load(&derived.graph)));
    g.finish();
}

fn fig4_scheduling(c: &mut Criterion) {
    let (net, _, _) = fig1_network();
    let derived = derive_task_graph(&net, &fig1_wcet()).unwrap();
    let mut g = c.benchmark_group("fig4_static_schedule");
    g.bench_function("list_schedule_2procs", |b| {
        b.iter(|| list_schedule(&derived.graph, 2, Heuristic::AlapEdf))
    });
    let schedule = list_schedule(&derived.graph, 2, Heuristic::AlapEdf);
    g.bench_function("check_feasible", |b| {
        b.iter(|| schedule.check_feasible(&derived.graph).is_ok())
    });
    g.finish();
}

fn fig5_fft(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5_fft_graph");
    g.bench_function("build_network", |b| b.iter(|| fft_network().0.process_count()));
    let (net, _, _) = fft_network();
    let wcet = fft_wcet();
    g.bench_function("derive", |b| b.iter(|| derive_task_graph(&net, &wcet).unwrap()));
    g.finish();
}

fn fig6_simulation(c: &mut Criterion) {
    let (net, bank, _) = fft_network();
    let derived = derive_task_graph(&net, &fft_wcet()).unwrap();
    let mut g = c.benchmark_group("fig6_fft_execution");
    for procs in [1usize, 2] {
        let schedule = list_schedule(&derived.graph, procs, Heuristic::AlapEdf);
        g.bench_function(format!("simulate_10_frames_{procs}procs"), |b| {
            b.iter(|| {
                simulate(
                    &net,
                    &bank,
                    &Stimuli::new(),
                    &derived,
                    &schedule,
                    &SimConfig {
                        frames: 10,
                        overhead: OverheadModel::mppa_fft(),
                        ..SimConfig::default()
                    },
                )
                .unwrap()
                .stats
                .deadline_misses
            })
        });
    }
    // The paper's tool-chain: translate + simulate the TA network.
    let schedule = list_schedule(&derived.graph, 2, Heuristic::AlapEdf);
    g.bench_function("ta_translate_and_simulate_3_frames", |b| {
        b.iter_batched(
            || translate(&net, &derived, &schedule, &Stimuli::new(), 3),
            |t| {
                simulate_network(
                    &t.network,
                    TimeQ::from_int(4) * derived.hyperperiod,
                    t.step_bound(),
                )
                .events
                .len()
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn fig7_fms(c: &mut Criterion) {
    let (net, bank, ids) = fms_network(FmsVariant::Reduced);
    let wcet = fms_wcet(&ids);
    let mut g = c.benchmark_group("fig7_fms");
    g.sample_size(10);
    g.bench_function("derive_812_jobs", |b| {
        b.iter(|| derive_task_graph(&net, &wcet).unwrap().graph.job_count())
    });
    let derived = derive_task_graph(&net, &wcet).unwrap();
    g.bench_function("load", |b| b.iter(|| load(&derived.graph)));
    g.bench_function("list_schedule_1proc", |b| {
        b.iter(|| list_schedule(&derived.graph, 1, Heuristic::AlapEdf))
    });
    let schedule = list_schedule(&derived.graph, 1, Heuristic::AlapEdf);
    g.bench_function("simulate_1_frame", |b| {
        b.iter(|| {
            simulate(
                &net,
                &bank,
                &Stimuli::new(),
                &derived,
                &schedule,
                &SimConfig {
                    frames: 1,
                    ..SimConfig::default()
                },
            )
            .unwrap()
            .stats
            .executed
        })
    });
    g.finish();
}

criterion_group!(
    figures,
    fig1_example,
    fig3_derivation,
    fig4_scheduling,
    fig5_fft,
    fig6_simulation,
    fig7_fms
);
criterion_main!(figures);
