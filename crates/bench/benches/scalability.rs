//! Scalability of the compile-time tool-chain vs hyperperiod and network
//! size — the §V-B code-generation-cost motivation, measured.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fppn_apps::{fms_network, fms_wcet, random_workload, FmsVariant, WorkloadConfig};
use fppn_sched::{list_schedule, Heuristic};
use fppn_taskgraph::derive_task_graph;

fn fms_hyperperiod_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("fms_hyperperiod");
    g.sample_size(10);
    for (label, variant) in [("H40s", FmsVariant::Original), ("H10s", FmsVariant::Reduced)] {
        let (net, _, ids) = fms_network(variant);
        let wcet = fms_wcet(&ids);
        g.bench_with_input(BenchmarkId::new("derive", label), &net, |b, net| {
            b.iter(|| derive_task_graph(net, &wcet).unwrap().graph.job_count())
        });
        let derived = derive_task_graph(&net, &wcet).unwrap();
        g.bench_with_input(
            BenchmarkId::new("schedule_2procs", label),
            &derived,
            |b, d| b.iter(|| list_schedule(&d.graph, 2, Heuristic::AlapEdf)),
        );
    }
    g.finish();
}

fn random_network_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("random_networks");
    g.sample_size(10);
    for &n in &[8usize, 16, 32] {
        let w = random_workload(&WorkloadConfig {
            periodic: n,
            sporadic: n / 4,
            seed: n as u64,
            ..WorkloadConfig::default()
        });
        g.bench_with_input(BenchmarkId::new("derive", n), &w, |b, w| {
            b.iter(|| derive_task_graph(&w.net, &w.wcet).unwrap().graph.job_count())
        });
        let derived = derive_task_graph(&w.net, &w.wcet).unwrap();
        g.bench_with_input(BenchmarkId::new("schedule_4procs", n), &derived, |b, d| {
            b.iter(|| list_schedule(&d.graph, 4, Heuristic::AlapEdf))
        });
    }
    g.finish();
}

criterion_group!(scalability, fms_hyperperiod_sweep, random_network_sweep);
criterion_main!(scalability);
