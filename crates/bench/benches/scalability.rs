//! Scalability of the compile-time tool-chain vs hyperperiod and network
//! size — the §V-B code-generation-cost motivation, measured.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fppn_apps::{
    fms_network, fms_wcet, random_workload, synthetic_fppn, synthetic_task_graph, FmsVariant,
    SyntheticFppnConfig, SyntheticGraphConfig, WorkloadConfig,
};
use fppn_sched::{list_schedule, Heuristic};
use fppn_sim::{simulate_parallel, simulate_seq, SimConfig};
use fppn_taskgraph::derive_task_graph;

fn fms_hyperperiod_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("fms_hyperperiod");
    g.sample_size(10);
    for (label, variant) in [("H40s", FmsVariant::Original), ("H10s", FmsVariant::Reduced)] {
        let (net, _, ids) = fms_network(variant);
        let wcet = fms_wcet(&ids);
        g.bench_with_input(BenchmarkId::new("derive", label), &net, |b, net| {
            b.iter(|| derive_task_graph(net, &wcet).unwrap().graph.job_count())
        });
        let derived = derive_task_graph(&net, &wcet).unwrap();
        g.bench_with_input(
            BenchmarkId::new("schedule_2procs", label),
            &derived,
            |b, d| b.iter(|| list_schedule(&d.graph, 2, Heuristic::AlapEdf)),
        );
    }
    g.finish();
}

fn random_network_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("random_networks");
    g.sample_size(10);
    for &n in &[8usize, 16, 32] {
        let w = random_workload(&WorkloadConfig {
            periodic: n,
            sporadic: n / 4,
            seed: n as u64,
            ..WorkloadConfig::default()
        });
        g.bench_with_input(BenchmarkId::new("derive", n), &w, |b, w| {
            b.iter(|| derive_task_graph(&w.net, &w.wcet).unwrap().graph.job_count())
        });
        let derived = derive_task_graph(&w.net, &w.wcet).unwrap();
        g.bench_with_input(BenchmarkId::new("schedule_4procs", n), &derived, |b, d| {
            b.iter(|| list_schedule(&d.graph, 4, Heuristic::AlapEdf))
        });
    }
    g.finish();
}

fn synthetic_graph_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("synthetic_graphs");
    g.sample_size(10);
    for &jobs in &[1_000usize, 10_000] {
        for (shape, cfg) in [
            ("pipeline", SyntheticGraphConfig::deep_pipeline(jobs, jobs as u64)),
            ("fanskew", SyntheticGraphConfig::fan_skewed(jobs, jobs as u64 + 1)),
        ] {
            let graph = synthetic_task_graph(&cfg);
            for h in Heuristic::ALL {
                let id = BenchmarkId::new(format!("{shape}_{h}"), jobs);
                g.bench_with_input(id, &graph, |b, graph| {
                    b.iter(|| list_schedule(graph, 4, h))
                });
            }
        }
    }
    g.finish();
}

fn simulation_backend_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulation_backends");
    g.sample_size(10);
    let (net, bank, ids) = fms_network(FmsVariant::Reduced);
    let derived = derive_task_graph(&net, &fms_wcet(&ids)).unwrap();
    let schedule = list_schedule(&derived.graph, 2, Heuristic::AlapEdf);
    let stimuli = fppn_core::Stimuli::new();
    for frames in [2u64, 8] {
        let cfg = SimConfig {
            frames,
            ..SimConfig::default()
        };
        g.bench_with_input(BenchmarkId::new("seq", frames), &cfg, |b, cfg| {
            b.iter(|| {
                simulate_seq(&net, &bank, &stimuli, &derived, &schedule, cfg)
                    .unwrap()
                    .records
                    .len()
            })
        });
        for workers in [2usize, 4] {
            let par = SimConfig { workers, ..cfg };
            g.bench_with_input(
                BenchmarkId::new(format!("par{workers}"), frames),
                &par,
                |b, cfg| {
                    b.iter(|| {
                        simulate_parallel(&net, &bank, &stimuli, &derived, &schedule, cfg)
                            .unwrap()
                            .records
                            .len()
                    })
                },
            );
            let sharded = SimConfig {
                parallel_behaviors: true,
                ..par
            };
            g.bench_with_input(
                BenchmarkId::new(format!("sharded{workers}"), frames),
                &sharded,
                |b, cfg| {
                    b.iter(|| {
                        simulate_parallel(&net, &bank, &stimuli, &derived, &schedule, cfg)
                            .unwrap()
                            .records
                            .len()
                    })
                },
            );
        }
    }
    g.finish();
}

/// The sharded data plane on the workload it exists for: behavior-heavy
/// synthetic FPPNs whose generated kernels dominate the simulation.
fn behavior_plane_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("behavior_plane");
    g.sample_size(10);
    let w = synthetic_fppn(&SyntheticFppnConfig {
        shape: SyntheticGraphConfig {
            jobs: 48,
            depth: 6,
            seed: 48,
            ..SyntheticGraphConfig::default()
        },
        compute_iters: (5_000, 20_000),
        ..SyntheticFppnConfig::default()
    });
    let derived = derive_task_graph(&w.net, &w.wcet).unwrap();
    let schedule = list_schedule(&derived.graph, 4, Heuristic::AlapEdf);
    let stimuli = fppn_core::Stimuli::new();
    let base = SimConfig {
        frames: 4,
        ..SimConfig::default()
    };
    g.bench_with_input(BenchmarkId::new("seq", 48), &base, |b, cfg| {
        b.iter(|| {
            simulate_seq(&w.net, &w.bank, &stimuli, &derived, &schedule, cfg)
                .unwrap()
                .records
                .len()
        })
    });
    for (label, parallel_behaviors) in [("par4_serialized", false), ("par4_sharded", true)] {
        let cfg = SimConfig {
            workers: 4,
            parallel_behaviors,
            ..base
        };
        g.bench_with_input(BenchmarkId::new(label, 48), &cfg, |b, cfg| {
            b.iter(|| {
                simulate_parallel(&w.net, &w.bank, &stimuli, &derived, &schedule, cfg)
                    .unwrap()
                    .records
                    .len()
            })
        });
    }
    let pipelined = SimConfig {
        workers: 4,
        pipeline: true,
        ..base
    };
    g.bench_with_input(BenchmarkId::new("pipeline4", 48), &pipelined, |b, cfg| {
        b.iter(|| {
            fppn_sim::simulate_pipelined(&w.net, &w.bank, &stimuli, &derived, &schedule, cfg)
                .unwrap()
                .records
                .len()
        })
    });
    g.finish();
}

criterion_group!(
    scalability,
    fms_hyperperiod_sweep,
    random_network_sweep,
    synthetic_graph_sweep,
    simulation_backend_sweep,
    behavior_plane_sweep
);
criterion_main!(scalability);
