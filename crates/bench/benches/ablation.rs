//! Ablations over the design choices called out in DESIGN.md:
//! the `SP` heuristic portfolio (which heuristics find feasible schedules,
//! and how fast) and the cost of transitive reduction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fppn_apps::{fms_network, fms_wcet, random_workload, FmsVariant, WorkloadConfig};
use fppn_sched::{list_schedule, Heuristic};
use fppn_taskgraph::{derive_task_graph, derive_task_graph_unreduced};

fn sp_heuristics(c: &mut Criterion) {
    let (net, _, ids) = fms_network(FmsVariant::Reduced);
    let derived = derive_task_graph(&net, &fms_wcet(&ids)).unwrap();
    let mut g = c.benchmark_group("sp_heuristics_fms_2procs");
    g.sample_size(10);
    for h in Heuristic::ALL {
        g.bench_with_input(BenchmarkId::from_parameter(h), &h, |b, &h| {
            b.iter(|| {
                let s = list_schedule(&derived.graph, 2, h);
                s.check_feasible(&derived.graph).is_ok()
            })
        });
    }
    g.finish();
}

fn transitive_reduction(c: &mut Criterion) {
    let w = random_workload(&WorkloadConfig {
        periodic: 12,
        sporadic: 3,
        seed: 5,
        ..WorkloadConfig::default()
    });
    let mut g = c.benchmark_group("transitive_reduction");
    g.sample_size(10);
    g.bench_function("reduced_derivation", |b| {
        b.iter(|| derive_task_graph(&w.net, &w.wcet).unwrap().graph.edge_count())
    });
    g.bench_function("unreduced_derivation", |b| {
        b.iter(|| {
            derive_task_graph_unreduced(&w.net, &w.wcet)
                .unwrap()
                .graph
                .edge_count()
        })
    });
    g.finish();
}

criterion_group!(ablation, sp_heuristics, transitive_reduction);
criterion_main!(ablation);
