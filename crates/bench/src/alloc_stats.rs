//! A counting wrapper around the system allocator.
//!
//! Register [`CountingAlloc`] as the `#[global_allocator]` and read
//! [`allocations`] / [`bytes_allocated`] deltas around the code under
//! measurement. Counters are monotonic (deallocations are not subtracted):
//! a delta of zero means *no heap traffic at all*, which is exactly the
//! claim the zero-alloc steady-state round loop makes.

// The one place in the workspace that touches `unsafe`: implementing
// `GlobalAlloc` requires it (see the crate's Cargo.toml lint note).
#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

/// Forwards to [`System`], counting every allocation and reallocation.
pub struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

/// Total heap allocations (including reallocations) since process start.
pub fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Total bytes requested from the heap since process start.
pub fn bytes_allocated() -> u64 {
    BYTES.load(Ordering::Relaxed)
}
