//! # fppn-bench — regeneration harness for every figure of the paper
//!
//! Each binary under `src/bin/` prints the rows/series of one figure or
//! reported number of the DATE'15 paper (run them with
//! `cargo run -p fppn-bench --bin <name>`); the Criterion benches under
//! `benches/` measure the tool-chain itself (derivation, scheduling,
//! simulation, analysis) plus ablations over the `SP` heuristics.
//!
//! | target | reproduces |
//! |---|---|
//! | `fig1_network` | the Fig. 1 example network |
//! | `fig3_taskgraph` | the derived task graph of Fig. 3 |
//! | `fig4_schedule` | the 2-processor static schedule of Fig. 4 |
//! | `fig5_fft_graph` | the FFT application graph of Fig. 5 |
//! | `fig6_fft_execution` | the MPPA execution experiment of Fig. 6 |
//! | `fig7_fms` | the FMS network of Fig. 7 and the §V-B statistics |
//! | `scalability` | the §V-B hyperperiod-reduction motivation |
//! | `paper_report` | every row above, in paper-vs-measured form |

// `unsafe_code` is denied (not forbidden) via Cargo.toml so the one
// `GlobalAlloc` impl in `alloc_stats` can carve out a scoped `#[allow]`.
#![warn(missing_docs)]

#[cfg(feature = "alloc-stats")]
pub mod alloc_stats;

use fppn_core::Fppn;
use fppn_sched::StaticSchedule;
use fppn_taskgraph::{AsapAlap, DerivedTaskGraph};
use fppn_time::TimeQ;

/// Formats the job table of a derived task graph (the Fig. 3 node labels:
/// `p_i[k_i] (A_i, D_i, C_i)`).
pub fn job_table(net: &Fppn, derived: &DerivedTaskGraph) -> String {
    let mut out = String::new();
    out.push_str("job              (A_i, D_i, C_i) ms   server\n");
    for id in derived.graph.job_ids() {
        let j = derived.graph.job(id);
        out.push_str(&format!(
            "{:<16} ({}, {}, {}){}\n",
            format!("{}[{}]", net.process(j.process).name(), j.k),
            j.arrival,
            j.deadline,
            j.wcet,
            if j.is_server { "   *" } else { "" }
        ));
    }
    out
}

/// Formats the edge list of a derived task graph.
pub fn edge_table(net: &Fppn, derived: &DerivedTaskGraph) -> String {
    let mut out = String::new();
    for (a, b) in derived.graph.edges() {
        let (ja, jb) = (derived.graph.job(a), derived.graph.job(b));
        out.push_str(&format!(
            "{}[{}] -> {}[{}]\n",
            net.process(ja.process).name(),
            ja.k,
            net.process(jb.process).name(),
            jb.k
        ));
    }
    out
}

/// Formats a static schedule as per-processor rows (the Fig. 4 layout).
pub fn schedule_table(net: &Fppn, derived: &DerivedTaskGraph, schedule: &StaticSchedule) -> String {
    let mut out = String::new();
    for m in 0..schedule.processors() {
        out.push_str(&format!("M{m}:"));
        for id in schedule.processor_order(m) {
            let j = derived.graph.job(id);
            let p = schedule.placement(id);
            out.push_str(&format!(
                "  {}[{}]@{}..{}",
                net.process(j.process).name(),
                j.k,
                p.start,
                p.start + j.wcet
            ));
        }
        out.push('\n');
    }
    out
}

/// One row of a paper-vs-measured comparison.
#[derive(Debug, Clone)]
pub struct ReportRow {
    /// What is being compared.
    pub quantity: String,
    /// The value the paper reports.
    pub paper: String,
    /// The value this reproduction measures.
    pub measured: String,
    /// Whether the reproduction matches (exact or within stated tolerance).
    pub matches: bool,
}

/// Renders report rows as an aligned table.
pub fn render_report(title: &str, rows: &[ReportRow]) -> String {
    let mut out = format!("== {title} ==\n");
    let wq = rows.iter().map(|r| r.quantity.len()).max().unwrap_or(8).max(8);
    let wp = rows.iter().map(|r| r.paper.len()).max().unwrap_or(5).max(5);
    let wm = rows.iter().map(|r| r.measured.len()).max().unwrap_or(8).max(8);
    out.push_str(&format!(
        "{:<wq$}  {:<wp$}  {:<wm$}  ok\n",
        "quantity", "paper", "measured"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<wq$}  {:<wp$}  {:<wm$}  {}\n",
            r.quantity,
            r.paper,
            r.measured,
            if r.matches { "✓" } else { "✗" }
        ));
    }
    out
}

/// Convenience: total WCET work per processor of a schedule.
pub fn per_processor_work(derived: &DerivedTaskGraph, schedule: &StaticSchedule) -> Vec<TimeQ> {
    (0..schedule.processors())
        .map(|m| {
            schedule
                .processor_order(m)
                .into_iter()
                .map(|id| derived.graph.job(id).wcet)
                .sum()
        })
        .collect()
}

/// ASAP/ALAP summary line for diagnostics.
pub fn window_summary(derived: &DerivedTaskGraph) -> String {
    let times = AsapAlap::compute(&derived.graph);
    let l = fppn_taskgraph::load_with(&derived.graph, &times);
    format!(
        "load = {} ≈ {:.4} over window ({}, {}); utilization = {:.4}",
        l.load,
        l.load.to_f64(),
        l.window.0,
        l.window.1,
        derived.graph.utilization().to_f64()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use fppn_apps::{fig1_network, fig1_wcet};
    use fppn_sched::{list_schedule, Heuristic};
    use fppn_taskgraph::derive_task_graph;

    #[test]
    fn tables_render() {
        let (net, _, _) = fig1_network();
        let d = derive_task_graph(&net, &fig1_wcet()).unwrap();
        let jobs = job_table(&net, &d);
        assert!(jobs.contains("InputA[1]"));
        assert!(jobs.contains("(0, 200, 25)"));
        let edges = edge_table(&net, &d);
        assert!(edges.contains("->"));
        let s = list_schedule(&d.graph, 2, Heuristic::AlapEdf);
        let table = schedule_table(&net, &d, &s);
        assert!(table.contains("M0:") && table.contains("M1:"));
        assert_eq!(per_processor_work(&d, &s).len(), 2);
        assert!(window_summary(&d).contains("load"));
    }

    #[test]
    fn report_renders_checks() {
        let rows = vec![ReportRow {
            quantity: "jobs".into(),
            paper: "812".into(),
            measured: "812".into(),
            matches: true,
        }];
        let s = render_report("FMS", &rows);
        assert!(s.contains("✓"));
        assert!(s.contains("FMS"));
    }
}
