//! Regenerates Fig. 6: real-time execution of the FFT on an MPPA-like
//! platform — per-frame runtime overhead (41 ms first frame, 20 ms after),
//! deadline misses on a single processor, none on two.

use fppn_apps::{fft_network, fft_wcet};
use fppn_bench::{render_report, ReportRow};
use fppn_core::Stimuli;
use fppn_sched::{list_schedule, Heuristic};
use fppn_sim::{simulate, OverheadModel, SimConfig};
use fppn_taskgraph::{derive_task_graph, load};
use fppn_time::TimeQ;

fn main() {
    let (net, bank, _) = fft_network();
    let derived = derive_task_graph(&net, &fft_wcet()).expect("derivable");
    let overhead = OverheadModel::mppa_fft();
    let frames = 20;

    let l = load(&derived.graph);
    let with_overhead =
        (derived.graph.total_work() + overhead.first_frame) / derived.hyperperiod;

    let mut rows = vec![
        ReportRow {
            quantity: "jobs per frame".into(),
            paper: "14".into(),
            measured: derived.graph.job_count().to_string(),
            matches: derived.graph.job_count() == 14,
        },
        ReportRow {
            quantity: "load (no overhead)".into(),
            paper: "0.93".into(),
            measured: format!("{:.3}", l.load.to_f64()),
            matches: l.load == TimeQ::new(93, 100),
        },
        ReportRow {
            quantity: "load (with overhead job)".into(),
            paper: "≈ 1.2".into(),
            measured: format!("{:.3}", with_overhead.to_f64()),
            matches: with_overhead > TimeQ::ONE,
        },
    ];

    let mut gantt2 = None;
    for processors in [1usize, 2] {
        let schedule = list_schedule(&derived.graph, processors, Heuristic::AlapEdf);
        let run = simulate(
            &net,
            &bank,
            &Stimuli::new(),
            &derived,
            &schedule,
            &SimConfig {
                frames,
                overhead,
                ..SimConfig::default()
            },
        )
        .expect("simulate");
        let (paper, matches) = if processors == 1 {
            ("misses deadlines".to_owned(), run.stats.deadline_misses > 0)
        } else {
            ("no deadline misses".to_owned(), run.stats.deadline_misses == 0)
        };
        rows.push(ReportRow {
            quantity: format!("{processors}-processor mapping ({frames} frames)"),
            paper,
            measured: format!("{} misses", run.stats.deadline_misses),
            matches,
        });
        if processors == 2 {
            gantt2 = Some(run.gantt);
        }
    }
    print!("{}", render_report("Fig. 6 — FFT on the simulated MPPA", &rows));

    if let Some(g) = gantt2 {
        let horizon = TimeQ::from_int(2) * derived.hyperperiod;
        println!("\nGantt, first two frames (M0, M1 application; last row runtime overhead):");
        print!("{}", g.render_ascii(horizon, 76));
        println!(
            "overheads: {} ms (frame 0), {} ms (later frames)",
            overhead.first_frame, overhead.steady_frame
        );
    }
}
