//! Perf-trajectory gate: diffs two `BENCH_sim.json` files (the committed
//! baseline vs a fresh `scalability --bench-json` run) and fails on
//! regressions beyond the criterion-shim noise band.
//!
//! ```sh
//! bench_diff BASELINE.json NEW.json [--max-regress-pct 25] [--noise-floor-ms 20] \
//!            [--noise-floor-ratio 0.10] [--relative-to seq_ms]
//! ```
//!
//! A *regression* is a `(bench, metric)` pair present in both files whose
//! new value exceeds the baseline by more than the **noise band**: the
//! larger of an absolute floor and the proportional band
//! `--max-regress-pct` grants (`new > base + max(floor, base * pct/100)`).
//! The absolute floor absorbs scheduler jitter on a shared CI box, which
//! swings small measurements far more than 25%; the proportional band
//! scales with the bench so large entries are still held to the
//! percentage. Crucially the floor is *additive slack*, not a dead zone:
//! a bench that lives below the floor can still regress once its delta
//! clears the floor (the old "both sides under the floor" rule silently
//! exempted every sub-floor bench from the gate, no matter how large the
//! blowup). Benches or metrics present on only one side (a renamed sweep,
//! a new backend column, a schema bump) are informational, not errors —
//! the gate must never punish adding coverage.
//!
//! `--relative-to seq_ms` compares each metric as a **ratio to that run's
//! own reference metric** instead of absolute milliseconds: `par_ms /
//! seq_ms` new-vs-baseline. Host speed cancels out, so a baseline
//! committed from one machine gates runs on another — this is the mode CI
//! uses (an absolute cross-machine diff would only measure the hardware).
//! The reference metric itself is exempt; catastrophic *global* slowdowns
//! are the `scalability --budget-ms` guard's job. In this mode the
//! absolute floor is `--noise-floor-ratio` (in ratio points), since the
//! scored values are ratios; `--noise-floor-ms` still applies to pairs
//! that fall back to absolute times when a side lacks the reference
//! column.
//!
//! The parser handles exactly the shape `scalability` emits (hand-rolled
//! writer, one bench object per line) plus arbitrary whitespace; there is
//! no serde in the offline container. Schemas `fppn-bench-sim/2` through
//! `/5` all parse: `/3` added `rounds_per_sec`, `/4` adds the serve
//! control-plane records (`serve_runs_per_sec`, cache hit/miss counts and
//! the compile/lookup/run timings), `/5` adds `memo_ms` — the memoized
//! sequential run, gated like every other `_ms` column so a frame-memo
//! slowdown fails the diff — plus the informational `memo_hits`/
//! `memo_misses` frame-memo counters and the serve `run_cache_hits`
//! cross-run result-cache counter. Only `*_ms` metrics are **gated**;
//! everything else numeric on a bench line is reported as
//! **informational** — throughput is the inverse of the exempt `seq_ms`
//! reference and just as host-dependent, and the cache counters describe
//! cache behavior, not wall time.

use std::collections::BTreeMap;
use std::process::ExitCode;

/// Per-bench metrics: metric name (`seq_ms`, `par_ms`, …) → milliseconds.
type Metrics = BTreeMap<String, f64>;

/// One parsed bench line: the gated `*_ms` metrics plus every other
/// numeric (informational) metric — `rounds_per_sec` on schema-3 lines,
/// the serve cache/timing counters on schema-4 lines.
struct Bench {
    metrics: Metrics,
    info: Metrics,
}

/// Numeric fields that describe the bench's shape, not a measurement.
const STRUCTURAL_FIELDS: [&str; 3] = ["rounds", "workers", "runs"];

/// The additive slack below which a delta counts as measurement noise,
/// in the same unit as the scored values: the larger of the absolute
/// `floor` and the proportional band `max_regress_pct` grants on `base`.
fn noise_band(base: f64, floor: f64, max_regress_pct: f64) -> f64 {
    floor.max(base * max_regress_pct / 100.0)
}

/// Regression verdict for one `(bench, metric)` pair: the new value
/// regresses iff it exceeds the baseline by more than the noise band.
/// `base`/`new_v` are scored values — milliseconds, or ratios in
/// `--relative-to` mode with `floor` in ratio points.
fn is_regression(base: f64, new_v: f64, floor: f64, max_regress_pct: f64) -> bool {
    new_v > base + noise_band(base, floor, max_regress_pct)
}

/// Extracts the next `"key": value` string field from a JSON-ish line.
fn string_field(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\"");
    let rest = &line[line.find(&pat)? + pat.len()..];
    let rest = rest.trim_start().strip_prefix(':')?.trim_start();
    let rest = rest.strip_prefix('"')?;
    Some(rest[..rest.find('"')?].to_owned())
}

/// Extracts every informational `"key": <number>` field from a JSON-ish
/// line: numeric fields that are neither gated `*_ms` metrics nor
/// structural shape counters.
fn info_fields(line: &str) -> Metrics {
    let mut out = Metrics::new();
    let mut rest = line;
    while let Some(open) = rest.find('"') {
        let tail = &rest[open + 1..];
        let Some(close) = tail.find('"') else { break };
        let key = &tail[..close];
        rest = &tail[close + 1..];
        let after = rest.trim_start();
        let Some(after) = after.strip_prefix(':') else {
            continue;
        };
        let after = after.trim_start();
        let end = after
            .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
            .unwrap_or(after.len());
        let Ok(v) = after[..end].parse::<f64>() else {
            continue;
        };
        rest = &after[end..];
        if !key.ends_with("_ms") && !STRUCTURAL_FIELDS.contains(&key) {
            out.insert(key.to_owned(), v);
        }
    }
    out
}

/// Extracts every `"<name>_ms": <number>` field from a JSON-ish line
/// (`null` metrics are skipped — that backend was not measured).
fn ms_fields(line: &str) -> Metrics {
    let mut out = Metrics::new();
    let mut rest = line;
    while let Some(start) = rest.find("_ms\"") {
        // Walk back to the opening quote of the key.
        let head = &rest[..start];
        let Some(open) = head.rfind('"') else { break };
        let key = format!("{}_ms", &head[open + 1..]);
        let tail = rest[start + 4..].trim_start();
        rest = tail;
        let Some(tail) = tail.strip_prefix(':') else { continue };
        let tail = tail.trim_start();
        let end = tail
            .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
            .unwrap_or(tail.len());
        if let Ok(v) = tail[..end].parse::<f64>() {
            out.insert(key, v);
        }
        rest = &tail[end..];
    }
    out
}

/// Parses a `BENCH_sim.json` into bench-name → metrics.
fn parse(path: &str) -> Result<BTreeMap<String, Bench>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut benches = BTreeMap::new();
    for line in text.lines() {
        let Some(name) = string_field(line, "name") else {
            continue;
        };
        let metrics = ms_fields(line);
        let info = info_fields(line);
        // Schema-4 serve records carry only informational metrics; a line
        // with *nothing* numeric is still schema drift.
        if metrics.is_empty() && info.is_empty() {
            return Err(format!("{path}: bench {name:?} has no metrics"));
        }
        let bench = Bench { metrics, info };
        if benches.insert(name.clone(), bench).is_some() {
            return Err(format!("{path}: duplicate bench {name:?}"));
        }
    }
    if benches.is_empty() {
        return Err(format!("{path}: no benches found (schema drift?)"));
    }
    Ok(benches)
}

fn main() -> ExitCode {
    let mut paths: Vec<String> = Vec::new();
    let mut max_regress_pct = 25.0f64;
    let mut noise_floor_ms = 20.0f64;
    let mut noise_floor_ratio = 0.10f64;
    let mut relative_to: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--relative-to" {
            relative_to = Some(args.next().expect("--relative-to needs a metric name"));
            continue;
        }
        let mut grab = |name: &str| -> f64 {
            args.next()
                .and_then(|v| v.parse::<f64>().ok())
                .unwrap_or_else(|| panic!("{name} needs a numeric argument"))
        };
        match arg.as_str() {
            "--max-regress-pct" => max_regress_pct = grab("--max-regress-pct"),
            "--noise-floor-ms" => noise_floor_ms = grab("--noise-floor-ms"),
            "--noise-floor-ratio" => noise_floor_ratio = grab("--noise-floor-ratio"),
            other if other.starts_with("--") => panic!(
                "unknown flag {other}; known: --max-regress-pct PCT, --noise-floor-ms MS, \
                 --noise-floor-ratio R, --relative-to METRIC"
            ),
            path => paths.push(path.to_owned()),
        }
    }
    let [base_path, new_path] = &paths[..] else {
        eprintln!(
            "usage: bench_diff BASELINE.json NEW.json [--max-regress-pct 25] \
             [--noise-floor-ms 20] [--noise-floor-ratio 0.10] [--relative-to seq_ms]"
        );
        return ExitCode::FAILURE;
    };

    let (base, new) = match (parse(base_path), parse(new_path)) {
        (Ok(b), Ok(n)) => (b, n),
        (b, n) => {
            for e in [b.err(), n.err()].into_iter().flatten() {
                eprintln!("bench_diff: {e}");
            }
            return ExitCode::FAILURE;
        }
    };

    let mut regressions = 0usize;
    let mut compared = 0usize;
    match &relative_to {
        Some(r) => println!(
            "bench_diff: {base_path} vs {new_path} (fail on metric/{r} ratios beyond \
             max(+{max_regress_pct}%, +{noise_floor_ratio} ratio points))"
        ),
        None => println!(
            "bench_diff: {base_path} vs {new_path} \
             (fail beyond max(+{max_regress_pct}%, +{noise_floor_ms} ms))"
        ),
    }
    for (name, new_bench) in &new {
        let Some(base_bench) = base.get(name) else {
            println!("  NEW      {name} (no baseline — informational)");
            continue;
        };
        let (new_metrics, base_metrics) = (&new_bench.metrics, &base_bench.metrics);
        // Informational metrics (throughput, serve cache counters and
        // timings) are reported, never gated: they are host-dependent or
        // describe cache behavior rather than a wall-time budget.
        for (metric, &n) in &new_bench.info {
            match base_bench.info.get(metric) {
                Some(&b) => println!(
                    "  info     {name}/{metric}: {b:.1} -> {n:.1} ({:.2}x — informational, not gated)",
                    n / b.max(1e-9)
                ),
                None => println!("  NEW      {name}/{metric} (no baseline column — informational)"),
            }
        }
        for (metric, &new_ms) in new_metrics {
            let Some(&base_ms) = base_metrics.get(metric) else {
                println!("  NEW      {name}/{metric} (no baseline column)");
                continue;
            };
            // In relative mode, score the metric/reference ratio with the
            // floor in ratio points; the reference metric itself is
            // exempt (host speed is not a regression). Fall back to
            // absolute ms (and the ms floor) when a side lacks the
            // reference column.
            let (base_v, new_v, unit, floor) = match &relative_to {
                Some(r) if metric == r => {
                    println!("  ref      {name}/{metric}: {base_ms:.2} ms -> {new_ms:.2} ms");
                    continue;
                }
                Some(r) => match (base_metrics.get(r), new_metrics.get(r)) {
                    (Some(&br), Some(&nr)) if br > 0.0 && nr > 0.0 => {
                        (base_ms / br, new_ms / nr, format!("x {r}"), noise_floor_ratio)
                    }
                    _ => (base_ms, new_ms, "ms".to_owned(), noise_floor_ms),
                },
                None => (base_ms, new_ms, "ms".to_owned(), noise_floor_ms),
            };
            compared += 1;
            let delta_pct = (new_v - base_v) / base_v.max(1e-9) * 100.0;
            if is_regression(base_v, new_v, floor, max_regress_pct) {
                regressions += 1;
                println!(
                    "  REGRESS  {name}/{metric}: {base_v:.2} {unit} -> {new_v:.2} {unit} ({delta_pct:+.1}%)"
                );
            } else if delta_pct.abs() > max_regress_pct {
                println!(
                    "  noise    {name}/{metric}: {base_v:.2} {unit} -> {new_v:.2} {unit} ({delta_pct:+.1}%)"
                );
            } else {
                println!(
                    "  ok       {name}/{metric}: {base_v:.2} {unit} -> {new_v:.2} {unit} ({delta_pct:+.1}%)"
                );
            }
        }
    }
    for name in base.keys().filter(|n| !new.contains_key(*n)) {
        println!("  GONE     {name} (present only in baseline — informational)");
    }
    println!("bench_diff: {compared} metrics compared, {regressions} regressions");
    if regressions > 0 {
        eprintln!(
            "bench_diff: perf regression beyond the noise band — if intentional, \
             refresh the committed baseline with `scalability --bench-json BENCH_sim.json`"
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn string_and_ms_fields_parse_the_emitted_shape() {
        let line = r#"    {"name": "behavior-heavy/x_y", "rounds": 480, "workers": 4, "seq_ms": 63.100000, "par_ms": 68.000000, "sharded_ms": 64.200000, "pipeline_ms": null},"#;
        assert_eq!(string_field(line, "name").unwrap(), "behavior-heavy/x_y");
        let ms = ms_fields(line);
        assert_eq!(ms.get("seq_ms"), Some(&63.1));
        assert_eq!(ms.get("par_ms"), Some(&68.0));
        assert_eq!(ms.get("sharded_ms"), Some(&64.2));
        assert!(!ms.contains_key("pipeline_ms"), "null metrics are skipped");
        // Schema-2 line: no informational columns at all.
        assert!(info_fields(line).is_empty());
    }

    #[test]
    fn schema_3_lines_carry_the_throughput_column() {
        let line = r#"    {"name": "fms/frames32/procs4", "rounds": 89536, "workers": 4, "seq_ms": 80.500000, "par_ms": 120.100000, "sharded_ms": null, "pipeline_ms": null, "rounds_per_sec": 1112248.4},"#;
        let info = info_fields(line);
        assert_eq!(info.get("rounds_per_sec"), Some(&1_112_248.4));
        assert_eq!(info.len(), 1, "rounds/workers are structural, not metrics");
        // The throughput column must NOT leak into the gated ms metrics.
        let ms = ms_fields(line);
        assert_eq!(ms.len(), 2);
        assert_eq!(ms.get("seq_ms"), Some(&80.5));
    }

    #[test]
    fn schema_4_serve_lines_parse_as_informational_only() {
        let line = r#"    {"name": "serve/fms", "runs": 48, "workers": 4, "serve_runs_per_sec": 910.4, "cache_hits": 47, "cache_misses": 1, "compile_us": 5321.0, "hit_lookup_us": 2.4, "cold_run_us": 6100.2, "hit_run_us": 820.9},"#;
        // Nothing on a serve line is gated...
        assert!(ms_fields(line).is_empty());
        // ...but every measurement is reported.
        let info = info_fields(line);
        assert_eq!(info.get("serve_runs_per_sec"), Some(&910.4));
        assert_eq!(info.get("cache_hits"), Some(&47.0));
        assert_eq!(info.get("cache_misses"), Some(&1.0));
        assert_eq!(info.get("compile_us"), Some(&5321.0));
        assert_eq!(info.get("hit_lookup_us"), Some(&2.4));
        assert_eq!(info.get("cold_run_us"), Some(&6100.2));
        assert_eq!(info.get("hit_run_us"), Some(&820.9));
        assert!(!info.contains_key("runs"), "shape counters are structural");
        assert!(!info.contains_key("workers"));
    }

    #[test]
    fn schema_5_memo_columns_split_into_gated_and_informational() {
        let line = r#"    {"name": "fms/frames32/procs4", "rounds": 89536, "workers": 4, "seq_ms": 33.400000, "par_ms": 40.100000, "sharded_ms": null, "pipeline_ms": null, "memo_ms": 22.100000, "memo_hits": 30, "memo_misses": 2, "rounds_per_sec": 2680598.8},"#;
        // `memo_ms` is a wall-time column: gated like seq/par.
        let ms = ms_fields(line);
        assert_eq!(ms.get("memo_ms"), Some(&22.1));
        assert_eq!(ms.get("seq_ms"), Some(&33.4));
        // The hit/miss counters describe memo behavior, not wall time.
        let info = info_fields(line);
        assert_eq!(info.get("memo_hits"), Some(&30.0));
        assert_eq!(info.get("memo_misses"), Some(&2.0));
        // Behavior-sweep lines emit `"memo_ms": null` — skipped, like any
        // unmeasured backend column.
        let null_line = r#"    {"name": "behavior-heavy/x", "rounds": 480, "workers": 4, "seq_ms": 63.1, "par_ms": 68.0, "sharded_ms": 64.2, "pipeline_ms": 61.0, "memo_ms": null, "memo_hits": 0, "memo_misses": 0, "rounds_per_sec": 7607.0},"#;
        assert!(!ms_fields(null_line).contains_key("memo_ms"));
    }

    #[test]
    fn schema_5_serve_lines_carry_the_run_cache_counter() {
        let line = r#"    {"name": "serve/fms", "runs": 48, "workers": 4, "serve_runs_per_sec": 910.4, "cache_hits": 47, "cache_misses": 1, "run_cache_hits": 47, "compile_us": 5321.0, "hit_lookup_us": 2.4, "cold_run_us": 6100.2, "hit_run_us": 820.9},"#;
        assert!(ms_fields(line).is_empty(), "serve lines stay ungated");
        assert_eq!(info_fields(line).get("run_cache_hits"), Some(&47.0));
    }

    #[test]
    fn noise_band_is_max_of_floor_and_proportional() {
        // Small base: the absolute floor dominates.
        assert_eq!(noise_band(1.5, 20.0, 25.0), 20.0);
        // Large base: the proportional band dominates (25% of 200 ms).
        assert_eq!(noise_band(200.0, 20.0, 25.0), 50.0);
        // Ratio mode: floor in ratio points.
        assert_eq!(noise_band(0.12, 0.10, 25.0), 0.10);
    }

    #[test]
    fn sub_floor_benches_still_regress_once_the_delta_clears_the_floor() {
        // The old rule ("both sides < floor ⇒ noise") exempted this pair
        // entirely; the additive band flags it: 1.5 -> 30 ms clears the
        // 20 ms slack.
        assert!(is_regression(1.5, 30.0, 20.0, 25.0));
        // ...while genuine sub-floor jitter stays in the band.
        assert!(!is_regression(1.5, 15.0, 20.0, 25.0));
    }

    #[test]
    fn large_benches_are_held_to_the_percentage() {
        assert!(is_regression(100.0, 126.0, 20.0, 25.0));
        assert!(!is_regression(100.0, 124.0, 20.0, 25.0));
        // Exactly on the band edge is not a regression.
        assert!(!is_regression(100.0, 125.0, 20.0, 25.0));
    }

    #[test]
    fn ratio_mode_floor_absorbs_small_ratio_wobble_but_not_blowups() {
        // +67% but only +0.08 ratio points: within the 0.10 floor.
        assert!(!is_regression(0.12, 0.20, 0.10, 25.0));
        // A sharded-data-plane blowup on a tiny bench: 1.24x -> 10x seq.
        assert!(is_regression(1.24, 10.0, 0.10, 25.0));
        // Improvements never regress.
        assert!(!is_regression(1.24, 0.9, 0.10, 25.0));
    }
}
