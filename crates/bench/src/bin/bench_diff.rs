//! Perf-trajectory gate: diffs two `BENCH_sim.json` files (the committed
//! baseline vs a fresh `scalability --bench-json` run) and fails on
//! regressions beyond the criterion-shim noise band.
//!
//! ```sh
//! bench_diff BASELINE.json NEW.json [--max-regress-pct 25] [--noise-floor-ms 20] \
//!            [--relative-to seq_ms]
//! ```
//!
//! A *regression* is a `(bench, metric)` pair present in both files whose
//! new time exceeds the baseline by more than `--max-regress-pct` percent
//! — but only when at least one side is above `--noise-floor-ms`:
//! sub-floor measurements on a shared CI box swing far more than 25%
//! from scheduler jitter alone, so they are reported but never fatal.
//! Benches or metrics present on only one side (a renamed sweep, a new
//! backend column, a schema bump) are informational, not errors — the
//! gate must never punish adding coverage.
//!
//! `--relative-to seq_ms` compares each metric as a **ratio to that run's
//! own reference metric** instead of absolute milliseconds: `par_ms /
//! seq_ms` new-vs-baseline. Host speed cancels out, so a baseline
//! committed from one machine gates runs on another — this is the mode CI
//! uses (an absolute cross-machine diff would only measure the hardware).
//! The reference metric itself is exempt; catastrophic *global* slowdowns
//! are the `scalability --budget-ms` guard's job. The noise floor still
//! applies to the underlying absolute times.
//!
//! The parser handles exactly the shape `scalability` emits (hand-rolled
//! writer, one bench object per line) plus arbitrary whitespace; there is
//! no serde in the offline container.

use std::collections::BTreeMap;
use std::process::ExitCode;

/// Per-bench metrics: metric name (`seq_ms`, `par_ms`, …) → milliseconds.
type Metrics = BTreeMap<String, f64>;

/// Extracts the next `"key": value` string field from a JSON-ish line.
fn string_field(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\"");
    let rest = &line[line.find(&pat)? + pat.len()..];
    let rest = rest.trim_start().strip_prefix(':')?.trim_start();
    let rest = rest.strip_prefix('"')?;
    Some(rest[..rest.find('"')?].to_owned())
}

/// Extracts every `"<name>_ms": <number>` field from a JSON-ish line
/// (`null` metrics are skipped — that backend was not measured).
fn ms_fields(line: &str) -> Metrics {
    let mut out = Metrics::new();
    let mut rest = line;
    while let Some(start) = rest.find("_ms\"") {
        // Walk back to the opening quote of the key.
        let head = &rest[..start];
        let Some(open) = head.rfind('"') else { break };
        let key = format!("{}_ms", &head[open + 1..]);
        let tail = rest[start + 4..].trim_start();
        rest = tail;
        let Some(tail) = tail.strip_prefix(':') else { continue };
        let tail = tail.trim_start();
        let end = tail
            .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
            .unwrap_or(tail.len());
        if let Ok(v) = tail[..end].parse::<f64>() {
            out.insert(key, v);
        }
        rest = &tail[end..];
    }
    out
}

/// Parses a `BENCH_sim.json` into bench-name → metrics.
fn parse(path: &str) -> Result<BTreeMap<String, Metrics>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut benches = BTreeMap::new();
    for line in text.lines() {
        let Some(name) = string_field(line, "name") else {
            continue;
        };
        let metrics = ms_fields(line);
        if metrics.is_empty() {
            return Err(format!("{path}: bench {name:?} has no *_ms metrics"));
        }
        if benches.insert(name.clone(), metrics).is_some() {
            return Err(format!("{path}: duplicate bench {name:?}"));
        }
    }
    if benches.is_empty() {
        return Err(format!("{path}: no benches found (schema drift?)"));
    }
    Ok(benches)
}

fn main() -> ExitCode {
    let mut paths: Vec<String> = Vec::new();
    let mut max_regress_pct = 25.0f64;
    let mut noise_floor_ms = 20.0f64;
    let mut relative_to: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--relative-to" {
            relative_to = Some(args.next().expect("--relative-to needs a metric name"));
            continue;
        }
        let mut grab = |name: &str| -> f64 {
            args.next()
                .and_then(|v| v.parse::<f64>().ok())
                .unwrap_or_else(|| panic!("{name} needs a numeric argument"))
        };
        match arg.as_str() {
            "--max-regress-pct" => max_regress_pct = grab("--max-regress-pct"),
            "--noise-floor-ms" => noise_floor_ms = grab("--noise-floor-ms"),
            other if other.starts_with("--") => panic!(
                "unknown flag {other}; known: --max-regress-pct PCT, --noise-floor-ms MS, \
                 --relative-to METRIC"
            ),
            path => paths.push(path.to_owned()),
        }
    }
    let [base_path, new_path] = &paths[..] else {
        eprintln!(
            "usage: bench_diff BASELINE.json NEW.json [--max-regress-pct 25] \
             [--noise-floor-ms 20] [--relative-to seq_ms]"
        );
        return ExitCode::FAILURE;
    };

    let (base, new) = match (parse(base_path), parse(new_path)) {
        (Ok(b), Ok(n)) => (b, n),
        (b, n) => {
            for e in [b.err(), n.err()].into_iter().flatten() {
                eprintln!("bench_diff: {e}");
            }
            return ExitCode::FAILURE;
        }
    };

    let mut regressions = 0usize;
    let mut compared = 0usize;
    match &relative_to {
        Some(r) => println!(
            "bench_diff: {base_path} vs {new_path} \
             (fail > +{max_regress_pct}% on metric/{r} ratios above {noise_floor_ms} ms)"
        ),
        None => println!(
            "bench_diff: {base_path} vs {new_path} (fail > +{max_regress_pct}% above {noise_floor_ms} ms)"
        ),
    }
    for (name, new_metrics) in &new {
        let Some(base_metrics) = base.get(name) else {
            println!("  NEW      {name} (no baseline — informational)");
            continue;
        };
        for (metric, &new_ms) in new_metrics {
            let Some(&base_ms) = base_metrics.get(metric) else {
                println!("  NEW      {name}/{metric} (no baseline column)");
                continue;
            };
            // In relative mode, score the metric/reference ratio; the
            // reference metric itself is exempt (host speed is not a
            // regression). Fall back to absolute when a side lacks the
            // reference column.
            let (base_v, new_v, unit) = match &relative_to {
                Some(r) if metric == r => {
                    println!("  ref      {name}/{metric}: {base_ms:.2} ms -> {new_ms:.2} ms");
                    continue;
                }
                Some(r) => match (base_metrics.get(r), new_metrics.get(r)) {
                    (Some(&br), Some(&nr)) if br > 0.0 && nr > 0.0 => {
                        (base_ms / br, new_ms / nr, format!("x {r}"))
                    }
                    _ => (base_ms, new_ms, "ms".to_owned()),
                },
                None => (base_ms, new_ms, "ms".to_owned()),
            };
            compared += 1;
            let delta_pct = (new_v - base_v) / base_v.max(1e-9) * 100.0;
            let in_noise_band = base_ms < noise_floor_ms && new_ms < noise_floor_ms;
            if delta_pct > max_regress_pct && !in_noise_band {
                regressions += 1;
                println!(
                    "  REGRESS  {name}/{metric}: {base_v:.2} {unit} -> {new_v:.2} {unit} ({delta_pct:+.1}%)"
                );
            } else if delta_pct.abs() > max_regress_pct {
                println!(
                    "  noise    {name}/{metric}: {base_v:.2} {unit} -> {new_v:.2} {unit} ({delta_pct:+.1}%)"
                );
            } else {
                println!(
                    "  ok       {name}/{metric}: {base_v:.2} {unit} -> {new_v:.2} {unit} ({delta_pct:+.1}%)"
                );
            }
        }
    }
    for name in base.keys().filter(|n| !new.contains_key(*n)) {
        println!("  GONE     {name} (present only in baseline — informational)");
    }
    println!("bench_diff: {compared} metrics compared, {regressions} regressions");
    if regressions > 0 {
        eprintln!(
            "bench_diff: perf regression beyond the noise band — if intentional, \
             refresh the committed baseline with `scalability --bench-json BENCH_sim.json`"
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn string_and_ms_fields_parse_the_emitted_shape() {
        let line = r#"    {"name": "behavior-heavy/x_y", "rounds": 480, "workers": 4, "seq_ms": 63.100000, "par_ms": 68.000000, "sharded_ms": 64.200000, "pipeline_ms": null},"#;
        assert_eq!(string_field(line, "name").unwrap(), "behavior-heavy/x_y");
        let ms = ms_fields(line);
        assert_eq!(ms.get("seq_ms"), Some(&63.1));
        assert_eq!(ms.get("par_ms"), Some(&68.0));
        assert_eq!(ms.get("sharded_ms"), Some(&64.2));
        assert!(!ms.contains_key("pipeline_ms"), "null metrics are skipped");
    }
}
