//! Regenerates Fig. 5: the FFT application graph (14 processes) and its
//! one-to-one task graph.

use fppn_apps::{fft_network, fft_wcet};
use fppn_bench::window_summary;
use fppn_taskgraph::derive_task_graph;

fn main() {
    let (net, _, ids) = fft_network();
    println!("Fig. 5 — FFT task graph\n");
    println!("generator -> 3 stage columns x 4 nodes -> consumer:");
    for col in &ids.stages {
        let names: Vec<&str> = col.iter().map(|&p| net.process(p).name()).collect();
        println!("  {}", names.join("  "));
    }
    let derived = derive_task_graph(&net, &fft_wcet()).expect("derivable");
    println!(
        "\nall T_p = d_p = 200 ms; jobs = {}, edges = {} (= {} channels: \
         the task graph maps one-to-one to the process network)",
        derived.graph.job_count(),
        derived.graph.edge_count(),
        net.channels().len()
    );
    println!("{}", window_summary(&derived));
}
