//! Regenerates Fig. 3: the task graph derived from the Fig. 1 network
//! (`C_i = 25 ms`), including the redundant-edge removal the figure calls
//! out.

use fppn_apps::{fig1_network, fig1_wcet};
use fppn_bench::{edge_table, job_table};
use fppn_taskgraph::{derive_task_graph, derive_task_graph_unreduced};

fn main() {
    let (net, _, ids) = fig1_network();
    let derived = derive_task_graph(&net, &fig1_wcet()).expect("derivable");
    println!(
        "Fig. 3 — task graph for the Fig. 1 network (H = {} ms)\n",
        derived.hyperperiod
    );
    print!("{}", job_table(&net, &derived));
    println!("\nedges after transitive reduction ({}):", derived.graph.edge_count());
    print!("{}", edge_table(&net, &derived));
    println!(
        "\nredundant edges removed by step 5: {}",
        derived.reduced_edges
    );

    let full = derive_task_graph_unreduced(&net, &fig1_wcet()).expect("derivable");
    let i1 = full.graph.find(ids.input_a, 1).unwrap();
    let n1 = full.graph.find(ids.norm_a, 1).unwrap();
    println!(
        "the paper's example redundant edge InputA[1] -> NormA[1]: \
         present unreduced = {}, present reduced = {}",
        full.graph.has_edge(i1, n1),
        derived
            .graph
            .has_edge(
                derived.graph.find(ids.input_a, 1).unwrap(),
                derived.graph.find(ids.norm_a, 1).unwrap()
            )
    );
}
