//! One-shot paper-vs-measured report over every figure of the evaluation —
//! the machine-checkable core of `EXPERIMENTS.md`.

use fppn_apps::{fft_network, fft_wcet, fig1_network, fig1_wcet, fms_network, fms_wcet, FmsVariant};
use fppn_bench::{render_report, ReportRow};
use fppn_core::Stimuli;
use fppn_sched::{find_feasible, list_schedule, Heuristic};
use fppn_sim::{simulate, OverheadModel, SimConfig};
use fppn_taskgraph::{derive_task_graph, load, necessary_condition};
use fppn_time::TimeQ;

fn row(q: &str, paper: &str, measured: String, matches: bool) -> ReportRow {
    ReportRow {
        quantity: q.into(),
        paper: paper.into(),
        measured,
        matches,
    }
}

fn main() {
    // ---- Figs. 1/3/4 ----
    let (net, _, ids) = fig1_network();
    let d = derive_task_graph(&net, &fig1_wcet()).expect("derivable");
    let i1 = d.graph.find(ids.input_a, 1).unwrap();
    let n1 = d.graph.find(ids.norm_a, 1).unwrap();
    let feasible2 = find_feasible(&d.graph, 2, &Heuristic::ALL).is_some();
    let rows = vec![
        row("hyperperiod", "200 ms", format!("{} ms", d.hyperperiod), d.hyperperiod == TimeQ::from_ms(200)),
        row("jobs", "10", d.graph.job_count().to_string(), d.graph.job_count() == 10),
        row(
            "CoefB server",
            "2 jobs, T' = 200 ms",
            format!("{} jobs, T' = {} ms", d.graph.jobs().iter().filter(|j| j.is_server).count(), d.server(ids.coef_b).unwrap().period),
            d.server(ids.coef_b).unwrap().period == TimeQ::from_ms(200),
        ),
        row(
            "InputA[1]→NormA[1] redundant",
            "removed",
            format!("direct edge = {}", d.graph.has_edge(i1, n1)),
            !d.graph.has_edge(i1, n1) && d.graph.is_reachable(i1, n1),
        ),
        row(
            "Fig. 4 schedule",
            "feasible on 2 procs",
            format!("feasible = {feasible2}"),
            feasible2,
        ),
        row(
            "1 proc impossible",
            "(implied: 250 ms work / 200 ms)",
            format!("Prop. 3.1 rejects M=1: {}", necessary_condition(&d.graph, 1).is_err()),
            necessary_condition(&d.graph, 1).is_err(),
        ),
    ];
    print!("{}", render_report("Figs. 1/3/4 — example network", &rows));

    // ---- Figs. 5/6 ----
    let (net, bank, _) = fft_network();
    let d = derive_task_graph(&net, &fft_wcet()).expect("derivable");
    let l = load(&d.graph);
    let overhead = OverheadModel::mppa_fft();
    let ovl = (d.graph.total_work() + overhead.first_frame) / d.hyperperiod;
    let run1 = simulate(&net, &bank, &Stimuli::new(), &d, &list_schedule(&d.graph, 1, Heuristic::AlapEdf), &SimConfig { frames: 20, overhead, ..SimConfig::default() }).unwrap();
    let run2 = simulate(&net, &bank, &Stimuli::new(), &d, &list_schedule(&d.graph, 2, Heuristic::AlapEdf), &SimConfig { frames: 20, overhead, ..SimConfig::default() }).unwrap();
    let rows = vec![
        row("processes", "14", net.process_count().to_string(), net.process_count() == 14),
        row("graph = network", "one-to-one", format!("{} jobs / {} edges vs {} channels", d.graph.job_count(), d.graph.edge_count(), net.channels().len()), d.graph.edge_count() == net.channels().len()),
        row("load", "0.93", format!("{:.3}", l.load.to_f64()), l.load == TimeQ::new(93, 100)),
        row("load w/ overhead", "≈ 1.2", format!("{:.3}", ovl.to_f64()), ovl > TimeQ::ONE),
        row("overheads", "41 / 20 ms", format!("{} / {} ms (model input)", overhead.first_frame, overhead.steady_frame), true),
        row("1 proc", "deadline misses", format!("{} misses / 20 frames", run1.stats.deadline_misses), run1.stats.deadline_misses > 0),
        row("2 procs", "no misses", format!("{} misses / 20 frames", run2.stats.deadline_misses), run2.stats.deadline_misses == 0),
    ];
    print!("\n{}", render_report("Figs. 5/6 — FFT on simulated MPPA", &rows));

    // ---- Fig. 7 / §V-B ----
    let (net, bank, ids) = fms_network(FmsVariant::Reduced);
    let (net40, _, ids40) = fms_network(FmsVariant::Original);
    let d40 = derive_task_graph(&net40, &fms_wcet(&ids40)).expect("derivable");
    let d = derive_task_graph(&net, &fms_wcet(&ids)).expect("derivable");
    let l = load(&d.graph);
    let unreduced = d.graph.edge_count() + d.reduced_edges;
    let run = simulate(&net, &bank, &Stimuli::new(), &d, &list_schedule(&d.graph, 1, Heuristic::AlapEdf), &SimConfig { frames: 1, ..SimConfig::default() }).unwrap();
    let rows = vec![
        row("processes", "12", net.process_count().to_string(), net.process_count() == 12),
        row("H original", "40 s", format!("{} s", (d40.hyperperiod / TimeQ::from_secs(1)).to_f64()), d40.hyperperiod == TimeQ::from_secs(40)),
        row("H reduced", "10 s", format!("{} s", (d.hyperperiod / TimeQ::from_secs(1)).to_f64()), d.hyperperiod == TimeQ::from_secs(10)),
        row("jobs", "812", d.graph.job_count().to_string(), d.graph.job_count() == 812),
        row("edges", "1977", format!("{unreduced} unreduced / {} reduced", d.graph.edge_count()), (unreduced as i64 - 1977).abs() < 100),
        row("load", "≈ 0.23", format!("{:.4}", l.load.to_f64()), (l.load.to_f64() - 0.23).abs() < 0.01),
        row("1 proc misses", "none", run.stats.deadline_misses.to_string(), run.stats.deadline_misses == 0),
    ];
    print!("\n{}", render_report("Fig. 7 / §V-B — FMS", &rows));
}
