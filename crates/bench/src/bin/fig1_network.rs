//! Prints the Fig. 1 example network: processes, rates, channels, FP.

use fppn_apps::fig1_network;

fn main() {
    let (net, _, _) = fig1_network();
    println!("Fig. 1 — Fixed Priority Process Network example\n");
    println!("processes:");
    for pid in net.process_ids() {
        let p = net.process(pid);
        let e = p.event();
        println!(
            "  {:<9} {} m={} T={} ms d={} ms",
            p.name(),
            e.kind(),
            e.burst(),
            e.period(),
            e.deadline()
        );
    }
    println!("\nchannels:");
    for c in net.channels() {
        println!(
            "  {:<18} {} -> {}  [{}]",
            c.name(),
            net.process(c.writer()).name(),
            net.process(c.reader()).name(),
            c.kind()
        );
    }
    println!("\nfunctional priorities (writer/reader relative priority):");
    for (a, b) in net.priority_edges() {
        println!("  {} -> {}", net.process(a).name(), net.process(b).name());
    }
}
