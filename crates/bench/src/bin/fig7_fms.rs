//! Regenerates Fig. 7 and the §V-B numbers: the FMS process network, the
//! hyperperiod reduction, the 812-job task graph, its load, and the
//! deadline-miss-free single-processor execution.

use fppn_apps::{fms_network, fms_sporadics, fms_wcet, FmsVariant};
use fppn_bench::{render_report, window_summary, ReportRow};
use fppn_sched::{list_schedule, Heuristic};
use fppn_sim::{clip_stimuli, random_sporadic_trace, simulate, SimConfig};
use fppn_taskgraph::derive_task_graph;
use fppn_time::TimeQ;

fn main() {
    println!("Fig. 7 — FMS process network\n");
    let (net, bank, ids) = fms_network(FmsVariant::Reduced);
    for pid in net.process_ids() {
        let p = net.process(pid);
        let e = p.event();
        println!(
            "  {:<18} {} m={} T={} ms",
            p.name(),
            e.kind(),
            e.burst(),
            e.period()
        );
    }

    let (net40, _, ids40) = fms_network(FmsVariant::Original);
    let d40 = derive_task_graph(&net40, &fms_wcet(&ids40)).expect("derivable");
    let derived = derive_task_graph(&net, &fms_wcet(&ids)).expect("derivable");
    let unreduced = derived.graph.edge_count() + derived.reduced_edges;

    // Simulated pilot commands on all 7 sporadic configs.
    let frames = 2;
    let horizon = TimeQ::from_int(frames as i64) * derived.hyperperiod;
    let mut stimuli = fppn_core::Stimuli::new();
    for (i, sp) in fms_sporadics(&ids).into_iter().enumerate() {
        let ev = net.process(sp).event();
        stimuli.arrivals(
            sp,
            random_sporadic_trace(ev.burst(), ev.period(), horizon, 400, 7 + i as u64),
        );
    }
    let stimuli = clip_stimuli(&net, &derived, &stimuli, frames);
    let schedule = list_schedule(&derived.graph, 1, Heuristic::AlapEdf);
    let run = simulate(
        &net,
        &bank,
        &stimuli,
        &derived,
        &schedule,
        &SimConfig {
            frames,
            ..SimConfig::default()
        },
    )
    .expect("simulate");

    let l = fppn_taskgraph::load(&derived.graph);
    let rows = vec![
        ReportRow {
            quantity: "hyperperiod (original)".into(),
            paper: "40 s".into(),
            measured: format!("{} s", (d40.hyperperiod / TimeQ::from_secs(1)).to_f64()),
            matches: d40.hyperperiod == TimeQ::from_secs(40),
        },
        ReportRow {
            quantity: "hyperperiod (MagnDeclin 400 ms)".into(),
            paper: "10 s".into(),
            measured: format!("{} s", (derived.hyperperiod / TimeQ::from_secs(1)).to_f64()),
            matches: derived.hyperperiod == TimeQ::from_secs(10),
        },
        ReportRow {
            quantity: "task-graph jobs".into(),
            paper: "812".into(),
            measured: derived.graph.job_count().to_string(),
            matches: derived.graph.job_count() == 812,
        },
        ReportRow {
            quantity: "task-graph edges".into(),
            paper: "1977".into(),
            measured: format!("{unreduced} unreduced / {} reduced", derived.graph.edge_count()),
            matches: (unreduced as i64 - 1977).abs() < 100,
        },
        ReportRow {
            quantity: "load".into(),
            paper: "≈ 0.23".into(),
            measured: format!("{:.4}", l.load.to_f64()),
            matches: (l.load.to_f64() - 0.23).abs() < 0.01,
        },
        ReportRow {
            quantity: "1-processor deadline misses".into(),
            paper: "none".into(),
            measured: run.stats.deadline_misses.to_string(),
            matches: run.stats.deadline_misses == 0,
        },
    ];
    println!();
    print!("{}", render_report("§V-B — FMS results", &rows));
    println!("\n{}", window_summary(&derived));
    println!(
        "simulated {} frames with random pilot commands: {} jobs executed, {} slots skipped",
        frames, run.stats.executed, run.stats.skipped
    );
    for m in 2..=4usize {
        let s = list_schedule(&derived.graph, m, Heuristic::AlapEdf);
        println!(
            "schedule on {m} processors: makespan {} ms, feasible = {}",
            s.makespan(&derived.graph),
            s.check_feasible(&derived.graph).is_ok()
        );
    }
}
