//! Regenerates Fig. 4: a feasible 2-processor static schedule for the
//! Fig. 3 task graph.

use fppn_apps::{fig1_network, fig1_wcet};
use fppn_bench::{per_processor_work, schedule_table, window_summary};
use fppn_sched::{find_feasible, Heuristic};
use fppn_taskgraph::{derive_task_graph, necessary_condition};

fn main() {
    let (net, _, _) = fig1_network();
    let derived = derive_task_graph(&net, &fig1_wcet()).expect("derivable");
    println!("Fig. 4 — static schedule for the Fig. 3 task graph\n");
    println!("{}", window_summary(&derived));
    println!(
        "Prop. 3.1 on 1 processor: {}",
        match necessary_condition(&derived.graph, 1) {
            Ok(()) => "admitted".to_owned(),
            Err(e) => format!("rejected ({e})"),
        }
    );
    let (schedule, h) =
        find_feasible(&derived.graph, 2, &Heuristic::ALL).expect("feasible on 2 processors");
    println!("\nfeasible schedule on 2 processors (SP heuristic: {h}):");
    print!("{}", schedule_table(&net, &derived, &schedule));
    println!(
        "\nmakespan = {} ms of H = {} ms; per-processor work = {:?} ms",
        schedule.makespan(&derived.graph),
        derived.hyperperiod,
        per_processor_work(&derived, &schedule)
            .iter()
            .map(|t| t.to_f64())
            .collect::<Vec<_>>()
    );
}
