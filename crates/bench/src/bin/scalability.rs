//! The §V-B scalability motivation: "we encountered a too high code
//! generation overhead due to a long hyperperiod (40 s) (an online policy
//! subroutine handling a few thousands jobs explicitly)". This harness
//! sweeps the MagnDeclin period and random multirate networks, measures the
//! event-driven scheduler against the retained naive reference on the FMS
//! graph, and pushes synthetic layered DAGs to 100k jobs across every
//! heuristic.
//!
//! Flags (all optional):
//!
//! * `--synthetic-jobs N` — cap the synthetic sweep at `N` jobs
//!   (default 100000; CI smoke passes a small budget),
//! * `--budget-ms MS` — wall-clock guard: exit non-zero if the whole run
//!   exceeds `MS` milliseconds (default 0 = unlimited). An accidental
//!   O(n²) regression blows straight through any sane budget.
//! * `--workers N` — worker threads for the parallel simulation sweep
//!   (default 4; `0` skips the simulation sweep entirely),
//! * `--sim-frames N` — schedule frames per simulation measurement
//!   (default 8; the ~100k-round tier scales this ×4).

use std::time::Instant;

use fppn_apps::{
    fms_network, fms_sporadics, fms_wcet, random_workload, synthetic_task_graph, FmsVariant,
    SyntheticGraphConfig, WorkloadConfig,
};
use fppn_sched::{list_schedule, list_schedule_naive, Heuristic};
use fppn_sim::{
    clip_stimuli, random_sporadic_trace, simulate_parallel, simulate_seq, SimConfig,
};
use fppn_taskgraph::derive_task_graph;
use fppn_time::TimeQ;

fn measure(label: &str, net: &fppn_core::Fppn, wcet: &fppn_taskgraph::WcetModel) {
    let t0 = Instant::now();
    let derived = derive_task_graph(net, wcet).expect("derivable");
    let t_derive = t0.elapsed();
    let t1 = Instant::now();
    let _schedule = list_schedule(&derived.graph, 2, Heuristic::AlapEdf);
    let t_sched = t1.elapsed();
    // The online policy table: one round per (processor, job), i.e. every
    // job exactly once across the per-processor orders.
    let policy_rounds = derived.graph.job_count();
    println!(
        "{label:<28} H = {:>6} ms | {:>5} jobs {:>6} edges | derive {:>8.2?} schedule {:>8.2?} | policy table {:>5} rounds",
        derived.hyperperiod.to_f64(),
        derived.graph.job_count(),
        derived.graph.edge_count(),
        t_derive,
        t_sched,
        policy_rounds
    );
}

/// The event-driven scheduler vs the retained naive oracle on the FMS
/// H = 40 s graph: prints the measured speedup and cross-checks that both
/// paths emit bit-identical schedules.
fn fms_speedup_check() {
    let (net, _, ids) = fms_network(FmsVariant::Original);
    let derived = derive_task_graph(&net, &fms_wcet(&ids)).expect("derivable");
    let t0 = Instant::now();
    let fast = list_schedule(&derived.graph, 2, Heuristic::AlapEdf);
    let t_fast = t0.elapsed();
    let t1 = Instant::now();
    let naive = list_schedule_naive(&derived.graph, 2, Heuristic::AlapEdf);
    let t_naive = t1.elapsed();
    assert_eq!(fast, naive, "event-driven and naive schedules diverged");
    println!(
        "\nFMS H=40s ({} jobs): event-driven {:.2?} vs naive {:.2?} — {:.1}x, schedules bit-identical",
        derived.graph.job_count(),
        t_fast,
        t_naive,
        t_naive.as_secs_f64() / t_fast.as_secs_f64().max(1e-9),
    );
}

/// Sequential-vs-parallel simulation wall-clock on multi-frame policy
/// tables, with a bit-identity cross-check on every run (the parallel
/// backend is only interesting if its output is *exactly* the oracle's).
fn simulation_sweep(workers: usize, frames: u64) {
    println!("\nsimulation backends (seq vs {workers} workers, bit-identity checked):");
    let (net, bank, ids) = fms_network(FmsVariant::Original);
    let derived = derive_task_graph(&net, &fms_wcet(&ids)).expect("derivable");
    // Two tiers: the base frame count and 4x (the rounds column reports
    // the actual table size; at the default --sim-frames 8 the large tier
    // is ~100k rounds).
    for (label, frames) in [("FMS H=40s", frames), ("FMS H=40s (4x frames)", frames * 4)] {
        let horizon = TimeQ::from_int(frames as i64) * derived.hyperperiod;
        let mut stimuli = fppn_core::Stimuli::new();
        for (i, sp) in fms_sporadics(&ids).into_iter().enumerate() {
            let ev = net.process(sp).event();
            stimuli.arrivals(
                sp,
                random_sporadic_trace(ev.burst(), ev.period(), horizon, 400, 7 + i as u64),
            );
        }
        let stimuli = clip_stimuli(&net, &derived, &stimuli, frames);
        for m in [2usize, 4] {
            let schedule = list_schedule(&derived.graph, m, Heuristic::AlapEdf);
            let cfg = SimConfig {
                frames,
                ..SimConfig::default()
            };
            let t0 = Instant::now();
            let seq = simulate_seq(&net, &bank, &stimuli, &derived, &schedule, &cfg)
                .expect("sequential simulation");
            let t_seq = t0.elapsed();
            let t1 = Instant::now();
            let par = simulate_parallel(
                &net,
                &bank,
                &stimuli,
                &derived,
                &schedule,
                &SimConfig {
                    workers,
                    ..cfg
                },
            )
            .expect("parallel simulation");
            let t_par = t1.elapsed();
            assert_eq!(seq.records, par.records, "backends diverged");
            assert_eq!(seq.observables, par.observables, "observables diverged");
            println!(
                "{label:<22} frames={frames:>3} procs={m} | {:>6} rounds | seq {:>9.2?} | par({workers}) {:>9.2?} | {:.2}x",
                seq.records.len(),
                t_seq,
                t_par,
                t_seq.as_secs_f64() / t_par.as_secs_f64().max(1e-9),
            );
        }
    }
}

fn synthetic_sweep(max_jobs: usize) {
    println!("\nsynthetic layered DAGs (jobs x shape x heuristic, 4 processors):");
    for &jobs in &[1_000usize, 10_000, 100_000] {
        if jobs > max_jobs {
            println!("  (skipping {jobs}-job tier: over --synthetic-jobs cap {max_jobs})");
            continue;
        }
        for (shape, cfg) in [
            ("deep-pipeline", SyntheticGraphConfig::deep_pipeline(jobs, jobs as u64)),
            ("fan-skewed", SyntheticGraphConfig::fan_skewed(jobs, jobs as u64 + 1)),
        ] {
            let t0 = Instant::now();
            let g = synthetic_task_graph(&cfg);
            let t_gen = t0.elapsed();
            for h in Heuristic::ALL {
                let t1 = Instant::now();
                let s = list_schedule(&g, 4, h);
                let t_sched = t1.elapsed();
                let busiest = s.processor_orders().iter().map(Vec::len).max().unwrap_or(0);
                println!(
                    "{:>7} jobs {:<13} {:<19} | gen {:>8.2?} | schedule {:>9.2?} | makespan {:>9} ms | busiest proc {:>6} jobs",
                    jobs,
                    shape,
                    h.to_string(),
                    t_gen,
                    t_sched,
                    s.makespan(&g).to_f64(),
                    busiest,
                );
            }
        }
    }
}

fn main() {
    let mut synthetic_jobs = 100_000usize;
    let mut budget_ms = 0u64;
    let mut workers = 4usize;
    let mut sim_frames = 8u64;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut grab = |name: &str| {
            args.next()
                .and_then(|v| v.parse::<u64>().ok())
                .unwrap_or_else(|| panic!("{name} needs a numeric argument"))
        };
        match flag.as_str() {
            "--synthetic-jobs" => synthetic_jobs = grab("--synthetic-jobs") as usize,
            "--budget-ms" => budget_ms = grab("--budget-ms"),
            "--workers" => workers = grab("--workers") as usize,
            "--sim-frames" => sim_frames = grab("--sim-frames").max(1),
            other => panic!(
                "unknown flag {other}; known: --synthetic-jobs N, --budget-ms MS, \
                 --workers N, --sim-frames N"
            ),
        }
    }
    let wall = Instant::now();

    println!("FMS hyperperiod sweep (the paper's 40 s -> 10 s reduction):");
    for (label, variant) in [
        ("FMS MagnDeclin 1600 ms", FmsVariant::Original),
        ("FMS MagnDeclin 400 ms", FmsVariant::Reduced),
    ] {
        let (net, _, ids) = fms_network(variant);
        measure(label, &net, &fms_wcet(&ids));
    }
    fms_speedup_check();

    println!("\nrandom multirate networks (periods x processes sweep):");
    for &periodic in &[5usize, 10, 20, 40] {
        for &max_period in &[400i64, 1600, 6400] {
            let cfg = WorkloadConfig {
                periodic,
                sporadic: periodic / 3,
                periods_ms: vec![100, 200, max_period / 2, max_period],
                seed: periodic as u64 * 1000 + max_period as u64,
                ..WorkloadConfig::default()
            };
            let w = random_workload(&cfg);
            let label = format!("random n={periodic} Tmax={max_period}");
            measure(&label, &w.net, &w.wcet);
        }
    }

    synthetic_sweep(synthetic_jobs);

    if workers > 0 {
        simulation_sweep(workers, sim_frames);
    }

    let elapsed = wall.elapsed();
    println!("\ntotal wall time: {elapsed:.2?}");
    if budget_ms > 0 && elapsed.as_millis() > budget_ms as u128 {
        eprintln!(
            "wall-clock budget exceeded: {elapsed:.2?} > {budget_ms} ms — \
             likely a scheduler complexity regression"
        );
        std::process::exit(1);
    }
}
