//! The §V-B scalability motivation: "we encountered a too high code
//! generation overhead due to a long hyperperiod (40 s) (an online policy
//! subroutine handling a few thousands jobs explicitly)". This harness
//! sweeps the MagnDeclin period and random multirate networks, reporting
//! derived-graph size and tool-chain wall time.

use std::time::Instant;

use fppn_apps::{fms_network, fms_wcet, random_workload, FmsVariant, WorkloadConfig};
use fppn_sched::{list_schedule, Heuristic};
use fppn_taskgraph::derive_task_graph;
use fppn_time::TimeQ;

fn measure(label: &str, net: &fppn_core::Fppn, wcet: &fppn_taskgraph::WcetModel) {
    let t0 = Instant::now();
    let derived = derive_task_graph(net, wcet).expect("derivable");
    let t_derive = t0.elapsed();
    let t1 = Instant::now();
    let schedule = list_schedule(&derived.graph, 2, Heuristic::AlapEdf);
    let t_sched = t1.elapsed();
    // The online policy table: one round per (processor, job).
    let policy_rounds: usize = (0..schedule.processors())
        .map(|m| schedule.processor_order(m).len())
        .sum();
    println!(
        "{label:<28} H = {:>6} ms | {:>5} jobs {:>6} edges | derive {:>8.2?} schedule {:>8.2?} | policy table {:>5} rounds",
        derived.hyperperiod.to_f64(),
        derived.graph.job_count(),
        derived.graph.edge_count(),
        t_derive,
        t_sched,
        policy_rounds
    );
}

fn main() {
    println!("FMS hyperperiod sweep (the paper's 40 s -> 10 s reduction):");
    for (label, variant) in [
        ("FMS MagnDeclin 1600 ms", FmsVariant::Original),
        ("FMS MagnDeclin 400 ms", FmsVariant::Reduced),
    ] {
        let (net, _, ids) = fms_network(variant);
        measure(label, &net, &fms_wcet(&ids));
    }

    println!("\nrandom multirate networks (periods x processes sweep):");
    for &periodic in &[5usize, 10, 20, 40] {
        for &max_period in &[400i64, 1600, 6400] {
            let cfg = WorkloadConfig {
                periodic,
                sporadic: periodic / 3,
                periods_ms: vec![100, 200, max_period / 2, max_period],
                seed: periodic as u64 * 1000 + max_period as u64,
                ..WorkloadConfig::default()
            };
            let w = random_workload(&cfg);
            let label = format!("random n={periodic} Tmax={max_period}");
            measure(&label, &w.net, &w.wcet);
        }
    }
    let _ = TimeQ::ZERO;
}
