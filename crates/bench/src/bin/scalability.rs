//! The §V-B scalability motivation: "we encountered a too high code
//! generation overhead due to a long hyperperiod (40 s) (an online policy
//! subroutine handling a few thousands jobs explicitly)". This harness
//! sweeps the MagnDeclin period and random multirate networks, measures the
//! event-driven scheduler against the retained naive reference on the FMS
//! graph, and pushes synthetic layered DAGs to 100k jobs across every
//! heuristic.
//!
//! Flags (all optional):
//!
//! * `--synthetic-jobs N` — cap the synthetic sweep at `N` jobs
//!   (default 100000; CI smoke passes a small budget),
//! * `--budget-ms MS` — wall-clock guard: exit non-zero if the whole run
//!   exceeds `MS` milliseconds (default 0 = unlimited). An accidental
//!   O(n²) regression blows straight through any sane budget.
//! * `--workers N` — worker threads for the parallel simulation sweeps
//!   (default 4; `0` skips the simulation sweeps entirely),
//! * `--sim-frames N` — schedule frames per simulation measurement
//!   (default 8; the ~100k-round tier scales this ×4),
//! * `--bench-reps N` — repetitions per simulation measurement; the
//!   **median** is reported (default 3 — single draws on a shared box are
//!   too noisy for the `bench_diff` regression gate),
//! * `--bench-json PATH` — where to write the machine-readable simulation
//!   measurements (default `BENCH_sim.json`; CI diffs this against the
//!   committed baseline with `bench_diff --relative-to seq_ms`).
//!
//! With `FPPN_ALLOC_STATS=1` and the `alloc-stats` feature, the bin also
//! reports heap-allocation counts for the steady-state round loop (the
//! zero-alloc claim of the SoA round engine), via a counting global
//! allocator — kept off by default so normal runs measure the real one.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

use fppn_apps::{
    fft_network, fft_wcet, fms_network, fms_sporadics, fms_wcet, random_workload,
    synthetic_fppn, synthetic_task_graph, FmsVariant, SyntheticFppnConfig,
    SyntheticGraphConfig, WorkloadConfig,
};
use fppn_sched::{list_schedule, list_schedule_naive, Heuristic};
use fppn_serve::{RunRequest, Server};
use fppn_sim::{
    clip_stimuli, simulate_parallel, simulate_pipelined, simulate_seq, tiled_sporadic_trace,
    CompileConfig, CompiledNetwork, SimConfig,
};
use fppn_taskgraph::derive_task_graph;

#[cfg(feature = "alloc-stats")]
#[global_allocator]
static ALLOC: fppn_bench::alloc_stats::CountingAlloc = fppn_bench::alloc_stats::CountingAlloc;

/// `FPPN_ALLOC_STATS=1`: count heap traffic of the steady-state round loop
/// on the FMS workload. After one warm-up compute the SoA `RoundEngine`
/// reuses its scratch buffers, so the per-iteration delta should be zero —
/// the same invariant the `alloc_zero` regression test pins.
#[cfg(feature = "alloc-stats")]
fn alloc_stats_report(frames: u64) {
    use fppn_bench::alloc_stats::{allocations, bytes_allocated};
    let (net, _, ids) = fms_network(FmsVariant::Original);
    let derived = derive_task_graph(&net, &fms_wcet(&ids)).expect("derivable");
    let schedule = list_schedule(&derived.graph, 4, Heuristic::AlapEdf);
    let tables = fppn_sim::StaticTables::build(&net, &derived, &schedule);
    let stimuli = fppn_core::Stimuli::new();
    let cfg = SimConfig {
        frames,
        ..SimConfig::default()
    };
    let mut rounds = fppn_sim::hotpath::SeqRounds::new(&net, &stimuli, &derived, &tables, &cfg)
        .expect("round tables");
    let n = rounds.compute().expect("warm-up compute");
    let (a0, b0) = (allocations(), bytes_allocated());
    let iters = 10;
    for _ in 0..iters {
        rounds.compute().expect("steady-state compute");
    }
    let (da, db) = (allocations() - a0, bytes_allocated() - b0);
    println!(
        "\nalloc stats (FMS frames={frames}, {n} rounds/iter, {iters} steady-state iters): \
         {da} allocations, {db} bytes — expected 0/0"
    );
}

#[cfg(not(feature = "alloc-stats"))]
fn alloc_stats_report(_frames: u64) {
    println!(
        "\nFPPN_ALLOC_STATS=1 set, but the counting allocator is compiled out; \
         rebuild with `--features alloc-stats` to measure heap traffic"
    );
}

/// One simulation measurement destined for `BENCH_sim.json`.
struct BenchRecord {
    name: String,
    rounds: usize,
    workers: usize,
    seq: Duration,
    par: Duration,
    sharded: Option<Duration>,
    pipeline: Option<Duration>,
    /// Sequential wall-clock with the frame memo on (`SimConfig::memo`);
    /// `None` where the sweep does not measure the memo path.
    memo: Option<Duration>,
    memo_hits: u64,
    memo_misses: u64,
}

/// One serve control-plane measurement (schema 4): repeated runs through
/// the worker pool over one cached artifact. All metrics are
/// informational in `bench_diff` — none carry the gated `_ms` suffix.
struct ServeRecord {
    name: String,
    runs: usize,
    workers: usize,
    runs_per_sec: f64,
    cache_hits: u64,
    cache_misses: u64,
    run_cache_hits: u64,
    compile: Duration,
    hit_lookup: Duration,
    cold_run: Duration,
    hit_run: Duration,
}

/// Hand-rolled JSON (no serde in the offline container): a stable shape
/// `bench_diff` parses to track the perf trajectory across commits
/// (schema `fppn-bench-sim/2` added `pipeline_ms`; `/3` added
/// `rounds_per_sec`, the sequential round-computation throughput; `/4`
/// adds the `serve` records — pool throughput, cache hit/miss counts and
/// the compile-vs-cache-hit timing split, all informational; `/5` adds
/// `memo_ms` (gated, like every `_ms` column) plus the informational
/// `memo_hits`/`memo_misses` frame-memo counters and the serve
/// `run_cache_hits` cross-run result-cache counter).
fn write_bench_json(path: &str, records: &[BenchRecord], serve: &[ServeRecord]) {
    let opt_ms = |d: Option<Duration>| {
        d.map_or("null".to_owned(), |d| format!("{:.6}", d.as_secs_f64() * 1e3))
    };
    let us = |d: Duration| d.as_secs_f64() * 1e6;
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"schema\": \"fppn-bench-sim/5\",");
    let _ = writeln!(
        out,
        "  \"host_cpus\": {},",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );
    let _ = writeln!(out, "  \"benches\": [");
    for (i, r) in records.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"name\": \"{}\", \"rounds\": {}, \"workers\": {}, \
             \"seq_ms\": {:.6}, \"par_ms\": {:.6}, \"sharded_ms\": {}, \"pipeline_ms\": {}, \
             \"memo_ms\": {}, \"memo_hits\": {}, \"memo_misses\": {}, \
             \"rounds_per_sec\": {:.1}}}",
            r.name,
            r.rounds,
            r.workers,
            r.seq.as_secs_f64() * 1e3,
            r.par.as_secs_f64() * 1e3,
            opt_ms(r.sharded),
            opt_ms(r.pipeline),
            opt_ms(r.memo),
            r.memo_hits,
            r.memo_misses,
            r.rounds as f64 / r.seq.as_secs_f64().max(1e-9),
        );
        out.push_str(if i + 1 < records.len() { ",\n" } else { "\n" });
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(out, "  \"serve\": [");
    for (i, r) in serve.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"name\": \"{}\", \"runs\": {}, \"workers\": {}, \
             \"serve_runs_per_sec\": {:.1}, \"cache_hits\": {}, \"cache_misses\": {}, \
             \"run_cache_hits\": {}, \
             \"compile_us\": {:.1}, \"hit_lookup_us\": {:.1}, \"cold_run_us\": {:.1}, \
             \"hit_run_us\": {:.1}}}",
            r.name,
            r.runs,
            r.workers,
            r.runs_per_sec,
            r.cache_hits,
            r.cache_misses,
            r.run_cache_hits,
            us(r.compile),
            us(r.hit_lookup),
            us(r.cold_run),
            us(r.hit_run),
        );
        out.push_str(if i + 1 < serve.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    match std::fs::write(path, &out) {
        Ok(()) => println!(
            "\nwrote {} simulation + {} serve measurements to {path}",
            records.len(),
            serve.len()
        ),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

/// Runs `f` `reps` times and returns the last result with the **median**
/// wall time — the same outlier defense as the criterion shim, so the
/// `bench_diff` gate compares stable numbers instead of single draws.
fn median_timed<T>(reps: usize, mut f: impl FnMut() -> T) -> (T, Duration) {
    let mut times = Vec::with_capacity(reps);
    let mut last = None;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        last = Some(f());
        times.push(t0.elapsed());
    }
    times.sort_unstable();
    (last.expect("reps >= 1"), times[times.len() / 2])
}

fn measure(label: &str, net: &fppn_core::Fppn, wcet: &fppn_taskgraph::WcetModel) {
    let t0 = Instant::now();
    let derived = derive_task_graph(net, wcet).expect("derivable");
    let t_derive = t0.elapsed();
    let t1 = Instant::now();
    let _schedule = list_schedule(&derived.graph, 2, Heuristic::AlapEdf);
    let t_sched = t1.elapsed();
    // The online policy table: one round per (processor, job), i.e. every
    // job exactly once across the per-processor orders.
    let policy_rounds = derived.graph.job_count();
    println!(
        "{label:<28} H = {:>6} ms | {:>5} jobs {:>6} edges | derive {:>8.2?} schedule {:>8.2?} | policy table {:>5} rounds",
        derived.hyperperiod.to_f64(),
        derived.graph.job_count(),
        derived.graph.edge_count(),
        t_derive,
        t_sched,
        policy_rounds
    );
}

/// The event-driven scheduler vs the retained naive oracle on the FMS
/// H = 40 s graph: prints the measured speedup and cross-checks that both
/// paths emit bit-identical schedules.
fn fms_speedup_check() {
    let (net, _, ids) = fms_network(FmsVariant::Original);
    let derived = derive_task_graph(&net, &fms_wcet(&ids)).expect("derivable");
    let t0 = Instant::now();
    let fast = list_schedule(&derived.graph, 2, Heuristic::AlapEdf);
    let t_fast = t0.elapsed();
    let t1 = Instant::now();
    let naive = list_schedule_naive(&derived.graph, 2, Heuristic::AlapEdf);
    let t_naive = t1.elapsed();
    assert_eq!(fast, naive, "event-driven and naive schedules diverged");
    println!(
        "\nFMS H=40s ({} jobs): event-driven {:.2?} vs naive {:.2?} — {:.1}x, schedules bit-identical",
        derived.graph.job_count(),
        t_fast,
        t_naive,
        t_naive.as_secs_f64() / t_fast.as_secs_f64().max(1e-9),
    );
}

/// Sequential-vs-parallel simulation wall-clock on multi-frame policy
/// tables, with a bit-identity cross-check on every run (the parallel
/// backend is only interesting if its output is *exactly* the oracle's).
///
/// Where sporadic stimuli are driven, they are **hyperperiod-tiled**
/// ([`tiled_sporadic_trace`]): every frame carries the same arrival
/// pattern relative to its own base, so frames are exact time-translates
/// and the `memo_ms` column measures real replay (hits), not a
/// sweep-specific fallback.
fn simulation_sweep(workers: usize, frames: u64, reps: usize, records: &mut Vec<BenchRecord>) {
    println!(
        "\nsimulation backends (seq vs {workers} workers vs memoized seq, median of {reps}, \
         bit-identity checked):"
    );
    let (net, bank, ids) = fms_network(FmsVariant::Original);
    let derived = derive_task_graph(&net, &fms_wcet(&ids)).expect("derivable");
    // Two frame tiers (the base count and 4x — at the default
    // --sim-frames 8 the large tier is ~100k rounds), each in two
    // stimulus regimes: `fms/` is the paper's steady periodic operation
    // (the sporadic configurators idle — every hyperperiod repeats, the
    // regime the frame memo targets), `fms-sporadic/` drives the seven
    // configurators with hyperperiod-tiled traces at density 400, so the
    // arrival-gate machinery is measured at full table scale too.
    for (label, prefix, density, frames) in [
        ("FMS H=40s", "fms", 0u32, frames),
        ("FMS H=40s (4x frames)", "fms", 0, frames * 4),
        ("FMS H=40s sporadic", "fms-sporadic", 400, frames),
        ("FMS H=40s sporadic 4x", "fms-sporadic", 400, frames * 4),
    ] {
        let mut stimuli = fppn_core::Stimuli::new();
        if density > 0 {
            for (i, sp) in fms_sporadics(&ids).into_iter().enumerate() {
                let ev = net.process(sp).event();
                stimuli.arrivals(
                    sp,
                    tiled_sporadic_trace(
                        ev.burst(),
                        ev.period(),
                        derived.hyperperiod,
                        frames,
                        density,
                        7 + i as u64,
                    ),
                );
            }
        }
        let stimuli = clip_stimuli(&net, &derived, &stimuli, frames);
        for m in [2usize, 4] {
            let schedule = list_schedule(&derived.graph, m, Heuristic::AlapEdf);
            let cfg = SimConfig {
                frames,
                ..SimConfig::default()
            };
            let memo_cfg = SimConfig { memo: true, ..cfg };
            let (seq, t_seq) = median_timed(reps, || {
                simulate_seq(&net, &bank, &stimuli, &derived, &schedule, &cfg)
                    .expect("sequential simulation")
            });
            let (memo_run, t_memo) = median_timed(reps, || {
                simulate_seq(&net, &bank, &stimuli, &derived, &schedule, &memo_cfg)
                    .expect("memoized sequential simulation")
            });
            assert_eq!(seq.records, memo_run.records, "memo records diverged");
            assert_eq!(
                seq.observables, memo_run.observables,
                "memo observables diverged"
            );
            // Hit/miss accounting comes from one extra rounds-only pass
            // (the full-run path keeps its scratch private).
            let tables = fppn_sim::StaticTables::build(&net, &derived, &schedule);
            let mut rounds =
                fppn_sim::hotpath::SeqRounds::new(&net, &stimuli, &derived, &tables, &memo_cfg)
                    .expect("round tables");
            rounds.compute().expect("memo stats pass");
            let (memo_hits, memo_misses) = rounds.memo_stats();
            let (par, t_par) = median_timed(reps, || {
                simulate_parallel(
                    &net,
                    &bank,
                    &stimuli,
                    &derived,
                    &schedule,
                    &SimConfig { workers, ..cfg },
                )
                .expect("parallel simulation")
            });
            assert_eq!(seq.records, par.records, "backends diverged");
            assert_eq!(seq.observables, par.observables, "observables diverged");
            println!(
                "{label:<22} frames={frames:>3} procs={m} | {:>6} rounds | seq {:>9.2?} | par({workers}) {:>9.2?} | memo {:>9.2?} ({memo_hits}h/{memo_misses}m) | memo vs seq {:.2}x",
                seq.records.len(),
                t_seq,
                t_par,
                t_memo,
                t_seq.as_secs_f64() / t_memo.as_secs_f64().max(1e-9),
            );
            records.push(BenchRecord {
                name: format!("{prefix}/frames{frames}/procs{m}"),
                rounds: seq.records.len(),
                workers,
                seq: t_seq,
                par: t_par,
                sharded: None,
                pipeline: None,
                memo: Some(t_memo),
                memo_hits,
                memo_misses,
            });
        }
    }
}

/// The data-plane sweep: the behavior-heavy synthetic FPPN (generated
/// compute kernels) under seq, parallel-with-serialized-behaviors, the
/// barrier sharded backend, and the streaming pipeline — bit-identity
/// checked on every run. This is where "Parallelize behavior execution"
/// and "Overlap behavior execution with round computation" are measured:
/// on the FMS-style workloads above, behaviors are a few integer folds and
/// the data plane is noise; here it dominates. The sporadic entry turns on
/// the stimulus knobs so the server-slot machinery is in the hot loop too.
fn behavior_sweep(workers: usize, frames: u64, reps: usize, records: &mut Vec<BenchRecord>) {
    println!(
        "\nbehavior-heavy data plane (seq vs par vs sharded vs pipeline, {workers} workers, \
         median of {reps}, bit-identity checked):"
    );
    let shape = |jobs: usize, depth: usize| SyntheticGraphConfig {
        jobs,
        depth,
        seed: jobs as u64,
        ..SyntheticGraphConfig::default()
    };
    for (label, fppn_cfg) in [
        (
            "synthetic 48p light",
            SyntheticFppnConfig {
                shape: shape(48, 6),
                compute_iters: (500, 2_000),
                ..SyntheticFppnConfig::default()
            },
        ),
        (
            "synthetic 48p heavy",
            SyntheticFppnConfig {
                shape: shape(48, 6),
                compute_iters: (10_000, 40_000),
                ..SyntheticFppnConfig::default()
            },
        ),
        (
            "synthetic 120p heavy",
            SyntheticFppnConfig {
                shape: shape(120, 10),
                compute_iters: (10_000, 40_000),
                ..SyntheticFppnConfig::default()
            },
        ),
        (
            "synthetic 48p sporadic",
            SyntheticFppnConfig {
                shape: shape(48, 6),
                compute_iters: (5_000, 20_000),
                sporadic: 6,
                input_permille: 400,
                ..SyntheticFppnConfig::default()
            },
        ),
    ] {
        let w = synthetic_fppn(&fppn_cfg);
        let derived = derive_task_graph(&w.net, &w.wcet).expect("derivable");
        let schedule = list_schedule(&derived.graph, 4, Heuristic::AlapEdf);
        let horizon = fppn_time::TimeQ::from_int(frames as i64) * derived.hyperperiod;
        let stimuli = if fppn_cfg.sporadic > 0 {
            clip_stimuli(
                &w.net,
                &derived,
                &fppn_sim::random_stimuli(&w.net, horizon, 600, 99),
                frames,
            )
        } else {
            fppn_core::Stimuli::new()
        };
        let cfg = SimConfig {
            frames,
            ..SimConfig::default()
        };
        let (seq, t_seq) = median_timed(reps, || {
            simulate_seq(&w.net, &w.bank, &stimuli, &derived, &schedule, &cfg)
                .expect("sequential simulation")
        });
        let (par, t_par) = median_timed(reps, || {
            simulate_parallel(
                &w.net,
                &w.bank,
                &stimuli,
                &derived,
                &schedule,
                &SimConfig { workers, ..cfg },
            )
            .expect("parallel simulation, serialized behaviors")
        });
        let (sharded, t_sharded) = median_timed(reps, || {
            simulate_parallel(
                &w.net,
                &w.bank,
                &stimuli,
                &derived,
                &schedule,
                &SimConfig {
                    workers,
                    parallel_behaviors: true,
                    ..cfg
                },
            )
            .expect("parallel simulation, sharded behaviors")
        });
        let (pipeline, t_pipeline) = median_timed(reps, || {
            simulate_pipelined(
                &w.net,
                &w.bank,
                &stimuli,
                &derived,
                &schedule,
                &SimConfig {
                    workers,
                    pipeline: true,
                    ..cfg
                },
            )
            .expect("pipelined simulation")
        });
        assert_eq!(seq.records, par.records, "par records diverged");
        assert_eq!(seq.observables, par.observables, "par observables diverged");
        assert_eq!(seq.records, sharded.records, "sharded records diverged");
        assert_eq!(
            seq.observables, sharded.observables,
            "sharded observables diverged"
        );
        assert_eq!(seq.records, pipeline.records, "pipeline records diverged");
        assert_eq!(
            seq.observables, pipeline.observables,
            "pipeline observables diverged"
        );
        println!(
            "{label:<22} frames={frames:>3} | {:>6} rounds | seq {:>9.2?} | par {:>9.2?} | sharded {:>9.2?} | pipeline {:>9.2?} | pipeline vs seq {:.2}x, vs sharded {:.2}x",
            seq.records.len(),
            t_seq,
            t_par,
            t_sharded,
            t_pipeline,
            t_seq.as_secs_f64() / t_pipeline.as_secs_f64().max(1e-9),
            t_sharded.as_secs_f64() / t_pipeline.as_secs_f64().max(1e-9),
        );
        records.push(BenchRecord {
            name: format!("behavior-heavy/{}", label.replace(' ', "_")),
            rounds: seq.records.len(),
            workers,
            seq: t_seq,
            par: t_par,
            sharded: Some(t_sharded),
            pipeline: Some(t_pipeline),
            memo: None,
            memo_hits: 0,
            memo_misses: 0,
        });
    }
}

/// The compile-once/run-many measurement: repeated runs through the
/// `fppn-serve` pool over one cached artifact, against the FMS and FFT
/// applications. The compile/hit-lookup/cold-run/hit-run timing split is
/// the point — a cache hit must skip the compile phase entirely (the
/// `compile_us` vs `hit_lookup_us` delta), and a run against the cached
/// artifact must cost run-phase work only (`cold_run_us` vs `hit_run_us`).
fn serve_sweep(workers: usize, reps: usize, records: &mut Vec<ServeRecord>) {
    println!("\nserve control plane (pool of {workers}, repeated runs over one cached artifact):");
    let (fms_net, fms_bank, fms_ids) = fms_network(FmsVariant::Original);
    let (fft_net, fft_bank, _) = fft_network();
    for (label, net, bank, ccfg, frames) in [
        (
            "serve/fms",
            fms_net,
            fms_bank,
            CompileConfig::new(fms_wcet(&fms_ids), 2),
            4u64,
        ),
        ("serve/fft", fft_net, fft_bank, CompileConfig::new(fft_wcet(), 2), 8),
    ] {
        let bank = Arc::new(bank);
        // Run cache on: the pool throughput batch below submits identical
        // requests, so all but the first resolve from the cross-run result
        // cache — the `run_cache_hits` column records exactly that.
        let server = Server::with_config(&fppn_serve::ServerConfig {
            workers,
            run_cache_entries: Some(64),
            ..fppn_serve::ServerConfig::default()
        });
        server.register_tenant("bench", 1_000_000);

        // The one compile (a cache miss), then pure-lookup hits.
        let (_, t_compile) =
            median_timed(reps, || CompiledNetwork::compile(net.clone(), &ccfg).expect("compiles"));
        let (artifact, t_hit_lookup) = median_timed(reps.max(3), || {
            server.cache().get_or_compile(&net, &ccfg).expect("compiles")
        });
        let cfg = SimConfig {
            frames,
            ..SimConfig::default()
        };
        // Cold run = compile + run; hit run = run against the artifact.
        let (_, t_cold_run) = median_timed(reps, || {
            CompiledNetwork::compile(net.clone(), &ccfg)
                .expect("compiles")
                .simulate(&bank, &fppn_core::Stimuli::new(), &cfg)
                .expect("cold run")
        });
        let (_, t_hit_run) = median_timed(reps, || {
            artifact
                .simulate(&bank, &fppn_core::Stimuli::new(), &cfg)
                .expect("hit run")
        });

        // Pool throughput: queue a batch, wait for all tickets.
        let runs = 8 * reps.max(2);
        let t0 = Instant::now();
        let tickets: Vec<_> = (0..runs)
            .map(|_| {
                let artifact = server.cache().get_or_compile(&net, &ccfg).expect("cache hit");
                server
                    .submit(
                        "bench",
                        RunRequest::new(
                            artifact,
                            Arc::clone(&bank),
                            fppn_core::Stimuli::new(),
                            cfg,
                        ),
                    )
                    .expect("within budget")
            })
            .collect();
        for t in tickets {
            t.wait().expect("pool run");
        }
        let wall = t0.elapsed();
        let runs_per_sec = runs as f64 / wall.as_secs_f64().max(1e-9);
        let run_cache_hits = server.run_cache().map_or(0, |c| c.hits());
        println!(
            "{label:<22} {runs:>3} runs | {runs_per_sec:>8.1} runs/s | compile {t_compile:>9.2?} vs hit lookup {t_hit_lookup:>9.2?} | cold run {t_cold_run:>9.2?} vs hit run {t_hit_run:>9.2?} | cache {}h/{}m | run-cache {run_cache_hits}h",
            server.cache().hits(),
            server.cache().misses(),
        );
        records.push(ServeRecord {
            name: label.to_owned(),
            runs,
            workers,
            runs_per_sec,
            cache_hits: server.cache().hits(),
            cache_misses: server.cache().misses(),
            run_cache_hits,
            compile: t_compile,
            hit_lookup: t_hit_lookup,
            cold_run: t_cold_run,
            hit_run: t_hit_run,
        });
    }
}

fn synthetic_sweep(max_jobs: usize) {
    println!("\nsynthetic layered DAGs (jobs x shape x heuristic, 4 processors):");
    for &jobs in &[1_000usize, 10_000, 100_000] {
        if jobs > max_jobs {
            println!("  (skipping {jobs}-job tier: over --synthetic-jobs cap {max_jobs})");
            continue;
        }
        for (shape, cfg) in [
            ("deep-pipeline", SyntheticGraphConfig::deep_pipeline(jobs, jobs as u64)),
            ("fan-skewed", SyntheticGraphConfig::fan_skewed(jobs, jobs as u64 + 1)),
        ] {
            let t0 = Instant::now();
            let g = synthetic_task_graph(&cfg);
            let t_gen = t0.elapsed();
            for h in Heuristic::ALL {
                let t1 = Instant::now();
                let s = list_schedule(&g, 4, h);
                let t_sched = t1.elapsed();
                let busiest = s.processor_orders().iter().map(Vec::len).max().unwrap_or(0);
                println!(
                    "{:>7} jobs {:<13} {:<19} | gen {:>8.2?} | schedule {:>9.2?} | makespan {:>9} ms | busiest proc {:>6} jobs",
                    jobs,
                    shape,
                    h.to_string(),
                    t_gen,
                    t_sched,
                    s.makespan(&g).to_f64(),
                    busiest,
                );
            }
        }
    }
}

fn main() {
    let mut synthetic_jobs = 100_000usize;
    let mut budget_ms = 0u64;
    let mut workers = 4usize;
    let mut sim_frames = 8u64;
    let mut bench_reps = 3usize;
    let mut bench_json = "BENCH_sim.json".to_owned();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        if flag == "--bench-json" {
            bench_json = args.next().expect("--bench-json needs a path argument");
            continue;
        }
        let mut grab = |name: &str| {
            args.next()
                .and_then(|v| v.parse::<u64>().ok())
                .unwrap_or_else(|| panic!("{name} needs a numeric argument"))
        };
        match flag.as_str() {
            "--synthetic-jobs" => synthetic_jobs = grab("--synthetic-jobs") as usize,
            "--budget-ms" => budget_ms = grab("--budget-ms"),
            "--workers" => workers = grab("--workers") as usize,
            "--sim-frames" => sim_frames = grab("--sim-frames").max(1),
            "--bench-reps" => bench_reps = grab("--bench-reps").max(1) as usize,
            other => panic!(
                "unknown flag {other}; known: --synthetic-jobs N, --budget-ms MS, \
                 --workers N, --sim-frames N, --bench-reps N, --bench-json PATH"
            ),
        }
    }
    let wall = Instant::now();

    println!("FMS hyperperiod sweep (the paper's 40 s -> 10 s reduction):");
    for (label, variant) in [
        ("FMS MagnDeclin 1600 ms", FmsVariant::Original),
        ("FMS MagnDeclin 400 ms", FmsVariant::Reduced),
    ] {
        let (net, _, ids) = fms_network(variant);
        measure(label, &net, &fms_wcet(&ids));
    }
    fms_speedup_check();

    println!("\nrandom multirate networks (periods x processes sweep):");
    for &periodic in &[5usize, 10, 20, 40] {
        for &max_period in &[400i64, 1600, 6400] {
            let cfg = WorkloadConfig {
                periodic,
                sporadic: periodic / 3,
                periods_ms: vec![100, 200, max_period / 2, max_period],
                seed: periodic as u64 * 1000 + max_period as u64,
                ..WorkloadConfig::default()
            };
            let w = random_workload(&cfg);
            let label = format!("random n={periodic} Tmax={max_period}");
            measure(&label, &w.net, &w.wcet);
        }
    }

    synthetic_sweep(synthetic_jobs);

    let mut records = Vec::new();
    let mut serve_records = Vec::new();
    if workers > 0 {
        simulation_sweep(workers, sim_frames, bench_reps, &mut records);
        behavior_sweep(workers, sim_frames.min(4), bench_reps, &mut records);
        serve_sweep(workers, bench_reps, &mut serve_records);
    }
    write_bench_json(&bench_json, &records, &serve_records);

    if std::env::var("FPPN_ALLOC_STATS").is_ok_and(|v| v == "1") {
        alloc_stats_report(sim_frames);
    }

    let elapsed = wall.elapsed();
    println!("\ntotal wall time: {elapsed:.2?}");
    if budget_ms > 0 && elapsed.as_millis() > budget_ms as u128 {
        eprintln!(
            "wall-clock budget exceeded: {elapsed:.2?} > {budget_ms} ms — \
             likely a scheduler complexity regression"
        );
        std::process::exit(1);
    }
}
