//! Hyperperiod computation over collections of rational periods.

use crate::TimeQ;

/// Computes the hyperperiod (least common multiple) of a collection of
/// strictly positive rational periods, per §III-A of the paper: "the least
/// common multiple of `T_p` … computed for rational numbers".
///
/// Returns `None` for an empty collection.
///
/// # Panics
///
/// Panics if any period is not strictly positive.
///
/// # Examples
///
/// ```
/// use fppn_time::{hyperperiod, TimeQ};
///
/// // The Fig. 1 network: periods 200, 100, 200, 200, 100, 200 ms
/// // (sporadic CoefB is replaced by a 200 ms server) => H = 200 ms.
/// let h = hyperperiod([200, 100, 200, 200, 100, 200].map(TimeQ::from_ms));
/// assert_eq!(h, Some(TimeQ::from_ms(200)));
/// ```
pub fn hyperperiod<I>(periods: I) -> Option<TimeQ>
where
    I: IntoIterator<Item = TimeQ>,
{
    periods.into_iter().fold(None, |acc, p| {
        assert!(p.is_positive(), "hyperperiod requires positive periods");
        Some(match acc {
            None => p,
            Some(h) => TimeQ::lcm(h, p),
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_none() {
        assert_eq!(hyperperiod(std::iter::empty()), None);
    }

    #[test]
    fn single_period() {
        assert_eq!(
            hyperperiod([TimeQ::from_ms(123)]),
            Some(TimeQ::from_ms(123))
        );
    }

    #[test]
    fn fms_hyperperiod_reduction() {
        // §V-B: original FMS periods {200, 5000, 1600, 1000} give H = 40 s;
        // reducing MagnDeclin to 400 ms gives H = 10 s.
        let original = [200, 5000, 1600, 1000].map(TimeQ::from_ms);
        assert_eq!(hyperperiod(original), Some(TimeQ::from_secs(40)));
        let reduced = [200, 5000, 400, 1000].map(TimeQ::from_ms);
        assert_eq!(hyperperiod(reduced), Some(TimeQ::from_secs(10)));
    }

    #[test]
    fn rational_periods() {
        let h = hyperperiod([TimeQ::new(3, 2), TimeQ::new(5, 4)]);
        // lcm(3/2, 5/4) = lcm(3,5)/gcd(2,4) = 15/2
        assert_eq!(h, Some(TimeQ::new(15, 2)));
    }

    #[test]
    #[should_panic(expected = "positive periods")]
    fn zero_period_panics() {
        let _ = hyperperiod([TimeQ::ZERO]);
    }
}
