//! The [`TimeQ`] exact rational number.

use std::cmp::Ordering;
use std::error::Error;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};
use std::str::FromStr;

/// An exact rational timestamp/duration, stored as a normalized `i128`
/// fraction.
///
/// `TimeQ` is used for every quantity with a time dimension in the FPPN
/// workspace: invocation timestamps, periods, deadlines, WCETs, schedule
/// start times. All arithmetic is exact; two executions of the same model
/// always produce bit-identical times.
///
/// The value is kept normalized: the denominator is strictly positive and
/// `gcd(|num|, den) == 1`. Millisecond-based constructors are provided
/// because the paper quotes all parameters in milliseconds; internally one
/// unit of `TimeQ` is *one millisecond* by convention of this workspace, but
/// nothing in the type enforces a unit.
///
/// # Examples
///
/// ```
/// use fppn_time::TimeQ;
///
/// let t = TimeQ::from_ms(100) + TimeQ::new(1, 3);
/// assert_eq!(t * TimeQ::from_int(3), TimeQ::from_int(301));
/// assert!(TimeQ::ZERO < t);
/// ```
///
/// # Panics
///
/// Arithmetic panics on division by zero and on `i128` overflow. With the
/// millisecond convention the overflow bound is ~1.7e35 milliseconds, far
/// beyond any schedulable horizon; overflow therefore indicates a logic
/// error and fail-fast is the correct behaviour for a verification tool.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimeQ {
    num: i128,
    den: i128, // invariant: den > 0, gcd(|num|, den) == 1
}

impl TimeQ {
    /// The additive identity, 0.
    pub const ZERO: TimeQ = TimeQ { num: 0, den: 1 };
    /// The multiplicative identity, 1 (one millisecond by convention).
    pub const ONE: TimeQ = TimeQ { num: 1, den: 1 };

    /// Creates a rational `num / den`, normalizing sign and common factors.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    ///
    /// # Examples
    ///
    /// ```
    /// use fppn_time::TimeQ;
    /// assert_eq!(TimeQ::new(6, -4), TimeQ::new(-3, 2));
    /// ```
    pub fn new(num: i128, den: i128) -> Self {
        assert!(den != 0, "TimeQ denominator must be non-zero");
        let sign = if den < 0 { -1 } else { 1 };
        let g = gcd_i128(num.unsigned_abs(), den.unsigned_abs());
        debug_assert!(g != 0 || num == 0);
        if num == 0 {
            return TimeQ::ZERO;
        }
        let g = g as i128;
        TimeQ {
            num: sign * (num / g),
            den: (den / g) * sign,
        }
    }

    /// Creates an integral value (whole milliseconds by convention).
    pub const fn from_int(v: i64) -> Self {
        TimeQ {
            num: v as i128,
            den: 1,
        }
    }

    /// Creates a value of `ms` milliseconds.
    pub const fn from_ms(ms: i64) -> Self {
        Self::from_int(ms)
    }

    /// Creates a value of `s` seconds (milliseconds convention: `1000 * s`).
    pub const fn from_secs(s: i64) -> Self {
        TimeQ {
            num: s as i128 * 1000,
            den: 1,
        }
    }

    /// Creates a value of `us` microseconds (milliseconds convention:
    /// `us / 1000`).
    pub fn from_micros(us: i64) -> Self {
        TimeQ::new(us as i128, 1000)
    }

    /// The numerator of the normalized fraction.
    pub const fn numer(self) -> i128 {
        self.num
    }

    /// The denominator of the normalized fraction (always positive).
    pub const fn denom(self) -> i128 {
        self.den
    }

    /// Whether the value is exactly zero.
    pub const fn is_zero(self) -> bool {
        self.num == 0
    }

    /// Whether the value is strictly positive.
    pub const fn is_positive(self) -> bool {
        self.num > 0
    }

    /// Whether the value is strictly negative.
    pub const fn is_negative(self) -> bool {
        self.num < 0
    }

    /// Whether the value is a whole number of units.
    pub const fn is_integer(self) -> bool {
        self.den == 1
    }

    /// Converts to `f64`, for display and plotting only.
    ///
    /// The result is inexact for denominators that are not powers of two;
    /// never feed it back into model arithmetic.
    pub fn to_f64(self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// The absolute value.
    pub fn abs(self) -> Self {
        TimeQ {
            num: self.num.abs(),
            den: self.den,
        }
    }

    /// The smaller of `self` and `other`.
    pub fn min(self, other: Self) -> Self {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// The larger of `self` and `other`.
    pub fn max(self, other: Self) -> Self {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// The largest integer `q` with `q <= self` (floor), as `i128`.
    ///
    /// # Examples
    ///
    /// ```
    /// use fppn_time::TimeQ;
    /// assert_eq!(TimeQ::new(7, 2).floor(), 3);
    /// assert_eq!(TimeQ::new(-7, 2).floor(), -4);
    /// ```
    pub fn floor(self) -> i128 {
        self.num.div_euclid(self.den)
    }

    /// The smallest integer `q` with `q >= self` (ceiling), as `i128`.
    pub fn ceil(self) -> i128 {
        -((-self.num).div_euclid(self.den))
    }

    /// Floor of the exact quotient `self / rhs`, i.e. how many whole `rhs`
    /// periods fit below `self`. Used for period-index arithmetic such as
    /// `⌊(k-1)/m_p⌋` and frame-relative times.
    ///
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    pub fn div_floor(self, rhs: Self) -> i128 {
        (self / rhs).floor()
    }

    /// The exact remainder of `self` modulo a positive period `rhs`, in
    /// `[0, rhs)`.
    ///
    /// # Panics
    ///
    /// Panics if `rhs` is not strictly positive.
    pub fn rem_euclid(self, rhs: Self) -> Self {
        assert!(rhs.is_positive(), "rem_euclid requires a positive modulus");
        self - rhs * TimeQ::from_int_i128(self.div_floor(rhs))
    }

    /// The greatest common divisor of two non-negative rationals:
    /// the largest rational that divides both to an integer.
    ///
    /// `gcd(a/b, c/d) = gcd(a·d, c·b) / (b·d)` (then normalized).
    pub fn gcd(a: Self, b: Self) -> Self {
        assert!(
            !a.is_negative() && !b.is_negative(),
            "rational gcd is defined for non-negative values"
        );
        if a.is_zero() {
            return b;
        }
        if b.is_zero() {
            return a;
        }
        // For normalized a = p/q, r = s/t: gcd = gcd(p, s) / lcm(q, t).
        let num = gcd_i128(a.num.unsigned_abs(), b.num.unsigned_abs()) as i128;
        let den_g = gcd_i128(a.den.unsigned_abs(), b.den.unsigned_abs()) as i128;
        let den = (a.den / den_g)
            .checked_mul(b.den)
            .expect("TimeQ gcd overflow");
        TimeQ::new(num, den)
    }

    /// The least common multiple of two positive rationals: the smallest
    /// positive rational that is an integer multiple of both. This is the
    /// hyperperiod operation of the paper (§III-A footnote 4).
    ///
    /// # Panics
    ///
    /// Panics unless both operands are strictly positive.
    ///
    /// # Examples
    ///
    /// ```
    /// use fppn_time::TimeQ;
    /// // lcm(3/2, 1/2) = 3/2; lcm(200, 700) = 1400
    /// assert_eq!(TimeQ::lcm(TimeQ::new(3, 2), TimeQ::new(1, 2)), TimeQ::new(3, 2));
    /// assert_eq!(TimeQ::lcm(TimeQ::from_ms(200), TimeQ::from_ms(700)), TimeQ::from_ms(1400));
    /// ```
    pub fn lcm(a: Self, b: Self) -> Self {
        assert!(
            a.is_positive() && b.is_positive(),
            "rational lcm is defined for positive values"
        );
        // For normalized a = p/q, b = s/t: lcm = lcm(p, s) / gcd(q, t).
        let num_g = gcd_i128(a.num.unsigned_abs(), b.num.unsigned_abs()) as i128;
        let num = (a.num / num_g)
            .checked_mul(b.num)
            .expect("TimeQ lcm overflow");
        let den = gcd_i128(a.den.unsigned_abs(), b.den.unsigned_abs()) as i128;
        TimeQ::new(num, den)
    }

    /// Builds a `TimeQ` from an `i128` count of whole units.
    pub const fn from_int_i128(v: i128) -> Self {
        TimeQ { num: v, den: 1 }
    }

    fn checked_add(self, rhs: Self) -> Option<Self> {
        // Integral fast path: den == 1 on both sides (the common case with
        // the millisecond convention) needs no gcd or renormalization.
        if self.den == 1 && rhs.den == 1 {
            return Some(TimeQ {
                num: self.num.checked_add(rhs.num)?,
                den: 1,
            });
        }
        let den_g = gcd_i128(self.den.unsigned_abs(), rhs.den.unsigned_abs()) as i128;
        let lhs_scale = rhs.den / den_g;
        let rhs_scale = self.den / den_g;
        let num = self
            .num
            .checked_mul(lhs_scale)?
            .checked_add(rhs.num.checked_mul(rhs_scale)?)?;
        let den = self.den.checked_mul(lhs_scale)?;
        Some(TimeQ::new(num, den))
    }

    fn checked_mul_q(self, rhs: Self) -> Option<Self> {
        // Integral fast path, as in `checked_add`.
        if self.den == 1 && rhs.den == 1 {
            return Some(TimeQ {
                num: self.num.checked_mul(rhs.num)?,
                den: 1,
            });
        }
        // Cross-cancel before multiplying to delay overflow.
        let g1 = gcd_i128(self.num.unsigned_abs(), rhs.den.unsigned_abs()) as i128;
        let g2 = gcd_i128(rhs.num.unsigned_abs(), self.den.unsigned_abs()) as i128;
        let (g1, g2) = (g1.max(1), g2.max(1));
        let num = (self.num / g1).checked_mul(rhs.num / g2)?;
        let den = (self.den / g2).checked_mul(rhs.den / g1)?;
        Some(TimeQ::new(num, den))
    }
}

/// Euclid's algorithm on unsigned magnitudes; `gcd(0, x) = x`.
fn gcd_i128(mut a: u128, mut b: u128) -> u128 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl Default for TimeQ {
    fn default() -> Self {
        TimeQ::ZERO
    }
}

impl PartialOrd for TimeQ {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for TimeQ {
    fn cmp(&self, other: &Self) -> Ordering {
        // Equal denominators (by normalization, the common case: integral
        // milliseconds have den == 1) reduce to one integer comparison —
        // this is the hot path of record sorting and completion maxing.
        if self.den == other.den {
            return self.num.cmp(&other.num);
        }
        // Compare a/b vs c/d as a*d vs c*b; cancel first to avoid overflow.
        let den_g = gcd_i128(self.den.unsigned_abs(), other.den.unsigned_abs()) as i128;
        let lhs = self
            .num
            .checked_mul(other.den / den_g)
            .expect("TimeQ comparison overflow");
        let rhs = other
            .num
            .checked_mul(self.den / den_g)
            .expect("TimeQ comparison overflow");
        lhs.cmp(&rhs)
    }
}

impl Add for TimeQ {
    type Output = TimeQ;
    fn add(self, rhs: Self) -> Self {
        self.checked_add(rhs).expect("TimeQ addition overflow")
    }
}

impl Sub for TimeQ {
    type Output = TimeQ;
    fn sub(self, rhs: Self) -> Self {
        self.checked_add(-rhs).expect("TimeQ subtraction overflow")
    }
}

impl Mul for TimeQ {
    type Output = TimeQ;
    fn mul(self, rhs: Self) -> Self {
        self.checked_mul_q(rhs)
            .expect("TimeQ multiplication overflow")
    }
}

impl Div for TimeQ {
    type Output = TimeQ;
    fn div(self, rhs: Self) -> Self {
        assert!(!rhs.is_zero(), "TimeQ division by zero");
        let inv = TimeQ {
            num: rhs.den * rhs.num.signum(),
            den: rhs.num.abs(),
        };
        self.checked_mul_q(inv).expect("TimeQ division overflow")
    }
}

impl Neg for TimeQ {
    type Output = TimeQ;
    fn neg(self) -> Self {
        TimeQ {
            num: -self.num,
            den: self.den,
        }
    }
}

impl AddAssign for TimeQ {
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl SubAssign for TimeQ {
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}

impl MulAssign for TimeQ {
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl DivAssign for TimeQ {
    fn div_assign(&mut self, rhs: Self) {
        *self = *self / rhs;
    }
}

impl Sum for TimeQ {
    fn sum<I: Iterator<Item = TimeQ>>(iter: I) -> Self {
        iter.fold(TimeQ::ZERO, |a, b| a + b)
    }
}

impl<'a> Sum<&'a TimeQ> for TimeQ {
    fn sum<I: Iterator<Item = &'a TimeQ>>(iter: I) -> Self {
        iter.copied().sum()
    }
}

impl From<i64> for TimeQ {
    fn from(v: i64) -> Self {
        TimeQ::from_int(v)
    }
}

impl From<i32> for TimeQ {
    fn from(v: i32) -> Self {
        TimeQ::from_int(v as i64)
    }
}

impl From<u32> for TimeQ {
    fn from(v: u32) -> Self {
        TimeQ::from_int(v as i64)
    }
}

impl fmt::Debug for TimeQ {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for TimeQ {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

/// Error returned when parsing a [`TimeQ`] from a string fails.
///
/// Accepted forms are `"123"`, `"-7"` and `"num/den"` such as `"3/2"`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTimeQError {
    input: String,
}

impl fmt::Display for ParseTimeQError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid rational time syntax: {:?}", self.input)
    }
}

impl Error for ParseTimeQError {}

impl FromStr for TimeQ {
    type Err = ParseTimeQError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ParseTimeQError {
            input: s.to_owned(),
        };
        match s.split_once('/') {
            None => s
                .trim()
                .parse::<i128>()
                .map(|n| TimeQ::new(n, 1))
                .map_err(|_| err()),
            Some((n, d)) => {
                let n: i128 = n.trim().parse().map_err(|_| err())?;
                let d: i128 = d.trim().parse().map_err(|_| err())?;
                if d == 0 {
                    Err(err())
                } else {
                    Ok(TimeQ::new(n, d))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization() {
        assert_eq!(TimeQ::new(2, 4), TimeQ::new(1, 2));
        assert_eq!(TimeQ::new(-2, -4), TimeQ::new(1, 2));
        assert_eq!(TimeQ::new(2, -4), TimeQ::new(-1, 2));
        assert_eq!(TimeQ::new(0, -5), TimeQ::ZERO);
        assert_eq!(TimeQ::new(0, 7).denom(), 1);
    }

    #[test]
    #[should_panic(expected = "denominator must be non-zero")]
    fn zero_denominator_panics() {
        let _ = TimeQ::new(1, 0);
    }

    #[test]
    fn basic_arithmetic() {
        let a = TimeQ::new(1, 2);
        let b = TimeQ::new(1, 3);
        assert_eq!(a + b, TimeQ::new(5, 6));
        assert_eq!(a - b, TimeQ::new(1, 6));
        assert_eq!(a * b, TimeQ::new(1, 6));
        assert_eq!(a / b, TimeQ::new(3, 2));
        assert_eq!(-a, TimeQ::new(-1, 2));
    }

    #[test]
    fn ordering() {
        assert!(TimeQ::new(1, 3) < TimeQ::new(1, 2));
        assert!(TimeQ::new(-1, 2) < TimeQ::ZERO);
        assert_eq!(TimeQ::new(2, 6).cmp(&TimeQ::new(1, 3)), Ordering::Equal);
        assert_eq!(TimeQ::from_ms(100).max(TimeQ::from_ms(3)), TimeQ::from_ms(100));
        assert_eq!(TimeQ::from_ms(100).min(TimeQ::from_ms(3)), TimeQ::from_ms(3));
    }

    #[test]
    fn floor_ceil() {
        assert_eq!(TimeQ::new(7, 2).floor(), 3);
        assert_eq!(TimeQ::new(7, 2).ceil(), 4);
        assert_eq!(TimeQ::new(-7, 2).floor(), -4);
        assert_eq!(TimeQ::new(-7, 2).ceil(), -3);
        assert_eq!(TimeQ::from_int(5).floor(), 5);
        assert_eq!(TimeQ::from_int(5).ceil(), 5);
    }

    #[test]
    fn div_floor_and_rem() {
        let t = TimeQ::from_ms(750);
        let p = TimeQ::from_ms(200);
        assert_eq!(t.div_floor(p), 3);
        assert_eq!(t.rem_euclid(p), TimeQ::from_ms(150));
        // Negative times (used for pre-frame sporadic windows).
        let neg = TimeQ::from_ms(-50);
        assert_eq!(neg.div_floor(p), -1);
        assert_eq!(neg.rem_euclid(p), TimeQ::from_ms(150));
    }

    #[test]
    fn gcd_lcm_rationals() {
        assert_eq!(
            TimeQ::gcd(TimeQ::new(1, 2), TimeQ::new(1, 3)),
            TimeQ::new(1, 6)
        );
        assert_eq!(
            TimeQ::lcm(TimeQ::new(1, 2), TimeQ::new(1, 3)),
            TimeQ::ONE
        );
        assert_eq!(
            TimeQ::lcm(TimeQ::from_ms(100), TimeQ::from_ms(200)),
            TimeQ::from_ms(200)
        );
        assert_eq!(
            TimeQ::lcm(TimeQ::from_ms(200), TimeQ::from_ms(700)),
            TimeQ::from_ms(1400)
        );
        assert_eq!(TimeQ::gcd(TimeQ::ZERO, TimeQ::from_ms(7)), TimeQ::from_ms(7));
    }

    #[test]
    fn parse_and_display() {
        assert_eq!("3/2".parse::<TimeQ>().unwrap(), TimeQ::new(3, 2));
        assert_eq!("-8".parse::<TimeQ>().unwrap(), TimeQ::from_int(-8));
        assert_eq!(" 6 / 4 ".parse::<TimeQ>().unwrap(), TimeQ::new(3, 2));
        assert!("1/0".parse::<TimeQ>().is_err());
        assert!("abc".parse::<TimeQ>().is_err());
        assert_eq!(TimeQ::new(3, 2).to_string(), "3/2");
        assert_eq!(TimeQ::from_int(42).to_string(), "42");
    }

    #[test]
    fn unit_constructors() {
        assert_eq!(TimeQ::from_secs(2), TimeQ::from_ms(2000));
        assert_eq!(TimeQ::from_micros(1500), TimeQ::new(3, 2));
    }

    #[test]
    fn conversions() {
        assert_eq!(TimeQ::new(1, 2).to_f64(), 0.5);
        assert_eq!(TimeQ::from(7i64), TimeQ::from_int(7));
        let s: TimeQ = [TimeQ::new(1, 2), TimeQ::new(1, 3), TimeQ::new(1, 6)]
            .iter()
            .sum();
        assert_eq!(s, TimeQ::ONE);
    }
}
