//! A tiny, dependency-free content hasher for compile-artifact keys.
//!
//! The compile-once/run-many layer keys cached [`CompiledNetwork`]
//! artifacts by a *content hash* of the network and WCET model. That hash
//! must be stable across processes and runs (unlike `std::hash`'s
//! `RandomState`), cheap, and free of external crates, so we use FNV-1a
//! over a field-tagged byte stream. It is **not** cryptographic — the
//! threat model is accidental collision between distinct models, for
//! which 64 bits of a well-mixed hash is ample.
//!
//! Every write is length- or tag-prefixed by the callers so that
//! concatenation ambiguity (`"ab" + "c"` vs `"a" + "bc"`) cannot produce
//! identical streams for structurally different inputs.
//!
//! [`CompiledNetwork`]: ../fppn_sim/compile/struct.CompiledNetwork.html

use crate::TimeQ;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental FNV-1a 64-bit hasher with typed write helpers.
///
/// # Examples
///
/// ```
/// use fppn_time::{ContentHasher, TimeQ};
///
/// let mut a = ContentHasher::new();
/// a.write_str("proc");
/// a.write_time(TimeQ::from_ms(100));
/// let mut b = ContentHasher::new();
/// b.write_str("proc");
/// b.write_time(TimeQ::from_ms(100));
/// assert_eq!(a.finish(), b.finish());
/// ```
#[derive(Debug, Clone)]
pub struct ContentHasher {
    state: u64,
}

impl Default for ContentHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl ContentHasher {
    /// Creates a hasher in the FNV-1a initial state.
    pub const fn new() -> Self {
        ContentHasher { state: FNV_OFFSET }
    }

    /// Absorbs a single byte.
    pub fn write_u8(&mut self, v: u8) {
        self.state ^= v as u64;
        self.state = self.state.wrapping_mul(FNV_PRIME);
    }

    /// Absorbs raw bytes (callers are responsible for length-prefixing).
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u8(b);
        }
    }

    /// Absorbs a `u64` in little-endian byte order.
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Absorbs a `u32` in little-endian byte order.
    pub fn write_u32(&mut self, v: u32) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Absorbs an `i128` in little-endian byte order.
    pub fn write_i128(&mut self, v: i128) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Absorbs a `usize`, widened to `u64` for cross-platform stability.
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Absorbs a boolean as one byte.
    pub fn write_bool(&mut self, v: bool) {
        self.write_u8(v as u8);
    }

    /// Absorbs a string, length-prefixed so adjacent strings can't merge.
    pub fn write_str(&mut self, s: &str) {
        self.write_usize(s.len());
        self.write_bytes(s.as_bytes());
    }

    /// Absorbs an exact rational time as its normalized numerator and
    /// denominator; equal [`TimeQ`] values always hash identically.
    pub fn write_time(&mut self, t: TimeQ) {
        self.write_i128(t.numer());
        self.write_i128(t.denom());
    }

    /// Absorbs a `u64` as a **single** FNV symbol (one xor-multiply round
    /// instead of eight byte rounds). Word-granularity streams are *not*
    /// interchangeable with byte-granularity ones — a hash built from
    /// `write_u64_word` never equals one built from `write_u64` over the
    /// same values — so a key must be produced exclusively by one family.
    /// This is the hot-loop variant: the frame-fingerprint path hashes
    /// tens of thousands of words per simulation and the 8× round
    /// reduction is measurable there.
    pub fn write_u64_word(&mut self, v: u64) {
        self.state ^= v;
        self.state = self.state.wrapping_mul(FNV_PRIME);
    }

    /// Absorbs an exact rational time as four word symbols (numerator and
    /// denominator, low/high halves) via [`Self::write_u64_word`] — the
    /// word-granularity counterpart of [`Self::write_time`], 16× fewer FNV
    /// rounds. Equal [`TimeQ`] values always hash identically (normalized
    /// representation); the same stream-family caveat applies.
    pub fn write_time_words(&mut self, t: TimeQ) {
        let (n, d) = (t.numer() as u128, t.denom() as u128);
        self.write_u64_word(n as u64);
        self.write_u64_word((n >> 64) as u64);
        self.write_u64_word(d as u64);
        self.write_u64_word((d >> 64) as u64);
    }

    /// Returns the accumulated 64-bit hash.
    pub const fn finish(&self) -> u64 {
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_hash_is_fnv_offset() {
        assert_eq!(ContentHasher::new().finish(), FNV_OFFSET);
    }

    #[test]
    fn length_prefix_disambiguates_strings() {
        let mut a = ContentHasher::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = ContentHasher::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn equal_rationals_hash_identically() {
        let mut a = ContentHasher::new();
        a.write_time(TimeQ::new(6, 4));
        let mut b = ContentHasher::new();
        b.write_time(TimeQ::new(3, 2));
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn word_writes_discriminate_and_match_value_equality() {
        // Equal times hash identically through the word family…
        let mut a = ContentHasher::new();
        a.write_time_words(TimeQ::new(6, 4));
        let mut b = ContentHasher::new();
        b.write_time_words(TimeQ::new(3, 2));
        assert_eq!(a.finish(), b.finish());
        // …distinct times do not…
        let mut c = ContentHasher::new();
        c.write_time_words(TimeQ::new(3, 1));
        assert_ne!(a.finish(), c.finish());
        // …and the word family is a distinct stream from the byte family.
        let mut w = ContentHasher::new();
        w.write_u64_word(7);
        let mut by = ContentHasher::new();
        by.write_u64(7);
        assert_ne!(w.finish(), by.finish());
    }

    #[test]
    fn single_bit_changes_propagate() {
        let mut a = ContentHasher::new();
        a.write_u64(0);
        let mut b = ContentHasher::new();
        b.write_u64(1);
        assert_ne!(a.finish(), b.finish());
    }
}
