//! Exact rational time arithmetic for real-time models.
//!
//! The DATE'15 FPPN paper allows process periods `T_p ∈ ℚ+` and computes
//! hyperperiods as least common multiples *of rational numbers* (§III-A,
//! footnote 4). Floating point would make trace-equality checks (the whole
//! point of a *deterministic* model of computation) unreliable, so every
//! timestamp, period, deadline and execution time in this workspace is an
//! exact rational [`TimeQ`].
//!
//! # Examples
//!
//! ```
//! use fppn_time::TimeQ;
//!
//! let period_a = TimeQ::from_ms(200);
//! let period_b = TimeQ::from_ms(700) / TimeQ::from_int(2); // 350 ms
//! let h = TimeQ::lcm(period_a, period_b);
//! assert_eq!(h, TimeQ::from_ms(1400));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod hash;
mod hyperperiod;
mod rational;

pub use hash::ContentHasher;
pub use hyperperiod::hyperperiod;
pub use rational::{ParseTimeQError, TimeQ};
