//! Property-based tests for exact rational time arithmetic.

use fppn_time::{hyperperiod, TimeQ};
use proptest::prelude::*;

/// A rational with bounded magnitude so products of several operands stay
/// far away from `i128` overflow.
fn timeq() -> impl Strategy<Value = TimeQ> {
    (-1_000_000i128..1_000_000, 1i128..10_000).prop_map(|(n, d)| TimeQ::new(n, d))
}

fn positive_timeq() -> impl Strategy<Value = TimeQ> {
    (1i128..1_000_000, 1i128..10_000).prop_map(|(n, d)| TimeQ::new(n, d))
}

proptest! {
    #[test]
    fn add_commutes(a in timeq(), b in timeq()) {
        prop_assert_eq!(a + b, b + a);
    }

    #[test]
    fn add_associates(a in timeq(), b in timeq(), c in timeq()) {
        prop_assert_eq!((a + b) + c, a + (b + c));
    }

    #[test]
    fn mul_distributes_over_add(a in timeq(), b in timeq(), c in timeq()) {
        prop_assert_eq!(a * (b + c), a * b + a * c);
    }

    #[test]
    fn sub_is_add_inverse(a in timeq(), b in timeq()) {
        prop_assert_eq!(a - b + b, a);
        prop_assert_eq!(a - a, TimeQ::ZERO);
    }

    #[test]
    fn div_is_mul_inverse(a in timeq(), b in positive_timeq()) {
        prop_assert_eq!(a / b * b, a);
    }

    #[test]
    fn normalized_invariant(a in timeq(), b in timeq()) {
        for v in [a + b, a - b, a * b] {
            prop_assert!(v.denom() > 0);
            // Renormalizing must be the identity.
            prop_assert_eq!(TimeQ::new(v.numer(), v.denom()), v);
        }
    }

    #[test]
    fn ordering_consistent_with_f64(a in timeq(), b in timeq()) {
        // f64 has 53 bits of mantissa, plenty for these bounded operands.
        let (fa, fb) = (a.to_f64(), b.to_f64());
        if fa < fb { prop_assert!(a < b); }
        if fa > fb { prop_assert!(a > b); }
    }

    #[test]
    fn floor_ceil_bound(a in timeq()) {
        let f = TimeQ::from_int_i128(a.floor());
        let c = TimeQ::from_int_i128(a.ceil());
        prop_assert!(f <= a && a < f + TimeQ::ONE);
        prop_assert!(c - TimeQ::ONE < a && a <= c);
    }

    #[test]
    fn rem_euclid_in_range(a in timeq(), p in positive_timeq()) {
        let r = a.rem_euclid(p);
        prop_assert!(TimeQ::ZERO <= r && r < p);
        // a = p * div_floor(a, p) + r
        let q = TimeQ::from_int_i128(a.div_floor(p));
        prop_assert_eq!(p * q + r, a);
    }

    #[test]
    fn lcm_is_common_multiple(a in positive_timeq(), b in positive_timeq()) {
        let l = TimeQ::lcm(a, b);
        prop_assert!((l / a).is_integer());
        prop_assert!((l / b).is_integer());
        // Minimality: l/2 is not a common multiple unless halves divide.
        let g = TimeQ::gcd(a, b);
        prop_assert_eq!(l * g, a * b);
    }

    #[test]
    fn gcd_divides_both(a in positive_timeq(), b in positive_timeq()) {
        let g = TimeQ::gcd(a, b);
        prop_assert!((a / g).is_integer());
        prop_assert!((b / g).is_integer());
    }

    #[test]
    fn hyperperiod_is_multiple_of_all(periods in prop::collection::vec(positive_timeq(), 1..6)) {
        let h = hyperperiod(periods.iter().copied()).unwrap();
        for p in &periods {
            prop_assert!((h / *p).is_integer());
        }
    }

    #[test]
    fn parse_roundtrip(a in timeq()) {
        let s = a.to_string();
        prop_assert_eq!(s.parse::<TimeQ>().unwrap(), a);
    }
}
