//! Property tests on task-graph derivation over randomly generated FPPNs.

use fppn_core::{ChannelKind, EventSpec, Fppn, FppnBuilder, ProcessSpec};
use fppn_taskgraph::{
    derive_task_graph, load, necessary_condition, AsapAlap, WcetModel,
};
use fppn_time::TimeQ;
use proptest::prelude::*;

/// Strategy: a layered network of 2–6 periodic processes with harmonic
/// periods and 0–2 sporadic configurators.
fn network_strategy() -> impl Strategy<Value = Fppn> {
    (
        2usize..=6,
        prop::collection::vec(0usize..4, 2..=6), // period choices
        prop::collection::vec(any::<bool>(), 0..=15), // channel coin flips
        0usize..=2,
        prop::collection::vec((0usize..6, 1u32..=3, 1i64..=3), 0..=2),
    )
        .prop_map(|(n, period_idx, coins, n_sporadic, sporadic_params)| {
            let periods = [100i64, 200, 400, 800];
            let ms = TimeQ::from_ms;
            let mut b = FppnBuilder::new();
            let mut pids = Vec::new();
            for i in 0..n {
                let t = periods[period_idx[i % period_idx.len()]];
                pids.push(b.process(ProcessSpec::new(
                    format!("p{i}"),
                    EventSpec::periodic(ms(t)),
                )));
            }
            let mut coin = coins.into_iter().chain(std::iter::repeat(false));
            for i in 0..n {
                for j in (i + 1)..n {
                    if coin.next().unwrap() {
                        b.channel(format!("c{i}_{j}"), pids[i], pids[j], ChannelKind::Fifo);
                        b.priority(pids[i], pids[j]);
                    }
                }
            }
            for (s, (user_sel, burst, mult)) in
                sporadic_params.into_iter().take(n_sporadic).enumerate()
            {
                let user = pids[user_sel % n];
                let user_t = periods[period_idx[(user_sel % n) % period_idx.len()]];
                let sp = b.process(ProcessSpec::new(
                    format!("s{s}"),
                    EventSpec::sporadic(burst, ms(user_t * mult))
                        .with_deadline(ms(user_t * mult + user_t)),
                ));
                b.channel(format!("cs{s}"), sp, user, ChannelKind::Blackboard);
                b.priority(sp, user);
            }
            b.build().expect("generated network is valid").0
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Structural invariants of the derived graph.
    #[test]
    fn derivation_invariants(net in network_strategy(), wcet_ms in 1i64..20) {
        let wcet = WcetModel::uniform(TimeQ::from_ms(wcet_ms));
        let d = derive_task_graph(&net, &wcet).unwrap();
        let g = &d.graph;

        // Acyclic.
        prop_assert!(g.topological_order().is_some());

        // Every edge respects arrival order and connects conflicting jobs.
        for (a, b) in g.edges() {
            let (ja, jb) = (g.job(a), g.job(b));
            prop_assert!(ja.arrival <= jb.arrival, "{ja} -> {jb}");
            let conflicting = ja.process == jb.process
                || net.related(ja.process, jb.process)
                || d.server(ja.process).map(|s| s.user) == Some(jb.process)
                || d.server(jb.process).map(|s| s.user) == Some(ja.process);
            prop_assert!(conflicting, "{ja} -> {jb} are not conflicting");
        }

        // Same-process jobs form a chain in k order.
        for pid in net.process_ids() {
            let mut jobs: Vec<_> = g.job_ids().filter(|&i| g.job(i).process == pid).collect();
            jobs.sort_by_key(|&i| g.job(i).k);
            for w in jobs.windows(2) {
                prop_assert!(g.is_reachable(w[0], w[1]));
            }
        }

        // Deadlines truncated to the hyperperiod; arrivals inside it.
        for i in g.job_ids() {
            prop_assert!(g.job(i).deadline <= d.hyperperiod);
            prop_assert!(g.job(i).arrival < d.hyperperiod);
        }

        // Server jobs precede their user's job with the same arrival.
        for (sp, server) in &d.servers {
            for i in g.job_ids().filter(|&i| g.job(i).process == *sp) {
                let arrival = g.job(i).arrival;
                if let Some(u) = g
                    .job_ids()
                    .find(|&u| g.job(u).process == server.user && g.job(u).arrival == arrival)
                {
                    prop_assert!(g.is_reachable(i, u), "server job must precede user job");
                }
            }
        }

        // Transitive reduction is idempotent.
        let mut g2 = g.clone();
        prop_assert_eq!(g2.transitive_reduction(), 0);
    }

    /// ASAP/ALAP and load consistency.
    #[test]
    fn analysis_invariants(net in network_strategy(), wcet_ms in 1i64..20) {
        let wcet = WcetModel::uniform(TimeQ::from_ms(wcet_ms));
        let d = derive_task_graph(&net, &wcet).unwrap();
        let times = AsapAlap::compute(&d.graph);
        for i in d.graph.job_ids() {
            let j = d.graph.job(i);
            prop_assert!(times.asap(i) >= j.arrival);
            prop_assert!(times.alap(i) <= j.deadline);
            // Precedence monotonicity.
            for s in d.graph.successors(i) {
                prop_assert!(times.asap(s) >= times.asap(i) + j.wcet);
                prop_assert!(times.alap(i) <= times.alap(s) - d.graph.job(s).wcet);
            }
        }
        // Load dominates plain utilization and is positive for non-empty.
        let l = load(&d.graph);
        prop_assert!(l.load >= d.graph.utilization());
        // Monotone necessary condition: admitted on M => admitted on M+1.
        for m in 1..4usize {
            if necessary_condition(&d.graph, m).is_ok() {
                prop_assert!(necessary_condition(&d.graph, m + 1).is_ok());
            }
        }
    }
}
