//! Property tests for the channel-dependency analysis: on random layered
//! networks, the computed upstream closure must equal a brute-force
//! reachability check, and direct writers must match a naive scan of the
//! channel table.

use fppn_core::{ChannelKind, EventSpec, Fppn, FppnBuilder, ProcessId, ProcessSpec};
use fppn_taskgraph::ChannelDependencyMap;
use fppn_time::TimeQ;
use proptest::prelude::*;

/// Builds a deterministic network from a compact recipe: `n` processes,
/// channels decoded from `edge_bits` over the ordered pairs `(i, j)`,
/// `i < j` (kept acyclic in FP by construction), plus one self-loop per
/// process whose bit is set in `loop_bits`.
fn network(n: usize, edge_bits: u64, loop_bits: u64) -> Fppn {
    let ms = TimeQ::from_ms;
    let mut b = FppnBuilder::new();
    let ids: Vec<ProcessId> = (0..n)
        .map(|i| b.process(ProcessSpec::new(format!("p{i}"), EventSpec::periodic(ms(100)))))
        .collect();
    let mut bit = 0u32;
    for i in 0..n {
        if loop_bits & (1 << i) != 0 {
            b.channel(format!("loop{i}"), ids[i], ids[i], ChannelKind::Blackboard);
        }
        for j in (i + 1)..n {
            // Two bits per pair: channel present? which direction?
            let present = edge_bits & (1u64 << (bit % 64)) != 0;
            let forward = edge_bits & (1u64 << ((bit + 1) % 64)) != 0;
            bit += 2;
            if !present {
                continue;
            }
            let (w, r) = if forward { (i, j) } else { (j, i) };
            b.channel(format!("c{w}_{r}"), ids[w], ids[r], ChannelKind::Fifo);
            // FP must relate channel endpoints; orient along the index
            // order so the priority DAG stays acyclic regardless of the
            // data-flow direction.
            b.priority(ids[i], ids[j]);
        }
    }
    b.build().expect("recipe networks are well-formed").0
}

/// Brute force: direct writers by scanning every channel, closure by
/// fixed-point iteration over the full adjacency matrix.
fn brute_force(net: &Fppn) -> (Vec<Vec<ProcessId>>, Vec<Vec<ProcessId>>) {
    let n = net.process_count();
    let mut direct = vec![vec![false; n]; n]; // direct[r][w]
    for c in net.channels() {
        if c.writer() != c.reader() {
            direct[c.reader().index()][c.writer().index()] = true;
        }
    }
    let mut reach = direct.clone();
    loop {
        let mut changed = false;
        for row in reach.iter_mut() {
            for w in 0..n {
                if !row[w] {
                    continue;
                }
                for ww in 0..n {
                    if direct[w][ww] && !row[ww] {
                        row[ww] = true;
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    let to_ids = |m: &Vec<Vec<bool>>| -> Vec<Vec<ProcessId>> {
        m.iter()
            .map(|row| {
                row.iter()
                    .enumerate()
                    .filter(|&(_, &b)| b)
                    .map(|(i, _)| ProcessId::from_index(i))
                    .collect()
            })
            .collect()
    };
    (to_ids(&direct), to_ids(&reach))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn closure_equals_brute_force_reachability(
        n in 1usize..8,
        edge_bits in any::<u64>(),
        loop_bits in any::<u64>(),
    ) {
        let net = network(n, edge_bits, loop_bits);
        let map = ChannelDependencyMap::analyze(&net);
        let (direct, reach) = brute_force(&net);
        for p in net.process_ids() {
            prop_assert_eq!(
                map.direct_writers(p), &direct[p.index()][..],
                "direct writers of {}", p
            );
            prop_assert_eq!(
                map.upstream(p), &reach[p.index()][..],
                "upstream closure of {}", p
            );
            // Self-loops never contribute direct dependencies. (A process
            // CAN appear in its own upstream closure: channels may flow
            // against the FP order, so cross-process data cycles — like
            // the paper's Fig. 1 feedback loop — are legal, and the brute
            // force above confirms the closure reports them.)
            prop_assert!(!map.direct_writers(p).contains(&p));
        }
        // Components partition the processes.
        let mut seen: Vec<ProcessId> = map.components().iter().flatten().copied().collect();
        seen.sort();
        let all: Vec<ProcessId> = net.process_ids().collect();
        prop_assert_eq!(seen, all);
        // Two processes share a component iff connected ignoring direction:
        // check via symmetric closure of direct edges.
        for a in net.process_ids() {
            for b_ in net.process_ids() {
                let same = map.components().iter().any(|c| c.contains(&a) && c.contains(&b_));
                let connected = undirected_connected(&direct, a, b_);
                prop_assert_eq!(same, connected, "{} vs {}", a, b_);
            }
        }
    }
}

fn undirected_connected(direct: &[Vec<ProcessId>], a: ProcessId, b: ProcessId) -> bool {
    if a == b {
        return true;
    }
    let n = direct.len();
    let mut adj = vec![vec![false; n]; n];
    for (r, ws) in direct.iter().enumerate() {
        for w in ws {
            adj[r][w.index()] = true;
            adj[w.index()][r] = true;
        }
    }
    let mut visited = vec![false; n];
    let mut stack = vec![a.index()];
    visited[a.index()] = true;
    while let Some(x) = stack.pop() {
        if x == b.index() {
            return true;
        }
        for (y, &e) in adj[x].iter().enumerate() {
            if e && !visited[y] {
                visited[y] = true;
                stack.push(y);
            }
        }
    }
    false
}
