//! Worst-case execution time models.
//!
//! The paper obtains execution times "from profiling, which is suitable for
//! soft real-time applications" (§V). Here WCETs are an explicit input to
//! task-graph derivation: a per-process table with a default.

use std::collections::BTreeMap;

use fppn_core::ProcessId;
use fppn_time::TimeQ;

/// Per-process WCET table (`C_i` source for derivation).
///
/// # Examples
///
/// ```
/// use fppn_core::ProcessId;
/// use fppn_taskgraph::WcetModel;
/// use fppn_time::TimeQ;
///
/// let mut w = WcetModel::uniform(TimeQ::from_ms(25));
/// w.set(ProcessId::from_index(2), TimeQ::from_ms(40));
/// assert_eq!(w.get(ProcessId::from_index(0)), TimeQ::from_ms(25));
/// assert_eq!(w.get(ProcessId::from_index(2)), TimeQ::from_ms(40));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WcetModel {
    default: TimeQ,
    overrides: BTreeMap<ProcessId, TimeQ>,
}

impl WcetModel {
    /// Every process gets the same WCET (the Fig. 3 setting: `C_i = 25 ms`).
    pub fn uniform(wcet: TimeQ) -> Self {
        assert!(wcet.is_positive(), "WCET must be strictly positive");
        WcetModel {
            default: wcet,
            overrides: BTreeMap::new(),
        }
    }

    /// Overrides the WCET of one process.
    ///
    /// # Panics
    ///
    /// Panics if `wcet` is not strictly positive.
    pub fn set(&mut self, pid: ProcessId, wcet: TimeQ) -> &mut Self {
        assert!(wcet.is_positive(), "WCET must be strictly positive");
        self.overrides.insert(pid, wcet);
        self
    }

    /// The WCET of `pid`.
    pub fn get(&self, pid: ProcessId) -> TimeQ {
        self.overrides.get(&pid).copied().unwrap_or(self.default)
    }

    /// Feeds the table (default + sorted overrides) into a stable
    /// [`ContentHasher`] stream, for compile-artifact cache keys.
    ///
    /// [`ContentHasher`]: fppn_time::ContentHasher
    pub fn content_hash_into(&self, h: &mut fppn_time::ContentHasher) {
        h.write_time(self.default);
        h.write_usize(self.overrides.len());
        for (&pid, &wcet) in &self.overrides {
            h.write_usize(pid.index());
            h.write_time(wcet);
        }
    }
}

impl Default for WcetModel {
    /// One millisecond for every process.
    fn default() -> Self {
        WcetModel::uniform(TimeQ::ONE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_and_overrides() {
        let mut w = WcetModel::uniform(TimeQ::from_ms(10));
        assert_eq!(w.get(ProcessId::from_index(5)), TimeQ::from_ms(10));
        w.set(ProcessId::from_index(5), TimeQ::from_ms(3));
        assert_eq!(w.get(ProcessId::from_index(5)), TimeQ::from_ms(3));
        assert_eq!(w.get(ProcessId::from_index(4)), TimeQ::from_ms(10));
    }

    #[test]
    #[should_panic(expected = "strictly positive")]
    fn zero_wcet_rejected() {
        let _ = WcetModel::uniform(TimeQ::ZERO);
    }
}
