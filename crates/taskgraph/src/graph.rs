//! The task graph DAG (Def. 3.1) and graph algorithms.

use std::collections::BTreeSet;

use fppn_core::ProcessId;
use fppn_time::TimeQ;

use crate::job::{Job, JobId};

/// A directed acyclic graph of jobs with precedence edges (Def. 3.1).
///
/// Nodes are [`Job`]s; an edge `(J_a, J_b)` constrains `J_a` to complete
/// before `J_b` starts. The graph is built by
/// [`derive_task_graph`](crate::derive_task_graph) but can also be
/// constructed directly for synthetic scheduling experiments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskGraph {
    jobs: Vec<Job>,
    succs: Vec<BTreeSet<JobId>>,
    preds: Vec<BTreeSet<JobId>>,
    hyperperiod: TimeQ,
}

impl TaskGraph {
    /// Creates a graph with the given jobs, no edges, and frame length
    /// (hyperperiod) `hyperperiod`.
    pub fn new(jobs: Vec<Job>, hyperperiod: TimeQ) -> Self {
        let n = jobs.len();
        TaskGraph {
            jobs,
            succs: vec![BTreeSet::new(); n],
            preds: vec![BTreeSet::new(); n],
            hyperperiod,
        }
    }

    /// The hyperperiod `H` (frame length) this graph covers.
    pub fn hyperperiod(&self) -> TimeQ {
        self.hyperperiod
    }

    /// The jobs, indexed by [`JobId`].
    pub fn jobs(&self) -> &[Job] {
        &self.jobs
    }

    /// The number of jobs.
    pub fn job_count(&self) -> usize {
        self.jobs.len()
    }

    /// One job.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn job(&self, id: JobId) -> &Job {
        &self.jobs[id.index()]
    }

    /// Iterates over all job ids.
    pub fn job_ids(&self) -> impl Iterator<Item = JobId> + '_ {
        (0..self.jobs.len()).map(JobId::from_index)
    }

    /// Finds the job of process `pid` with invocation count `k`.
    pub fn find(&self, pid: ProcessId, k: u64) -> Option<JobId> {
        self.jobs
            .iter()
            .position(|j| j.process == pid && j.k == k)
            .map(JobId::from_index)
    }

    /// Adds the precedence edge `from → to` (idempotent).
    ///
    /// # Panics
    ///
    /// Panics on self-edges; cycles are detected by
    /// [`TaskGraph::topological_order`].
    pub fn add_edge(&mut self, from: JobId, to: JobId) {
        assert_ne!(from, to, "self-edge on {from}");
        if self.succs[from.index()].insert(to) {
            self.preds[to.index()].insert(from);
        }
    }

    /// Removes an edge if present; returns whether it existed.
    pub fn remove_edge(&mut self, from: JobId, to: JobId) -> bool {
        let removed = self.succs[from.index()].remove(&to);
        if removed {
            self.preds[to.index()].remove(&from);
        }
        removed
    }

    /// Whether the edge `from → to` is present.
    pub fn has_edge(&self, from: JobId, to: JobId) -> bool {
        self.succs[from.index()].contains(&to)
    }

    /// Direct successors of a job.
    pub fn successors(&self, id: JobId) -> impl Iterator<Item = JobId> + '_ {
        self.succs[id.index()].iter().copied()
    }

    /// Direct predecessors of a job (`Pred(i)` in §III-B).
    pub fn predecessors(&self, id: JobId) -> impl Iterator<Item = JobId> + '_ {
        self.preds[id.index()].iter().copied()
    }

    /// The in-degree `|Pred(i)|` of a job, in O(1).
    pub fn pred_count(&self, id: JobId) -> usize {
        self.preds[id.index()].len()
    }

    /// The out-degree `|Succ(i)|` of a job, in O(1).
    pub fn succ_count(&self, id: JobId) -> usize {
        self.succs[id.index()].len()
    }

    /// All in-degrees, indexed by job id — the scheduler's initial
    /// `remaining_preds` vector in one O(n) pass.
    pub fn pred_counts(&self) -> Vec<usize> {
        self.preds.iter().map(BTreeSet::len).collect()
    }

    /// All out-degrees, indexed by job id.
    pub fn succ_counts(&self) -> Vec<usize> {
        self.succs.iter().map(BTreeSet::len).collect()
    }

    /// The total number of edges.
    pub fn edge_count(&self) -> usize {
        self.succs.iter().map(BTreeSet::len).sum()
    }

    /// All edges `(from, to)` in id order.
    pub fn edges(&self) -> impl Iterator<Item = (JobId, JobId)> + '_ {
        self.succs
            .iter()
            .enumerate()
            .flat_map(|(i, s)| s.iter().map(move |&t| (JobId::from_index(i), t)))
    }

    /// A topological order of the jobs, or `None` if the graph has a cycle
    /// (which would make it not a task graph).
    pub fn topological_order(&self) -> Option<Vec<JobId>> {
        let n = self.jobs.len();
        let mut indegree: Vec<usize> = self.pred_counts();
        let mut ready: BTreeSet<JobId> = self
            .job_ids()
            .filter(|j| indegree[j.index()] == 0)
            .collect();
        let mut order = Vec::with_capacity(n);
        while let Some(&next) = ready.iter().next() {
            ready.remove(&next);
            order.push(next);
            for s in self.succs[next.index()].iter() {
                indegree[s.index()] -= 1;
                if indegree[s.index()] == 0 {
                    ready.insert(*s);
                }
            }
        }
        (order.len() == n).then_some(order)
    }

    /// Whether `to` is reachable from `from` following edges.
    pub fn is_reachable(&self, from: JobId, to: JobId) -> bool {
        if from == to {
            return true;
        }
        let mut seen = vec![false; self.jobs.len()];
        let mut stack = vec![from];
        seen[from.index()] = true;
        while let Some(node) = stack.pop() {
            for s in self.succs[node.index()].iter() {
                if *s == to {
                    return true;
                }
                if !seen[s.index()] {
                    seen[s.index()] = true;
                    stack.push(*s);
                }
            }
        }
        false
    }

    /// Removes every redundant edge (step 5 of the §III-A derivation):
    /// an edge `a → b` is redundant if `b` remains reachable from `a`
    /// through a longer path. Returns the number of removed edges.
    ///
    /// The transitive reduction of a DAG is unique, so the result does not
    /// depend on traversal order.
    pub fn transitive_reduction(&mut self) -> usize {
        let order = self
            .topological_order()
            .expect("transitive reduction requires a DAG");
        // Position of each node in topological order, for pruning.
        let mut pos = vec![0usize; self.jobs.len()];
        for (i, id) in order.iter().enumerate() {
            pos[id.index()] = i;
        }
        let mut removed = 0usize;
        for a in (0..self.jobs.len()).map(JobId::from_index) {
            // An edge a -> b is redundant iff b is reachable from some
            // *other* direct successor of a.
            let direct: Vec<JobId> = self.succs[a.index()].iter().copied().collect();
            let mut redundant: Vec<JobId> = Vec::new();
            for &b in &direct {
                let reachable_via_other = direct.iter().any(|&c| {
                    c != b && pos[c.index()] < pos[b.index()] && self.is_reachable(c, b)
                });
                if reachable_via_other {
                    redundant.push(b);
                }
            }
            for b in redundant {
                self.remove_edge(a, b);
                removed += 1;
            }
        }
        removed
    }

    /// The set of reachable pairs `(a, b)`, `a ≠ b` (transitive closure).
    /// Intended for tests on small graphs (quadratic memory).
    pub fn transitive_closure(&self) -> BTreeSet<(JobId, JobId)> {
        let mut closure = BTreeSet::new();
        for a in self.job_ids() {
            let mut stack: Vec<JobId> = self.succs[a.index()].iter().copied().collect();
            let mut seen = vec![false; self.jobs.len()];
            while let Some(node) = stack.pop() {
                if seen[node.index()] {
                    continue;
                }
                seen[node.index()] = true;
                closure.insert((a, node));
                stack.extend(self.succs[node.index()].iter().copied());
            }
        }
        closure
    }

    /// Total work `Σ C_i`.
    pub fn total_work(&self) -> TimeQ {
        self.jobs.iter().map(|j| j.wcet).sum()
    }

    /// Utilization `Σ C_i / H` — a lower bound on the precedence-aware
    /// load of [`crate::analysis::load`].
    pub fn utilization(&self) -> TimeQ {
        self.total_work() / self.hyperperiod
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk_jobs(n: usize) -> Vec<Job> {
        (0..n)
            .map(|i| Job {
                process: ProcessId::from_index(i),
                k: 1,
                arrival: TimeQ::ZERO,
                deadline: TimeQ::from_ms(100),
                wcet: TimeQ::from_ms(10),
                is_server: false,
            })
            .collect()
    }

    fn j(i: usize) -> JobId {
        JobId::from_index(i)
    }

    #[test]
    fn edges_and_topology() {
        let mut g = TaskGraph::new(mk_jobs(4), TimeQ::from_ms(100));
        g.add_edge(j(0), j(1));
        g.add_edge(j(1), j(2));
        g.add_edge(j(0), j(3));
        assert_eq!(g.edge_count(), 3);
        assert!(g.has_edge(j(0), j(1)));
        assert!(!g.has_edge(j(1), j(0)));
        let order = g.topological_order().unwrap();
        let pos = |x: JobId| order.iter().position(|&o| o == x).unwrap();
        assert!(pos(j(0)) < pos(j(1)));
        assert!(pos(j(1)) < pos(j(2)));
        assert!(g.is_reachable(j(0), j(2)));
        assert!(!g.is_reachable(j(2), j(0)));
        assert!(g.is_reachable(j(1), j(1)));
    }

    #[test]
    fn degree_accessors_match_iterators() {
        let mut g = TaskGraph::new(mk_jobs(4), TimeQ::from_ms(100));
        g.add_edge(j(0), j(1));
        g.add_edge(j(0), j(2));
        g.add_edge(j(1), j(2));
        for id in g.job_ids() {
            assert_eq!(g.pred_count(id), g.predecessors(id).count());
            assert_eq!(g.succ_count(id), g.successors(id).count());
        }
        assert_eq!(g.pred_counts(), vec![0, 1, 2, 0]);
        assert_eq!(g.succ_counts(), vec![2, 1, 0, 0]);
    }

    #[test]
    fn cycle_detected() {
        let mut g = TaskGraph::new(mk_jobs(2), TimeQ::from_ms(100));
        g.add_edge(j(0), j(1));
        g.add_edge(j(1), j(0));
        assert_eq!(g.topological_order(), None);
    }

    #[test]
    fn transitive_reduction_removes_shortcut() {
        // 0 -> 1 -> 2 plus shortcut 0 -> 2 (the Fig. 3 InputA→NormA case).
        let mut g = TaskGraph::new(mk_jobs(3), TimeQ::from_ms(100));
        g.add_edge(j(0), j(1));
        g.add_edge(j(1), j(2));
        g.add_edge(j(0), j(2));
        let removed = g.transitive_reduction();
        assert_eq!(removed, 1);
        assert!(!g.has_edge(j(0), j(2)));
        assert!(g.is_reachable(j(0), j(2)));
    }

    #[test]
    fn transitive_reduction_preserves_closure() {
        let mut g = TaskGraph::new(mk_jobs(5), TimeQ::from_ms(100));
        for (a, b) in [(0, 1), (0, 2), (1, 3), (2, 3), (0, 3), (3, 4), (1, 4)] {
            g.add_edge(j(a), j(b));
        }
        let before = g.transitive_closure();
        g.transitive_reduction();
        let after = g.transitive_closure();
        assert_eq!(before, after);
        // 0->3 (via 1 or 2) and 1->4 (via 3) were redundant.
        assert!(!g.has_edge(j(0), j(3)));
        assert!(!g.has_edge(j(1), j(4)));
    }

    #[test]
    fn work_and_utilization() {
        let g = TaskGraph::new(mk_jobs(4), TimeQ::from_ms(100));
        assert_eq!(g.total_work(), TimeQ::from_ms(40));
        assert_eq!(g.utilization(), TimeQ::new(2, 5));
    }

    #[test]
    fn find_by_process_and_k() {
        let g = TaskGraph::new(mk_jobs(3), TimeQ::from_ms(100));
        assert_eq!(g.find(ProcessId::from_index(1), 1), Some(j(1)));
        assert_eq!(g.find(ProcessId::from_index(1), 2), None);
    }
}
