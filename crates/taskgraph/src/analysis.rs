//! Task-graph analysis: ASAP/ALAP times, the precedence-aware load metric
//! and the necessary schedulability condition (Prop. 3.1).

use std::error::Error;
use std::fmt;

use fppn_time::TimeQ;

use crate::graph::TaskGraph;
use crate::job::JobId;

/// ASAP start times `A′_i` and ALAP completion times `D′_i` (§III-B):
///
/// ```text
/// A′_i = max(A_i, max_{j ∈ Pred(i)} A′_j + C_j)
/// D′_i = min(D_i, min_{j ∈ Succ(i)} D′_j − C_j)
/// ```
///
/// They bound the start and completion of each job in *any* feasible
/// schedule (on any number of processors).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsapAlap {
    /// `A′_i` per job.
    pub asap_start: Vec<TimeQ>,
    /// `D′_i` per job.
    pub alap_completion: Vec<TimeQ>,
}

impl AsapAlap {
    /// Computes both recursions over the DAG.
    ///
    /// # Panics
    ///
    /// Panics if the graph has a cycle.
    pub fn compute(graph: &TaskGraph) -> Self {
        let order = graph
            .topological_order()
            .expect("ASAP/ALAP require an acyclic task graph");
        let n = graph.job_count();
        let mut asap = vec![TimeQ::ZERO; n];
        for &i in &order {
            let job = graph.job(i);
            let mut t = job.arrival;
            for p in graph.predecessors(i) {
                t = t.max(asap[p.index()] + graph.job(p).wcet);
            }
            asap[i.index()] = t;
        }
        let mut alap = vec![TimeQ::ZERO; n];
        for &i in order.iter().rev() {
            let job = graph.job(i);
            let mut t = job.deadline;
            for s in graph.successors(i) {
                t = t.min(alap[s.index()] - graph.job(s).wcet);
            }
            alap[i.index()] = t;
        }
        AsapAlap {
            asap_start: asap,
            alap_completion: alap,
        }
    }

    /// `A′_i` of one job.
    pub fn asap(&self, id: JobId) -> TimeQ {
        self.asap_start[id.index()]
    }

    /// `D′_i` of one job.
    pub fn alap(&self, id: JobId) -> TimeQ {
        self.alap_completion[id.index()]
    }
}

/// The precedence-aware load of a task graph (§III-B):
///
/// ```text
/// Load(TG) = max_{0 ≤ t1 < t2}  ( Σ_{Ji : t1 ≤ A′_i ∧ D′_i ≤ t2} C_i ) / (t2 − t1)
/// ```
///
/// together with the critical window attaining the maximum.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadResult {
    /// The load value (exact rational).
    pub load: TimeQ,
    /// A window `(t1, t2)` attaining the maximum.
    pub window: (TimeQ, TimeQ),
}

impl LoadResult {
    /// The minimum processor count implied by this load: `⌈Load⌉`.
    pub fn min_processors(&self) -> usize {
        self.load.ceil().max(0) as usize
    }
}

/// Computes the load. Only windows `[t1, t2]` with `t1` an ASAP start and
/// `t2` an ALAP completion need be considered (other windows contain the
/// same job set as a tighter such window).
///
/// Returns a zero load for an empty graph.
pub fn load(graph: &TaskGraph) -> LoadResult {
    load_with(graph, &AsapAlap::compute(graph))
}

/// [`load`] with precomputed ASAP/ALAP times.
pub fn load_with(graph: &TaskGraph, times: &AsapAlap) -> LoadResult {
    let mut t1s: Vec<TimeQ> = times.asap_start.clone();
    t1s.sort();
    t1s.dedup();
    // Jobs sorted by ALAP completion for prefix accumulation.
    let mut by_alap: Vec<JobId> = graph.job_ids().collect();
    by_alap.sort_by_key(|j| times.alap_completion[j.index()]);

    let mut best = LoadResult {
        load: TimeQ::ZERO,
        window: (TimeQ::ZERO, TimeQ::ZERO),
    };
    for &t1 in &t1s {
        // Accumulate C_i over jobs with A' >= t1 in ALAP order; each
        // distinct ALAP value is a candidate t2.
        let mut acc = TimeQ::ZERO;
        let mut idx = 0usize;
        while idx < by_alap.len() {
            let t2 = times.alap_completion[by_alap[idx].index()];
            // Fold in every job with this exact ALAP completion.
            while idx < by_alap.len()
                && times.alap_completion[by_alap[idx].index()] == t2
            {
                let j = by_alap[idx];
                if times.asap_start[j.index()] >= t1 {
                    acc += graph.job(j).wcet;
                }
                idx += 1;
            }
            if t2 > t1 && acc.is_positive() {
                let l = acc / (t2 - t1);
                if l > best.load {
                    best = LoadResult {
                        load: l,
                        window: (t1, t2),
                    };
                }
            }
        }
    }
    best
}

/// Why Prop. 3.1 rejects a task graph for `M` processors.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Infeasibility {
    /// Some job cannot fit between its ASAP start and ALAP completion:
    /// `A′_i + C_i > D′_i`.
    JobWindowTooSmall {
        /// The offending job.
        job: JobId,
        /// Its ASAP start.
        asap: TimeQ,
        /// Its ALAP completion.
        alap: TimeQ,
    },
    /// `⌈Load(TG)⌉ > M`.
    LoadExceedsProcessors {
        /// The computed load.
        load: TimeQ,
        /// The processor count checked.
        processors: usize,
    },
}

impl fmt::Display for Infeasibility {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Infeasibility::JobWindowTooSmall { job, asap, alap } => write!(
                f,
                "job {job} cannot fit its WCET between ASAP start {asap} and ALAP completion {alap}"
            ),
            Infeasibility::LoadExceedsProcessors { load, processors } => write!(
                f,
                "task-graph load {load} needs ⌈{load}⌉ processors but only {processors} given"
            ),
        }
    }
}

impl Error for Infeasibility {}

/// Prop. 3.1 — the **necessary** condition: a task graph can be scheduled
/// on `M` processors only if every job fits its `[A′, D′]` window and
/// `⌈Load⌉ ≤ M`. Passing this check does not guarantee feasibility.
///
/// # Errors
///
/// Returns the first violated [`Infeasibility`].
pub fn necessary_condition(graph: &TaskGraph, processors: usize) -> Result<(), Infeasibility> {
    let times = AsapAlap::compute(graph);
    for i in graph.job_ids() {
        if times.asap(i) + graph.job(i).wcet > times.alap(i) {
            return Err(Infeasibility::JobWindowTooSmall {
                job: i,
                asap: times.asap(i),
                alap: times.alap(i),
            });
        }
    }
    let l = load_with(graph, &times);
    if l.min_processors() > processors {
        return Err(Infeasibility::LoadExceedsProcessors {
            load: l.load,
            processors,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::Job;
    use fppn_core::ProcessId;

    fn ms(v: i64) -> TimeQ {
        TimeQ::from_ms(v)
    }

    fn job(a: i64, d: i64, c: i64) -> Job {
        Job {
            process: ProcessId::from_index(0),
            k: 1,
            arrival: ms(a),
            deadline: ms(d),
            wcet: ms(c),
            is_server: false,
        }
    }

    fn jid(i: usize) -> JobId {
        JobId::from_index(i)
    }

    #[test]
    fn asap_alap_chain() {
        // 0 -> 1 -> 2, all arrive at 0, deadline 100, C = 10.
        let mut g = TaskGraph::new(vec![job(0, 100, 10); 3], ms(100));
        g.add_edge(jid(0), jid(1));
        g.add_edge(jid(1), jid(2));
        let t = AsapAlap::compute(&g);
        assert_eq!(t.asap(jid(0)), ms(0));
        assert_eq!(t.asap(jid(1)), ms(10));
        assert_eq!(t.asap(jid(2)), ms(20));
        assert_eq!(t.alap(jid(2)), ms(100));
        assert_eq!(t.alap(jid(1)), ms(90));
        assert_eq!(t.alap(jid(0)), ms(80));
    }

    #[test]
    fn asap_respects_later_arrival() {
        let mut g = TaskGraph::new(vec![job(0, 100, 10), job(50, 100, 10)], ms(100));
        g.add_edge(jid(0), jid(1));
        let t = AsapAlap::compute(&g);
        assert_eq!(t.asap(jid(1)), ms(50)); // arrival dominates pred chain
    }

    #[test]
    fn load_of_independent_jobs() {
        // Two independent jobs, same window [0, 100], C = 60 each:
        // load = 120/100 = 6/5 -> needs 2 processors.
        let g = TaskGraph::new(vec![job(0, 100, 60); 2], ms(100));
        let l = load(&g);
        assert_eq!(l.load, TimeQ::new(6, 5));
        assert_eq!(l.window, (ms(0), ms(100)));
        assert_eq!(l.min_processors(), 2);
    }

    #[test]
    fn load_sees_precedence_narrowed_windows() {
        // Chain of 3 with C = 10, deadline 30: windows shrink so the
        // critical window is the full chain: load = 30/30 = 1.
        let mut g = TaskGraph::new(vec![job(0, 30, 10); 3], ms(30));
        g.add_edge(jid(0), jid(1));
        g.add_edge(jid(1), jid(2));
        let l = load(&g);
        assert_eq!(l.load, TimeQ::ONE);
        // A tight sub-window also yields 1; the maximum is 1 either way.
    }

    #[test]
    fn load_picks_critical_subwindow() {
        // One tight job [0, 10] C=10 and one loose [0, 100] C=10:
        // window (0,10) gives 10/10 = 1; whole window gives 20/100.
        let g = TaskGraph::new(vec![job(0, 10, 10), job(0, 100, 10)], ms(100));
        let l = load(&g);
        assert_eq!(l.load, TimeQ::ONE);
        assert_eq!(l.window, (ms(0), ms(10)));
    }

    #[test]
    fn necessary_condition_detects_window_violation() {
        // Chain whose total work exceeds the common deadline.
        let mut g = TaskGraph::new(vec![job(0, 25, 10); 3], ms(25));
        g.add_edge(jid(0), jid(1));
        g.add_edge(jid(1), jid(2));
        assert!(matches!(
            necessary_condition(&g, 4),
            Err(Infeasibility::JobWindowTooSmall { .. })
        ));
    }

    #[test]
    fn necessary_condition_detects_overload() {
        let g = TaskGraph::new(vec![job(0, 100, 60); 3], ms(100));
        // load = 180/100 -> ⌈1.8⌉ = 2 processors needed.
        assert!(necessary_condition(&g, 1).is_err());
        assert!(necessary_condition(&g, 2).is_ok());
    }

    #[test]
    fn empty_graph_load_is_zero() {
        let g = TaskGraph::new(Vec::new(), ms(100));
        assert_eq!(load(&g).load, TimeQ::ZERO);
        assert!(necessary_condition(&g, 0).is_ok());
    }
}
