//! Task-graph derivation from an FPPN (§III-A).
//!
//! For the schedulable subclass — every sporadic process `p` has exactly
//! one periodic *user* `u(p)` connected by a channel, with
//! `T_u(p) ≤ T_p` — the derivation:
//!
//! 1. replaces each sporadic `p` by an `m`-periodic **server** process `p′`
//!    with period `T_u(p)` and priority `FP′: p′ → u(p)`;
//! 2. simulates one hyperperiod `H = lcm(T)` of job invocations, giving the
//!    total order `<J` (invocation time, then FP′ linearization);
//! 3. adds precedence edges between every `<J`-ordered pair of jobs of the
//!    same process or of FP′-related processes;
//! 4. truncates deadlines to `H` (non-pipelined scheduling);
//! 5. removes redundant edges by transitive reduction.
//!
//! Server job deadlines are shortened to `d_p − T′` to compensate the
//! worst-case one-period postponement of a deferred sporadic arrival; when
//! `d_p ≤ T_u(p)` the server period becomes the fraction `T_u(p)/f`
//! (footnote 3 of the paper) so that the corrected deadline stays positive.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

use fppn_core::{EventKind, Fppn, ProcessId};
use fppn_time::{hyperperiod, TimeQ};

use crate::graph::TaskGraph;
use crate::job::{Job, JobId};
use crate::wcet::WcetModel;

/// How a sporadic process is represented by a periodic server (§III-A).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerSpec {
    /// The sporadic process.
    pub process: ProcessId,
    /// Its unique periodic user `u(p)`.
    pub user: ProcessId,
    /// The server period `T′` (the user period, or a fraction of it when
    /// `d_p ≤ T_u(p)`).
    pub period: TimeQ,
    /// Server burst size (= the sporadic burst `m_p`).
    pub burst: u32,
    /// Relative deadline of server jobs: `d_p − T′`.
    pub job_deadline: TimeQ,
    /// Whether the *real* functional priority is `p → u(p)`; decides the
    /// window boundary rule of the online policy (§IV): `(a, b]` if true,
    /// `[a, b)` otherwise.
    pub priority_over_user: bool,
}

/// The output of [`derive_task_graph`]: the job DAG plus the server
/// transformation metadata needed by the online policy.
#[derive(Debug, Clone)]
pub struct DerivedTaskGraph {
    /// The derived, transitively-reduced task graph.
    pub graph: TaskGraph,
    /// Server specs, keyed by sporadic process.
    pub servers: BTreeMap<ProcessId, ServerSpec>,
    /// The hyperperiod `H` (also the graph's frame length).
    pub hyperperiod: TimeQ,
    /// Number of redundant edges removed by transitive reduction (step 5);
    /// exposed because Fig. 3 of the paper calls the removal out.
    pub reduced_edges: usize,
}

impl DerivedTaskGraph {
    /// The server spec of a sporadic process, if any.
    pub fn server(&self, pid: ProcessId) -> Option<&ServerSpec> {
        self.servers.get(&pid)
    }
}

/// Errors rejecting networks outside the schedulable subclass of §III-A.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DeriveError {
    /// The network has no processes.
    EmptyNetwork,
    /// A sporadic process has no *unique periodic* channel neighbor.
    SporadicWithoutUser {
        /// The sporadic process name.
        process: String,
    },
    /// `T_u(p) > T_p`: the user is slower than the sporadic bound, which
    /// the server transform cannot represent conservatively.
    UserPeriodTooLong {
        /// The sporadic process name.
        process: String,
        /// The user process name.
        user: String,
    },
}

impl fmt::Display for DeriveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeriveError::EmptyNetwork => write!(f, "cannot derive a task graph from an empty network"),
            DeriveError::SporadicWithoutUser { process } => write!(
                f,
                "sporadic process {process:?} has no unique periodic user \
                 (required by the schedulable subclass of the paper, §III-A)"
            ),
            DeriveError::UserPeriodTooLong { process, user } => write!(
                f,
                "sporadic process {process:?} has user {user:?} with a longer period \
                 (T_u must be ≤ T_p)"
            ),
        }
    }
}

impl Error for DeriveError {}

/// Effective (post-server-transform) generator of one process.
#[derive(Debug, Clone)]
struct Effective {
    period: TimeQ,
    burst: u32,
    phase: TimeQ,
    /// Relative job deadline (already corrected for servers).
    deadline: TimeQ,
    is_server: bool,
}

/// Derives the task graph of §III-A for one hyperperiod.
///
/// # Errors
///
/// Returns a [`DeriveError`] if the network is empty or some sporadic
/// process violates the subclass restriction.
///
/// # Examples
///
/// See `fppn-apps`' Fig. 1 network, whose derived graph reproduces Fig. 3
/// of the paper (10 jobs, `H = 200 ms`, one redundant edge removed).
pub fn derive_task_graph(net: &Fppn, wcet: &WcetModel) -> Result<DerivedTaskGraph, DeriveError> {
    if net.process_count() == 0 {
        return Err(DeriveError::EmptyNetwork);
    }

    // Step 1: server transform.
    let mut effective: Vec<Effective> = Vec::with_capacity(net.process_count());
    let mut servers = BTreeMap::new();
    for pid in net.process_ids() {
        let spec = net.process(pid);
        let ev = spec.event();
        match ev.kind() {
            EventKind::Periodic => effective.push(Effective {
                period: ev.period(),
                burst: ev.burst(),
                phase: ev.phase(),
                deadline: ev.deadline(),
                is_server: false,
            }),
            EventKind::Sporadic => {
                let user = net.user_of(pid).ok_or_else(|| DeriveError::SporadicWithoutUser {
                    process: spec.name().to_owned(),
                })?;
                let user_period = net.process(user).event().period();
                if user_period > ev.period() {
                    return Err(DeriveError::UserPeriodTooLong {
                        process: spec.name().to_owned(),
                        user: net.process(user).name().to_owned(),
                    });
                }
                // Footnote 3: shrink the server period to T_u/f until the
                // corrected deadline d_p - T' is positive.
                let mut server_period = user_period;
                if ev.deadline() <= server_period {
                    let f = (user_period / ev.deadline()).floor() + 1;
                    server_period = user_period / TimeQ::from_int_i128(f);
                    debug_assert!(ev.deadline() > server_period);
                }
                let job_deadline = ev.deadline() - server_period;
                servers.insert(
                    pid,
                    ServerSpec {
                        process: pid,
                        user,
                        period: server_period,
                        burst: ev.burst(),
                        job_deadline,
                        priority_over_user: net.has_priority(pid, user),
                    },
                );
                effective.push(Effective {
                    period: server_period,
                    burst: ev.burst(),
                    phase: TimeQ::ZERO,
                    deadline: job_deadline,
                    is_server: true,
                });
            }
        }
    }

    // FP′: edges among periodic processes, plus p′ → u(p) per server.
    let sporadic = |pid: ProcessId| servers.contains_key(&pid);
    let mut fp_prime: Vec<(ProcessId, ProcessId)> = net
        .priority_edges()
        .filter(|(a, b)| !sporadic(*a) && !sporadic(*b))
        .collect();
    for s in servers.values() {
        fp_prime.push((s.process, s.user));
    }
    let related = |a: ProcessId, b: ProcessId| {
        fp_prime.contains(&(a, b)) || fp_prime.contains(&(b, a))
    };

    // Hyperperiod over effective periods.
    let h = hyperperiod(effective.iter().map(|e| e.period)).expect("non-empty network");

    // FP′ linearization ranks (Kahn, smallest process id first).
    let ranks = fp_prime_ranks(net.process_count(), &fp_prime);

    // Step 2: simulate job invocations over [0, H).
    let mut jobs: Vec<Job> = Vec::new();
    let mut jobs_of: Vec<Vec<JobId>> = vec![Vec::new(); net.process_count()];
    for pid in net.process_ids() {
        let e = &effective[pid.index()];
        let mut k = 0u64;
        let mut t = e.phase;
        while t < h {
            for _ in 0..e.burst {
                k += 1;
                let arrival = t;
                // Step 4: truncate required times to the hyperperiod.
                let deadline = (arrival + e.deadline).min(h);
                let id = JobId::from_index(jobs.len());
                jobs.push(Job {
                    process: pid,
                    k,
                    arrival,
                    deadline,
                    wcet: wcet.get(pid),
                    is_server: e.is_server,
                });
                jobs_of[pid.index()].push(id);
            }
            t += e.period;
        }
    }

    let mut graph = TaskGraph::new(jobs, h);

    // The total order <J: (arrival, FP′ rank, k). Within one process this
    // coincides with the k order.
    let before = |g: &TaskGraph, a: JobId, b: JobId| -> bool {
        let (ja, jb) = (g.job(a), g.job(b));
        (
            ja.arrival,
            ranks[ja.process.index()],
            ja.k,
        ) < (jb.arrival, ranks[jb.process.index()], jb.k)
    };

    // Step 3: precedence edges.
    // Same process: consecutive jobs (transitivity covers the rest).
    for list in &jobs_of {
        for w in list.windows(2) {
            graph.add_edge(w[0], w[1]);
        }
    }
    // Related processes: from each job, an edge to the first <J-later job
    // of the other process; the same-process chains complete the closure.
    for a_pid in net.process_ids() {
        for b_pid in net.process_ids() {
            if a_pid == b_pid || !related(a_pid, b_pid) {
                continue;
            }
            let a_jobs = &jobs_of[a_pid.index()];
            let b_jobs = &jobs_of[b_pid.index()];
            let mut bi = 0usize;
            for &a in a_jobs {
                while bi < b_jobs.len() && !before(&graph, a, b_jobs[bi]) {
                    bi += 1;
                }
                if bi == b_jobs.len() {
                    break;
                }
                graph.add_edge(a, b_jobs[bi]);
            }
        }
    }

    // Step 5: transitive reduction.
    let reduced_edges = graph.transitive_reduction();

    Ok(DerivedTaskGraph {
        graph,
        servers,
        hyperperiod: h,
        reduced_edges,
    })
}

/// Builds the *full* conflict-edge set of step 3 without reduction —
/// every `<J`-ordered pair of same-process or FP′-related jobs gets a
/// direct edge. Quadratic; used to demonstrate step 5 on small examples
/// (Fig. 3 shows the redundant `InputA[1] → NormA[1]` edge explicitly).
pub fn derive_task_graph_unreduced(
    net: &Fppn,
    wcet: &WcetModel,
) -> Result<DerivedTaskGraph, DeriveError> {
    let derived = derive_task_graph(net, wcet)?;
    // Rebuild all edges from the closure relation implied by <J.
    let mut graph = TaskGraph::new(derived.graph.jobs().to_vec(), derived.hyperperiod);
    let ranks: BTreeMap<ProcessId, u64> = {
        // Recover ranks from the reduced graph's job order: jobs are stored
        // per process in k order, and <J uses (arrival, rank, k); recompute
        // the same FP′ ranks.
        let sporadic: Vec<ProcessId> = derived.servers.keys().copied().collect();
        let mut fp_prime: Vec<(ProcessId, ProcessId)> = net
            .priority_edges()
            .filter(|(a, b)| !sporadic.contains(a) && !sporadic.contains(b))
            .collect();
        for s in derived.servers.values() {
            fp_prime.push((s.process, s.user));
        }
        fp_prime_ranks(net.process_count(), &fp_prime)
            .into_iter()
            .enumerate()
            .map(|(i, r)| (ProcessId::from_index(i), r as u64))
            .collect()
    };
    let related_or_same = |a: ProcessId, b: ProcessId| {
        a == b || {
            let sporadic = |p: ProcessId| derived.servers.contains_key(&p);
            let user = |p: ProcessId| derived.servers.get(&p).map(|s| s.user);
            // Reconstruct FP′-relatedness.
            if sporadic(a) {
                user(a) == Some(b)
            } else if sporadic(b) {
                user(b) == Some(a)
            } else {
                net.related(a, b)
            }
        }
    };
    let n = graph.job_count();
    for ai in 0..n {
        for bi in 0..n {
            if ai == bi {
                continue;
            }
            let (a, b) = (JobId::from_index(ai), JobId::from_index(bi));
            let (ja, jb) = (graph.job(a).clone(), graph.job(b).clone());
            if !related_or_same(ja.process, jb.process) {
                continue;
            }
            let key = |j: &Job| (j.arrival, ranks[&j.process], j.k);
            if key(&ja) < key(&jb) {
                graph.add_edge(a, b);
            }
        }
    }
    Ok(DerivedTaskGraph {
        graph,
        servers: derived.servers,
        hyperperiod: derived.hyperperiod,
        reduced_edges: 0,
    })
}

fn fp_prime_ranks(n: usize, edges: &[(ProcessId, ProcessId)]) -> Vec<u32> {
    let mut indegree = vec![0usize; n];
    let mut succ: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (a, b) in edges {
        indegree[b.index()] += 1;
        succ[a.index()].push(b.index());
    }
    let mut ready: std::collections::BTreeSet<usize> =
        (0..n).filter(|&i| indegree[i] == 0).collect();
    let mut rank = vec![0u32; n];
    let mut next = 0u32;
    while let Some(&node) = ready.iter().next() {
        ready.remove(&node);
        rank[node] = next;
        next += 1;
        for &s in &succ[node] {
            indegree[s] -= 1;
            if indegree[s] == 0 {
                ready.insert(s);
            }
        }
    }
    assert_eq!(next as usize, n, "FP′ must be acyclic");
    rank
}

#[cfg(test)]
mod tests {
    use super::*;
    use fppn_core::{ChannelKind, EventSpec, FppnBuilder, ProcessSpec};

    fn ms(v: i64) -> TimeQ {
        TimeQ::from_ms(v)
    }

    /// user (periodic 200) <- cfg (sporadic 2 per 700).
    fn sporadic_pair(cfg_priority: bool) -> (Fppn, ProcessId, ProcessId) {
        let mut b = FppnBuilder::new();
        let user = b.process(ProcessSpec::new("user", EventSpec::periodic(ms(200))));
        let cfg = b.process(ProcessSpec::new("cfg", EventSpec::sporadic(2, ms(700))));
        b.channel("c", cfg, user, ChannelKind::Blackboard);
        if cfg_priority {
            b.priority(cfg, user);
        } else {
            b.priority(user, cfg);
        }
        let (net, _) = b.build().unwrap();
        (net, user, cfg)
    }

    #[test]
    fn server_transform_basics() {
        let (net, user, cfg) = sporadic_pair(true);
        let d = derive_task_graph(&net, &WcetModel::uniform(ms(25))).unwrap();
        assert_eq!(d.hyperperiod, ms(200));
        let s = d.server(cfg).unwrap();
        assert_eq!(s.user, user);
        assert_eq!(s.period, ms(200));
        assert_eq!(s.burst, 2);
        assert_eq!(s.job_deadline, ms(500)); // 700 - 200
        assert!(s.priority_over_user);
        // Jobs: user[1], cfg[1], cfg[2].
        assert_eq!(d.graph.job_count(), 3);
        let u1 = d.graph.find(user, 1).unwrap();
        let c1 = d.graph.find(cfg, 1).unwrap();
        let c2 = d.graph.find(cfg, 2).unwrap();
        // Server jobs precede the user job arriving at the same time.
        assert!(d.graph.is_reachable(c1, u1));
        assert!(d.graph.is_reachable(c2, u1));
        assert!(d.graph.has_edge(c1, c2));
        // Deadlines truncated to H.
        assert_eq!(d.graph.job(c1).deadline, ms(200));
        assert!(d.graph.job(c1).is_server);
        assert!(!d.graph.job(u1).is_server);
    }

    #[test]
    fn boundary_rule_follows_real_priority() {
        let (net, _, cfg) = sporadic_pair(false);
        let d = derive_task_graph(&net, &WcetModel::default()).unwrap();
        assert!(!d.server(cfg).unwrap().priority_over_user);
        // Even with user-priority, *server* jobs still precede the user job
        // in the graph (FP′: p′ → u(p)).
        let user = net.process_by_name("user").unwrap();
        let u1 = d.graph.find(user, 1).unwrap();
        let c1 = d.graph.find(cfg, 1).unwrap();
        assert!(d.graph.is_reachable(c1, u1));
    }

    #[test]
    fn fractional_server_period_when_deadline_short() {
        // d_p = 150 <= T_u = 200 => T' = 200/2 = 100 < 150.
        let mut b = FppnBuilder::new();
        let user = b.process(ProcessSpec::new("user", EventSpec::periodic(ms(200))));
        let cfg = b.process(ProcessSpec::new(
            "cfg",
            EventSpec::sporadic(1, ms(700)).with_deadline(ms(150)),
        ));
        b.channel("c", cfg, user, ChannelKind::Blackboard);
        b.priority(cfg, user);
        let (net, _) = b.build().unwrap();
        let d = derive_task_graph(&net, &WcetModel::default()).unwrap();
        let s = d.server(cfg).unwrap();
        assert_eq!(s.period, ms(100));
        assert_eq!(s.job_deadline, ms(50));
        // Two server bursts per user period now.
        assert_eq!(d.graph.job_count(), 1 + 2);
    }

    #[test]
    fn multirate_periodic_chain() {
        let mut b = FppnBuilder::new();
        let fast = b.process(ProcessSpec::new("fast", EventSpec::periodic(ms(100))));
        let slow = b.process(ProcessSpec::new("slow", EventSpec::periodic(ms(200))));
        b.channel("c", fast, slow, ChannelKind::Fifo);
        b.priority(fast, slow);
        let (net, _) = b.build().unwrap();
        let d = derive_task_graph(&net, &WcetModel::uniform(ms(10))).unwrap();
        assert_eq!(d.hyperperiod, ms(200));
        assert_eq!(d.graph.job_count(), 3); // fast[1], fast[2], slow[1]
        let f1 = d.graph.find(fast, 1).unwrap();
        let f2 = d.graph.find(fast, 2).unwrap();
        let s1 = d.graph.find(slow, 1).unwrap();
        assert_eq!(d.graph.job(f2).arrival, ms(100));
        assert_eq!(d.graph.job(f2).deadline, ms(200));
        // fast[1] -> slow[1] (same arrival, fast has priority);
        // slow[1] -> fast[2]? NO: slow[1] <J fast[2] (arrival 0 < 100), so
        // edge slow[1] -> fast[2] exists because they are related.
        assert!(d.graph.has_edge(f1, s1));
        assert!(d.graph.is_reachable(s1, f2));
        // fast[1] -> fast[2] via chain; direct edge redundant after the
        // path f1 -> s1 -> f2? f1->f2 is same-process consecutive edge; it
        // is redundant iff f1 -> s1 -> f2 exists, which it does, so the
        // reduction may remove the direct edge while preserving closure.
        assert!(d.graph.is_reachable(f1, f2));
    }

    #[test]
    fn unrelated_processes_get_no_edges() {
        let mut b = FppnBuilder::new();
        let a = b.process(ProcessSpec::new("a", EventSpec::periodic(ms(100))));
        let c = b.process(ProcessSpec::new("c", EventSpec::periodic(ms(100))));
        let (net, _) = b.build().unwrap();
        let d = derive_task_graph(&net, &WcetModel::default()).unwrap();
        let a1 = d.graph.find(a, 1).unwrap();
        let c1 = d.graph.find(c, 1).unwrap();
        assert!(!d.graph.is_reachable(a1, c1));
        assert!(!d.graph.is_reachable(c1, a1));
    }

    #[test]
    fn sporadic_without_user_rejected() {
        let mut b = FppnBuilder::new();
        b.process(ProcessSpec::new("lonely", EventSpec::sporadic(1, ms(100))));
        let (net, _) = b.build().unwrap();
        assert!(matches!(
            derive_task_graph(&net, &WcetModel::default()),
            Err(DeriveError::SporadicWithoutUser { .. })
        ));
    }

    #[test]
    fn user_period_longer_than_sporadic_rejected() {
        let mut b = FppnBuilder::new();
        let user = b.process(ProcessSpec::new("user", EventSpec::periodic(ms(1000))));
        let cfg = b.process(ProcessSpec::new("cfg", EventSpec::sporadic(1, ms(500))));
        b.channel("c", cfg, user, ChannelKind::Blackboard);
        b.priority(cfg, user);
        let (net, _) = b.build().unwrap();
        assert!(matches!(
            derive_task_graph(&net, &WcetModel::default()),
            Err(DeriveError::UserPeriodTooLong { .. })
        ));
    }

    #[test]
    fn empty_network_rejected() {
        let (net, _) = FppnBuilder::new().build().unwrap();
        assert!(matches!(
            derive_task_graph(&net, &WcetModel::default()),
            Err(DeriveError::EmptyNetwork)
        ));
    }

    #[test]
    fn unreduced_graph_has_same_closure() {
        let (net, _, _) = sporadic_pair(true);
        let reduced = derive_task_graph(&net, &WcetModel::default()).unwrap();
        let full = derive_task_graph_unreduced(&net, &WcetModel::default()).unwrap();
        assert_eq!(
            reduced.graph.transitive_closure(),
            full.graph.transitive_closure()
        );
        assert!(full.graph.edge_count() >= reduced.graph.edge_count());
    }
}
