//! Run-time resolution of task-graph job instances across frames.
//!
//! The static task graph covers one hyperperiod; at run time the frame is
//! repeated, and every *server* job slot must be matched against the real
//! sporadic arrivals of its window — or marked **false** (§IV). This
//! module computes that resolution from the arrival traces, shared by the
//! discrete-event simulator (`fppn-sim`) and the threaded runtime
//! (`fppn-runtime`).

use std::collections::BTreeMap;

use fppn_core::{Fppn, ProcessId, Stimuli};
use fppn_time::TimeQ;

use crate::derive::DerivedTaskGraph;
use crate::job::JobId;

/// The resolved identity of one job instance (one frame × one graph job).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotResolution {
    /// When the instance was invoked: `f·H + A_i` for periodic jobs, the
    /// matching event arrival for executable sporadic slots, the window
    /// close for false slots.
    pub invoked_at: TimeQ,
    /// Whether the instance executes (false = skipped server slot).
    pub executable: bool,
    /// Absolute (untruncated) deadline: invocation + the process's own
    /// relative deadline; for false slots, the resolution time.
    pub deadline: TimeQ,
}

/// Per-frame, per-job instance resolutions for `frames` repetitions of the
/// schedule frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundResolution {
    rounds: Vec<Vec<SlotResolution>>, // [frame][job]
}

/// The stimuli-*independent* half of slot resolution: per-job templates
/// and per-server window parameters, a pure function of the network and
/// the derived task graph.
///
/// Splitting resolution this way is what makes the compile/run boundary
/// cacheable: [`SlotTemplates::build`] runs once per compiled network,
/// while [`SlotTemplates::resolve`] (or the allocation-light
/// [`SlotTemplates::for_each_slot`]) binds a concrete arrival trace per
/// run. [`RoundResolution::resolve`] remains as the one-shot convenience
/// composing the two.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlotTemplates {
    hyperperiod: TimeQ,
    servers: Vec<ServerWindow>,
    templates: Vec<Template>,
}

/// Window parameters of one server (transformed sporadic process).
#[derive(Debug, Clone, PartialEq, Eq)]
struct ServerWindow {
    pid: ProcessId,
    period: TimeQ,
    priority_over_user: bool,
    subsets_per_frame: i128,
}

/// Everything about one graph job that does not depend on the frame or the
/// stimuli, so the per-run loop is pure arithmetic (this is the hot path
/// for long multi-frame simulations).
#[derive(Debug, Clone, PartialEq, Eq)]
enum Template {
    Periodic {
        arrival: TimeQ,
        deadline_rel: TimeQ,
    },
    Server {
        server: usize, // index into SlotTemplates::servers
        subset_in_frame: i128,
        slot: usize,
        deadline_rel: TimeQ,
    },
}

/// Sporadic arrivals of one server grouped by global subset index.
/// Subsets queried by the frame loop are dense integers in
/// `[0, frames * subsets_per_frame)`, so a flat CSR table (counting sort)
/// beats any map: the per-slot lookup becomes two array indexes with no
/// hashing or tree walk.
struct ServerArrivals {
    /// `starts[s]..starts[s + 1]` is the slice of `times` for subset `s`.
    starts: Vec<u32>,
    times: Vec<TimeQ>,
}

impl SlotTemplates {
    /// Precomputes the per-job templates and server windows.
    pub fn build(net: &Fppn, derived: &DerivedTaskGraph) -> Self {
        let graph = &derived.graph;
        let h = derived.hyperperiod;

        let servers: Vec<ServerWindow> = derived
            .servers
            .iter()
            .map(|(pid, s)| ServerWindow {
                pid: *pid,
                period: s.period,
                priority_over_user: s.priority_over_user,
                subsets_per_frame: (h / s.period).floor(),
            })
            .collect();
        let server_index = |pid: ProcessId| servers.iter().position(|w| w.pid == pid);

        let templates = graph
            .job_ids()
            .map(|id| {
                let job = graph.job(id);
                let pid = job.process;
                let deadline_rel = net.process(pid).event().deadline();
                match derived.server(pid) {
                    None => Template::Periodic {
                        arrival: job.arrival,
                        deadline_rel,
                    },
                    Some(server) => Template::Server {
                        server: server_index(pid).expect("server window exists"),
                        subset_in_frame: (job.arrival / server.period).floor(),
                        slot: ((job.k - 1) % server.burst as u64) as usize,
                        deadline_rel,
                    },
                }
            })
            .collect();

        SlotTemplates {
            hyperperiod: h,
            servers,
            templates,
        }
    }

    /// The number of graph jobs covered per frame.
    pub fn job_count(&self) -> usize {
        self.templates.len()
    }

    /// Bins the sporadic arrival traces into per-server subset CSR tables,
    /// applying the window boundary rule: the subset arriving at `b`
    /// covers `(b − T′, b]` when the sporadic process has priority over
    /// its user, `[b − T′, b)` otherwise.
    fn bin_arrivals(&self, stimuli: &Stimuli, frames: u64) -> Vec<ServerArrivals> {
        self.servers
            .iter()
            .map(|w| {
                let total = (frames as i128 * w.subsets_per_frame).max(0) as usize;
                let subset_of = |t: TimeQ| -> Option<usize> {
                    let q = t / w.period;
                    let s = if w.priority_over_user {
                        q.ceil()
                    } else {
                        q.floor() + 1
                    };
                    // Arrivals past the simulated horizon land in subsets the
                    // frame loop never queries; drop them here.
                    (0..total as i128).contains(&s).then_some(s as usize)
                };
                let mut counts = vec![0u32; total + 1];
                for &t in stimuli.arrival_times(w.pid) {
                    if let Some(s) = subset_of(t) {
                        counts[s + 1] += 1;
                    }
                }
                for i in 1..counts.len() {
                    counts[i] += counts[i - 1];
                }
                let starts = counts.clone();
                let mut times = vec![TimeQ::from_int(0); *starts.last().unwrap_or(&0) as usize];
                let mut cursor = counts;
                for &t in stimuli.arrival_times(w.pid) {
                    if let Some(s) = subset_of(t) {
                        times[cursor[s] as usize] = t;
                        cursor[s] += 1;
                    }
                }
                for s in 0..total {
                    times[starts[s] as usize..starts[s + 1] as usize].sort();
                }
                ServerArrivals { starts, times }
            })
            .collect()
    }

    /// Resolves one slot against the binned arrivals.
    fn resolve_slot(
        &self,
        frame: u64,
        frame_base: TimeQ,
        tpl: &Template,
        arrivals: &[ServerArrivals],
    ) -> SlotResolution {
        match tpl {
            Template::Periodic {
                arrival,
                deadline_rel,
            } => {
                let inv = frame_base + *arrival;
                SlotResolution {
                    invoked_at: inv,
                    executable: true,
                    deadline: inv + *deadline_rel,
                }
            }
            Template::Server {
                server,
                subset_in_frame,
                slot,
                deadline_rel,
            } => {
                let w = &self.servers[*server];
                let global_subset = frame as i128 * w.subsets_per_frame + subset_in_frame;
                let a = &arrivals[*server];
                let arrival = usize::try_from(global_subset)
                    .ok()
                    .and_then(|s| {
                        let lo = *a.starts.get(s)? as usize;
                        let hi = *a.starts.get(s + 1)? as usize;
                        a.times[lo..hi].get(*slot)
                    })
                    .copied();
                match arrival {
                    Some(t) => SlotResolution {
                        invoked_at: t,
                        executable: true,
                        deadline: t + *deadline_rel,
                    },
                    None => {
                        let close = TimeQ::from_int_i128(global_subset) * w.period;
                        SlotResolution {
                            invoked_at: close,
                            executable: false,
                            deadline: close,
                        }
                    }
                }
            }
        }
    }

    /// Streams every slot resolution in canonical `(frame, job-id)` order
    /// without materializing a [`RoundResolution`] — the simulator copies
    /// directly into its structure-of-arrays round tables.
    pub fn for_each_slot(
        &self,
        stimuli: &Stimuli,
        frames: u64,
        mut f: impl FnMut(SlotResolution),
    ) {
        let arrivals = self.bin_arrivals(stimuli, frames);
        for frame in 0..frames {
            let frame_base = TimeQ::from_int(frame as i64) * self.hyperperiod;
            for tpl in &self.templates {
                f(self.resolve_slot(frame, frame_base, tpl, &arrivals));
            }
        }
    }

    /// Materializes the full per-frame resolution table for one run.
    pub fn resolve(&self, stimuli: &Stimuli, frames: u64) -> RoundResolution {
        let arrivals = self.bin_arrivals(stimuli, frames);
        let mut rounds = Vec::with_capacity(frames as usize);
        for frame in 0..frames {
            let frame_base = TimeQ::from_int(frame as i64) * self.hyperperiod;
            let row = self
                .templates
                .iter()
                .map(|tpl| self.resolve_slot(frame, frame_base, tpl, &arrivals))
                .collect();
            rounds.push(row);
        }
        RoundResolution { rounds }
    }
}

impl RoundResolution {
    /// Resolves every instance from the sporadic arrival traces.
    ///
    /// One-shot convenience composing [`SlotTemplates::build`] and
    /// [`SlotTemplates::resolve`]; callers that resolve the same network
    /// repeatedly should build the templates once and reuse them.
    pub fn resolve(
        net: &Fppn,
        derived: &DerivedTaskGraph,
        stimuli: &Stimuli,
        frames: u64,
    ) -> Self {
        SlotTemplates::build(net, derived).resolve(stimuli, frames)
    }

    /// The resolution of job `id` in `frame`.
    ///
    /// # Panics
    ///
    /// Panics if `frame` or `id` is out of range.
    pub fn get(&self, frame: u64, id: JobId) -> SlotResolution {
        self.rounds[frame as usize][id.index()]
    }

    /// The number of resolved frames.
    pub fn frames(&self) -> u64 {
        self.rounds.len() as u64
    }

    /// Count of executable instances.
    pub fn executable_count(&self) -> usize {
        self.rounds
            .iter()
            .flat_map(|r| r.iter())
            .filter(|s| s.executable)
            .count()
    }
}

/// The cross-frame "wrap" predecessors extending the real-time-semantics
/// ordering over frame boundaries: for every pair of conflicting processes
/// `(p, q)` (same process, FP-related periodic processes, or a sporadic
/// with its user), the *last* job of `p` in frame `f` precedes the *first*
/// job of `q` in frame `f+1`.
///
/// Returns, for each job, the jobs of the **previous** frame it must wait
/// for. Only relevant under overload (a frame overrunning `H`), but
/// necessary to preserve determinism there.
pub fn wrap_predecessors(net: &Fppn, derived: &DerivedTaskGraph) -> Vec<Vec<JobId>> {
    let graph = &derived.graph;
    let mut jobs_of: BTreeMap<ProcessId, Vec<JobId>> = BTreeMap::new();
    for id in graph.job_ids() {
        jobs_of.entry(graph.job(id).process).or_default().push(id);
    }
    for list in jobs_of.values_mut() {
        list.sort_by_key(|&id| graph.job(id).k);
    }
    let related_prime = |a: ProcessId, b: ProcessId| -> bool {
        if a == b {
            return true;
        }
        match (derived.server(a), derived.server(b)) {
            (Some(sa), None) => sa.user == b,
            (None, Some(sb)) => sb.user == a,
            (Some(_), Some(_)) => false,
            (None, None) => net.related(a, b),
        }
    };
    let mut wrap: Vec<Vec<JobId>> = vec![Vec::new(); graph.job_count()];
    for (p, p_jobs) in &jobs_of {
        for (q, q_jobs) in &jobs_of {
            if related_prime(*p, *q) {
                let last_p = *p_jobs.last().expect("non-empty");
                let first_q = *q_jobs.first().expect("non-empty");
                wrap[first_q.index()].push(last_p);
            }
        }
    }
    wrap
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::derive::derive_task_graph;
    use crate::wcet::WcetModel;
    use fppn_core::{ChannelKind, EventSpec, FppnBuilder, ProcessSpec, SporadicTrace};

    fn ms(v: i64) -> TimeQ {
        TimeQ::from_ms(v)
    }

    fn sporadic_net(cfg_priority: bool) -> (Fppn, ProcessId, ProcessId) {
        let mut b = FppnBuilder::new();
        let user = b.process(ProcessSpec::new("user", EventSpec::periodic(ms(200))));
        let cfg = b.process(ProcessSpec::new("cfg", EventSpec::sporadic(2, ms(700))));
        b.channel("c", cfg, user, ChannelKind::Blackboard);
        if cfg_priority {
            b.priority(cfg, user);
        } else {
            b.priority(user, cfg);
        }
        let (net, _) = b.build().unwrap();
        (net, user, cfg)
    }

    #[test]
    fn periodic_instances_always_executable() {
        let (net, user, _) = sporadic_net(true);
        let derived = derive_task_graph(&net, &WcetModel::default()).unwrap();
        let res = RoundResolution::resolve(&net, &derived, &Stimuli::new(), 3);
        let u1 = derived.graph.find(user, 1).unwrap();
        for f in 0..3 {
            let r = res.get(f, u1);
            assert!(r.executable);
            assert_eq!(r.invoked_at, ms(200 * f as i64));
            assert_eq!(r.deadline, ms(200 * f as i64 + 200));
        }
        assert_eq!(res.frames(), 3);
    }

    #[test]
    fn arrival_maps_to_slot_and_rest_are_false() {
        let (net, _, cfg) = sporadic_net(true);
        let derived = derive_task_graph(&net, &WcetModel::default()).unwrap();
        let mut stimuli = Stimuli::new();
        stimuli.arrivals(cfg, SporadicTrace::new(vec![ms(150)]));
        let res = RoundResolution::resolve(&net, &derived, &stimuli, 2);
        let c1 = derived.graph.find(cfg, 1).unwrap();
        let c2 = derived.graph.find(cfg, 2).unwrap();
        // Arrival 150 -> subset at b = 200 (frame 1, subset 0).
        assert!(!res.get(0, c1).executable); // window (-200, 0]: empty
        assert!(!res.get(0, c2).executable);
        let r = res.get(1, c1);
        assert!(r.executable);
        assert_eq!(r.invoked_at, ms(150));
        assert_eq!(r.deadline, ms(150 + 700));
        assert!(!res.get(1, c2).executable);
        assert_eq!(res.get(1, c2).invoked_at, ms(200)); // marked false at b
        assert_eq!(res.executable_count(), 2 /* user */ + 1);
    }

    #[test]
    fn boundary_arrival_respects_rule() {
        for (cfg_priority, expect_frame) in [(true, 1u64), (false, 2u64)] {
            let (net, _, cfg) = sporadic_net(cfg_priority);
            let derived = derive_task_graph(&net, &WcetModel::default()).unwrap();
            let mut stimuli = Stimuli::new();
            stimuli.arrivals(cfg, SporadicTrace::new(vec![ms(200)]));
            let res = RoundResolution::resolve(&net, &derived, &stimuli, 3);
            let c1 = derived.graph.find(cfg, 1).unwrap();
            for f in 0..3 {
                assert_eq!(
                    res.get(f, c1).executable,
                    f == expect_frame,
                    "priority {cfg_priority}, frame {f}"
                );
            }
        }
    }

    #[test]
    fn wrap_predecessors_link_conflicting_processes() {
        let (net, user, cfg) = sporadic_net(true);
        let derived = derive_task_graph(&net, &WcetModel::default()).unwrap();
        let wrap = wrap_predecessors(&net, &derived);
        let u1 = derived.graph.find(user, 1).unwrap();
        let c1 = derived.graph.find(cfg, 1).unwrap();
        let c2 = derived.graph.find(cfg, 2).unwrap();
        // user[1] (first of next frame) waits for last user job and last
        // cfg job of the previous frame.
        assert!(wrap[u1.index()].contains(&u1));
        assert!(wrap[u1.index()].contains(&c2));
        // cfg[1] likewise waits for user[1] and cfg[2] of previous frame.
        assert!(wrap[c1.index()].contains(&u1));
        assert!(wrap[c1.index()].contains(&c2));
    }
}
