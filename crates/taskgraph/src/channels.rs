//! Static channel-dependency analysis of an FPPN's data plane.
//!
//! Def. 2.1 gives every channel exactly one writer and one reader, so the
//! channels induce a *process-level* dataflow graph: `w → r` whenever some
//! channel is written by `w` and read by `r`. The sharded behavior executor
//! (`fppn-sim`) uses this map three ways:
//!
//! * the **direct writers** of a process are the rendezvous partners of its
//!   jobs (a job may read a channel once the writer has committed every job
//!   canonically ordered before it);
//! * the **upstream closure** identifies pure sources (no waits at all) and
//!   bounds how far a stall can propagate;
//! * the **weakly-connected components** are fully independent clusters —
//!   processes in different components never exchange data, so an executor
//!   can partition them across workers without any cross-worker rendezvous.
//!
//! Self-loop channels (`writer == reader`) are excluded everywhere: jobs of
//! one process are already totally ordered by the model's same-process
//! precedence, so a self-loop needs no synchronization.

use fppn_core::{ChannelId, Fppn, ProcessId};

/// The channel-dependency map of a network (see the module docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChannelDependencyMap {
    /// Per process: cross-process channels it reads, `ChannelId`-ascending.
    reads: Vec<Vec<ChannelId>>,
    /// Per process: cross-process channels it writes, `ChannelId`-ascending.
    writes: Vec<Vec<ChannelId>>,
    /// Per process: self-loop channels, `ChannelId`-ascending.
    self_loops: Vec<Vec<ChannelId>>,
    /// Per process: distinct writer processes of its read channels,
    /// `ProcessId`-ascending (never contains the process itself).
    direct_writers: Vec<Vec<ProcessId>>,
    /// Per process: every process reachable *backwards* through read ports
    /// (transitive closure of `direct_writers`), `ProcessId`-ascending.
    upstream: Vec<Vec<ProcessId>>,
    /// Weakly-connected components of the writer→reader graph, each
    /// `ProcessId`-ascending; singleton components are isolated processes.
    components: Vec<Vec<ProcessId>>,
}

impl ChannelDependencyMap {
    /// Computes the map for a network.
    pub fn analyze(net: &Fppn) -> Self {
        let n = net.process_count();
        let mut reads = vec![Vec::new(); n];
        let mut writes = vec![Vec::new(); n];
        let mut self_loops = vec![Vec::new(); n];
        let mut direct_writers: Vec<Vec<ProcessId>> = vec![Vec::new(); n];
        // Channel ids ascend, so every per-process list ends up sorted.
        for (i, spec) in net.channels().iter().enumerate() {
            let ch = ChannelId::from_index(i);
            if spec.is_self_loop() {
                self_loops[spec.writer().index()].push(ch);
                continue;
            }
            reads[spec.reader().index()].push(ch);
            writes[spec.writer().index()].push(ch);
            direct_writers[spec.reader().index()].push(spec.writer());
        }
        for list in &mut direct_writers {
            list.sort();
            list.dedup();
        }

        // Upstream closure: BFS over direct_writers from each process.
        let mut upstream = vec![Vec::new(); n];
        let mut mark = vec![usize::MAX; n];
        for p in 0..n {
            let mut queue: Vec<ProcessId> = direct_writers[p].clone();
            for &w in &queue {
                mark[w.index()] = p;
            }
            let mut head = 0;
            while head < queue.len() {
                let w = queue[head];
                head += 1;
                for &ww in &direct_writers[w.index()] {
                    if mark[ww.index()] != p {
                        mark[ww.index()] = p;
                        queue.push(ww);
                    }
                }
            }
            queue.sort();
            upstream[p] = queue;
        }

        // Weakly-connected components via union-find over channel edges.
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        for spec in net.channels() {
            if spec.is_self_loop() {
                continue;
            }
            let (a, b) = (
                find(&mut parent, spec.writer().index()),
                find(&mut parent, spec.reader().index()),
            );
            if a != b {
                // Root at the smaller index so component order is stable.
                parent[a.max(b)] = a.min(b);
            }
        }
        let mut by_root: Vec<Vec<ProcessId>> = vec![Vec::new(); n];
        for p in 0..n {
            let r = find(&mut parent, p);
            by_root[r].push(ProcessId::from_index(p));
        }
        let components: Vec<Vec<ProcessId>> =
            by_root.into_iter().filter(|c| !c.is_empty()).collect();

        ChannelDependencyMap {
            reads,
            writes,
            self_loops,
            direct_writers,
            upstream,
            components,
        }
    }

    /// Cross-process channels `pid` reads, `ChannelId`-ascending — the
    /// exact order in which the sharded executor supplies per-channel
    /// visibility counts.
    pub fn reads(&self, pid: ProcessId) -> &[ChannelId] {
        &self.reads[pid.index()]
    }

    /// Cross-process channels `pid` writes, `ChannelId`-ascending.
    pub fn writes(&self, pid: ProcessId) -> &[ChannelId] {
        &self.writes[pid.index()]
    }

    /// Self-loop channels of `pid`, `ChannelId`-ascending.
    pub fn self_loops(&self, pid: ProcessId) -> &[ChannelId] {
        &self.self_loops[pid.index()]
    }

    /// Distinct writer processes feeding `pid`'s read ports (never `pid`
    /// itself), `ProcessId`-ascending.
    pub fn direct_writers(&self, pid: ProcessId) -> &[ProcessId] {
        &self.direct_writers[pid.index()]
    }

    /// Every process reachable upstream of `pid` through read ports
    /// (transitive closure of [`ChannelDependencyMap::direct_writers`]),
    /// `ProcessId`-ascending. Contains `pid` itself only if `pid` sits on a
    /// cross-process data cycle.
    pub fn upstream(&self, pid: ProcessId) -> &[ProcessId] {
        &self.upstream[pid.index()]
    }

    /// Whether `pid` reads no cross-process channel at all (a pure source:
    /// its jobs never wait on the rendezvous).
    pub fn is_source(&self, pid: ProcessId) -> bool {
        self.direct_writers[pid.index()].is_empty()
    }

    /// Weakly-connected components of the writer→reader graph, each sorted
    /// `ProcessId`-ascending, ordered by their smallest member.
    pub fn components(&self) -> &[Vec<ProcessId>] {
        &self.components
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fppn_core::{ChannelKind, EventSpec, FppnBuilder, ProcessSpec};
    use fppn_time::TimeQ;

    fn ms(v: i64) -> TimeQ {
        TimeQ::from_ms(v)
    }

    fn pid(i: usize) -> ProcessId {
        ProcessId::from_index(i)
    }

    #[test]
    fn self_loops_are_local_not_dependencies() {
        let mut b = FppnBuilder::new();
        let a = b.process(ProcessSpec::new("a", EventSpec::periodic(ms(10))));
        let c = b.process(ProcessSpec::new("c", EventSpec::periodic(ms(10))));
        let lp = b.channel("state", a, a, ChannelKind::Blackboard);
        let x = b.channel("x", a, c, ChannelKind::Fifo);
        b.priority(a, c);
        let (net, _) = b.build().unwrap();
        let m = ChannelDependencyMap::analyze(&net);
        assert_eq!(m.self_loops(a), &[lp]);
        assert_eq!(m.reads(a), &[] as &[ChannelId]);
        assert_eq!(m.direct_writers(a), &[] as &[ProcessId]);
        assert!(m.is_source(a));
        assert_eq!(m.reads(c), &[x]);
        assert_eq!(m.direct_writers(c), &[a]);
        assert_eq!(m.upstream(c), &[a]);
        assert!(!m.upstream(a).contains(&a), "self-loop is not upstream");
    }

    #[test]
    fn diamond_fan_in_closure_and_writers() {
        // src -> {l, r} -> sink, plus a second src->sink channel: sink's
        // direct writers dedupe to {src, l, r}, closure adds nothing new.
        let mut b = FppnBuilder::new();
        let src = b.process(ProcessSpec::new("src", EventSpec::periodic(ms(10))));
        let l = b.process(ProcessSpec::new("l", EventSpec::periodic(ms(10))));
        let r = b.process(ProcessSpec::new("r", EventSpec::periodic(ms(10))));
        let sink = b.process(ProcessSpec::new("sink", EventSpec::periodic(ms(10))));
        b.channel("sl", src, l, ChannelKind::Fifo);
        b.channel("sr", src, r, ChannelKind::Fifo);
        b.channel("ls", l, sink, ChannelKind::Fifo);
        b.channel("rs", r, sink, ChannelKind::Blackboard);
        b.channel("ss1", src, sink, ChannelKind::Fifo);
        b.channel("ss2", src, sink, ChannelKind::Blackboard);
        b.priority(src, l);
        b.priority(src, r);
        b.priority(l, sink);
        b.priority(r, sink);
        b.priority(src, sink);
        let (net, _) = b.build().unwrap();
        let m = ChannelDependencyMap::analyze(&net);
        assert_eq!(m.direct_writers(sink), &[src, l, r]);
        assert_eq!(m.upstream(sink), &[src, l, r]);
        assert_eq!(m.upstream(l), &[src]);
        assert_eq!(m.reads(sink).len(), 4);
        assert_eq!(m.components(), &[vec![src, l, r, sink]]);
    }

    #[test]
    fn multirate_period_ratios_do_not_change_the_map() {
        // The map is purely structural: a 100ms writer feeding a 400ms
        // reader (4:1) and the same wiring at 1:1 yield identical maps.
        let build = |t_reader: i64| {
            let mut b = FppnBuilder::new();
            let w = b.process(ProcessSpec::new("w", EventSpec::periodic(ms(100))));
            let r = b.process(ProcessSpec::new("r", EventSpec::periodic(ms(t_reader))));
            b.channel("c", w, r, ChannelKind::Fifo);
            b.priority(w, r);
            b.build().unwrap().0
        };
        let fast = ChannelDependencyMap::analyze(&build(100));
        let slow = ChannelDependencyMap::analyze(&build(400));
        assert_eq!(fast, slow);
        assert_eq!(fast.direct_writers(pid(1)), &[pid(0)]);
    }

    #[test]
    fn disconnected_processes_form_singleton_components() {
        let mut b = FppnBuilder::new();
        let a = b.process(ProcessSpec::new("a", EventSpec::periodic(ms(10))));
        let c = b.process(ProcessSpec::new("c", EventSpec::periodic(ms(10))));
        let d = b.process(ProcessSpec::new("d", EventSpec::periodic(ms(10))));
        b.channel("x", a, c, ChannelKind::Fifo);
        b.priority(a, c);
        // `d` only has a self-loop: data-independent of everything.
        b.channel("dd", d, d, ChannelKind::Blackboard);
        let (net, _) = b.build().unwrap();
        let m = ChannelDependencyMap::analyze(&net);
        assert_eq!(m.components(), &[vec![a, c], vec![d]]);
        assert!(m.is_source(d));
    }

    #[test]
    fn chain_closure_is_transitive() {
        let mut b = FppnBuilder::new();
        let ids: Vec<ProcessId> = (0..5)
            .map(|i| b.process(ProcessSpec::new(format!("p{i}"), EventSpec::periodic(ms(10)))))
            .collect();
        for w in ids.windows(2) {
            b.channel(format!("c{}", w[0]), w[0], w[1], ChannelKind::Fifo);
            b.priority(w[0], w[1]);
        }
        let (net, _) = b.build().unwrap();
        let m = ChannelDependencyMap::analyze(&net);
        assert_eq!(m.direct_writers(ids[4]), &[ids[3]]);
        assert_eq!(m.upstream(ids[4]), &ids[..4]);
        assert_eq!(m.upstream(ids[0]), &[] as &[ProcessId]);
    }
}
