//! Jobs: the nodes of a task graph (Def. 3.1).

use std::fmt;

use fppn_core::ProcessId;
use fppn_time::TimeQ;

/// Index of a job within one [`TaskGraph`](crate::TaskGraph).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub(crate) u32);

impl JobId {
    /// The dense index of this job.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `JobId` from a dense index.
    pub const fn from_index(index: usize) -> Self {
        JobId(index as u32)
    }
}

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "J{}", self.0)
    }
}

/// A job `J_i = (p_i, k_i, A_i, D_i, C_i)` per Def. 3.1: the `k`-th
/// invocation of process `p`, with arrival time `A`, absolute required time
/// (deadline) `D` and worst-case execution time `C`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Job {
    /// The process this job belongs to (`p_i`).
    pub process: ProcessId,
    /// The 1-based invocation count (`k_i`).
    pub k: u64,
    /// Arrival time `A_i ∈ ℚ≥0`, relative to the frame start.
    pub arrival: TimeQ,
    /// Absolute deadline `D_i ∈ ℚ+` (possibly truncated to the hyperperiod).
    pub deadline: TimeQ,
    /// Worst-case execution time `C_i ∈ ℚ+`.
    pub wcet: TimeQ,
    /// Whether this node is a *server job* standing in for a sporadic
    /// process (§III-A); server jobs may be skipped ("false") at run time.
    pub is_server: bool,
}

impl Job {
    /// The relative deadline `D_i − A_i`.
    pub fn relative_deadline(&self) -> TimeQ {
        self.deadline - self.arrival
    }

    /// Whether the job can possibly meet its deadline in isolation.
    pub fn is_locally_feasible(&self) -> bool {
        self.arrival + self.wcet <= self.deadline
    }
}

impl fmt::Display for Job {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] (A={}, D={}, C={})",
            self.process, self.k, self.arrival, self.deadline, self.wcet
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(a: i64, d: i64, c: i64) -> Job {
        Job {
            process: ProcessId::from_index(0),
            k: 1,
            arrival: TimeQ::from_ms(a),
            deadline: TimeQ::from_ms(d),
            wcet: TimeQ::from_ms(c),
            is_server: false,
        }
    }

    #[test]
    fn relative_deadline_and_feasibility() {
        let j = job(100, 200, 25);
        assert_eq!(j.relative_deadline(), TimeQ::from_ms(100));
        assert!(j.is_locally_feasible());
        assert!(!job(0, 20, 25).is_locally_feasible());
    }

    #[test]
    fn display_matches_paper_notation() {
        let j = job(0, 200, 25);
        assert_eq!(j.to_string(), "P0[1] (A=0, D=200, C=25)");
        assert_eq!(JobId::from_index(4).to_string(), "J4");
    }
}
