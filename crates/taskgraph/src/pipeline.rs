//! Pipelined (multi-frame) scheduling support — the paper's declared
//! future work ("In future work we plan to support buffering and
//! pipelining", §VI).
//!
//! The §III-B algorithm is deliberately *non-pipelined*: deadlines are
//! truncated to the hyperperiod so consecutive frame executions never
//! overlap. That conservatively rejects networks whose relative deadlines
//! exceed their periods even when plenty of parallelism is available.
//! [`unroll_for_pipelining`] lifts the restriction: it unrolls `factor`
//! frames into one task graph, restores the *untruncated* deadlines
//! (`A_i + d_p`), and links consecutive
//! frames with the same wrap-around conflict edges the online policy uses.
//! List-scheduling the unrolled graph yields an overlapped (software
//! pipelined) static schedule; steady-state behaviour is approximated by
//! increasing `factor`.

use fppn_core::Fppn;
use fppn_time::TimeQ;

use crate::derive::DerivedTaskGraph;
use crate::graph::TaskGraph;
use crate::job::{Job, JobId};
use crate::slots::wrap_predecessors;

/// Unrolls `factor` frames of a derived task graph into a single graph
/// with untruncated deadlines, enabling pipelined static scheduling.
///
/// # Panics
///
/// Panics if `factor == 0`.
pub fn unroll_for_pipelining(
    net: &Fppn,
    derived: &DerivedTaskGraph,
    factor: u64,
) -> TaskGraph {
    assert!(factor > 0, "need at least one frame");
    let base = &derived.graph;
    let h = derived.hyperperiod;
    // The graph spans `factor` frames; deadlines are NOT truncated, so the
    // schedule of the last wave may legitimately spill past the horizon —
    // that is exactly what pipelining permits.
    let horizon = TimeQ::from_int(factor as i64) * h;
    let n = base.job_count();

    // Per-process relative deadline (server-corrected for sporadics).
    let relative_deadline = |job: &Job| -> TimeQ {
        match derived.server(job.process) {
            Some(server) => server.job_deadline,
            None => net.process(job.process).event().deadline(),
        }
    };
    let jobs_of_process = |p| base.jobs().iter().filter(|j| j.process == p).count() as u64;

    let mut jobs = Vec::with_capacity(n * factor as usize);
    for f in 0..factor {
        let shift = TimeQ::from_int(f as i64) * h;
        for j in base.jobs() {
            let arrival = j.arrival + shift;
            jobs.push(Job {
                process: j.process,
                k: j.k + f * jobs_of_process(j.process),
                arrival,
                deadline: arrival + relative_deadline(j),
                wcet: j.wcet,
                is_server: j.is_server,
            });
        }
    }
    let mut graph = TaskGraph::new(jobs, horizon);
    let idx = |f: u64, id: JobId| JobId::from_index(f as usize * n + id.index());
    for f in 0..factor {
        for (a, b) in base.edges() {
            graph.add_edge(idx(f, a), idx(f, b));
        }
    }
    let wraps = wrap_predecessors(net, derived);
    for f in 1..factor {
        for id in base.job_ids() {
            for &p in &wraps[id.index()] {
                graph.add_edge(idx(f - 1, p), idx(f, id));
            }
        }
    }
    graph.transitive_reduction();
    graph
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::necessary_condition;
    use crate::derive::derive_task_graph;
    use crate::wcet::WcetModel;
    use fppn_core::{ChannelKind, EventSpec, FppnBuilder, ProcessSpec};

    fn ms(v: i64) -> TimeQ {
        TimeQ::from_ms(v)
    }

    /// Three-stage chain, T = 100 ms, d = 200 ms, C = 40 ms each:
    /// per-wave latency 120 ms exceeds the period but not the deadline.
    fn deep_chain() -> Fppn {
        let mut b = FppnBuilder::new();
        let spec = |n: &str| {
            ProcessSpec::new(n, EventSpec::periodic(ms(100)).with_deadline(ms(200)))
        };
        let a = b.process(spec("a"));
        let m = b.process(spec("m"));
        let z = b.process(spec("z"));
        b.channel("c1", a, m, ChannelKind::Fifo);
        b.channel("c2", m, z, ChannelKind::Fifo);
        b.priority(a, m);
        b.priority(m, z);
        b.build().unwrap().0
    }

    #[test]
    fn non_pipelined_truncation_rejects_deep_chain() {
        let net = deep_chain();
        let derived = derive_task_graph(&net, &WcetModel::uniform(ms(40))).unwrap();
        // Truncated deadlines (H = 100 ms) make the 120 ms chain
        // infeasible on any processor count.
        assert!(necessary_condition(&derived.graph, 64).is_err());
    }

    #[test]
    fn unrolled_graph_restores_true_deadlines_and_becomes_feasible() {
        let net = deep_chain();
        let derived = derive_task_graph(&net, &WcetModel::uniform(ms(40))).unwrap();
        let unrolled = unroll_for_pipelining(&net, &derived, 4);
        assert_eq!(unrolled.job_count(), 12);
        assert_eq!(unrolled.hyperperiod(), ms(400));
        // Frame-1 job of `a` keeps its real 200 ms relative deadline.
        let a = net.process_by_name("a").unwrap();
        let a2 = unrolled.find(a, 2).unwrap();
        assert_eq!(unrolled.job(a2).arrival, ms(100));
        assert_eq!(unrolled.job(a2).deadline, ms(300));
        // With overlap permitted, the necessary condition now admits the
        // graph on 2 processors (per-frame work 120 ms per 100 ms period).
        assert!(necessary_condition(&unrolled, 2).is_ok());
    }

    #[test]
    fn pipelined_schedule_overlaps_frames() {
        use fppn_core::ProcessId;
        let net = deep_chain();
        let derived = derive_task_graph(&net, &WcetModel::uniform(ms(40))).unwrap();
        let unrolled = unroll_for_pipelining(&net, &derived, 4);
        // Hand list-scheduling via the sched crate would be a dependency
        // cycle; emulate greedy 2-processor EDF here to show overlap: we
        // only check the *structure* allows a frame-1 job to start before
        // frame-0's chain completes.
        let a = net.process_by_name("a").unwrap();
        let z = net.process_by_name("z").unwrap();
        let a2 = unrolled.find(a, 2).unwrap();
        let z1 = unrolled.find(z, 1).unwrap();
        // a[2] (frame 1) is not a successor of z[1] (frame 0 chain end):
        // the pipeline may start wave 2 while wave 1 is finishing.
        assert!(!unrolled.is_reachable(z1, a2));
        // But conflicting jobs stay ordered: a[1] -> a[2].
        let a1 = unrolled.find(a, 1).unwrap();
        assert!(unrolled.is_reachable(a1, a2));
        let _ = ProcessId::from_index(0);
    }

    #[test]
    fn wrap_edges_preserve_sporadic_user_ordering_across_frames() {
        let mut b = FppnBuilder::new();
        let user = b.process(ProcessSpec::new("user", EventSpec::periodic(ms(200))));
        let cfg = b.process(ProcessSpec::new(
            "cfg",
            EventSpec::sporadic(1, ms(400)).with_deadline(ms(600)),
        ));
        b.channel("c", cfg, user, ChannelKind::Blackboard);
        b.priority(cfg, user);
        let (net, _) = b.build().unwrap();
        let derived = derive_task_graph(&net, &WcetModel::uniform(ms(10))).unwrap();
        let unrolled = unroll_for_pipelining(&net, &derived, 3);
        let user_id = net.process_by_name("user").unwrap();
        let cfg_id = net.process_by_name("cfg").unwrap();
        // cfg[1] (frame 0) must precede user[2] (frame 1): conflict pair.
        let c1 = unrolled.find(cfg_id, 1).unwrap();
        let u2 = unrolled.find(user_id, 2).unwrap();
        assert!(unrolled.is_reachable(c1, u2));
    }

    #[test]
    #[should_panic(expected = "at least one frame")]
    fn zero_factor_panics() {
        let net = deep_chain();
        let derived = derive_task_graph(&net, &WcetModel::uniform(ms(10))).unwrap();
        let _ = unroll_for_pipelining(&net, &derived, 0);
    }
}
