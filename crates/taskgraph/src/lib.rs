//! # fppn-taskgraph — task-graph derivation and analysis (§III-A/B)
//!
//! From the schedulable subclass of FPPNs (every sporadic process has one
//! periodic user with a shorter-or-equal period) this crate statically
//! derives the **task graph**: the DAG of jobs over one hyperperiod, with
//! arrival times, deadlines, WCETs and precedence edges between conflicting
//! jobs — the input to the compile-time scheduler in `fppn-sched`.
//!
//! It also provides the analysis toolkit of §III-B: ASAP/ALAP times, the
//! precedence-aware **load** metric and the necessary schedulability
//! condition of Prop. 3.1.
//!
//! # Examples
//!
//! ```
//! use fppn_core::{ChannelKind, EventSpec, FppnBuilder, ProcessSpec};
//! use fppn_taskgraph::{derive_task_graph, load, WcetModel};
//! use fppn_time::TimeQ;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let ms = TimeQ::from_ms;
//! let mut b = FppnBuilder::new();
//! let fast = b.process(ProcessSpec::new("fast", EventSpec::periodic(ms(100))));
//! let slow = b.process(ProcessSpec::new("slow", EventSpec::periodic(ms(200))));
//! b.channel("c", fast, slow, ChannelKind::Fifo);
//! b.priority(fast, slow);
//! let (net, _) = b.build()?;
//!
//! let derived = derive_task_graph(&net, &WcetModel::uniform(ms(20)))?;
//! assert_eq!(derived.hyperperiod, ms(200));
//! assert_eq!(derived.graph.job_count(), 3);
//! let l = load(&derived.graph);
//! assert!(l.load <= TimeQ::ONE);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analysis;
mod channels;
mod derive;
mod graph;
mod job;
mod pipeline;
mod slots;
mod wcet;

pub use analysis::{load, load_with, necessary_condition, AsapAlap, Infeasibility, LoadResult};
pub use channels::ChannelDependencyMap;
pub use derive::{
    derive_task_graph, derive_task_graph_unreduced, DeriveError, DerivedTaskGraph, ServerSpec,
};
pub use graph::TaskGraph;
pub use job::{Job, JobId};
pub use pipeline::unroll_for_pipelining;
pub use slots::{wrap_predecessors, RoundResolution, SlotResolution, SlotTemplates};
pub use wcet::WcetModel;
