//! Differential test-suite: the parallel and pipelined backends against
//! the sequential oracle (the same pattern that proves the event-driven
//! scheduler against `list_schedule_naive`).
//!
//! Bit-identity is asserted on every component of a [`SimRun`]: the
//! per-round [`fppn_sim::JobRecord`]s (exact rational times, processors,
//! ranks), the Gantt segments, the statistics, and the observables —
//! across random workloads, sporadic densities, overhead models,
//! exec-time models and worker counts. Every parallel run is exercised
//! three ways: with behaviors replayed sequentially, with the **sharded
//! data plane** behind the barrier (`parallel_behaviors`), and with the
//! **streaming pipeline** (`pipeline`), which overlaps behavior execution
//! with round computation — all of which must be bit-identical.

use fppn_apps::{
    adversarial_presets, fms_network, fms_wcet, random_workload, synthetic_fppn, FmsVariant,
    SyntheticFppnConfig, SyntheticGraphConfig, WorkloadConfig,
};
use fppn_core::Stimuli;
use fppn_sched::{list_schedule, Heuristic};
use fppn_sim::hotpath::SeqRounds;
use fppn_sim::{
    adversarial_stimuli, clip_stimuli, compile_key, random_stimuli, simulate, simulate_parallel,
    simulate_pipelined, simulate_seq, AdversarialClass, CompileConfig, CompiledNetwork,
    ExecTimeModel, OverheadModel, RunScratch, SimConfig, SimRun, StaticTables,
};
use fppn_taskgraph::derive_task_graph;
use fppn_time::TimeQ;
use proptest::prelude::*;

fn assert_bit_identical(seq: &SimRun, par: &SimRun, label: &str) {
    assert_eq!(seq.records, par.records, "{label}: records diverged");
    assert_eq!(
        seq.observables.diff(&par.observables),
        None,
        "{label}: observables diverged"
    );
    assert_eq!(seq.observables, par.observables, "{label}: observables !=");
    assert_eq!(seq.gantt, par.gantt, "{label}: gantt diverged");
    assert_eq!(seq.stats, par.stats, "{label}: stats diverged");
}

/// One workload, every axis: processors × heuristics × exec-time models ×
/// overheads × worker counts, over several frames with random stimuli.
fn check_workload(cfg: &WorkloadConfig, density: u32, frames: u64, workers: &[usize]) {
    let w = random_workload(cfg);
    let derived = derive_task_graph(&w.net, &w.wcet).expect("derivable");
    let horizon = TimeQ::from_int(frames as i64) * derived.hyperperiod;
    let stimuli = random_stimuli(&w.net, horizon, density, cfg.seed ^ 0x00C0_FFEE);
    let stimuli = clip_stimuli(&w.net, &derived, &stimuli, frames);
    for m in [1usize, 2, 4] {
        let schedule = list_schedule(&derived.graph, m, Heuristic::AlapEdf);
        for (exec, overhead) in [
            (ExecTimeModel::Wcet, OverheadModel::NONE),
            (
                ExecTimeModel::typical_jitter(cfg.seed ^ 0xA5),
                OverheadModel::NONE,
            ),
            (ExecTimeModel::Wcet, OverheadModel::constant(TimeQ::from_ms(9))),
        ] {
            let config = SimConfig {
                frames,
                overhead,
                exec_time: exec,
                ..SimConfig::default()
            };
            let seq = simulate_seq(&w.net, &w.bank, &stimuli, &derived, &schedule, &config)
                .expect("sequential oracle");
            for &workers in workers {
                for parallel_behaviors in [false, true] {
                    let par = simulate_parallel(
                        &w.net,
                        &w.bank,
                        &stimuli,
                        &derived,
                        &schedule,
                        &SimConfig {
                            workers,
                            parallel_behaviors,
                            ..config
                        },
                    )
                    .expect("parallel backend");
                    assert_bit_identical(
                        &seq,
                        &par,
                        &format!(
                            "seed {} density {density} m {m} workers {workers} \
                             sharded-behaviors {parallel_behaviors} {exec:?} {overhead:?}",
                            cfg.seed
                        ),
                    );
                }
                let pipe = simulate_pipelined(
                    &w.net,
                    &w.bank,
                    &stimuli,
                    &derived,
                    &schedule,
                    &SimConfig {
                        workers,
                        pipeline: true,
                        ..config
                    },
                )
                .expect("pipelined backend");
                assert_bit_identical(
                    &seq,
                    &pipe,
                    &format!(
                        "seed {} density {density} m {m} workers {workers} \
                         pipeline {exec:?} {overhead:?}",
                        cfg.seed
                    ),
                );
            }
        }
    }
}

#[test]
fn parallel_matches_seq_on_pinned_workloads() {
    for seed in 0..4u64 {
        let cfg = WorkloadConfig {
            periodic: 5,
            sporadic: 2,
            seed,
            ..WorkloadConfig::default()
        };
        check_workload(&cfg, 500, 3, &[2, 4, 8]);
    }
}

#[test]
fn parallel_matches_seq_at_extreme_densities() {
    // Density 0 (all server slots false) and 1000 (maximal admissible
    // sporadic rate) stress the skipped-slot and invocation-wait paths.
    for density in [0u32, 1000] {
        let cfg = WorkloadConfig {
            periodic: 4,
            sporadic: 3,
            seed: 7 + density as u64,
            ..WorkloadConfig::default()
        };
        check_workload(&cfg, density, 2, &[2, 4]);
    }
}

/// The behavior-heavy synthetic FPPN — where the data plane dominates —
/// across worker counts and shapes, sharded behaviors on. The third shape
/// turns on the stimulus knobs (sporadic configurators + external input
/// streams), so the server-slot machinery (windows, false slots, input
/// consumption) runs under every backend too.
#[test]
fn sharded_behaviors_match_seq_on_behavior_heavy_workloads() {
    for (label, fppn_cfg) in [
        (
            "layered",
            SyntheticFppnConfig {
                shape: SyntheticGraphConfig {
                    jobs: 30,
                    depth: 5,
                    seed: 11,
                    ..SyntheticGraphConfig::default()
                },
                compute_iters: (20, 200),
                ..SyntheticFppnConfig::default()
            },
        ),
        (
            "fan-skewed",
            SyntheticFppnConfig {
                shape: SyntheticGraphConfig {
                    jobs: 24,
                    depth: 4,
                    max_fan_in: 4,
                    fan_skew_permille: 850,
                    seed: 12,
                    ..SyntheticGraphConfig::default()
                },
                compute_iters: (20, 200),
                ..SyntheticFppnConfig::default()
            },
        ),
        (
            "sporadic+inputs",
            SyntheticFppnConfig {
                shape: SyntheticGraphConfig {
                    jobs: 18,
                    depth: 4,
                    seed: 13,
                    ..SyntheticGraphConfig::default()
                },
                compute_iters: (20, 200),
                sporadic: 3,
                input_permille: 500,
                ..SyntheticFppnConfig::default()
            },
        ),
    ] {
        let w = synthetic_fppn(&fppn_cfg);
        let derived = derive_task_graph(&w.net, &w.wcet).expect("derivable");
        let frames = 3u64;
        let horizon = TimeQ::from_int(frames as i64) * derived.hyperperiod;
        let stimuli = random_stimuli(&w.net, horizon, 700, 0xBEEF ^ fppn_cfg.shape.seed);
        let stimuli = clip_stimuli(&w.net, &derived, &stimuli, frames);
        let config = SimConfig {
            frames,
            ..SimConfig::default()
        };
        for m in [1usize, 2, 4] {
            let schedule = list_schedule(&derived.graph, m, Heuristic::AlapEdf);
            let seq = simulate_seq(&w.net, &w.bank, &stimuli, &derived, &schedule, &config)
                .expect("sequential oracle");
            for workers in [1usize, 2, 4, 8] {
                let par = simulate_parallel(
                    &w.net,
                    &w.bank,
                    &stimuli,
                    &derived,
                    &schedule,
                    &SimConfig {
                        workers,
                        parallel_behaviors: true,
                        ..config
                    },
                )
                .expect("sharded backend");
                assert_bit_identical(&seq, &par, &format!("{label} m {m} workers {workers}"));
                let pipe = simulate_pipelined(
                    &w.net,
                    &w.bank,
                    &stimuli,
                    &derived,
                    &schedule,
                    &SimConfig {
                        workers,
                        pipeline: true,
                        ..config
                    },
                )
                .expect("pipelined backend");
                assert_bit_identical(
                    &seq,
                    &pipe,
                    &format!("{label} m {m} workers {workers} pipeline"),
                );
            }
        }
    }
}

/// Every adversarial stimulus class (boundary-aligned bursts,
/// maximal-density floods, arrival-tie storms, late/extreme inputs)
/// against every backend, *with a runtime-overhead model active* — the
/// axis the property campaign (`tests/properties.rs`) leaves to this
/// suite. Window-edge arrivals under overhead-shifted completions are
/// exactly where a subset-mapping or frontier bug would surface.
#[test]
fn backends_agree_on_adversarial_stimuli_with_overheads() {
    for (label, fppn_cfg) in adversarial_presets() {
        let w = synthetic_fppn(&fppn_cfg);
        let derived = derive_task_graph(&w.net, &w.wcet).expect("derivable");
        let frames = 2u64;
        let horizon = TimeQ::from_int(frames as i64) * derived.hyperperiod;
        let schedule = list_schedule(&derived.graph, 2, Heuristic::AlapEdf);
        for class in AdversarialClass::ALL {
            let raw = adversarial_stimuli(&w.net, &derived, horizon, class, 0xD1FF);
            let stimuli = clip_stimuli(&w.net, &derived, &raw, frames);
            for (exec, overhead) in [
                (ExecTimeModel::Wcet, OverheadModel::constant(TimeQ::from_ms(9))),
                (ExecTimeModel::typical_jitter(0xD1FF), OverheadModel::NONE),
            ] {
                let config = SimConfig {
                    frames,
                    overhead,
                    exec_time: exec,
                    ..SimConfig::default()
                };
                let tag = format!("{label} {} {exec:?} {overhead:?}", class.name());
                let seq = simulate_seq(&w.net, &w.bank, &stimuli, &derived, &schedule, &config)
                    .expect("sequential oracle");
                for parallel_behaviors in [false, true] {
                    let par = simulate_parallel(
                        &w.net,
                        &w.bank,
                        &stimuli,
                        &derived,
                        &schedule,
                        &SimConfig {
                            workers: 4,
                            parallel_behaviors,
                            ..config
                        },
                    )
                    .expect("parallel backend");
                    assert_bit_identical(&seq, &par, &format!("{tag} sharded {parallel_behaviors}"));
                }
                let pipe = simulate_pipelined(
                    &w.net,
                    &w.bank,
                    &stimuli,
                    &derived,
                    &schedule,
                    &SimConfig {
                        workers: 4,
                        pipeline: true,
                        ..config
                    },
                )
                .expect("pipelined backend");
                assert_bit_identical(&seq, &pipe, &format!("{tag} pipeline"));
            }
        }
    }
}

/// Bounded-capacity cross-process FIFOs cannot shard; both the barrier
/// backend and the streaming pipeline must fall back to sequential
/// behavior execution (the pipeline keeps the round/behavior *overlap*,
/// only the behaviors serialize), not panic or diverge.
#[test]
fn sharded_behaviors_fall_back_on_bounded_fifos() {
    use fppn_core::{ChannelKind, ChannelSpec, EventSpec, FppnBuilder, JobCtx, ProcessSpec, Value};
    let ms = TimeQ::from_ms;
    let mut b = FppnBuilder::new();
    let src = b.process(ProcessSpec::new("src", EventSpec::periodic(ms(100))));
    let mid = b.process(ProcessSpec::new("mid", EventSpec::periodic(ms(200))));
    let dst = b.process(ProcessSpec::new("dst", EventSpec::periodic(ms(100))));
    let ch = b.channel_spec(
        ChannelSpec::new("bounded", src, mid, ChannelKind::Fifo)
            .with_capacity(std::num::NonZeroUsize::new(4).unwrap()),
    );
    let c2 = b.channel("c2", mid, dst, ChannelKind::Blackboard);
    b.priority(src, mid);
    b.priority(mid, dst);
    b.behavior(src, move || {
        Box::new(move |ctx: &mut JobCtx<'_>| ctx.write(ch, Value::Int(ctx.k() as i64)))
    });
    b.behavior(mid, move || {
        Box::new(move |ctx: &mut JobCtx<'_>| {
            let mut acc = 0i64;
            while let Some(Value::Int(v)) = ctx.read(ch) {
                acc = acc.wrapping_mul(31).wrapping_add(v);
            }
            ctx.write(c2, Value::Int(acc));
        })
    });
    b.behavior(dst, move || {
        Box::new(move |ctx: &mut JobCtx<'_>| {
            let _ = ctx.read(c2);
        })
    });
    let (net, bank) = b.build().unwrap();
    let derived = derive_task_graph(&net, &fppn_taskgraph::WcetModel::uniform(ms(10))).unwrap();
    let schedule = list_schedule(&derived.graph, 2, Heuristic::AlapEdf);
    let config = SimConfig {
        frames: 4,
        ..SimConfig::default()
    };
    let seq = simulate_seq(&net, &bank, &Stimuli::new(), &derived, &schedule, &config).unwrap();
    let par = simulate_parallel(
        &net,
        &bank,
        &Stimuli::new(),
        &derived,
        &schedule,
        &SimConfig {
            workers: 4,
            parallel_behaviors: true,
            ..config
        },
    )
    .unwrap();
    assert_bit_identical(&seq, &par, "bounded-fifo fallback (barrier)");
    for workers in [1usize, 2, 4] {
        let pipe = simulate_pipelined(
            &net,
            &bank,
            &Stimuli::new(),
            &derived,
            &schedule,
            &SimConfig {
                workers,
                pipeline: true,
                ..config
            },
        )
        .unwrap();
        assert_bit_identical(
            &seq,
            &pipe,
            &format!("bounded-fifo fallback (pipelined, {workers} workers)"),
        );
    }
}

/// Forces the pipeline's frontier watermark to *stall*: one upstream
/// writer has an enormous WCET, so its processor's completion frontier
/// lags every other timeline by orders of magnitude. Records piling up on
/// the fast processors must stay uncommitted (their completions are above
/// the watermark) until the slow writer publishes — and the final run must
/// still be bit-identical to the oracle.
#[test]
fn pipeline_stalls_on_late_upstream_writer_without_diverging() {
    use fppn_core::{ChannelKind, EventSpec, FppnBuilder, JobCtx, PortId, ProcessSpec, Value};
    let ms = TimeQ::from_ms;
    let mut b = FppnBuilder::new();
    // `slow` feeds every consumer; consumers tick 8x faster, so dozens of
    // their rounds complete (and queue in the sequencer) while slow[1] is
    // still executing.
    let slow = b.process(ProcessSpec::new("slow", EventSpec::periodic(ms(800))));
    let fast: Vec<_> = (0..3)
        .map(|i| {
            b.process(
                ProcessSpec::new(format!("fast{i}"), EventSpec::periodic(ms(100)))
                    .with_output("o"),
            )
        })
        .collect();
    let mut chans = Vec::new();
    for (i, &f) in fast.iter().enumerate() {
        let ch = b.channel(format!("c{i}"), slow, f, ChannelKind::Blackboard);
        chans.push(ch);
        b.priority(slow, f);
        b.behavior(f, move || {
            Box::new(move |ctx: &mut JobCtx<'_>| {
                let v = ctx.read_value(ch);
                ctx.write_output(PortId::from_index(0), v);
            })
        });
    }
    b.behavior(slow, move || {
        let chans = chans.clone();
        Box::new(move |ctx: &mut JobCtx<'_>| {
            for (i, &ch) in chans.iter().enumerate() {
                ctx.write(ch, Value::Int(1000 * ctx.k() as i64 + i as i64));
            }
        })
    });
    let (net, bank) = b.build().unwrap();
    // slow's WCET fills most of the hyperperiod: its round completes after
    // every fast round of the frame has already been *computed*.
    let mut wcet = fppn_taskgraph::WcetModel::uniform(ms(5));
    wcet.set(net.process_by_name("slow").unwrap(), ms(700));
    let derived = derive_task_graph(&net, &wcet).unwrap();
    // 4 processors: slow owns one timeline outright, the fast processes
    // race ahead on the others.
    let schedule = list_schedule(&derived.graph, 4, Heuristic::AlapEdf);
    let config = SimConfig {
        frames: 5,
        ..SimConfig::default()
    };
    let seq = simulate_seq(&net, &bank, &Stimuli::new(), &derived, &schedule, &config).unwrap();
    for workers in [2usize, 4] {
        let pipe = simulate_pipelined(
            &net,
            &bank,
            &Stimuli::new(),
            &derived,
            &schedule,
            &SimConfig {
                workers,
                pipeline: true,
                ..config
            },
        )
        .unwrap();
        assert_bit_identical(&seq, &pipe, &format!("late-writer stall, {workers} workers"));
    }
}

#[test]
fn dispatcher_routes_on_config_workers() {
    // `simulate` with workers pinned in the config must route identically
    // to the explicit backend entry points. (The env-var resolution path,
    // workers == 0 + FPPN_SIM_WORKERS, is covered by the dedicated CI job
    // that re-runs the whole suite with the variable set — mutating the
    // process environment from a threaded test harness would race.)
    let cfg = WorkloadConfig {
        periodic: 5,
        sporadic: 1,
        seed: 23,
        ..WorkloadConfig::default()
    };
    let w = random_workload(&cfg);
    let derived = derive_task_graph(&w.net, &w.wcet).expect("derivable");
    let frames = 2u64;
    let horizon = TimeQ::from_int(frames as i64) * derived.hyperperiod;
    let stimuli = random_stimuli(&w.net, horizon, 600, 99);
    let stimuli = clip_stimuli(&w.net, &derived, &stimuli, frames);
    let schedule = list_schedule(&derived.graph, 3, Heuristic::BLevel);
    let base = SimConfig {
        frames,
        ..SimConfig::default()
    };
    let seq = simulate(
        &w.net,
        &w.bank,
        &stimuli,
        &derived,
        &schedule,
        &SimConfig { workers: 1, ..base },
    )
    .expect("seq via dispatcher");
    let par = simulate(
        &w.net,
        &w.bank,
        &stimuli,
        &derived,
        &schedule,
        &SimConfig { workers: 4, ..base },
    )
    .expect("par via dispatcher");
    assert_bit_identical(&seq, &par, "dispatcher");
    let pipe = simulate(
        &w.net,
        &w.bank,
        &stimuli,
        &derived,
        &schedule,
        &SimConfig {
            workers: 4,
            pipeline: true,
            ..base
        },
    )
    .expect("pipeline via dispatcher");
    assert_bit_identical(&seq, &pipe, "dispatcher (pipeline)");
}

/// The compile-once artifact against fresh per-call compiles, across all
/// four backends and every adversarial stimulus class: a cached
/// [`CompiledNetwork`] reused for many runs (with a reused [`RunScratch`])
/// must be bit-identical to the classic entry points, which re-derive and
/// re-schedule on every call. This is the cache-identity half of the serve
/// control plane's correctness argument; CI re-runs it under
/// `FPPN_SIM_WORKERS=4` (the test-name filter is `compiled`).
#[test]
fn compiled_artifact_matches_fresh_compile_across_backends() {
    for (label, fppn_cfg) in adversarial_presets() {
        let w = synthetic_fppn(&fppn_cfg);
        let cfg = CompileConfig::new(w.wcet.clone(), 2);
        // Two independent compiles of the same inputs: same key, and the
        // first one stands in for "the cached artifact" below.
        let artifact = CompiledNetwork::compile(w.net.clone(), &cfg).expect("compiles");
        let recompiled = CompiledNetwork::compile(w.net.clone(), &cfg).expect("compiles");
        assert_eq!(
            artifact.content_hash(),
            recompiled.content_hash(),
            "{label}: equal inputs must produce equal compile keys"
        );
        assert_eq!(artifact.content_hash(), compile_key(&w.net, &cfg));

        let derived = derive_task_graph(&w.net, &w.wcet).expect("derivable");
        let schedule = list_schedule(&derived.graph, 2, Heuristic::AlapEdf);
        let frames = 2u64;
        let horizon = TimeQ::from_int(frames as i64) * derived.hyperperiod;
        let mut scratch = RunScratch::new();
        for class in AdversarialClass::ALL {
            let raw = adversarial_stimuli(&w.net, &derived, horizon, class, 0xCAFE);
            let stimuli = clip_stimuli(&w.net, &derived, &raw, frames);
            let config = SimConfig {
                frames,
                exec_time: ExecTimeModel::typical_jitter(0xCAFE),
                overhead: OverheadModel::constant(TimeQ::from_ms(7)),
                ..SimConfig::default()
            };
            let tag = format!("{label} {}", class.name());
            // Fresh compile path: the classic entry point.
            let fresh = simulate_seq(&w.net, &w.bank, &stimuli, &derived, &schedule, &config)
                .expect("fresh sequential");
            // Cache-hit path, all four backends against the one artifact.
            for (backend, run_cfg) in [
                ("seq", config),
                ("parallel", SimConfig { workers: 4, ..config }),
                (
                    "sharded",
                    SimConfig {
                        workers: 4,
                        parallel_behaviors: true,
                        ..config
                    },
                ),
                (
                    "pipelined",
                    SimConfig {
                        workers: 4,
                        pipeline: true,
                        ..config
                    },
                ),
            ] {
                let cached = artifact
                    .simulate(&w.bank, &stimuli, &run_cfg)
                    .expect("cached artifact run");
                assert_bit_identical(&fresh, &cached, &format!("{tag} cached {backend}"));
            }
            // The serve worker path: scratch reused across runs & classes.
            let scratched = artifact
                .simulate_with_scratch(&w.bank, &stimuli, &config, &mut scratch)
                .expect("scratch run");
            assert_bit_identical(&fresh, &scratched, &format!("{tag} cached seq+scratch"));
        }
    }
}

/// Single-field mutations of the compile inputs must each move the
/// content hash: the cache can never serve a stale artifact for a changed
/// network, WCET table, processor count or heuristic.
#[test]
fn compile_key_changes_under_any_single_mutation() {
    use fppn_core::{ChannelKind, EventSpec, FppnBuilder, ProcessSpec};
    use fppn_taskgraph::WcetModel;
    let ms = TimeQ::from_ms;

    // One knob per variant; index 0 is the baseline.
    let build = |period_a: i64, burst: u32, kind: ChannelKind, name_b: &str, extra_edge: bool| {
        let mut b = FppnBuilder::new();
        let a = b.process(ProcessSpec::new("a", EventSpec::periodic(ms(period_a))));
        let s = b.process(ProcessSpec::new("s", EventSpec::sporadic(burst, ms(400))));
        let p_b = b.process(ProcessSpec::new(name_b, EventSpec::periodic(ms(200))));
        b.channel("ab", a, p_b, kind);
        b.channel("sb", s, p_b, ChannelKind::Blackboard);
        b.priority(a, p_b);
        b.priority(s, p_b);
        if extra_edge {
            b.priority(a, s);
        }
        b.build().unwrap().0
    };
    let base_net = build(100, 2, ChannelKind::Fifo, "b", false);
    let base_wcet = WcetModel::uniform(ms(10));
    let base = CompileConfig::new(base_wcet.clone(), 2);

    let mut keys = vec![("baseline", compile_key(&base_net, &base))];
    for (what, net) in [
        ("process period", build(50, 2, ChannelKind::Fifo, "b", false)),
        ("sporadic burst", build(100, 3, ChannelKind::Fifo, "b", false)),
        ("channel kind", build(100, 2, ChannelKind::Blackboard, "b", false)),
        ("process name", build(100, 2, ChannelKind::Fifo, "b2", false)),
        ("priority edge", build(100, 2, ChannelKind::Fifo, "b", true)),
    ] {
        keys.push((what, compile_key(&net, &base)));
    }
    let mut wcet_override = base_wcet.clone();
    wcet_override.set(base_net.process_by_name("a").unwrap(), ms(11));
    keys.push((
        "wcet override",
        compile_key(&base_net, &CompileConfig::new(wcet_override, 2)),
    ));
    keys.push((
        "wcet default",
        compile_key(&base_net, &CompileConfig::new(WcetModel::uniform(ms(12)), 2)),
    ));
    keys.push((
        "processor count",
        compile_key(&base_net, &CompileConfig::new(base_wcet.clone(), 3)),
    ));
    keys.push((
        "heuristic",
        compile_key(
            &base_net,
            &CompileConfig {
                wcet: base_wcet,
                processors: 2,
                heuristic: Heuristic::BLevel,
            },
        ),
    ));

    for i in 0..keys.len() {
        for j in (i + 1)..keys.len() {
            assert_ne!(
                keys[i].1, keys[j].1,
                "mutations {:?} and {:?} collided",
                keys[i].0, keys[j].0
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Seed-pinned differential property: random workload shapes, random
    /// sporadic densities, random exec-time seeds, workers ∈ {2, 4, 8}.
    #[test]
    fn simulate_parallel_equals_simulate_seq(
        periodic in 2usize..6,
        sporadic in 0usize..3,
        density in 0u32..=1000,
        seed in any::<u64>(),
        exec_seed in any::<u64>(),
        m in 1usize..4,
        frames in 1u64..4,
    ) {
        let cfg = WorkloadConfig {
            periodic,
            sporadic,
            seed,
            ..WorkloadConfig::default()
        };
        let w = random_workload(&cfg);
        let derived = derive_task_graph(&w.net, &w.wcet).unwrap();
        let horizon = TimeQ::from_int(frames as i64) * derived.hyperperiod;
        let stimuli = random_stimuli(&w.net, horizon, density, seed ^ 0x5a5a);
        let stimuli = clip_stimuli(&w.net, &derived, &stimuli, frames);
        let schedule = list_schedule(&derived.graph, m, Heuristic::AlapEdf);
        let config = SimConfig {
            frames,
            exec_time: ExecTimeModel::typical_jitter(exec_seed),
            ..SimConfig::default()
        };
        let seq = simulate_seq(&w.net, &w.bank, &stimuli, &derived, &schedule, &config)
            .unwrap();
        for workers in [2usize, 4, 8] {
            for parallel_behaviors in [false, true] {
                let par = simulate_parallel(
                    &w.net,
                    &w.bank,
                    &stimuli,
                    &derived,
                    &schedule,
                    &SimConfig { workers, parallel_behaviors, ..config },
                )
                .unwrap();
                prop_assert_eq!(&seq.records, &par.records);
                prop_assert_eq!(&seq.observables, &par.observables);
                prop_assert_eq!(&seq.gantt, &par.gantt);
                prop_assert_eq!(&seq.stats, &par.stats);
            }
            let pipe = simulate_pipelined(
                &w.net,
                &w.bank,
                &stimuli,
                &derived,
                &schedule,
                &SimConfig { workers, pipeline: true, ..config },
            )
            .unwrap();
            prop_assert_eq!(&seq.records, &pipe.records);
            prop_assert_eq!(&seq.observables, &pipe.observables);
            prop_assert_eq!(&seq.gantt, &pipe.gantt);
            prop_assert_eq!(&seq.stats, &pipe.stats);
        }
    }

    /// Content-hash stability: rebuilding the same random workload from
    /// the same seed always produces the same compile key (so a cache
    /// keyed on it hits across processes and sessions), the compiled
    /// artifact records exactly that key, and changing the processor
    /// count alone moves it.
    #[test]
    fn compile_key_is_stable_across_rebuilds(
        periodic in 2usize..6,
        sporadic in 0usize..3,
        seed in any::<u64>(),
        m in 1usize..4,
    ) {
        let cfg = WorkloadConfig {
            periodic,
            sporadic,
            seed,
            ..WorkloadConfig::default()
        };
        let w1 = random_workload(&cfg);
        let w2 = random_workload(&cfg);
        let c1 = CompileConfig::new(w1.wcet.clone(), m);
        let c2 = CompileConfig::new(w2.wcet.clone(), m);
        prop_assert_eq!(compile_key(&w1.net, &c1), compile_key(&w2.net, &c2));
        let artifact = CompiledNetwork::compile(w1.net.clone(), &c1).unwrap();
        prop_assert_eq!(artifact.content_hash(), compile_key(&w2.net, &c2));
        prop_assert_ne!(
            compile_key(&w1.net, &CompileConfig::new(w1.wcet.clone(), m + 1)),
            artifact.content_hash()
        );
    }
}

/// Frame memoization differential sweep: with `memo: true`, every backend
/// must stay bit-identical to the memo-off sequential oracle — across the
/// adversarial stimulus classes (sporadic bursts, floods, tie storms,
/// external inputs), frame counts spanning no-reuse (1) through heavy
/// reuse (32), and both the memoizing exec model (`Wcet`) and a
/// stochastic one that must fall back to the live loop. Only the
/// sequential round path consults the memo; the parallel and pipelined
/// backends must ignore the flag without diverging.
#[test]
fn memo_on_is_bit_identical_to_memo_off_across_backends() {
    for (label, fppn_cfg) in adversarial_presets() {
        let w = synthetic_fppn(&fppn_cfg);
        let derived = derive_task_graph(&w.net, &w.wcet).expect("derivable");
        let schedule = list_schedule(&derived.graph, 2, Heuristic::AlapEdf);
        for frames in [1u64, 8, 32] {
            let horizon = TimeQ::from_int(frames as i64) * derived.hyperperiod;
            // At 32 frames only the memoizing model is interesting (the
            // stochastic fallback is already pinned at 1 and 8).
            let execs: &[ExecTimeModel] = if frames == 32 {
                &[ExecTimeModel::Wcet]
            } else {
                &[ExecTimeModel::Wcet, ExecTimeModel::typical_jitter(0x3E30)]
            };
            for class in AdversarialClass::ALL {
                let raw = adversarial_stimuli(&w.net, &derived, horizon, class, 0x3E30);
                let stimuli = clip_stimuli(&w.net, &derived, &raw, frames);
                for &exec in execs {
                    let base = SimConfig {
                        frames,
                        exec_time: exec,
                        ..SimConfig::default()
                    };
                    let tag = format!("{label} {} f{frames} {exec:?}", class.name());
                    let oracle =
                        simulate_seq(&w.net, &w.bank, &stimuli, &derived, &schedule, &base)
                            .expect("memo-off oracle");
                    let seq = simulate_seq(
                        &w.net,
                        &w.bank,
                        &stimuli,
                        &derived,
                        &schedule,
                        &SimConfig { memo: true, ..base },
                    )
                    .expect("memo-on sequential");
                    assert_bit_identical(&oracle, &seq, &format!("{tag} seq"));
                    for parallel_behaviors in [false, true] {
                        let par = simulate_parallel(
                            &w.net,
                            &w.bank,
                            &stimuli,
                            &derived,
                            &schedule,
                            &SimConfig {
                                workers: 4,
                                parallel_behaviors,
                                memo: true,
                                ..base
                            },
                        )
                        .expect("memo-on parallel");
                        assert_bit_identical(
                            &oracle,
                            &par,
                            &format!("{tag} sharded {parallel_behaviors}"),
                        );
                    }
                    let pipe = simulate_pipelined(
                        &w.net,
                        &w.bank,
                        &stimuli,
                        &derived,
                        &schedule,
                        &SimConfig {
                            workers: 4,
                            pipeline: true,
                            memo: true,
                            ..base
                        },
                    )
                    .expect("memo-on pipelined");
                    assert_bit_identical(&oracle, &pipe, &format!("{tag} pipeline"));
                }
            }
        }
    }
}

/// On a pure-periodic production workload (FMS) every hyperperiod after
/// the transient settles carries the same relative state, so the frame
/// memo must actually engage — frames replay as hits, not recompute as
/// misses — and the replayed run must equal the memo-off oracle bit for
/// bit.
#[test]
fn memo_replays_settled_periodic_frames_as_hits() {
    let (net, bank, ids) = fms_network(FmsVariant::Original);
    let derived = derive_task_graph(&net, &fms_wcet(&ids)).expect("derivable");
    let schedule = list_schedule(&derived.graph, 4, Heuristic::AlapEdf);
    let tables = StaticTables::build(&net, &derived, &schedule);
    let stimuli = Stimuli::new();
    let config = SimConfig {
        frames: 32,
        memo: true,
        ..SimConfig::default()
    };
    let mut rounds =
        SeqRounds::new(&net, &stimuli, &derived, &tables, &config).expect("round engine");
    rounds.compute().expect("rounds");
    let (hits, misses) = rounds.memo_stats();
    assert_eq!(hits + misses, 32, "memo must be consulted for every frame");
    assert!(
        hits >= 24,
        "periodic frames must replay as hits once settled (hits={hits}, misses={misses})"
    );

    let frames = 8u64;
    let off = simulate_seq(
        &net,
        &bank,
        &stimuli,
        &derived,
        &schedule,
        &SimConfig {
            frames,
            ..SimConfig::default()
        },
    )
    .expect("memo-off oracle");
    let on = simulate_seq(
        &net,
        &bank,
        &stimuli,
        &derived,
        &schedule,
        &SimConfig {
            frames,
            memo: true,
            ..SimConfig::default()
        },
    )
    .expect("memo-on run");
    assert_bit_identical(&off, &on, "fms periodic memo replay");
}

/// The memo's soundness gate: bounded-capacity FIFOs and stochastic
/// exec-time models disqualify the network/config from memoization
/// entirely — the engine must fall back to the live loop (zero lookups,
/// zero hits) and still produce the memo-off result bit for bit.
#[test]
fn memo_disengages_on_bounded_fifos_and_stochastic_exec() {
    use fppn_core::{ChannelKind, ChannelSpec, EventSpec, FppnBuilder, JobCtx, ProcessSpec, Value};
    let ms = TimeQ::from_ms;
    let mut b = FppnBuilder::new();
    let src = b.process(ProcessSpec::new("src", EventSpec::periodic(ms(100))));
    let dst = b.process(ProcessSpec::new("dst", EventSpec::periodic(ms(100))));
    let ch = b.channel_spec(
        ChannelSpec::new("bounded", src, dst, ChannelKind::Fifo)
            .with_capacity(std::num::NonZeroUsize::new(2).unwrap()),
    );
    b.priority(src, dst);
    b.behavior(src, move || {
        Box::new(move |ctx: &mut JobCtx<'_>| ctx.write(ch, Value::Int(ctx.k() as i64)))
    });
    b.behavior(dst, move || {
        Box::new(move |ctx: &mut JobCtx<'_>| while ctx.read(ch).is_some() {})
    });
    let (net, bank) = b.build().unwrap();
    let derived = derive_task_graph(&net, &fppn_taskgraph::WcetModel::uniform(ms(10))).unwrap();
    let schedule = list_schedule(&derived.graph, 2, Heuristic::AlapEdf);
    let tables = StaticTables::build(&net, &derived, &schedule);
    let config = SimConfig {
        frames: 8,
        memo: true,
        ..SimConfig::default()
    };

    let mut rounds =
        SeqRounds::new(&net, &Stimuli::new(), &derived, &tables, &config).expect("round engine");
    rounds.compute().expect("rounds");
    assert_eq!(
        rounds.memo_stats(),
        (0, 0),
        "bounded FIFOs must disable the memo entirely"
    );

    let off = simulate_seq(
        &net,
        &bank,
        &Stimuli::new(),
        &derived,
        &schedule,
        &SimConfig {
            memo: false,
            ..config
        },
    )
    .expect("memo-off oracle");
    let on = simulate_seq(&net, &bank, &Stimuli::new(), &derived, &schedule, &config)
        .expect("memo-on run");
    assert_bit_identical(&off, &on, "bounded-fifo memo fallback");

    // Stochastic exec times: the memo flag stays on but the engine must
    // never consult the table (replay would freeze one sampled timeline).
    let w = random_workload(&WorkloadConfig {
        periodic: 4,
        sporadic: 1,
        seed: 0x3E31,
        ..WorkloadConfig::default()
    });
    let derived = derive_task_graph(&w.net, &w.wcet).unwrap();
    let schedule = list_schedule(&derived.graph, 2, Heuristic::AlapEdf);
    let tables = StaticTables::build(&w.net, &derived, &schedule);
    let jitter = SimConfig {
        frames: 8,
        memo: true,
        exec_time: ExecTimeModel::typical_jitter(0x3E32),
        ..SimConfig::default()
    };
    let mut rounds =
        SeqRounds::new(&w.net, &Stimuli::new(), &derived, &tables, &jitter).expect("round engine");
    rounds.compute().expect("rounds");
    assert_eq!(
        rounds.memo_stats(),
        (0, 0),
        "stochastic exec models must disable the memo entirely"
    );
    let off = simulate_seq(
        &w.net,
        &w.bank,
        &Stimuli::new(),
        &derived,
        &schedule,
        &SimConfig {
            memo: false,
            ..jitter
        },
    )
    .expect("memo-off oracle");
    let on = simulate_seq(&w.net, &w.bank, &Stimuli::new(), &derived, &schedule, &jitter)
        .expect("memo-on run");
    assert_bit_identical(&off, &on, "stochastic memo fallback");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Collision audit for the frame fingerprint: over random workload
    /// shapes and sporadic densities, any two frames that hash to the
    /// same fingerprint must have produced round tables that are exact
    /// time-translates of each other (same jobs, processors, miss/skip
    /// flags; all four timestamps shifted by a whole number of
    /// hyperperiods). A fingerprint collision between genuinely different
    /// carry-in states would surface here as a non-translate pair.
    #[test]
    fn fingerprint_equal_frames_are_time_translates(
        periodic in 2usize..6,
        sporadic in 0usize..3,
        density in 0u32..=1000,
        seed in any::<u64>(),
        m in 1usize..4,
        frames in 2u64..7,
    ) {
        let cfg = WorkloadConfig {
            periodic,
            sporadic,
            seed,
            ..WorkloadConfig::default()
        };
        let w = random_workload(&cfg);
        let derived = derive_task_graph(&w.net, &w.wcet).unwrap();
        let horizon = TimeQ::from_int(frames as i64) * derived.hyperperiod;
        let stimuli = random_stimuli(&w.net, horizon, density, seed ^ 0x3E33);
        let stimuli = clip_stimuli(&w.net, &derived, &stimuli, frames);
        let schedule = list_schedule(&derived.graph, m, Heuristic::AlapEdf);
        let tables = StaticTables::build(&w.net, &derived, &schedule);
        let config = SimConfig {
            frames,
            memo: true,
            exec_time: ExecTimeModel::Wcet,
            ..SimConfig::default()
        };
        let mut rounds = SeqRounds::new(&w.net, &stimuli, &derived, &tables, &config).unwrap();
        let mut fps = Vec::new();
        let records = rounds.compute_fingerprinted(&mut fps).unwrap();
        prop_assert_eq!(fps.len() as u64, frames);

        let mut by_frame: Vec<Vec<&fppn_sim::JobRecord>> = vec![Vec::new(); frames as usize];
        for rec in &records {
            by_frame[rec.frame as usize].push(rec);
        }
        for block in &mut by_frame {
            block.sort_by_key(|r| r.job.index());
        }
        for i in 0..frames as usize {
            for j in (i + 1)..frames as usize {
                if fps[i] != fps[j] {
                    continue;
                }
                let di = TimeQ::from_int(i as i64) * derived.hyperperiod;
                let dj = TimeQ::from_int(j as i64) * derived.hyperperiod;
                prop_assert_eq!(
                    by_frame[i].len(),
                    by_frame[j].len(),
                    "fingerprint-equal frames {} and {} differ in record count",
                    i,
                    j
                );
                for (a, b) in by_frame[i].iter().zip(by_frame[j].iter()) {
                    prop_assert_eq!(a.job, b.job, "frames {} vs {}", i, j);
                    prop_assert_eq!(a.process, b.process, "frames {} vs {}", i, j);
                    prop_assert_eq!(a.processor, b.processor, "frames {} vs {}", i, j);
                    prop_assert_eq!(a.missed, b.missed, "frames {} vs {}", i, j);
                    prop_assert_eq!(a.skipped, b.skipped, "frames {} vs {}", i, j);
                    prop_assert_eq!(a.invoked_at - di, b.invoked_at - dj, "frames {} vs {}", i, j);
                    prop_assert_eq!(a.start - di, b.start - dj, "frames {} vs {}", i, j);
                    prop_assert_eq!(a.completion - di, b.completion - dj, "frames {} vs {}", i, j);
                    prop_assert_eq!(a.deadline - di, b.deadline - dj, "frames {} vs {}", i, j);
                }
            }
        }
    }
}
