//! The semantic property campaign: predictability, sustainability and
//! robustness (Prop. 4.1) under adversarial stimuli.
//!
//! The differential suite proves the four backends *internally*
//! consistent; this suite checks the properties a deterministic
//! multiprocessor execution model must satisfy *semantically*:
//!
//! 1. **Predictability** (Cucu-Grosjean & Goossens, arXiv:0908.3519):
//!    for a fixed network, schedule and stimuli, pointwise-shrinking the
//!    actual execution times must never *delay* any job's completion —
//!    per process and per round. The static-order policy computes every
//!    completion as a composition of `max` and `+` over the execution
//!    time vector (invocations are exec-time independent), so a
//!    violation here is an engine bug, not a semantic finding.
//! 2. **Sustainability** (Cucu & Goossens, arXiv:0801.4292): sparser
//!    sporadic arrivals (period multipliers ≥ 1 on a maximal-density
//!    flood) must never increase the response time of a job present in
//!    both runs, nor introduce a deadline miss on such a job.
//! 3. **Robustness (Prop. 4.1)**: the observable traces are invariant
//!    across all four backends (seq / parallel / sharded / pipeline)
//!    under every adversarial stimulus class, and invariant under the
//!    execution-time variation of the shrink chain.
//!
//! All stimuli come from `stimgen::adversarial` — seed-pinned SplitMix64
//! streams aimed at window boundaries, maximal densities, cross-process
//! arrival ties and late/extreme external inputs. Case counts obey
//! `PROPTEST_CASES` (CI's opt-in long run raises it).

use std::collections::{BTreeMap, BTreeSet};

use fppn_apps::{adversarial_presets, random_workload, synthetic_fppn, Workload, WorkloadConfig};
use fppn_sched::{list_schedule, Heuristic};
use fppn_sim::{
    adversarial_stimuli, clip_stimuli, completion_table, max_density_flood_trace, missed_jobs,
    response_table, simulate_parallel, simulate_pipelined, simulate_seq, AdversarialClass,
    ExecTimeModel, SimConfig, SimRun,
};
use fppn_taskgraph::{derive_task_graph, DerivedTaskGraph, JobId};
use fppn_time::TimeQ;
use proptest::prelude::*;

/// Completion table as produced by [`completion_table`]: `(frame, job)` →
/// completion time.
type Completions = BTreeMap<(u64, JobId), TimeQ>;

/// A pointwise non-increasing chain of execution-time models: every model
/// samples, for every job, a duration ≤ the previous model's sample.
/// Consecutive `Jitter` ranges only touch at their endpoints, so the
/// ordering holds regardless of the (deliberately different) seeds; the
/// chain ends in a near-zero `Scaled` floor below every jitter band.
fn shrink_chain(seed: u64) -> Vec<ExecTimeModel> {
    vec![
        ExecTimeModel::Wcet,
        ExecTimeModel::Jitter {
            lo_permille: 667,
            hi_permille: 1000,
            seed,
        },
        ExecTimeModel::Jitter {
            lo_permille: 333,
            hi_permille: 667,
            seed: seed ^ 0x1,
        },
        ExecTimeModel::Jitter {
            lo_permille: 1,
            hi_permille: 333,
            seed: seed ^ 0x2,
        },
        ExecTimeModel::Scaled { num: 1, den: 1000 },
    ]
}

/// The `Scaled` sweep of the same property (`num/den` stepping down).
fn scaled_chain() -> Vec<ExecTimeModel> {
    vec![
        ExecTimeModel::Wcet,
        ExecTimeModel::Scaled { num: 3, den: 4 },
        ExecTimeModel::Scaled { num: 2, den: 4 },
        ExecTimeModel::Scaled { num: 1, den: 4 },
    ]
}

struct Prepared {
    w: Workload,
    derived: DerivedTaskGraph,
    horizon: TimeQ,
    frames: u64,
}

fn prepare(w: Workload, frames: u64) -> Prepared {
    let derived = derive_task_graph(&w.net, &w.wcet).expect("derivable");
    let horizon = TimeQ::from_int(frames as i64) * derived.hyperperiod;
    Prepared {
        w,
        derived,
        horizon,
        frames,
    }
}

fn run_seq(p: &Prepared, stimuli: &fppn_core::Stimuli, m: usize, exec: ExecTimeModel) -> SimRun {
    let schedule = list_schedule(&p.derived.graph, m, Heuristic::AlapEdf);
    simulate_seq(
        &p.w.net,
        &p.w.bank,
        stimuli,
        &p.derived,
        &schedule,
        &SimConfig {
            frames: p.frames,
            exec_time: exec,
            ..SimConfig::default()
        },
    )
    .expect("sequential oracle")
}

/// Property 1: along a pointwise-shrinking exec-time chain, every
/// `(frame, job)` completion is monotonically non-increasing, and the
/// observables never change (robustness under timing variation).
fn assert_predictable(p: &Prepared, stimuli: &fppn_core::Stimuli, m: usize, chain: &[ExecTimeModel], label: &str) {
    let mut prev: Option<(ExecTimeModel, Completions, SimRun)> = None;
    for &exec in chain {
        let run = run_seq(p, stimuli, m, exec);
        let table = completion_table(&run.records);
        if let Some((pexec, ptable, prun)) = &prev {
            assert_eq!(
                table.len(),
                ptable.len(),
                "{label}: shrink {pexec:?} -> {exec:?} changed the slot set"
            );
            for (key, &c) in &table {
                let pc = ptable[key];
                assert!(
                    c <= pc,
                    "{label}: predictability violated at (frame, job) = {key:?}: \
                     completion {pc:?} -> {c:?} after shrinking {pexec:?} -> {exec:?}"
                );
            }
            assert_eq!(
                run.observables, prun.observables,
                "{label}: observables changed under exec-time shrink {pexec:?} -> {exec:?} \
                 (Prop. 4.1 robustness violated)"
            );
        }
        prev = Some((exec, table, run));
    }
}

/// Property 2: replacing every sporadic flood by its `period_mult`-sparser
/// subset never increases the response time of a job executed in both
/// runs (rank-by-rank within simultaneous-arrival groups) and never
/// introduces a deadline miss on such a job.
///
/// **Known semantic finding (documented in the README):** the online
/// policy (§IV) is *not* sustainable in this sense. A server slot whose
/// arrival was removed resolves as **false only at its window close** —
/// the earliest instant the non-clairvoyant scheduler can know no event
/// came — and holds its processor until then, while the executed slot
/// (arrival `a`, execution time `e`) would have released it at `a + e`,
/// possibly much earlier. Removing an arrival can therefore *delay*
/// static-order successors. `sustainability_counterexample_pinned`
/// asserts a minimized instance of exactly this mechanism.
///
/// The campaign therefore accepts a violation **iff it is explained by
/// that mechanism**: some slot executed in the dense run is skipped in
/// the sparse run with a later (window-close) completion. A violation
/// with no such slot would be a real engine bug and still fails.
fn assert_sustainable(p: &Prepared, m: usize, exec: ExecTimeModel, label: &str) {
    let sporadics = fppn_sim::sporadic_processes(&p.w.net);
    if sporadics.is_empty() {
        return;
    }
    let dense_raw = adversarial_stimuli(
        &p.w.net,
        &p.derived,
        p.horizon,
        AdversarialClass::MaxDensityFlood,
        0xD05E,
    );
    let dense_stim = clip_stimuli(&p.w.net, &p.derived, &dense_raw, p.frames);
    let dense = run_seq(p, &dense_stim, m, exec);
    let dense_resp = response_table(&dense.records);
    let dense_miss: BTreeSet<_> = missed_jobs(&dense.records).into_iter().collect();

    for mult in [2u32, 4] {
        let mut sparse_raw = dense_raw.clone();
        for &pid in &sporadics {
            let ev = p.w.net.process(pid).event();
            sparse_raw.arrivals(
                pid,
                max_density_flood_trace(ev.burst(), ev.period(), p.horizon, mult),
            );
        }
        let sparse_stim = clip_stimuli(&p.w.net, &p.derived, &sparse_raw, p.frames);
        let sparse = run_seq(p, &sparse_stim, m, exec);
        let sparse_resp = response_table(&sparse.records);

        // The window-close explanation: slots executed under the dense
        // arrivals but skipped (false) under the sparse ones, resolving
        // later than the dense execution completed. Only these can push
        // completions of other jobs *up*.
        let dense_compl = completion_table(&dense.records);
        let explaining_slots: Vec<_> = sparse
            .records
            .iter()
            .filter(|r| r.skipped && r.completion > dense_compl[&(r.frame, r.job)])
            .map(|r| (r.frame, r.job))
            .collect();

        let mut explained = 0usize;
        for (key, sresp) in &sparse_resp {
            let Some(dresp) = dense_resp.get(key) else {
                // This arrival executed only in the sparse run (in the
                // dense run its subset overflowed its server slots); no
                // dense counterpart to compare against.
                continue;
            };
            for i in 0..sresp.len().min(dresp.len()) {
                if sresp[i] > dresp[i] {
                    assert!(
                        !explaining_slots.is_empty(),
                        "{label}: UNEXPLAINED sustainability violation (engine bug): \
                         (process, invoked_at) = {key:?} rank {i}: response {:?} (dense) \
                         -> {:?} (mult {mult}), but no executed->false slot resolved late",
                        dresp[i],
                        sresp[i]
                    );
                    explained += 1;
                }
            }
        }
        for key in missed_jobs(&sparse.records) {
            if dense_resp.contains_key(&key) && !dense_miss.contains(&key) {
                assert!(
                    !explaining_slots.is_empty(),
                    "{label}: UNEXPLAINED new deadline miss (engine bug) at \
                     (process, invoked_at) = {key:?} under sparsification (mult {mult})"
                );
                explained += 1;
            }
        }
        if explained > 0 {
            eprintln!(
                "{label}: mult {mult}: {explained} sustainability violation(s), all \
                 explained by false-slot window-close gating ({} late-resolving slot(s)) \
                 — the documented semantic finding",
                explaining_slots.len()
            );
        }
    }
}

/// Property 3: all four backends produce bit-identical runs under an
/// adversarial stimulus.
fn assert_backends_agree(p: &Prepared, stimuli: &fppn_core::Stimuli, m: usize, exec: ExecTimeModel, label: &str) {
    let schedule = list_schedule(&p.derived.graph, m, Heuristic::AlapEdf);
    let config = SimConfig {
        frames: p.frames,
        exec_time: exec,
        ..SimConfig::default()
    };
    let seq = simulate_seq(&p.w.net, &p.w.bank, stimuli, &p.derived, &schedule, &config)
        .expect("sequential oracle");
    for (backend, run) in [
        (
            "parallel",
            simulate_parallel(
                &p.w.net,
                &p.w.bank,
                stimuli,
                &p.derived,
                &schedule,
                &SimConfig {
                    workers: 4,
                    ..config
                },
            )
            .expect("parallel backend"),
        ),
        (
            "sharded",
            simulate_parallel(
                &p.w.net,
                &p.w.bank,
                stimuli,
                &p.derived,
                &schedule,
                &SimConfig {
                    workers: 4,
                    parallel_behaviors: true,
                    ..config
                },
            )
            .expect("sharded backend"),
        ),
        (
            "pipeline",
            simulate_pipelined(
                &p.w.net,
                &p.w.bank,
                stimuli,
                &p.derived,
                &schedule,
                &SimConfig {
                    workers: 4,
                    pipeline: true,
                    ..config
                },
            )
            .expect("pipelined backend"),
        ),
    ] {
        assert_eq!(seq.records, run.records, "{label} [{backend}]: records diverged");
        assert_eq!(
            seq.observables, run.observables,
            "{label} [{backend}]: observables diverged"
        );
        assert_eq!(seq.gantt, run.gantt, "{label} [{backend}]: gantt diverged");
        assert_eq!(seq.stats, run.stats, "{label} [{backend}]: stats diverged");
    }
}

fn campaign_workloads() -> Vec<(String, Prepared)> {
    let mut out = Vec::new();
    for seed in [3u64, 19] {
        let w = random_workload(&WorkloadConfig {
            periodic: 4,
            sporadic: 2,
            seed,
            ..WorkloadConfig::default()
        });
        out.push((format!("random-{seed}"), prepare(w, 3)));
    }
    for (label, cfg) in adversarial_presets() {
        out.push((label.to_string(), prepare(synthetic_fppn(&cfg), 2)));
    }
    out
}

#[test]
fn predictability_on_adversarial_stimuli() {
    for (label, p) in campaign_workloads() {
        for class in AdversarialClass::ALL {
            let raw = adversarial_stimuli(&p.w.net, &p.derived, p.horizon, class, 0xCA11);
            let stimuli = clip_stimuli(&p.w.net, &p.derived, &raw, p.frames);
            for m in [1usize, 3] {
                let tag = format!("{label}/{}/m{m}", class.name());
                assert_predictable(&p, &stimuli, m, &shrink_chain(0xEC0 ^ m as u64), &tag);
                assert_predictable(&p, &stimuli, m, &scaled_chain(), &tag);
            }
        }
    }
}

/// The minimized sustainability counterexample, pinned with exact
/// rational times — the mechanized form of the README's "semantic
/// finding" entry.
///
/// Seed-pinned workload (`WorkloadConfig { periodic: 4, sporadic: 2,
/// seed: 3 }`, 3 processors, WCET exec times, frame 0 of the dense vs
/// mult-2 flood pair): sporadic `s1` (burst 3, period 200, server period
/// `T′ = 100`) and sporadic `s0` (burst 2, period 800, `T′ = 400`) share
/// processor 1.
///
/// *Dense* flood (arrivals every 200): `s1`'s window-(200, 300] slots
/// execute 207–222, so `s0`'s first slot (invoked at 0, statically
/// ordered after them) runs 222–226.
/// *Sparse* flood (every 400 — the 200-arrivals removed, trivially
/// admissible): those same slots are known **false only at their window
/// close 300** and hold the processor until then, so `s0`'s slot runs
/// 300–304. Removing arrivals raised a response time from 226 to 304 —
/// sustainability fails by the policy's own non-clairvoyance (it cannot
/// know before the window closes that no event will come), not by an
/// engine defect.
#[test]
fn sustainability_counterexample_pinned() {
    let ms = TimeQ::from_ms;
    let w = random_workload(&WorkloadConfig {
        periodic: 4,
        sporadic: 2,
        seed: 3,
        ..WorkloadConfig::default()
    });
    let p = prepare(w, 3);
    let s0 = p.w.net.process_by_name("s0").expect("sporadic s0");
    let s1 = p.w.net.process_by_name("s1").expect("sporadic s1");
    assert_eq!(
        p.derived.server(s1).map(|s| (s.period, s.burst)),
        Some((ms(100), 3))
    );

    let dense_raw = adversarial_stimuli(
        &p.w.net,
        &p.derived,
        p.horizon,
        AdversarialClass::MaxDensityFlood,
        0xD05E,
    );
    let mut sparse_raw = dense_raw.clone();
    for &pid in &[s0, s1] {
        let ev = p.w.net.process(pid).event();
        sparse_raw.arrivals(pid, max_density_flood_trace(ev.burst(), ev.period(), p.horizon, 2));
    }

    // The gating slots: s1's jobs of the (200, 300] window in frame 0,
    // and the gated job: s0's first slot (invoked at 0).
    // `skipped` disambiguates: at `invoked_at == 200` the dense run also
    // has the *previous* window's false slots (resolved at their close,
    // 200), and in the sparse run the window's slots are false with
    // `invoked_at` equal to the close, 300.
    let frame0_window_slots = |run: &SimRun, invoked: TimeQ, skipped: bool| {
        run.records
            .iter()
            .filter(|r| {
                r.frame == 0 && r.process == s1 && r.invoked_at == invoked && r.skipped == skipped
            })
            .map(|r| r.completion)
            .collect::<Vec<_>>()
    };
    let gated = |run: &SimRun| {
        run.records
            .iter()
            .filter(|r| r.frame == 0 && r.process == s0 && !r.skipped)
            .map(|r| (r.start, r.completion))
            .min()
            .expect("s0 executes in frame 0")
    };

    let dense_stim = clip_stimuli(&p.w.net, &p.derived, &dense_raw, p.frames);
    let dense = run_seq(&p, &dense_stim, 3, ExecTimeModel::Wcet);
    // Dense: the window's three arrivals (at 200) execute well before the
    // close at 300…
    assert_eq!(
        frame0_window_slots(&dense, ms(200), false),
        vec![ms(212), ms(217), ms(222)]
    );
    // …so s0's slot starts as soon as they are done.
    assert_eq!(gated(&dense), (ms(222), ms(226)));

    let sparse_stim = clip_stimuli(&p.w.net, &p.derived, &sparse_raw, p.frames);
    let sparse = run_seq(&p, &sparse_stim, 3, ExecTimeModel::Wcet);
    // Sparse: the same slots are false, resolved only at the window close…
    assert_eq!(
        frame0_window_slots(&sparse, ms(300), true),
        vec![ms(300), ms(300), ms(300)]
    );
    // …and s0's job — identical stimuli as far as s0 is concerned at t=0 —
    // is delayed from 226 to 304: the pinned sustainability violation.
    assert_eq!(gated(&sparse), (ms(300), ms(304)));
}

#[test]
fn sustainability_under_sparser_floods() {
    for (label, p) in campaign_workloads() {
        for m in [1usize, 3] {
            assert_sustainable(&p, m, ExecTimeModel::Wcet, &format!("{label}/m{m}/wcet"));
            assert_sustainable(
                &p,
                m,
                ExecTimeModel::Scaled { num: 1, den: 2 },
                &format!("{label}/m{m}/half"),
            );
        }
    }
}

#[test]
fn robustness_across_backends_on_adversarial_stimuli() {
    for (label, p) in campaign_workloads() {
        for class in AdversarialClass::ALL {
            let raw = adversarial_stimuli(&p.w.net, &p.derived, p.horizon, class, 0x0B57);
            let stimuli = clip_stimuli(&p.w.net, &p.derived, &raw, p.frames);
            for m in [1usize, 3] {
                assert_backends_agree(
                    &p,
                    &stimuli,
                    m,
                    ExecTimeModel::typical_jitter(0x0B57 ^ m as u64),
                    &format!("{label}/{}/m{m}", class.name()),
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Predictability over random workload shapes × adversarial classes ×
    /// stimulus seeds: a single shrink step (Wcet -> Jitter band -> Scaled
    /// floor) must never delay a completion.
    #[test]
    fn predictability_holds_for_random_shapes(
        periodic in 2usize..5,
        sporadic in 1usize..3,
        class_idx in 0usize..4,
        seed in any::<u64>(),
        m in 1usize..4,
    ) {
        let w = random_workload(&WorkloadConfig {
            periodic,
            sporadic,
            seed,
            ..WorkloadConfig::default()
        });
        let p = prepare(w, 2);
        let class = AdversarialClass::ALL[class_idx];
        let raw = adversarial_stimuli(&p.w.net, &p.derived, p.horizon, class, seed ^ 0xAD);
        let stimuli = clip_stimuli(&p.w.net, &p.derived, &raw, p.frames);
        let chain = shrink_chain(seed ^ 0x5EED);
        let mut prev: Option<(ExecTimeModel, Completions)> = None;
        for &exec in &chain {
            let run = run_seq(&p, &stimuli, m, exec);
            let table = completion_table(&run.records);
            if let Some((pexec, ptable)) = &prev {
                for (key, &c) in &table {
                    prop_assert!(
                        c <= ptable[key],
                        "{}/{}: completion at {:?} rose {:?} -> {:?} shrinking {:?} -> {:?}",
                        seed, class.name(), key, ptable[key], c, pexec, exec
                    );
                }
            }
            prev = Some((exec, table));
        }
    }

    /// Robustness over random shapes: the four backends agree under every
    /// adversarial class (seed-pinned by proptest's own RNG).
    #[test]
    fn backends_agree_for_random_shapes(
        periodic in 2usize..5,
        sporadic in 0usize..3,
        class_idx in 0usize..4,
        seed in any::<u64>(),
        m in 1usize..4,
    ) {
        let w = random_workload(&WorkloadConfig {
            periodic,
            sporadic,
            seed,
            ..WorkloadConfig::default()
        });
        let p = prepare(w, 2);
        let class = AdversarialClass::ALL[class_idx];
        let raw = adversarial_stimuli(&p.w.net, &p.derived, p.horizon, class, seed ^ 0xB0B);
        let stimuli = clip_stimuli(&p.w.net, &p.derived, &raw, p.frames);
        assert_backends_agree(
            &p,
            &stimuli,
            m,
            ExecTimeModel::typical_jitter(seed),
            &format!("prop/{}/{}", seed, class.name()),
        );
    }
}

/// Deterministic SplitMix64 expander for the interning round-trip
/// properties below: the vendored proptest shim has no recursive/oneof
/// combinators, so a seed drawn by `any::<u64>()` is expanded into
/// structured `Value`s and trace actions here. Coverage is deliberate:
/// small ints (the inline-tagged id path), huge ints and structured
/// values (the hash-consed pool path), floats (compared by bits,
/// including NaN patterns), rationals, strings and nested lists.
struct ValueGen(u64);

impl ValueGen {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn value(&mut self, depth: u32) -> fppn_core::Value {
        use fppn_core::Value;
        let variants = if depth == 0 { 8 } else { 9 };
        match self.next() % variants {
            0 => Value::Absent,
            1 => Value::Unit,
            2 => Value::Bool(self.next() & 1 == 1),
            // Small int: exercises the inline-tagged id fast path.
            3 => Value::Int((self.next() % 4096) as i64 - 2048),
            // Full-range int: i64::MIN/MAX land in the pooled path.
            4 => Value::Int(self.next() as i64),
            // Raw bit pattern: covers NaNs, infinities, -0.0.
            5 => Value::Float(f64::from_bits(self.next())),
            6 => Value::Time(TimeQ::new(
                (self.next() as i64 >> 16).into(),
                (self.next() % 999 + 1) as i128,
            )),
            7 => {
                let len = (self.next() % 12) as usize;
                Value::Str((0..len).map(|_| (b'a' + (self.next() % 26) as u8) as char).collect())
            }
            _ => {
                let len = (self.next() % 4) as usize;
                Value::List((0..len).map(|_| self.value(depth - 1)).collect())
            }
        }
    }

    fn opt_value(&mut self, depth: u32) -> Option<fppn_core::Value> {
        (self.next() & 1 == 1).then(|| self.value(depth))
    }

    fn action(&mut self) -> fppn_core::Action {
        use fppn_core::{Action, ChannelId, PortId};
        match self.next() % 4 {
            0 => Action::Read {
                channel: ChannelId::from_index((self.next() % 8) as usize),
                value: self.opt_value(2),
            },
            1 => Action::Write {
                channel: ChannelId::from_index((self.next() % 8) as usize),
                value: self.value(2),
            },
            2 => Action::ReadInput {
                port: PortId::from_index((self.next() % 8) as usize),
                k: self.next() % 100 + 1,
                value: self.opt_value(2),
            },
            _ => Action::WriteOutput {
                port: PortId::from_index((self.next() % 8) as usize),
                k: self.next() % 100 + 1,
                value: self.value(2),
            },
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The hash-consed value pool is lossless and idempotent: resolving an
    /// interned value reproduces it exactly (floats by bits), and
    /// re-interning yields the *same* id — the invariant that makes id
    /// equality a sound fast path for value equality.
    #[test]
    fn value_interning_round_trips(seed in any::<u64>()) {
        let mut gen = ValueGen(seed);
        let mut pool = fppn_core::ValuePool::new();
        for _ in 0..32 {
            let v = gen.value(3);
            let id = pool.intern(&v);
            prop_assert_eq!(pool.resolve(id), v.clone());
            prop_assert_eq!(pool.intern(&v), id);
        }
    }

    /// Pushing job runs through the arena-backed `Trace` and reading them
    /// back materializes identical runs, in order — the interned
    /// representation is an invisible compression, not a lossy one.
    #[test]
    fn trace_round_trips_through_the_arena(seed in any::<u64>()) {
        use fppn_core::{JobRun, ProcessId, Trace};
        let mut gen = ValueGen(seed ^ 0xA11C);
        let n_runs = (gen.next() % 8) as usize;
        let runs: Vec<JobRun> = (0..n_runs)
            .map(|_| {
                let k = gen.next() % 50 + 1;
                JobRun {
                    process: ProcessId::from_index((gen.next() % 4) as usize),
                    k,
                    invoked_at: TimeQ::from_int(k as i64),
                    actions: (0..(gen.next() % 6) as usize).map(|_| gen.action()).collect(),
                }
            })
            .collect();
        let mut trace = Trace::new();
        for r in &runs {
            trace.push(r.clone());
        }
        prop_assert_eq!(trace.len(), runs.len());
        let back: Vec<JobRun> = trace.runs().collect();
        prop_assert_eq!(back, runs);
    }
}
