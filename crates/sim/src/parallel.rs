//! The parallel simulation backend: per-processor timelines sharded
//! across a worker pool.
//!
//! # Why this is sound (Prop. 4.1 as a parallelization license)
//!
//! The §IV policy is a *monotone dataflow* computation: each round's
//! record is a pure function of (a) the completion times of its
//! predecessor rounds and (b) its own processor's availability, and every
//! completion cell is written exactly once. The fixed point of such a
//! computation is unique — the same argument the paper makes for the
//! observable behavior of an FPPN (execution order and timing do not
//! matter), applied one level down to the simulator itself. Workers may
//! therefore race freely over the round table: whatever interleaving the
//! OS picks, every published completion time (and hence every
//! [`JobRecord`]) is bit-identical to the sequential backend's.
//!
//! # Decomposition
//!
//! The shardable unit is a **processor timeline**: the frame-repeated
//! static order of one processor. Rounds of one timeline are inherently
//! sequential (each waits for its processor to be free), and a frame's
//! first round chains behind the previous frame through that same
//! availability, so per-processor timelines already expose the maximal
//! round-level parallelism the policy admits; independent frames overlap
//! *across* processors automatically (processor 0 may be deep into frame
//! `f+1` while processor 1 still finishes frame `f` — precisely when the
//! wrap-around precedence relation leaves the frames independent).
//!
//! Timelines are distributed round-robin over `workers` threads. A worker
//! cooperatively advances every timeline it owns; a precedence wait is a
//! rendezvous on the predecessor's completion cell (a `OnceLock`). Only
//! when *none* of its timelines can advance does a worker sleep on the
//! shared progress monitor, which the next published round's generation
//! bump wakes. Structurally invalid schedules (static orders that
//! deadlock against the precedence constraints) are rejected up front by
//! `RoundEngine::check_order` — the same [`SimError::Stalled`] the
//! sequential backend reports — so a blocking rendezvous can never
//! deadlock: a blocked round's missing predecessor is always owned by a
//! still-live worker.
//!
//! # Merge
//!
//! Per-timeline record batches stream back over a `crossbeam` channel and
//! are merged in processor order, then `RoundEngine::finalize` sorts them
//! by the canonical total order `(completion, frame, topological
//! position)` — the same code path as the sequential backend — so the
//! Gantt, the records, the statistics and the observables come out
//! bit-identical.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;

use fppn_core::{BehaviorBank, Fppn, Stimuli};
use fppn_taskgraph::{DerivedTaskGraph, JobId};
use fppn_sched::StaticSchedule;
use fppn_time::TimeQ;
use parking_lot::{Condvar, Mutex};

use crate::compile::StaticTables;
use crate::policy::{JobRecord, RoundEngine, SimConfig, SimError, SimRun};

/// One completion cell per round, plus the progress monitor blocked
/// workers sleep on.
pub(crate) struct CompletionBoard {
    /// `frame * n_jobs + job` → completion time, written exactly once.
    cells: Vec<OnceLock<TimeQ>>,
    n_jobs: usize,
    /// Number of published rounds; doubles as the progress generation.
    generation: AtomicU64,
    /// Workers currently blocked on (or entering) the monitor.
    waiters: AtomicUsize,
    /// Set when a worker unwinds: blocked peers must wake and exit, or the
    /// scope join (and the result channel) would hang forever.
    aborted: AtomicBool,
    monitor: Mutex<()>,
    cond: Condvar,
}

impl CompletionBoard {
    pub(crate) fn new(frames: u64, n_jobs: usize) -> Self {
        let mut cells = Vec::new();
        cells.resize_with(frames as usize * n_jobs, OnceLock::new);
        CompletionBoard {
            cells,
            n_jobs,
            generation: AtomicU64::new(0),
            waiters: AtomicUsize::new(0),
            aborted: AtomicBool::new(false),
            monitor: Mutex::new(()),
            cond: Condvar::new(),
        }
    }

    fn get(&self, frame: u64, id: JobId) -> Option<TimeQ> {
        self.cells[frame as usize * self.n_jobs + id.index()]
            .get()
            .copied()
    }

    /// Publishes a round's completion and wakes blocked workers.
    ///
    /// The cell write precedes the `SeqCst` generation bump, so a waiter
    /// that observes the new generation and re-scans its timelines is
    /// guaranteed to see the value.
    fn publish(&self, frame: u64, id: JobId, completion: TimeQ) {
        let ok = self.cells[frame as usize * self.n_jobs + id.index()]
            .set(completion)
            .is_ok();
        assert!(ok, "round (frame {frame}, job {id:?}) published twice");
        self.generation.fetch_add(1, Ordering::SeqCst);
        if self.waiters.load(Ordering::SeqCst) > 0 {
            let _guard = self.monitor.lock();
            self.cond.notify_all();
        }
    }

    fn snapshot(&self) -> u64 {
        self.generation.load(Ordering::SeqCst)
    }

    /// Blocks until the generation moves past `seen` (spurious wake-ups
    /// only cost a re-scan). The waiter registers itself *before*
    /// re-checking the generation under the monitor lock, and every
    /// publisher bumps the generation before inspecting `waiters` — the
    /// classic ordering that makes a lost wake-up impossible.
    fn wait_for_progress(&self, seen: u64) {
        let mut guard = self.monitor.lock();
        self.waiters.fetch_add(1, Ordering::SeqCst);
        if self.generation.load(Ordering::SeqCst) == seen
            && !self.aborted.load(Ordering::SeqCst)
        {
            self.cond.wait(&mut guard);
        }
        self.waiters.fetch_sub(1, Ordering::SeqCst);
    }

    /// Marks the run aborted (a worker is unwinding, or the data plane
    /// failed and the remaining rounds are moot) and wakes every blocked
    /// worker so it can observe the flag and exit.
    pub(crate) fn abort(&self) {
        self.aborted.store(true, Ordering::SeqCst);
        let _guard = self.monitor.lock();
        self.cond.notify_all();
    }
}

/// Flags the board aborted if its worker unwinds before disarming —
/// without this, a panicking worker would strand its blocked peers in
/// [`CompletionBoard::wait_for_progress`] and hang the whole simulation
/// instead of propagating the panic.
struct AbortOnUnwind<'a> {
    board: &'a CompletionBoard,
    armed: bool,
}

impl Drop for AbortOnUnwind<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.board.abort();
        }
    }
}

/// A worker's view of one processor's frame-repeated static order.
pub(crate) struct Timeline {
    processor: usize,
    frame: u64,
    idx: usize,
    avail: TimeQ,
    records: Vec<JobRecord>,
    done: bool,
}

impl Timeline {
    pub(crate) fn new(processor: usize) -> Self {
        Timeline {
            processor,
            frame: 0,
            idx: 0,
            avail: TimeQ::ZERO,
            records: Vec::new(),
            done: false,
        }
    }
}

/// Where a round worker delivers its output: whole-timeline batches (the
/// barrier backend merges after every round exists) or per-round events
/// (the streaming pipeline's sequencer consumes them as they commit).
pub(crate) enum RoundSink<'a> {
    /// One `(processor, records)` batch per exhausted timeline.
    Batch(&'a crossbeam::channel::Sender<(usize, Vec<JobRecord>)>),
    /// One [`RoundEvent`] per computed round, plus a terminator.
    Stream(&'a crossbeam::channel::Sender<RoundEvent>),
}

/// One event of the streaming round plane. Each processor timeline emits
/// its rounds in non-decreasing completion order (a round's start is at
/// least its processor's availability), then exactly one `Done` — the
/// monotonicity the pipeline's frontier watermark rests on. Rounds are
/// batched per *burst* (the run of rounds a timeline completes before it
/// blocks on a predecessor or exhausts): one channel rendezvous per burst
/// instead of per round, flushed exactly when the timeline stops producing
/// new information anyway.
pub(crate) enum RoundEvent {
    /// A burst of computed rounds on one processor timeline, in order.
    Rounds(usize, Vec<JobRecord>),
    /// The processor's timeline is exhausted.
    Done(usize),
}

/// Advances every timeline owned by one worker until all are done,
/// publishing completions and delivering records through the sink.
pub(crate) fn run_worker(
    engine: &RoundEngine<'_>,
    board: &CompletionBoard,
    mut timelines: Vec<Timeline>,
    out: &RoundSink<'_>,
) {
    let mut guard = AbortOnUnwind {
        board,
        armed: true,
    };
    let mut remaining = timelines.len();
    // A blocked worker yields through a few re-scans before paying for the
    // monitor: most precedence waits resolve within a scheduling quantum,
    // and on few-core hosts the yield lets the publishing worker run.
    let mut idle_scans = 0u32;
    while remaining > 0 && !board.aborted.load(Ordering::SeqCst) {
        // Cooperative cancellation, once per scan: the first worker to
        // observe the tripped token aborts the board, which both wakes
        // blocked peers and ends their outer loops.
        if engine.cancelled() {
            board.abort();
            break;
        }
        let seen = board.snapshot();
        let mut progressed = false;
        for tl in timelines.iter_mut() {
            if tl.done {
                continue;
            }
            let burst_start = tl.records.len();
            let mut finished = false;
            loop {
                if tl.frame >= engine.frames {
                    tl.done = true;
                    remaining -= 1;
                    finished = true;
                    progressed = true;
                    break;
                }
                let order = engine.proc_order(tl.processor);
                if tl.idx >= order.len() {
                    tl.frame += 1;
                    tl.idx = 0;
                    continue;
                }
                let id = order[tl.idx];
                let Some(rec) = engine.try_round(
                    tl.frame,
                    id,
                    tl.processor,
                    tl.avail,
                    |f, p| board.get(f, p),
                ) else {
                    break;
                };
                board.publish(tl.frame, id, rec.completion);
                tl.avail = rec.completion;
                tl.records.push(rec);
                tl.idx += 1;
                progressed = true;
            }
            // Send failures mean the consumer is gone (it aborted and
            // dropped the receiver); the abort flag ends the outer loop,
            // so just ignore them here.
            match out {
                RoundSink::Batch(tx) => {
                    if finished {
                        let _ = tx.send((tl.processor, std::mem::take(&mut tl.records)));
                    }
                }
                RoundSink::Stream(tx) => {
                    if tl.records.len() > burst_start {
                        debug_assert_eq!(burst_start, 0, "stream timelines drain per burst");
                        let _ = tx
                            .send(RoundEvent::Rounds(tl.processor, std::mem::take(&mut tl.records)));
                    }
                    if finished {
                        let _ = tx.send(RoundEvent::Done(tl.processor));
                    }
                }
            }
        }
        if remaining > 0 && !progressed {
            idle_scans += 1;
            if idle_scans < 4 {
                std::thread::yield_now();
            } else {
                board.wait_for_progress(seen);
            }
        } else {
            idle_scans = 0;
        }
    }
    guard.armed = false;
}

/// Simulates with the parallel backend using `config.resolved_workers()`
/// threads (a resolved count of 1 still exercises the full rendezvous
/// machinery on a single worker).
///
/// Produces bit-identical [`SimRun`]s — observables, records, Gantt and
/// statistics — to [`crate::simulate_seq`]; the differential test-suite
/// (`crates/sim/tests/differential.rs`) asserts this across workloads.
///
/// # Errors
///
/// Returns [`SimError`] on invalid stimuli, behavior failures, or a
/// deadlocked (structurally invalid) schedule.
pub fn simulate_parallel(
    net: &Fppn,
    bank: &BehaviorBank,
    stimuli: &Stimuli,
    derived: &DerivedTaskGraph,
    schedule: &StaticSchedule,
    config: &SimConfig,
) -> Result<SimRun, SimError> {
    let workers = config.resolved_workers().max(1);
    let tables = StaticTables::build(net, derived, schedule);
    simulate_parallel_tables(net, bank, stimuli, derived, &tables, config, workers, None)
}

/// [`simulate_parallel`] with an explicit worker count against borrowed
/// compile-phase tables (the dispatch target of [`crate::simulate`] and
/// [`crate::CompiledNetwork::simulate`]).
#[allow(clippy::too_many_arguments)]
pub(crate) fn simulate_parallel_tables(
    net: &Fppn,
    bank: &BehaviorBank,
    stimuli: &Stimuli,
    derived: &DerivedTaskGraph,
    tables: &StaticTables,
    config: &SimConfig,
    workers: usize,
    cancel: Option<&crate::cancel::CancelToken>,
) -> Result<SimRun, SimError> {
    let mut engine = RoundEngine::new(net, stimuli, derived, tables, config)?;
    if let Some(token) = cancel {
        engine.set_cancel(token);
    }
    // Reject deadlocking schedules before any thread can block on them.
    engine.check_order()?;
    let m_procs = engine.m_procs;
    // No point spinning up more workers than there are timelines. (The
    // behavior-execution pool below is sized from the *requested* count:
    // it shards per process, not per processor.)
    let requested_workers = workers.max(1);
    let workers = workers.clamp(1, m_procs.max(1));
    let board = CompletionBoard::new(engine.frames, engine.n_jobs);
    let (tx, rx) = crossbeam::channel::unbounded::<(usize, Vec<JobRecord>)>();

    let mut per_proc: Vec<Option<Vec<JobRecord>>> = vec![None; m_procs];

    let scope_result = crossbeam::thread::scope(|s| {
        for w in 0..workers {
            let timelines: Vec<Timeline> =
                (w..m_procs).step_by(workers).map(Timeline::new).collect();
            let tx = tx.clone();
            let engine = &engine;
            let board = &board;
            s.spawn(move |_| run_worker(engine, board, timelines, &RoundSink::Batch(&tx)));
        }
        // The workers hold the only remaining senders: once they are all
        // gone (completion or panic) `recv` disconnects.
        drop(tx);
        let mut done = 0usize;
        while done < m_procs {
            match rx.recv() {
                Ok((m, records)) => {
                    assert!(
                        per_proc[m].replace(records).is_none(),
                        "processor {m} timeline reported twice"
                    );
                    done += 1;
                }
                // Disconnect with timelines outstanding: a worker
                // panicked; the scope join below re-raises its payload.
                Err(_) => break,
            }
        }
    });
    if let Err(payload) = scope_result {
        // Re-raise the worker's panic losslessly.
        std::panic::resume_unwind(payload);
    }

    // A cancelled run aborts the board with timelines outstanding; report
    // it *before* the merge below would trip over missing batches. The
    // generation counter is exactly the number of published rounds.
    if engine.cancelled() {
        return Err(SimError::Cancelled {
            completed_rounds: board.snapshot() as usize,
        });
    }

    // Merge in processor order; the canonical sort inside `finalize`
    // makes the final record order independent of the merge order.
    let mut records = Vec::with_capacity(engine.total_rounds());
    for recs in per_proc.into_iter() {
        records.extend(recs.expect("every processor timeline reported"));
    }
    let behavior_workers = if config.resolved_parallel_behaviors() {
        requested_workers
    } else {
        0
    };
    engine.finalize(net, bank, stimuli, records, behavior_workers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::simulate_seq;
    use crate::{ExecTimeModel, OverheadModel};
    use fppn_core::{
        ChannelKind, EventSpec, FppnBuilder, JobCtx, PortId, ProcessSpec, SporadicTrace,
        Value,
    };
    use fppn_sched::{list_schedule, Heuristic};
    use fppn_taskgraph::{derive_task_graph, WcetModel};

    fn ms(v: i64) -> TimeQ {
        TimeQ::from_ms(v)
    }

    /// A 5-process two-branch pipeline with a sporadic config writer.
    fn app() -> (Fppn, BehaviorBank, fppn_core::ProcessId) {
        let mut b = FppnBuilder::new();
        let src = b.process(ProcessSpec::new("src", EventSpec::periodic(ms(100))));
        let left = b.process(ProcessSpec::new("left", EventSpec::periodic(ms(200))));
        let right = b.process(ProcessSpec::new("right", EventSpec::periodic(ms(100))));
        let sink =
            b.process(ProcessSpec::new("sink", EventSpec::periodic(ms(200))).with_output("o"));
        let cfg = b.process(ProcessSpec::new("cfg", EventSpec::sporadic(1, ms(300))));
        let c_l = b.channel("c_l", src, left, ChannelKind::Fifo);
        let c_r = b.channel("c_r", src, right, ChannelKind::Fifo);
        let l_s = b.channel("l_s", left, sink, ChannelKind::Fifo);
        let r_s = b.channel("r_s", right, sink, ChannelKind::Blackboard);
        let k_r = b.channel("k_r", cfg, right, ChannelKind::Blackboard);
        b.priority(src, left);
        b.priority(src, right);
        b.priority(left, sink);
        b.priority(right, sink);
        b.priority(cfg, right);
        b.behavior(src, move || {
            Box::new(move |ctx: &mut JobCtx<'_>| {
                ctx.write(c_l, Value::Int(ctx.k() as i64));
                ctx.write(c_r, Value::Int(-(ctx.k() as i64)));
            })
        });
        b.behavior(left, move || {
            Box::new(move |ctx: &mut JobCtx<'_>| {
                if let Some(v) = ctx.read(c_l) {
                    ctx.write(l_s, v);
                }
            })
        });
        b.behavior(right, move || {
            Box::new(move |ctx: &mut JobCtx<'_>| {
                let scale = match ctx.read(k_r) {
                    Some(Value::Int(s)) => s,
                    _ => 1,
                };
                if let Some(Value::Int(v)) = ctx.read(c_r) {
                    ctx.write(r_s, Value::Int(v * scale));
                }
            })
        });
        b.behavior(sink, move || {
            Box::new(move |ctx: &mut JobCtx<'_>| {
                let v = ctx.read_value(l_s);
                let w = ctx.read_value(r_s);
                ctx.write_output(
                    PortId::from_index(0),
                    match (v, w) {
                        (Value::Int(a), Value::Int(b)) => Value::Int(a + b),
                        (a, _) => a,
                    },
                );
            })
        });
        b.behavior(cfg, move || {
            Box::new(move |ctx: &mut JobCtx<'_>| ctx.write(k_r, Value::Int(ctx.k() as i64 + 1)))
        });
        let (net, bank) = b.build().unwrap();
        (net, bank, cfg)
    }

    fn assert_bit_identical(a: &SimRun, b: &SimRun) {
        assert_eq!(a.records, b.records);
        assert_eq!(a.observables.diff(&b.observables), None);
        assert_eq!(a.observables, b.observables);
        assert_eq!(a.gantt, b.gantt);
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn parallel_matches_sequential_across_worker_counts() {
        let (net, bank, cfg) = app();
        let derived = derive_task_graph(&net, &WcetModel::uniform(ms(12))).unwrap();
        let mut stimuli = Stimuli::new();
        stimuli.arrivals(cfg, SporadicTrace::new(vec![ms(40), ms(350), ms(820)]));
        let stimuli = crate::clip_stimuli(&net, &derived, &stimuli, 6);
        for m in 1..=4usize {
            let schedule = list_schedule(&derived.graph, m, Heuristic::AlapEdf);
            let tables = StaticTables::build(&net, &derived, &schedule);
            for (exec, overhead) in [
                (ExecTimeModel::Wcet, OverheadModel::NONE),
                (ExecTimeModel::typical_jitter(11), OverheadModel::NONE),
                (ExecTimeModel::Wcet, OverheadModel::constant(ms(7))),
            ] {
                let config = SimConfig {
                    frames: 6,
                    overhead,
                    exec_time: exec,
                    ..SimConfig::default()
                };
                let seq =
                    simulate_seq(&net, &bank, &stimuli, &derived, &schedule, &config).unwrap();
                for workers in [1usize, 2, 3, 8] {
                    for parallel_behaviors in [false, true] {
                        let par = simulate_parallel_tables(
                            &net,
                            &bank,
                            &stimuli,
                            &derived,
                            &tables,
                            &SimConfig {
                                parallel_behaviors,
                                ..config
                            },
                            workers,
                            None,
                        )
                        .unwrap();
                        assert_bit_identical(&seq, &par);
                    }
                }
            }
        }
    }

    #[test]
    fn abort_wakes_blocked_waiters() {
        // The panic path: one worker unwinding must release peers blocked
        // on the progress monitor (otherwise the scope join would hang).
        let board = CompletionBoard::new(1, 1);
        std::thread::scope(|s| {
            let h = s.spawn(|| board.wait_for_progress(board.snapshot()));
            std::thread::sleep(std::time::Duration::from_millis(20));
            board.abort();
            h.join().unwrap();
        });
        assert!(board.aborted.load(Ordering::SeqCst));
    }

    #[test]
    fn dispatcher_routes_on_workers_field() {
        let (net, bank, _) = app();
        let derived = derive_task_graph(&net, &WcetModel::uniform(ms(5))).unwrap();
        let schedule = list_schedule(&derived.graph, 3, Heuristic::BLevel);
        let base = SimConfig {
            frames: 3,
            workers: 1,
            ..SimConfig::default()
        };
        let seq = crate::simulate(&net, &bank, &Stimuli::new(), &derived, &schedule, &base)
            .unwrap();
        let par = crate::simulate(
            &net,
            &bank,
            &Stimuli::new(),
            &derived,
            &schedule,
            &SimConfig { workers: 4, ..base },
        )
        .unwrap();
        assert_bit_identical(&seq, &par);
    }
}
