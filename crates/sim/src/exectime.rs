//! Actual-execution-time models.
//!
//! The static-order policy of §IV exists precisely because "statically
//! computed start times are not robust against inaccuracies in estimations
//! of WCET" — so the simulator lets actual execution times deviate from the
//! WCET `C_i`. Prop. 4.1 is validated by showing that any execution-time
//! draw `≤ C_i` still meets all deadlines under a feasible schedule.

use fppn_taskgraph::Job;
use fppn_time::TimeQ;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How actual job execution times relate to the WCET `C_i`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecTimeModel {
    /// Every job runs for exactly its WCET (worst case, deterministic).
    #[default]
    Wcet,
    /// Every job runs for `C_i · num/den` (deterministic scaling;
    /// `num/den > 1` models WCET *underestimation*).
    Scaled {
        /// Scale numerator.
        num: u32,
        /// Scale denominator.
        den: u32,
    },
    /// Uniformly random in `[C_i · lo‰, C_i · hi‰]` (per-mille bounds),
    /// reproducible from the seed.
    Jitter {
        /// Lower bound in per-mille of WCET.
        lo_permille: u32,
        /// Upper bound in per-mille of WCET.
        hi_permille: u32,
        /// RNG seed.
        seed: u64,
    },
}

impl ExecTimeModel {
    /// Jitter uniform over `[50%, 100%]` of WCET — a typical
    /// measurement-based profile.
    pub fn typical_jitter(seed: u64) -> Self {
        ExecTimeModel::Jitter {
            lo_permille: 500,
            hi_permille: 1000,
            seed,
        }
    }

    /// Checks the model parameters, returning a human-readable description
    /// of the first problem found: a zero `Scaled` denominator (would
    /// divide by zero) or inverted `Jitter` bounds (would make the uniform
    /// range empty).
    ///
    /// # Errors
    ///
    /// Returns the actionable message that [`Self::sampler`] panics with.
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            ExecTimeModel::Wcet => Ok(()),
            ExecTimeModel::Scaled { den: 0, .. } => Err(
                "ExecTimeModel::Scaled requires den > 0 (den = 0 would divide by zero); \
                 use num/den like 3/2 for a 1.5x WCET overrun"
                    .into(),
            ),
            ExecTimeModel::Scaled { .. } => Ok(()),
            ExecTimeModel::Jitter {
                lo_permille,
                hi_permille,
                ..
            } if lo_permille > hi_permille => Err(format!(
                "ExecTimeModel::Jitter requires lo_permille <= hi_permille \
                 (got lo = {lo_permille} > hi = {hi_permille})"
            )),
            ExecTimeModel::Jitter { .. } => Ok(()),
        }
    }

    /// Creates the stateful sampler for one simulation run.
    ///
    /// # Panics
    ///
    /// Panics with the message of [`Self::validate`] on invalid parameters
    /// (`Scaled` with `den == 0`, `Jitter` with `lo_permille >
    /// hi_permille`), so misconfigurations fail here instead of deep
    /// inside a division or `gen_range` during sampling.
    pub fn sampler(&self) -> ExecTimeSampler {
        if let Err(msg) = self.validate() {
            panic!("{msg}");
        }
        ExecTimeSampler {
            model: *self,
            rng: match self {
                ExecTimeModel::Jitter { seed, .. } => Some(StdRng::seed_from_u64(*seed)),
                _ => None,
            },
        }
    }
}

/// Stateful execution-time source for one run (owns the RNG).
#[derive(Debug)]
pub struct ExecTimeSampler {
    model: ExecTimeModel,
    rng: Option<StdRng>,
}

impl ExecTimeSampler {
    /// Draws the actual execution time of one job instance.
    pub fn sample(&mut self, job: &Job) -> TimeQ {
        match self.model {
            ExecTimeModel::Wcet => job.wcet,
            ExecTimeModel::Scaled { num, den } => {
                job.wcet * TimeQ::new(num as i128, den as i128)
            }
            ExecTimeModel::Jitter {
                lo_permille,
                hi_permille,
                ..
            } => {
                let rng = self.rng.as_mut().expect("jitter model has an RNG");
                let permille = rng.gen_range(lo_permille..=hi_permille);
                job.wcet * TimeQ::new(permille as i128, 1000)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fppn_core::ProcessId;

    fn job(c: i64) -> Job {
        Job {
            process: ProcessId::from_index(0),
            k: 1,
            arrival: TimeQ::ZERO,
            deadline: TimeQ::from_ms(100),
            wcet: TimeQ::from_ms(c),
            is_server: false,
        }
    }

    #[test]
    fn wcet_model_is_identity() {
        let mut s = ExecTimeModel::Wcet.sampler();
        assert_eq!(s.sample(&job(25)), TimeQ::from_ms(25));
    }

    #[test]
    fn scaled_model() {
        let mut s = ExecTimeModel::Scaled { num: 1, den: 2 }.sampler();
        assert_eq!(s.sample(&job(25)), TimeQ::new(25, 2));
        let mut over = ExecTimeModel::Scaled { num: 3, den: 2 }.sampler();
        assert_eq!(over.sample(&job(10)), TimeQ::from_ms(15));
    }

    #[test]
    fn jitter_stays_in_bounds_and_reproduces() {
        let model = ExecTimeModel::typical_jitter(42);
        let mut a = model.sampler();
        let mut b = model.sampler();
        for _ in 0..100 {
            let va = a.sample(&job(20));
            assert_eq!(va, b.sample(&job(20)));
            assert!(va >= TimeQ::from_ms(10) && va <= TimeQ::from_ms(20));
        }
    }

    #[test]
    #[should_panic(expected = "Scaled requires den > 0")]
    fn scaled_zero_denominator_panics_at_sampler_construction() {
        let _ = ExecTimeModel::Scaled { num: 1, den: 0 }.sampler();
    }

    #[test]
    #[should_panic(expected = "lo_permille <= hi_permille")]
    fn inverted_jitter_bounds_panic_at_sampler_construction() {
        let _ = ExecTimeModel::Jitter {
            lo_permille: 900,
            hi_permille: 500,
            seed: 1,
        }
        .sampler();
    }

    #[test]
    fn validate_flags_bad_models_and_passes_good_ones() {
        assert!(ExecTimeModel::Wcet.validate().is_ok());
        assert!(ExecTimeModel::Scaled { num: 3, den: 2 }.validate().is_ok());
        assert!(ExecTimeModel::typical_jitter(0).validate().is_ok());
        assert!(ExecTimeModel::Scaled { num: 1, den: 0 }
            .validate()
            .unwrap_err()
            .contains("divide by zero"));
        let bad = ExecTimeModel::Jitter {
            lo_permille: 2,
            hi_permille: 1,
            seed: 0,
        };
        assert!(bad.validate().unwrap_err().contains("lo = 2 > hi = 1"));
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ExecTimeModel::typical_jitter(1).sampler();
        let mut b = ExecTimeModel::typical_jitter(2).sampler();
        let draws_a: Vec<TimeQ> = (0..20).map(|_| a.sample(&job(1000))).collect();
        let draws_b: Vec<TimeQ> = (0..20).map(|_| b.sample(&job(1000))).collect();
        assert_ne!(draws_a, draws_b);
    }
}
