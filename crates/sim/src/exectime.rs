//! Actual-execution-time models.
//!
//! The static-order policy of §IV exists precisely because "statically
//! computed start times are not robust against inaccuracies in estimations
//! of WCET" — so the simulator lets actual execution times deviate from the
//! WCET `C_i`. Prop. 4.1 is validated by showing that any execution-time
//! draw `≤ C_i` still meets all deadlines under a feasible schedule.

use fppn_taskgraph::Job;
use fppn_time::TimeQ;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How actual job execution times relate to the WCET `C_i`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecTimeModel {
    /// Every job runs for exactly its WCET (worst case, deterministic).
    #[default]
    Wcet,
    /// Every job runs for `C_i · num/den` (deterministic scaling;
    /// `num/den > 1` models WCET *underestimation*).
    Scaled {
        /// Scale numerator.
        num: u32,
        /// Scale denominator.
        den: u32,
    },
    /// Uniformly random in `[C_i · lo‰, C_i · hi‰]` (per-mille bounds),
    /// reproducible from the seed.
    Jitter {
        /// Lower bound in per-mille of WCET.
        lo_permille: u32,
        /// Upper bound in per-mille of WCET.
        hi_permille: u32,
        /// RNG seed.
        seed: u64,
    },
}

impl ExecTimeModel {
    /// Jitter uniform over `[50%, 100%]` of WCET — a typical
    /// measurement-based profile.
    pub fn typical_jitter(seed: u64) -> Self {
        ExecTimeModel::Jitter {
            lo_permille: 500,
            hi_permille: 1000,
            seed,
        }
    }

    /// Checks the model parameters, returning a human-readable description
    /// of the first problem found: a zero `Scaled` denominator (would
    /// divide by zero), a zero `Scaled` numerator (every job would run for
    /// zero time, collapsing completion ties and making Prop. 4.1 and the
    /// predictability property ill-posed), inverted `Jitter` bounds (would
    /// make the uniform range empty), a zero `Jitter` lower bound (zero
    /// durations again), or a `Jitter` upper bound above 1000 ‰ (jitter is
    /// *by definition* a fraction of the declared WCET; overrun modeling is
    /// `Scaled`'s explicit job).
    ///
    /// Together these enforce the sampling invariant `0 < sampled ≤ C_i`
    /// for every model except a deliberately overrunning `Scaled` with
    /// `num > den` (see [`Self::wcet_bounded`]).
    ///
    /// # Errors
    ///
    /// Returns the actionable message that [`Self::sampler`] panics with.
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            ExecTimeModel::Wcet => Ok(()),
            ExecTimeModel::Scaled { den: 0, .. } => Err(
                "ExecTimeModel::Scaled requires den > 0 (den = 0 would divide by zero); \
                 use num/den like 3/2 for a 1.5x WCET overrun"
                    .into(),
            ),
            ExecTimeModel::Scaled { num: 0, .. } => Err(
                "ExecTimeModel::Scaled requires num > 0 (num = 0 would give every job a \
                 zero execution time, violating the sampling invariant 0 < sampled <= wcet)"
                    .into(),
            ),
            ExecTimeModel::Scaled { .. } => Ok(()),
            ExecTimeModel::Jitter {
                lo_permille,
                hi_permille,
                ..
            } if lo_permille > hi_permille => Err(format!(
                "ExecTimeModel::Jitter requires lo_permille <= hi_permille \
                 (got lo = {lo_permille} > hi = {hi_permille})"
            )),
            ExecTimeModel::Jitter { lo_permille: 0, .. } => Err(
                "ExecTimeModel::Jitter requires lo_permille >= 1 (lo = 0 could sample a \
                 zero execution time, violating the sampling invariant 0 < sampled <= wcet)"
                    .into(),
            ),
            ExecTimeModel::Jitter { hi_permille, .. } if hi_permille > 1000 => Err(format!(
                "ExecTimeModel::Jitter requires hi_permille <= 1000 (got hi = {hi_permille}): \
                 jitter samples a fraction of the declared WCET; to model WCET overruns use \
                 ExecTimeModel::Scaled with num > den"
            )),
            ExecTimeModel::Jitter { .. } => Ok(()),
        }
    }

    /// Whether every sample of this model is bounded by the declared WCET
    /// (`sampled ≤ C_i`). True for every valid model except `Scaled` with
    /// `num > den`, which deliberately models WCET underestimation. The
    /// predictability/sustainability property campaign only admits
    /// WCET-bounded models — shrinking an overrunning model is not a
    /// pointwise shrink of execution times.
    pub fn wcet_bounded(&self) -> bool {
        match *self {
            ExecTimeModel::Scaled { num, den } => num <= den,
            ExecTimeModel::Wcet | ExecTimeModel::Jitter { .. } => true,
        }
    }

    /// Creates the stateful sampler for one simulation run.
    ///
    /// # Panics
    ///
    /// Panics with the message of [`Self::validate`] on invalid parameters
    /// (`Scaled` with `den == 0`, `Jitter` with `lo_permille >
    /// hi_permille`), so misconfigurations fail here instead of deep
    /// inside a division or `gen_range` during sampling.
    pub fn sampler(&self) -> ExecTimeSampler {
        if let Err(msg) = self.validate() {
            panic!("{msg}");
        }
        ExecTimeSampler {
            model: *self,
            rng: match self {
                ExecTimeModel::Jitter { seed, .. } => Some(StdRng::seed_from_u64(*seed)),
                _ => None,
            },
        }
    }
}

/// Stateful execution-time source for one run (owns the RNG).
#[derive(Debug)]
pub struct ExecTimeSampler {
    model: ExecTimeModel,
    rng: Option<StdRng>,
}

impl ExecTimeSampler {
    /// Draws the actual execution time of one job instance.
    ///
    /// The returned duration satisfies `0 < sampled`, and `sampled ≤
    /// job.wcet` whenever the model is [`ExecTimeModel::wcet_bounded`]: the
    /// scale factors are validated at construction and a final clamp guards
    /// the bound against any arithmetic drift, so the predictability
    /// property's premise holds by construction.
    ///
    /// # Panics
    ///
    /// Panics if `job.wcet` is not positive — a zero-or-negative WCET makes
    /// every execution-time model degenerate, and catching it here names
    /// the offending job instead of collapsing completion ties downstream.
    pub fn sample(&mut self, job: &Job) -> TimeQ {
        assert!(
            job.wcet > TimeQ::ZERO,
            "job {:?} (process {}) has non-positive WCET {}; execution-time sampling \
             requires 0 < wcet",
            job.k,
            job.process.index(),
            job.wcet
        );
        match self.model {
            ExecTimeModel::Wcet => job.wcet,
            ExecTimeModel::Scaled { num, den } => {
                let sampled = job.wcet * TimeQ::new(num as i128, den as i128);
                if num <= den {
                    sampled.min(job.wcet)
                } else {
                    sampled
                }
            }
            ExecTimeModel::Jitter {
                lo_permille,
                hi_permille,
                ..
            } => {
                let rng = self.rng.as_mut().expect("jitter model has an RNG");
                let permille = rng.gen_range(lo_permille..=hi_permille);
                (job.wcet * TimeQ::new(permille as i128, 1000)).min(job.wcet)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fppn_core::ProcessId;

    fn job(c: i64) -> Job {
        Job {
            process: ProcessId::from_index(0),
            k: 1,
            arrival: TimeQ::ZERO,
            deadline: TimeQ::from_ms(100),
            wcet: TimeQ::from_ms(c),
            is_server: false,
        }
    }

    #[test]
    fn wcet_model_is_identity() {
        let mut s = ExecTimeModel::Wcet.sampler();
        assert_eq!(s.sample(&job(25)), TimeQ::from_ms(25));
    }

    #[test]
    fn scaled_model() {
        let mut s = ExecTimeModel::Scaled { num: 1, den: 2 }.sampler();
        assert_eq!(s.sample(&job(25)), TimeQ::new(25, 2));
        let mut over = ExecTimeModel::Scaled { num: 3, den: 2 }.sampler();
        assert_eq!(over.sample(&job(10)), TimeQ::from_ms(15));
    }

    #[test]
    fn jitter_stays_in_bounds_and_reproduces() {
        let model = ExecTimeModel::typical_jitter(42);
        let mut a = model.sampler();
        let mut b = model.sampler();
        for _ in 0..100 {
            let va = a.sample(&job(20));
            assert_eq!(va, b.sample(&job(20)));
            assert!(va >= TimeQ::from_ms(10) && va <= TimeQ::from_ms(20));
        }
    }

    #[test]
    #[should_panic(expected = "Scaled requires den > 0")]
    fn scaled_zero_denominator_panics_at_sampler_construction() {
        let _ = ExecTimeModel::Scaled { num: 1, den: 0 }.sampler();
    }

    #[test]
    #[should_panic(expected = "lo_permille <= hi_permille")]
    fn inverted_jitter_bounds_panic_at_sampler_construction() {
        let _ = ExecTimeModel::Jitter {
            lo_permille: 900,
            hi_permille: 500,
            seed: 1,
        }
        .sampler();
    }

    #[test]
    fn validate_flags_bad_models_and_passes_good_ones() {
        assert!(ExecTimeModel::Wcet.validate().is_ok());
        assert!(ExecTimeModel::Scaled { num: 3, den: 2 }.validate().is_ok());
        assert!(ExecTimeModel::typical_jitter(0).validate().is_ok());
        assert!(ExecTimeModel::Scaled { num: 1, den: 0 }
            .validate()
            .unwrap_err()
            .contains("divide by zero"));
        let bad = ExecTimeModel::Jitter {
            lo_permille: 2,
            hi_permille: 1,
            seed: 0,
        };
        assert!(bad.validate().unwrap_err().contains("lo = 2 > hi = 1"));
    }

    #[test]
    #[should_panic(expected = "Scaled requires num > 0")]
    fn scaled_zero_numerator_panics_at_sampler_construction() {
        let _ = ExecTimeModel::Scaled { num: 0, den: 2 }.sampler();
    }

    #[test]
    #[should_panic(expected = "lo_permille >= 1")]
    fn jitter_zero_lower_bound_panics_at_sampler_construction() {
        let _ = ExecTimeModel::Jitter {
            lo_permille: 0,
            hi_permille: 500,
            seed: 1,
        }
        .sampler();
    }

    #[test]
    #[should_panic(expected = "hi_permille <= 1000")]
    fn jitter_above_wcet_panics_at_sampler_construction() {
        let _ = ExecTimeModel::Jitter {
            lo_permille: 500,
            hi_permille: 1500,
            seed: 1,
        }
        .sampler();
    }

    #[test]
    fn degenerate_jitter_bounds_are_deterministic_and_in_bounds() {
        // lo == hi is legal: a deterministic fraction of WCET.
        let mut s = ExecTimeModel::Jitter {
            lo_permille: 700,
            hi_permille: 700,
            seed: 9,
        }
        .sampler();
        for _ in 0..20 {
            assert_eq!(s.sample(&job(10)), TimeQ::from_ms(7));
        }
        // The full-range boundary case hi == 1000 never exceeds the WCET.
        let mut full = ExecTimeModel::Jitter {
            lo_permille: 1,
            hi_permille: 1000,
            seed: 9,
        }
        .sampler();
        for _ in 0..200 {
            let v = full.sample(&job(10));
            assert!(v > TimeQ::ZERO && v <= TimeQ::from_ms(10), "{v} out of (0, wcet]");
        }
    }

    #[test]
    fn shrinking_scaled_stays_positive_and_bounded() {
        // den >> num: the sample shrinks towards zero but never reaches it
        // (exact rational arithmetic), and never exceeds the WCET.
        let mut s = ExecTimeModel::Scaled {
            num: 1,
            den: 1_000_000,
        }
        .sampler();
        let v = s.sample(&job(1));
        assert!(v > TimeQ::ZERO, "shrunk sample hit zero");
        assert!(v <= TimeQ::from_ms(1), "shrunk sample exceeds wcet");
        assert_eq!(v, TimeQ::new(1, 1_000_000));
    }

    #[test]
    fn wcet_bounded_classifies_models() {
        assert!(ExecTimeModel::Wcet.wcet_bounded());
        assert!(ExecTimeModel::Scaled { num: 1, den: 2 }.wcet_bounded());
        assert!(ExecTimeModel::Scaled { num: 2, den: 2 }.wcet_bounded());
        assert!(!ExecTimeModel::Scaled { num: 3, den: 2 }.wcet_bounded());
        assert!(ExecTimeModel::typical_jitter(0).wcet_bounded());
    }

    #[test]
    #[should_panic(expected = "non-positive WCET")]
    fn zero_wcet_job_is_rejected_at_sampling() {
        let _ = ExecTimeModel::Wcet.sampler().sample(&job(0));
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ExecTimeModel::typical_jitter(1).sampler();
        let mut b = ExecTimeModel::typical_jitter(2).sampler();
        let draws_a: Vec<TimeQ> = (0..20).map(|_| a.sample(&job(1000))).collect();
        let draws_b: Vec<TimeQ> = (0..20).map(|_| b.sample(&job(1000))).collect();
        assert_ne!(draws_a, draws_b);
    }
}
