//! The streaming frame pipeline: behavior execution overlapped with round
//! computation.
//!
//! # Why the barrier was never required
//!
//! The barrier backends compute *every* round record of the run, then sort
//! them into the canonical total order `(completion, frame, topological
//! position)` and only then fire the first behavior — the whole round
//! computation sits on the data plane's critical path. But the paper's
//! determinism argument never asks for that barrier: a job's behavior is a
//! pure function of its identity (`global_k`) and the committed prefixes
//! of its read channels (Def. 2.1 single-writer/single-reader), all of
//! which are fixed by the canonical order of the rounds *before* it. The
//! fixed-job-priority predictability results (Cucu-Grosjean & Goossens)
//! and deterministic-scheduling-by-construction (Yun, Kim & Sha) make the
//! same point one level up: executing along a fixed priority/canonical
//! order pipelines freely without changing observable output. So a job is
//! runnable as soon as (a) its own record is *canonically committed* and
//! (b) its upstream writers have committed the jobs canonically before it.
//!
//! # The frontier board
//!
//! The open question is when a published record is canonically committed:
//! its canonical position compares completion *times*, and a racing
//! processor might still produce an earlier round. The answer is a
//! watermark over per-processor completion **frontiers**:
//!
//! > each processor timeline publishes its rounds in non-decreasing
//! > completion order (every round starts no earlier than its processor's
//! > availability), so once *every* still-active timeline's latest
//! > published completion exceeds time `t`, no record with completion
//! > `≤ t` can ever appear again.
//!
//! The sequencer keeps one frontier per processor (monotone by
//! construction, asserted on every event), a min-heap of published-but-
//! uncommitted records keyed by the canonical order, and commits a record
//! exactly when its completion drops strictly below the minimum active
//! frontier (or every timeline is exhausted). Committed records stream out
//! in canonical order — the same sequence `sort_by_cached_key` would have
//! produced, but available incrementally, typically a few rounds behind
//! the fastest producer.
//!
//! # One dataflow instead of two phases
//!
//! ```text
//! round workers ──RoundEvent──▶ sequencer ──PlannedJob──▶ behavior workers
//!  (parallel.rs    (record       (this module:  (JobFeed)   (behavior.rs
//!   timelines +     stream)       frontier board,            shards +
//!   completion                    global_k, planning)        progress
//!   board)                                                   rendezvous)
//! ```
//!
//! The sequencer runs on the calling thread. For networks the sharded
//! store cannot express (bounded-capacity cross-process FIFOs), the
//! behavior stage degrades to the sequential [`ExecState`] replay *inside
//! the sequencer* — still overlapped with round computation, just not
//! parallel among behaviors.
//!
//! Determinism is inherited, not re-argued: the sequencer emits the exact
//! canonical order, `global_k` and the visibility/gate plan are computed
//! by the same [`RecordPlanner`](crate::behavior::RecordPlanner) arithmetic
//! as the barrier path, and rendering goes through the same
//! `RoundEngine::render`. The differential suite asserts bit-identity
//! against [`simulate_seq`](crate::simulate_seq) across the full matrix.

use std::cmp::Ordering as CmpOrdering;
use std::collections::BinaryHeap;

use fppn_core::{
    BehaviorBank, ExecError, ExecState, Fppn, SharedChannels, ShardedExec, Stimuli,
};
use fppn_taskgraph::DerivedTaskGraph;
use fppn_sched::StaticSchedule;
use fppn_time::TimeQ;
use parking_lot::Mutex;

use crate::behavior::{
    into_shards, run_worker_streaming, stream_timelines, JobFeed, ProgressBoard, RecordPlanner,
};
use crate::compile::StaticTables;
use crate::parallel::{run_worker, CompletionBoard, RoundEvent, RoundSink, Timeline};
use crate::policy::{JobRecord, RoundEngine, SimConfig, SimError, SimRun};

/// A published round waiting for the watermark, ordered by the canonical
/// key (reversed: [`BinaryHeap`] is a max-heap, we pop the least).
struct Pending {
    completion: TimeQ,
    frame: u64,
    topo: usize,
    rec: JobRecord,
}

impl Pending {
    fn key(&self) -> (TimeQ, u64, usize) {
        (self.completion, self.frame, self.topo)
    }
}

impl PartialEq for Pending {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl Eq for Pending {}
impl PartialOrd for Pending {
    fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}
impl Ord for Pending {
    fn cmp(&self, other: &Self) -> CmpOrdering {
        // Reversed: the heap's max is the canonically least record.
        other.key().cmp(&self.key())
    }
}

/// The frontier board: per-processor completion frontiers, the watermark,
/// and the heap of published-but-uncommitted records (see module docs).
struct Sequencer<'a> {
    topo_pos: &'a [usize],
    /// Latest published completion per processor (monotone per timeline).
    frontier: Vec<TimeQ>,
    /// Whether the processor's timeline can still publish.
    active: Vec<bool>,
    pending: BinaryHeap<Pending>,
    /// Per-process executed-job counters: `global_k` assignment.
    counts: Vec<u64>,
    /// Every committed record, in canonical order.
    records: Vec<JobRecord>,
}

impl<'a> Sequencer<'a> {
    fn new(engine: &RoundEngine<'a>, n_procs: usize) -> Self {
        Sequencer {
            topo_pos: engine.topo_positions(),
            frontier: vec![TimeQ::ZERO; engine.m_procs],
            active: vec![true; engine.m_procs],
            pending: BinaryHeap::with_capacity(engine.total_rounds().min(1 << 16)),
            counts: vec![0u64; n_procs],
            records: Vec::with_capacity(engine.total_rounds()),
        }
    }

    /// The time strictly below which no future record can complete.
    fn watermark(&self) -> Option<TimeQ> {
        self.active
            .iter()
            .zip(&self.frontier)
            .filter(|(a, _)| **a)
            .map(|(_, f)| *f)
            .min()
    }

    /// Ingests one round event and commits every record the watermark now
    /// proves final, passing each (with `global_k` assigned) to `commit`
    /// in canonical order. Returns how many records committed, so the
    /// caller can batch one worker wake-up per event.
    fn ingest(
        &mut self,
        ev: RoundEvent,
        mut commit: impl FnMut(&JobRecord) -> Result<(), SimError>,
    ) -> Result<usize, SimError> {
        match ev {
            RoundEvent::Rounds(m, burst) => {
                assert!(self.active[m], "processor {m} published after Done");
                for rec in burst {
                    assert!(
                        rec.completion >= self.frontier[m],
                        "processor {m} published out of frontier order"
                    );
                    self.frontier[m] = rec.completion;
                    self.pending.push(Pending {
                        completion: rec.completion,
                        frame: rec.frame,
                        topo: self.topo_pos[rec.job.index()],
                        rec,
                    });
                }
            }
            RoundEvent::Done(m) => {
                assert!(self.active[m], "processor {m} finished twice");
                self.active[m] = false;
            }
        }
        let watermark = self.watermark();
        let mut committed = 0usize;
        while let Some(top) = self.pending.peek() {
            match watermark {
                // A record strictly below every active frontier is final:
                // ties at the watermark are not (the frontier processor
                // may still publish an equal-completion record that sorts
                // earlier by (frame, topo)).
                Some(w) if top.completion >= w => break,
                _ => {}
            }
            let mut rec = self.pending.pop().expect("peeked").rec;
            if !rec.skipped {
                let c = &mut self.counts[rec.process.index()];
                *c += 1;
                rec.global_k = *c;
            }
            commit(&rec)?;
            self.records.push(rec);
            committed += 1;
        }
        Ok(committed)
    }
}

/// Simulates with the streaming pipeline using
/// `config.resolved_workers()` threads for each plane (a resolved count of
/// 1 still exercises the full frontier/feed machinery).
///
/// Produces bit-identical [`SimRun`]s to [`crate::simulate_seq`] — the
/// differential suite asserts this across worker counts, densities,
/// models and behavior-heavy workloads.
///
/// # Errors
///
/// Returns [`SimError`] on invalid stimuli, behavior failures, or a
/// deadlocked (structurally invalid) schedule.
pub fn simulate_pipelined(
    net: &Fppn,
    bank: &BehaviorBank,
    stimuli: &Stimuli,
    derived: &DerivedTaskGraph,
    schedule: &StaticSchedule,
    config: &SimConfig,
) -> Result<SimRun, SimError> {
    let workers = config.resolved_workers().max(1);
    let tables = StaticTables::build(net, derived, schedule);
    simulate_pipelined_tables(net, bank, stimuli, derived, &tables, config, workers, None)
}

/// [`simulate_pipelined`] against precomputed round tables with an
/// explicit worker count (the dispatch target of [`crate::simulate`] and
/// the compiled artifact).
#[allow(clippy::too_many_arguments)]
pub(crate) fn simulate_pipelined_tables(
    net: &Fppn,
    bank: &BehaviorBank,
    stimuli: &Stimuli,
    derived: &DerivedTaskGraph,
    tables: &StaticTables,
    config: &SimConfig,
    workers: usize,
    cancel: Option<&crate::cancel::CancelToken>,
) -> Result<SimRun, SimError> {
    let mut engine = RoundEngine::new(net, stimuli, derived, tables, config)?;
    if let Some(token) = cancel {
        engine.set_cancel(token);
    }
    // Reject deadlocking schedules before any thread can block on them.
    engine.check_order()?;
    if SharedChannels::supports(net) {
        pipeline_sharded(net, bank, stimuli, &engine, workers)
    } else {
        pipeline_seq_behaviors(net, bank, stimuli, &engine, workers)
    }
}

/// Spawns the round workers of one pipelined run into `scope`, streaming
/// each published round over `tx`.
fn spawn_round_workers<'s, 'e: 's>(
    s: &crossbeam::thread::Scope<'s, 'e>,
    engine: &'s RoundEngine<'_>,
    board: &'s CompletionBoard,
    tx: crossbeam::channel::Sender<RoundEvent>,
    workers: usize,
) {
    let m_procs = engine.m_procs;
    let round_workers = workers.clamp(1, m_procs.max(1));
    for w in 0..round_workers {
        let timelines: Vec<Timeline> =
            (w..m_procs).step_by(round_workers).map(Timeline::new).collect();
        let tx = tx.clone();
        s.spawn(move |_| run_worker(engine, board, timelines, &RoundSink::Stream(&tx)));
    }
    // The spawned workers hold the only remaining senders; once they all
    // exit (completion, abort or panic) the receiver disconnects.
    drop(tx);
}

/// The fully-streaming path: round workers → sequencer → sharded behavior
/// workers, all concurrent.
fn pipeline_sharded(
    net: &Fppn,
    bank: &BehaviorBank,
    stimuli: &Stimuli,
    engine: &RoundEngine<'_>,
    workers: usize,
) -> Result<SimRun, SimError> {
    let mut planner = RecordPlanner::new(net);
    // Weight the process partition by the static per-frame job census —
    // the exact per-process totals up to skipped server slots, known
    // before any record exists.
    let mut weights = vec![0usize; net.process_count()];
    for job in engine.graph.jobs() {
        weights[job.process.index()] += 1;
    }

    let exec = ShardedExec::new(net);
    let shards = exec.shards(stimuli);
    let behaviors = bank.instantiate();
    let mut worker_timelines =
        stream_timelines(planner.deps(), shards, behaviors, &weights, workers);

    let round_board = CompletionBoard::new(engine.frames, engine.n_jobs);
    let behavior_board = ProgressBoard::new(net.process_count());
    let feed = JobFeed::new(net.process_count());
    let error: Mutex<Option<ExecError>> = Mutex::new(None);
    let (tx, rx) = crossbeam::channel::unbounded::<RoundEvent>();

    let mut sequencer = Sequencer::new(engine, net.process_count());
    let scope_result = crossbeam::thread::scope(|s| {
        spawn_round_workers(s, engine, &round_board, tx, workers);
        let cancel = engine.cancel_token();
        let mut behavior_handles = Vec::new();
        for timelines in worker_timelines.iter_mut() {
            let (board, feed, error) = (&behavior_board, &feed, &error);
            behavior_handles.push(s.spawn(move |_| {
                run_worker_streaming(board, feed, &mut timelines[..], error, cancel)
            }));
        }

        // The sequencer: consume the round stream on this thread, commit
        // canonically-final records, feed the behavior plane.
        let mut done = 0usize;
        let m_procs = engine.m_procs;
        while done < m_procs {
            // A failed behavior aborts the behavior board; stop both
            // planes instead of sequencing rounds nobody will run.
            if behavior_board.is_aborted() {
                round_board.abort();
                break;
            }
            // A tripped cancel token stops both planes; the post-scope
            // check below reports `SimError::Cancelled`.
            if engine.cancelled() {
                round_board.abort();
                behavior_board.abort();
                break;
            }
            match rx.recv() {
                Ok(ev) => {
                    if matches!(ev, RoundEvent::Done(_)) {
                        done += 1;
                    }
                    let committed = sequencer
                        .ingest(ev, |rec| {
                            if let Some(job) = planner.plan(rec) {
                                feed.push(rec.process.index(), job);
                            }
                            Ok(())
                        })
                        .expect("sharded commit is infallible");
                    if committed > 0 {
                        // One wake-up per ingested burst, not per job.
                        behavior_board.notify();
                    }
                }
                // Disconnect with timelines outstanding: a round worker
                // panicked; the scope join below re-raises its payload.
                Err(_) => {
                    behavior_board.abort();
                    break;
                }
            }
        }
        // No more jobs will ever arrive: let the behavior workers drain
        // their queues and exit.
        feed.seal(&behavior_board);
        // Join the behavior workers explicitly to keep a panicking
        // behavior's original payload: an auto-join would re-raise it as
        // the generic "a scoped thread panicked".
        let mut first_panic = None;
        for h in behavior_handles {
            if let Err(payload) = h.join() {
                first_panic.get_or_insert(payload);
            }
        }
        first_panic
    });
    match scope_result {
        Err(payload) | Ok(Some(payload)) => std::panic::resume_unwind(payload),
        Ok(None) => {}
    }
    if let Some(e) = error.into_inner() {
        return Err(SimError::Exec(e));
    }
    // A cancelled run stopped with records uncommitted and feeds undrained;
    // report it before the completeness assertions below.
    if engine.cancelled() {
        return Err(SimError::Cancelled {
            completed_rounds: sequencer.records.len(),
        });
    }

    assert_eq!(
        sequencer.records.len(),
        engine.total_rounds(),
        "sequencer committed every round"
    );
    let (observables, _) = exec.merge(into_shards(worker_timelines), None);
    Ok(engine.render(net, sequencer.records, observables))
}

/// The degraded path for networks the sharded store cannot express
/// (bounded-capacity cross-process FIFOs): behaviors replay through the
/// sequential [`ExecState`] *inside the sequencer* — still overlapped with
/// round computation, just serialized among themselves.
fn pipeline_seq_behaviors(
    net: &Fppn,
    bank: &BehaviorBank,
    stimuli: &Stimuli,
    engine: &RoundEngine<'_>,
    workers: usize,
) -> Result<SimRun, SimError> {
    let round_board = CompletionBoard::new(engine.frames, engine.n_jobs);
    let (tx, rx) = crossbeam::channel::unbounded::<RoundEvent>();

    let mut sequencer = Sequencer::new(engine, net.process_count());
    let mut behaviors = bank.instantiate();
    let mut state = ExecState::new(net, stimuli);
    let mut exec_error: Option<SimError> = None;
    // Committed records so far: the commit closure cannot reach
    // `sequencer.records` (the sequencer is mutably borrowed by `ingest`),
    // so cancellation accounting keeps its own counter.
    let mut committed_jobs = 0usize;

    let scope_result = crossbeam::thread::scope(|s| {
        spawn_round_workers(s, engine, &round_board, tx, workers);
        let mut done = 0usize;
        let m_procs = engine.m_procs;
        while done < m_procs {
            match rx.recv() {
                Ok(ev) => {
                    if matches!(ev, RoundEvent::Done(_)) {
                        done += 1;
                    }
                    let commit = sequencer.ingest(ev, |rec| {
                        // Per-job cancellation poll: the sequential data
                        // plane is where wall-clock time goes on this path.
                        if engine.cancelled() {
                            return Err(SimError::Cancelled {
                                completed_rounds: committed_jobs,
                            });
                        }
                        committed_jobs += 1;
                        if rec.skipped {
                            return Ok(());
                        }
                        state
                            .run_job(&mut behaviors, rec.process, rec.global_k, rec.invoked_at)
                            .map_err(SimError::from)
                    });
                    if let Err(e) = commit {
                        // The remaining rounds are moot; stop the workers.
                        exec_error = Some(e);
                        round_board.abort();
                        break;
                    }
                }
                Err(_) => break, // worker panic; re-raised below
            }
        }
    });
    if let Err(payload) = scope_result {
        std::panic::resume_unwind(payload);
    }
    if let Some(e) = exec_error {
        return Err(e);
    }
    // A cancelled round plane disconnects the stream mid-run with no
    // behavior error recorded; report it before the completeness assertion.
    if engine.cancelled() {
        return Err(SimError::Cancelled {
            completed_rounds: sequencer.records.len(),
        });
    }

    assert_eq!(
        sequencer.records.len(),
        engine.total_rounds(),
        "sequencer committed every round"
    );
    Ok(engine.render(net, sequencer.records, state.into_observables()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::simulate_seq;
    use crate::{ExecTimeModel, OverheadModel};
    use fppn_core::{
        ChannelKind, ChannelSpec, EventSpec, FppnBuilder, JobCtx, PortId, ProcessSpec,
        SporadicTrace, Value,
    };
    use fppn_sched::{list_schedule, Heuristic};
    use fppn_taskgraph::{derive_task_graph, JobId, WcetModel};

    fn ms(v: i64) -> TimeQ {
        TimeQ::from_ms(v)
    }

    fn rec(frame: u64, job: usize, completion: TimeQ) -> JobRecord {
        JobRecord {
            process: fppn_core::ProcessId::from_index(job),
            frame,
            job: JobId::from_index(job),
            global_k: 0,
            processor: 0,
            invoked_at: TimeQ::ZERO,
            start: TimeQ::ZERO,
            completion,
            deadline: completion,
            missed: false,
            skipped: false,
        }
    }

    /// The watermark must hold back records at the frontier (a tying
    /// record may still arrive) and release them once every active
    /// frontier moves strictly past — directly on a hand-built sequencer.
    #[test]
    fn watermark_releases_strictly_below_active_frontiers() {
        let topo: Vec<usize> = (0..4).collect();
        let mut seq = Sequencer {
            topo_pos: &topo,
            frontier: vec![TimeQ::ZERO; 2],
            active: vec![true; 2],
            pending: BinaryHeap::new(),
            counts: vec![0; 4],
            records: Vec::new(),
        };
        let committed: std::cell::RefCell<Vec<(u64, usize)>> = std::cell::RefCell::new(Vec::new());
        let commit = |r: &JobRecord| {
            committed.borrow_mut().push((r.frame, r.job.index()));
            Ok(())
        };
        // Processor 0 publishes t=10; processor 1 is still at frontier 0:
        // nothing can commit (proc 1 might still publish t < 10).
        seq.ingest(RoundEvent::Rounds(0, vec![rec(0, 0, ms(10))]), commit)
            .unwrap();
        assert!(committed.borrow().is_empty());
        // Processor 1 publishes t=10 too: both are *at* the watermark
        // (min frontier = 10) — still held back, a 10-tie can arrive.
        seq.ingest(RoundEvent::Rounds(1, vec![rec(0, 1, ms(10))]), commit)
            .unwrap();
        assert!(committed.borrow().is_empty());
        // Processor 1 moves to 25: only records strictly below 10 exist —
        // none — so the two t=10 records still wait on processor 0.
        seq.ingest(RoundEvent::Rounds(1, vec![rec(0, 2, ms(25))]), commit)
            .unwrap();
        assert!(committed.borrow().is_empty());
        // Processor 0 moves to 30: watermark = min(30, 25) = 25, so both
        // t=10 records commit, in canonical (topo tie-break) order.
        seq.ingest(RoundEvent::Rounds(0, vec![rec(0, 3, ms(30))]), commit)
            .unwrap();
        assert_eq!(*committed.borrow(), vec![(0, 0), (0, 1)]);
        // Exhausting both timelines flushes the rest in canonical order.
        seq.ingest(RoundEvent::Done(0), commit).unwrap();
        assert_eq!(committed.borrow().len(), 2, "one timeline still active");
        seq.ingest(RoundEvent::Done(1), commit).unwrap();
        assert_eq!(*committed.borrow(), vec![(0, 0), (0, 1), (0, 2), (0, 3)]);
        assert_eq!(seq.records.len(), 4);
    }

    #[test]
    #[should_panic(expected = "published out of frontier order")]
    fn non_monotone_frontier_is_rejected() {
        let topo: Vec<usize> = (0..2).collect();
        let mut seq = Sequencer {
            topo_pos: &topo,
            frontier: vec![TimeQ::ZERO; 1],
            active: vec![true; 1],
            pending: BinaryHeap::new(),
            counts: vec![0; 2],
            records: Vec::new(),
        };
        let commit = |_: &JobRecord| Ok(());
        seq.ingest(RoundEvent::Rounds(0, vec![rec(0, 0, ms(20))]), commit)
            .unwrap();
        let _ = seq.ingest(RoundEvent::Rounds(0, vec![rec(0, 1, ms(10))]), commit);
    }

    /// End-to-end: a behavior failure inside the pipelined sharded path
    /// surfaces as `SimError::Exec`, not a hang or a panic.
    #[test]
    fn behavior_error_aborts_the_pipeline() {
        let mut b = FppnBuilder::new();
        let src = b.process(ProcessSpec::new("src", EventSpec::periodic(ms(100))));
        let dst =
            b.process(ProcessSpec::new("dst", EventSpec::periodic(ms(100))).with_output("o"));
        let ch = b.channel("c", src, dst, ChannelKind::Fifo);
        b.priority(src, dst);
        b.behavior(src, move || {
            Box::new(move |ctx: &mut JobCtx<'_>| ctx.write(ch, Value::Int(ctx.k() as i64)))
        });
        b.behavior(dst, move || {
            Box::new(move |ctx: &mut JobCtx<'_>| {
                let _ = ctx.read(ch);
                // An undeclared output port: a recoverable ExecError in
                // the core executor... none exist via JobCtx (endpoint
                // misuse panics), so fail through the input path instead.
                let _ = ctx.read_input(PortId::from_index(99));
            })
        });
        let (net, bank) = b.build().unwrap();
        let derived = derive_task_graph(&net, &WcetModel::uniform(ms(10))).unwrap();
        let schedule = list_schedule(&derived.graph, 2, Heuristic::AlapEdf);
        let config = SimConfig {
            frames: 3,
            ..SimConfig::default()
        };
        // Whatever the failure mode (ExecError or panic), the pipeline
        // must terminate; a panic is re-raised, an error is returned.
        let tables = StaticTables::build(&net, &derived, &schedule);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            simulate_pipelined_tables(
                &net,
                &bank,
                &Stimuli::new(),
                &derived,
                &tables,
                &config,
                4,
                None,
            )
        }));
        match result {
            Ok(Ok(_)) => panic!("undeclared input read must not succeed"),
            Ok(Err(e)) => assert!(matches!(e, SimError::Exec(_)), "unexpected error {e}"),
            Err(_) => {} // panic propagated — also a clean termination
        }
    }

    /// The pipelined backend against the oracle on a small matrix (the
    /// full matrix lives in the integration differential suite).
    #[test]
    fn pipelined_matches_sequential() {
        let mut b = FppnBuilder::new();
        let src = b.process(ProcessSpec::new("src", EventSpec::periodic(ms(100))));
        let mid = b.process(ProcessSpec::new("mid", EventSpec::periodic(ms(200))));
        let dst =
            b.process(ProcessSpec::new("dst", EventSpec::periodic(ms(200))).with_output("o"));
        let cfg = b.process(ProcessSpec::new("cfg", EventSpec::sporadic(2, ms(500))));
        let c1 = b.channel("c1", src, mid, ChannelKind::Fifo);
        let c2 = b.channel("c2", mid, dst, ChannelKind::Fifo);
        let k = b.channel("k", cfg, mid, ChannelKind::Blackboard);
        let state = b.channel_spec(
            ChannelSpec::new("state", mid, mid, ChannelKind::Blackboard)
                .with_initial(Value::Int(1)),
        );
        b.priority(src, mid);
        b.priority(mid, dst);
        b.priority(cfg, mid);
        b.behavior(src, move || {
            Box::new(move |ctx: &mut JobCtx<'_>| ctx.write(c1, Value::Int(ctx.k() as i64)))
        });
        b.behavior(mid, move || {
            Box::new(move |ctx: &mut JobCtx<'_>| {
                let mut acc = match ctx.read(state) {
                    Some(Value::Int(v)) => v,
                    _ => 0,
                };
                if let Some(Value::Int(s)) = ctx.read(k) {
                    acc = acc.wrapping_mul(s);
                }
                while let Some(Value::Int(v)) = ctx.read(c1) {
                    acc = acc.wrapping_add(v * 3);
                }
                ctx.write(state, Value::Int(acc));
                ctx.write(c2, Value::Int(acc));
            })
        });
        b.behavior(dst, move || {
            Box::new(move |ctx: &mut JobCtx<'_>| {
                let v = ctx.read_value(c2);
                ctx.write_output(PortId::from_index(0), v);
            })
        });
        b.behavior(cfg, move || {
            Box::new(move |ctx: &mut JobCtx<'_>| ctx.write(k, Value::Int(ctx.k() as i64 + 2)))
        });
        let (net, bank) = b.build().unwrap();
        let cfg_pid = net.process_by_name("cfg").unwrap();
        let derived = derive_task_graph(&net, &WcetModel::uniform(ms(9))).unwrap();
        let mut stimuli = Stimuli::new();
        stimuli.arrivals(cfg_pid, SporadicTrace::new(vec![ms(30), ms(260), ms(700)]));
        let stimuli = crate::clip_stimuli(&net, &derived, &stimuli, 5);
        for m in [1usize, 2, 3] {
            let schedule = list_schedule(&derived.graph, m, Heuristic::AlapEdf);
            for (exec, overhead) in [
                (ExecTimeModel::Wcet, OverheadModel::NONE),
                (ExecTimeModel::typical_jitter(3), OverheadModel::constant(ms(5))),
            ] {
                let config = SimConfig {
                    frames: 5,
                    overhead,
                    exec_time: exec,
                    ..SimConfig::default()
                };
                let seq =
                    simulate_seq(&net, &bank, &stimuli, &derived, &schedule, &config).unwrap();
                for workers in [1usize, 2, 4] {
                    let tables = StaticTables::build(&net, &derived, &schedule);
                    let pipe = simulate_pipelined_tables(
                        &net, &bank, &stimuli, &derived, &tables, &config, workers, None,
                    )
                    .unwrap();
                    assert_eq!(seq.records, pipe.records, "m {m} workers {workers}");
                    assert_eq!(seq.observables, pipe.observables, "m {m} workers {workers}");
                    assert_eq!(seq.gantt, pipe.gantt, "m {m} workers {workers}");
                    assert_eq!(seq.stats, pipe.stats, "m {m} workers {workers}");
                }
            }
        }
    }
}
