//! Adversarial stimulus generation: the arrival patterns and input-stream
//! shapes a uniform random sampler essentially never produces, aimed at
//! the engine's boundary logic rather than its average-case paths.
//!
//! Four classes (see [`AdversarialClass`]):
//!
//! - **BoundaryBurst** — arrivals placed *exactly on* server-window
//!   boundaries `b = j·T′`, and at `b ± ε`, to exercise the half-open
//!   subset-mapping rule of `RoundResolution::resolve` (the subset at `b`
//!   covers `(b − T′, b]` when the sporadic has priority over its user,
//!   `[b − T′, b)` otherwise) from both sides of every boundary.
//! - **MaxDensityFlood** — the densest trace the `(m, T)` constraint
//!   admits: bursts of `m` arrivals at every multiple of `T`. Saturates
//!   every server slot; also the top of the sustainability chain (see
//!   [`max_density_flood_trace`] with `period_mult > 1` for its
//!   pointwise-sparser relatives).
//! - **ArrivalTieStorm** — arrivals of *different* sporadic processes
//!   aligned on shared tie instants (plus occasional `±ε` near-ties), so
//!   cross-process simultaneity and its tie-breaking are exercised.
//! - **LateExternalInput** — input streams that run dry before the last
//!   executed job (exercising the `Absent` read path) and carry extreme
//!   sample values (`i64::MAX/MIN/0`), combined with arrivals at the last
//!   admissible instant of each window.
//!
//! All randomness is seed-pinned through the same [`stream_seed`]
//! discipline as [`random_stimuli`](super::random_stimuli): each
//! `(class, process, port)` stream is independent, so adding a process
//! never reshuffles another's stimuli.

use fppn_core::{EventKind, Fppn, PortId, ProcessId, SporadicTrace, Stimuli, Value};
use fppn_taskgraph::DerivedTaskGraph;
use fppn_time::TimeQ;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use super::{splitmix64, stream_seed, TRACE_STREAM};

/// One family of adversarial stimuli; see the module docs for what each
/// class aims at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum AdversarialClass {
    /// Bursts aligned exactly to server-window boundaries (and `±ε`).
    BoundaryBurst,
    /// Maximal-rate sporadic floods (bursts of `m` every `T`).
    MaxDensityFlood,
    /// Near-simultaneous arrival ties across sporadic processes.
    ArrivalTieStorm,
    /// Truncated and extreme-valued input streams with latest-instant
    /// arrivals.
    LateExternalInput,
}

impl AdversarialClass {
    /// Every class, in a fixed order (for exhaustive sweeps).
    pub const ALL: [AdversarialClass; 4] = [
        AdversarialClass::BoundaryBurst,
        AdversarialClass::MaxDensityFlood,
        AdversarialClass::ArrivalTieStorm,
        AdversarialClass::LateExternalInput,
    ];

    /// Stable human-readable name (used in test labels and golden-trace
    /// file names).
    pub fn name(self) -> &'static str {
        match self {
            AdversarialClass::BoundaryBurst => "boundary_burst",
            AdversarialClass::MaxDensityFlood => "max_density_flood",
            AdversarialClass::ArrivalTieStorm => "arrival_tie_storm",
            AdversarialClass::LateExternalInput => "late_external_input",
        }
    }

    /// A class-specific tag mixed into every derived stream seed so the
    /// same `(seed, pid, port)` triple yields unrelated streams across
    /// classes.
    fn seed_tag(self) -> u64 {
        match self {
            AdversarialClass::BoundaryBurst => 0xB0B0_0001,
            AdversarialClass::MaxDensityFlood => 0xF10D_0002,
            AdversarialClass::ArrivalTieStorm => 0x71E5_0003,
            AdversarialClass::LateExternalInput => 0x1A7E_0004,
        }
    }
}

/// Appends `t` to a sorted arrival list iff the `(m, T)` constraint (any
/// `m+1` consecutive arrivals span ≥ `T`) still holds afterwards. Returns
/// whether the arrival was admitted.
fn try_push(arrivals: &mut Vec<TimeQ>, t: TimeQ, burst: u32, period: TimeQ) -> bool {
    if t < TimeQ::ZERO {
        return false;
    }
    if let Some(&last) = arrivals.last() {
        if t < last {
            return false;
        }
    }
    let m = burst as usize;
    if arrivals.len() >= m && t - arrivals[arrivals.len() - m] < period {
        return false;
    }
    arrivals.push(t);
    true
}

/// The maximal-rate admissible trace for an `(m, T·period_mult)`
/// constraint over `[0, horizon)`: a burst of `m` simultaneous arrivals
/// at every multiple of the (multiplied) period.
///
/// For `period_mult = 1` this is the densest trace the process's own
/// constraint admits. Larger multipliers give *pointwise sparser* traces
/// whose arrival sets are subsets of the `period_mult = 1` flood — the
/// comparison chain the sustainability property sweeps.
pub fn max_density_flood_trace(
    burst: u32,
    period: TimeQ,
    horizon: TimeQ,
    period_mult: u32,
) -> SporadicTrace {
    let step = period * TimeQ::from_int(period_mult.max(1) as i64);
    let mut arrivals = Vec::new();
    let mut t = TimeQ::ZERO;
    while t < horizon {
        for _ in 0..burst {
            arrivals.push(t);
        }
        t += step;
    }
    SporadicTrace::new(arrivals)
}

/// The server period used to place window-aligned arrivals for `pid`:
/// the derived server's `T′` when one exists, the process's own event
/// period otherwise (a sporadic process always gets a server during
/// derivation, so the fallback is defensive).
fn window_period(net: &Fppn, derived: &DerivedTaskGraph, pid: ProcessId) -> TimeQ {
    derived
        .server(pid)
        .map(|s| s.period)
        .unwrap_or_else(|| net.process(pid).event().period())
}

fn boundary_burst_trace(
    burst: u32,
    period: TimeQ,
    window: TimeQ,
    horizon: TimeQ,
    seed: u64,
) -> SporadicTrace {
    let mut rng = StdRng::seed_from_u64(seed);
    // ε far below any period granularity in use, so `b ± ε` stays inside
    // the neighbouring windows without reaching the next boundary.
    let eps = window * TimeQ::new(1, 1_000_003);
    let mut arrivals = Vec::new();
    // Boundary 0 is a genuine edge (subset 0 exists only under the
    // priority-over-user rule); hit it sometimes.
    if rng.gen_bool(0.5) {
        try_push(&mut arrivals, TimeQ::ZERO, burst, period);
    }
    let mut j: i64 = 1;
    loop {
        let b = window * TimeQ::from_int(j);
        if b >= horizon {
            break;
        }
        let placements: &[TimeQ] = match rng.gen_range(0..4u32) {
            0 => &[b],
            1 => &[b - eps],
            2 => &[b + eps],
            _ => &[b - eps, b], // straddling pair
        };
        for &t in placements {
            // Greedy: stuff as many arrivals onto the chosen instant as
            // the constraint admits (at most the burst size).
            for _ in 0..burst {
                if !try_push(&mut arrivals, t, burst, period) {
                    break;
                }
            }
        }
        j += 1;
    }
    SporadicTrace::new(arrivals)
}

fn tie_storm_traces(
    net: &Fppn,
    sporadics: &[ProcessId],
    horizon: TimeQ,
    seed: u64,
) -> Vec<(ProcessId, SporadicTrace)> {
    // Shared tie grid: a third of the smallest sporadic period, so tie
    // instants land both inside windows and (periodically) on their
    // boundaries.
    let min_period = sporadics
        .iter()
        .map(|&p| net.process(p).event().period())
        .min()
        .unwrap_or(horizon);
    let grid = min_period * TimeQ::new(1, 3);
    let eps = grid * TimeQ::new(1, 1_000_003);
    let mut per_proc: Vec<(ProcessId, Vec<TimeQ>)> =
        sporadics.iter().map(|&p| (p, Vec::new())).collect();
    let mut rngs: Vec<StdRng> = sporadics
        .iter()
        .map(|&p| StdRng::seed_from_u64(stream_seed(seed, p.index() as u64, TRACE_STREAM)))
        .collect();
    let mut j: i64 = 0;
    loop {
        let tie = grid * TimeQ::from_int(j);
        if tie >= horizon {
            break;
        }
        for (idx, (pid, arrivals)) in per_proc.iter_mut().enumerate() {
            let ev = net.process(*pid).event();
            // Mostly exact ties; occasionally an ε-offset near-tie.
            let t = match rngs[idx].gen_range(0..6u32) {
                0 => tie + eps,
                1 => tie - eps,
                _ => tie,
            };
            try_push(arrivals, t, ev.burst(), ev.period());
        }
        j += 1;
    }
    per_proc
        .into_iter()
        .map(|(p, a)| (p, SporadicTrace::new(a)))
        .collect()
}

fn late_arrival_trace(
    burst: u32,
    period: TimeQ,
    window: TimeQ,
    horizon: TimeQ,
    seed: u64,
) -> SporadicTrace {
    let mut rng = StdRng::seed_from_u64(seed);
    let eps = window * TimeQ::new(1, 1_000_003);
    let mut arrivals = Vec::new();
    let mut j: i64 = 1;
    loop {
        let b = window * TimeQ::from_int(j);
        if b >= horizon {
            break;
        }
        // The last admissible instant of the window ending at b: exactly b
        // under the priority-over-user rule, b − ε otherwise; alternate so
        // both rules get their own edge.
        let t = if rng.gen_bool(0.5) { b } else { b - eps };
        try_push(&mut arrivals, t, burst, period);
        j += 1;
    }
    SporadicTrace::new(arrivals)
}

/// Input-sample count discipline shared with `random_stimuli`: one per
/// arrival for sporadics, a frame-covering bound for periodics.
fn sample_budget(net: &Fppn, pid: ProcessId, horizon: TimeQ, trace_len: u64) -> u64 {
    let ev = net.process(pid).event();
    if ev.kind() == EventKind::Sporadic {
        trace_len
    } else {
        ((horizon / ev.period()).ceil() as u64 + 2) * ev.burst() as u64
    }
}

/// Generates one adversarial [`Stimuli`] of the given `class` for `net`
/// over `[0, horizon)`, seed-pinned: the same `(net, horizon, class,
/// seed)` always yields the same stimuli, and every per-process stream is
/// independently seeded.
///
/// The result always satisfies every sporadic `(m, T)` constraint
/// (checked by construction via greedy admissible placement); callers
/// can still assert [`validate_stimuli`](super::validate_stimuli).
pub fn adversarial_stimuli(
    net: &Fppn,
    derived: &DerivedTaskGraph,
    horizon: TimeQ,
    class: AdversarialClass,
    seed: u64,
) -> Stimuli {
    let class_seed = splitmix64(seed ^ class.seed_tag());
    let mut stimuli = Stimuli::new();
    let sporadics = super::sporadic_processes(net);

    // Arrival traces.
    match class {
        AdversarialClass::ArrivalTieStorm => {
            for (pid, trace) in tie_storm_traces(net, &sporadics, horizon, class_seed) {
                stimuli.arrivals(pid, trace);
            }
        }
        _ => {
            for &pid in &sporadics {
                let ev = net.process(pid).event();
                let window = window_period(net, derived, pid);
                let tseed = stream_seed(class_seed, pid.index() as u64, TRACE_STREAM);
                let trace = match class {
                    AdversarialClass::BoundaryBurst => {
                        boundary_burst_trace(ev.burst(), ev.period(), window, horizon, tseed)
                    }
                    AdversarialClass::MaxDensityFlood => {
                        max_density_flood_trace(ev.burst(), ev.period(), horizon, 1)
                    }
                    AdversarialClass::LateExternalInput => {
                        late_arrival_trace(ev.burst(), ev.period(), window, horizon, tseed)
                    }
                    AdversarialClass::ArrivalTieStorm => unreachable!(),
                };
                stimuli.arrivals(pid, trace);
            }
        }
    }

    // Input streams.
    for pid in net.process_ids() {
        let spec = net.process(pid);
        let trace_len = stimuli.arrival_trace(pid).len() as u64;
        let budget = sample_budget(net, pid, horizon, trace_len);
        for (port_idx, _) in spec.input_ports().iter().enumerate() {
            let mut rng = StdRng::seed_from_u64(stream_seed(
                class_seed,
                pid.index() as u64,
                port_idx as u64,
            ));
            let samples: Vec<Value> = if class == AdversarialClass::LateExternalInput {
                // Run the stream dry before the last executed job (the
                // `Absent`-read path) and hit extreme magnitudes while it
                // lasts.
                let keep = if budget == 0 {
                    0
                } else {
                    rng.gen_range(0..=budget / 2)
                };
                (0..keep)
                    .map(|_| match rng.gen_range(0..5u32) {
                        0 => Value::Int(i64::MAX),
                        1 => Value::Int(i64::MIN),
                        2 => Value::Int(0),
                        _ => Value::Int(rng.gen_range(-1000..1000)),
                    })
                    .collect()
            } else {
                (0..budget)
                    .map(|_| Value::Int(rng.gen_range(-1000..1000)))
                    .collect()
            };
            stimuli.input(pid, PortId::from_index(port_idx), samples);
        }
    }
    stimuli
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stimgen::validate_stimuli;
    use fppn_core::{ChannelKind, EventSpec, FppnBuilder, ProcessSpec};
    use fppn_taskgraph::{derive_task_graph, WcetModel};

    fn ms(v: i64) -> TimeQ {
        TimeQ::from_ms(v)
    }

    /// Two sporadic processes (one with priority over its user, one
    /// without) plus a periodic user with an input port.
    fn test_net() -> (Fppn, DerivedTaskGraph, ProcessId, ProcessId) {
        let mut b = FppnBuilder::new();
        let user = b.process(ProcessSpec::new("user", EventSpec::periodic(ms(200))).with_input("in"));
        let hi = b.process(
            ProcessSpec::new("hi", EventSpec::sporadic(2, ms(700))).with_input("cmd"),
        );
        let lo = b.process(ProcessSpec::new("lo", EventSpec::sporadic(1, ms(500))));
        b.channel("c1", hi, user, ChannelKind::Blackboard);
        b.channel("c2", lo, user, ChannelKind::Blackboard);
        b.priority(hi, user);
        b.priority(user, lo);
        let (net, _) = b.build().unwrap();
        let derived = derive_task_graph(&net, &WcetModel::default()).unwrap();
        (net, derived, hi, lo)
    }

    #[test]
    fn every_class_yields_admissible_stimuli() {
        let (net, derived, _, _) = test_net();
        for class in AdversarialClass::ALL {
            for seed in 0..25u64 {
                let s = adversarial_stimuli(&net, &derived, ms(10_000), class, seed);
                assert!(
                    validate_stimuli(&net, &s),
                    "{} seed {seed}: inadmissible stimuli",
                    class.name()
                );
            }
        }
    }

    #[test]
    fn stimuli_are_seed_reproducible_and_class_distinct() {
        let (net, derived, hi, _) = test_net();
        let a = adversarial_stimuli(&net, &derived, ms(8000), AdversarialClass::BoundaryBurst, 7);
        let b = adversarial_stimuli(&net, &derived, ms(8000), AdversarialClass::BoundaryBurst, 7);
        assert_eq!(a.arrival_trace(hi), b.arrival_trace(hi));
        let c = adversarial_stimuli(&net, &derived, ms(8000), AdversarialClass::MaxDensityFlood, 7);
        assert_ne!(a.arrival_trace(hi), c.arrival_trace(hi));
    }

    #[test]
    fn boundary_burst_hits_exact_window_boundaries() {
        let (net, derived, hi, _) = test_net();
        let window = window_period(&net, &derived, hi);
        let mut on_boundary = 0usize;
        for seed in 0..10u64 {
            let s =
                adversarial_stimuli(&net, &derived, ms(20_000), AdversarialClass::BoundaryBurst, seed);
            for &t in s.arrival_times(hi) {
                if (t / window).is_integer() {
                    on_boundary += 1;
                }
            }
        }
        assert!(on_boundary > 0, "no arrival ever landed exactly on a boundary");
    }

    #[test]
    fn flood_is_maximal_and_sparsification_is_a_subset() {
        let dense = max_density_flood_trace(2, ms(500), ms(5000), 1);
        // Bursts of 2 at 0, 500, …, 4500: 10 bursts.
        assert_eq!(dense.arrivals().len(), 20);
        let spec = EventSpec::sporadic(2, ms(500));
        assert!(dense.validate_against(&spec, "flood").is_ok());
        // One more arrival anywhere would break the constraint: appending
        // at the last instant fails.
        let mut v = dense.arrivals().to_vec();
        assert!(!try_push(&mut v, ms(4999), 2, ms(500)));
        // period_mult = 2 arrivals are a subset of the dense arrivals.
        let sparse = max_density_flood_trace(2, ms(500), ms(5000), 2);
        let dense_set: Vec<_> = dense.arrivals().to_vec();
        assert!(sparse.arrivals().iter().all(|t| dense_set.contains(t)));
        assert!(sparse.arrivals().len() < dense.arrivals().len());
    }

    #[test]
    fn tie_storm_produces_cross_process_ties() {
        let (net, derived, hi, lo) = test_net();
        let mut ties = 0usize;
        for seed in 0..10u64 {
            let s =
                adversarial_stimuli(&net, &derived, ms(20_000), AdversarialClass::ArrivalTieStorm, seed);
            let hi_times = s.arrival_times(hi);
            for t in s.arrival_times(lo) {
                if hi_times.contains(t) {
                    ties += 1;
                }
            }
        }
        assert!(ties > 0, "tie storm never tied two processes' arrivals");
    }

    #[test]
    fn late_external_input_truncates_streams() {
        let (net, derived, hi, _) = test_net();
        let mut truncated = false;
        for seed in 0..20u64 {
            let s = adversarial_stimuli(
                &net,
                &derived,
                ms(20_000),
                AdversarialClass::LateExternalInput,
                seed,
            );
            let arrivals = s.arrival_trace(hi).len() as u64;
            if arrivals == 0 {
                continue;
            }
            // The stream must be shorter than the executed-job budget for
            // at least one seed (it is drawn from 0..=budget/2).
            if s.input_sample(hi, PortId::from_index(0), arrivals).is_none() {
                truncated = true;
            }
        }
        assert!(truncated, "late-input class never truncated a stream");
    }
}
