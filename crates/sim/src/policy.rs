//! The online static-order scheduling policy (§IV), simulated on a
//! discrete-event multiprocessor platform.
//!
//! The policy repeats the static schedule frame with period `H`. On each
//! processor independently, the scheduler picks jobs in static start-time
//! order and runs a *round* per job:
//!
//! 1. **Synchronize Invocation** — wait for the invocation corresponding to
//!    the job. Periodic (and server) jobs are invoked at `f·H + A_i`;
//!    a sporadic server slot is invoked when its matching real event
//!    arrives (possibly before `A_i`), or is marked **false** at `A_i` if
//!    fewer events arrived in its window.
//! 2. **Synchronize Precedence** — wait until all task-graph predecessors
//!    (and, across frames, the wrap-around predecessors of conflicting
//!    processes) have completed.
//! 3. **Execute** the job, unless marked false.
//!
//! A sporadic slot's window is `(b − T′, b]` when the sporadic process has
//! functional priority over its user and `[b − T′, b)` otherwise (Fig. 2's
//! boundary rule).
//!
//! The simulation is *deterministic*: given the network, stimuli, schedule
//! and execution-time model it computes exact rational start/completion
//! times, runs the process behaviors in a precedence-consistent order, and
//! yields [`Observables`] that must equal the zero-delay reference
//! (Prop. 4.1 — asserted by the integration test-suite).
//!
//! Two backends share this round computation: [`simulate_seq`] walks the
//! per-processor cursors on one thread, while
//! [`simulate_parallel`](crate::simulate_parallel) shards the per-processor
//! timelines across a worker pool (see `parallel.rs` for the determinism
//! argument). [`simulate`] dispatches on
//! [`SimConfig::workers`].

use std::error::Error;
use std::fmt;

use fppn_core::{
    BehaviorBank, ExecError, ExecState, Fppn, NetworkError, Observables, ProcessId,
    SharedChannels, Stimuli,
};
use fppn_taskgraph::{DerivedTaskGraph, JobId, TaskGraph};
use fppn_sched::StaticSchedule;
use fppn_time::{ContentHasher, TimeQ};

use crate::cancel::CancelToken;
use crate::compile::StaticTables;
use crate::env::{SimEnv, SimEnvError};
use crate::exectime::ExecTimeModel;
use crate::gantt::{Gantt, Segment, SegmentKind};
use crate::overhead::OverheadModel;

/// Simulation parameters.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Number of schedule frames (hyperperiods) to simulate.
    pub frames: u64,
    /// Runtime frame-management overhead model.
    pub overhead: OverheadModel,
    /// Actual-execution-time model.
    pub exec_time: ExecTimeModel,
    /// Simulation worker threads: `0` = auto (the `FPPN_SIM_WORKERS`
    /// environment variable, else sequential), `1` = sequential, `n > 1` =
    /// the parallel backend with `n` workers. Every setting produces
    /// bit-identical results (Prop. 4.1 is the license to parallelize).
    pub workers: usize,
    /// Shard the *data plane* too: when enabled (directly or through the
    /// `FPPN_SIM_PAR_BEHAVIORS` environment variable), the parallel backend
    /// executes process behaviors on the worker pool, rendezvousing on
    /// per-process progress counters derived from the static
    /// channel-dependency map, instead of funneling every `run_job` through
    /// one sequential store. Output stays bit-identical to
    /// [`simulate_seq`]; networks the sharded store cannot express
    /// (bounded-capacity cross-process FIFOs) fall back to sequential
    /// behavior execution automatically.
    pub parallel_behaviors: bool,
    /// Stream the data plane behind round computation: when enabled
    /// (directly or through the `FPPN_SIM_PIPELINE` environment variable),
    /// [`simulate`] dispatches to the pipelined backend
    /// ([`simulate_pipelined`](crate::simulate_pipelined)): round records
    /// are published incrementally through a per-processor completion
    /// frontier, and each behavior launches as soon as its own record and
    /// its upstream writers' records are canonically committed — no
    /// "all rounds first" barrier. Subsumes [`SimConfig::parallel_behaviors`]
    /// (the pipeline shards the data plane whenever the network supports
    /// it, and streams behaviors through the sequential store otherwise).
    /// Output stays bit-identical to [`simulate_seq`].
    pub pipeline: bool,
    /// Frame-resolution memoization: when enabled (directly or through the
    /// `FPPN_SIM_MEMO` environment variable), the sequential round loop
    /// fingerprints each frame's carry-in state (processor availability and
    /// wrap-predecessor completions relative to the frame base, the frame's
    /// slot resolutions and release gate) and **replays** the round table
    /// of an earlier fingerprint-equal frame — shifted by the frame offset —
    /// instead of re-running slot resolution. A purely periodic workload
    /// collapses to "compute one frame, replay the rest". Replay only
    /// engages under the deterministic [`ExecTimeModel::Wcet`] model on
    /// networks without bounded-capacity FIFOs; everything else (sporadic
    /// frames whose fingerprints differ, stochastic exec models, bounded
    /// FIFOs) falls back to full computation. Output is bit-identical
    /// either way (asserted by the differential suite); the
    /// parallel/pipelined round planes compute live and never consult the
    /// memo.
    pub memo: bool,
}

impl SimConfig {
    /// The default configuration with every environment override applied:
    /// `FPPN_SIM_WORKERS` → [`SimConfig::workers`], `FPPN_SIM_PAR_BEHAVIORS`
    /// → [`SimConfig::parallel_behaviors`], `FPPN_SIM_PIPELINE` →
    /// [`SimConfig::pipeline`] (see [`crate::SimEnv`] for the grammar).
    ///
    /// # Errors
    ///
    /// Returns [`SimEnvError`] — naming the offending variable — on an
    /// invalid value; unset/empty variables keep the defaults.
    pub fn from_env() -> Result<Self, SimEnvError> {
        let env = SimEnv::from_env()?;
        Ok(SimConfig {
            workers: env.workers.unwrap_or(0),
            parallel_behaviors: env.parallel_behaviors.unwrap_or(false),
            pipeline: env.pipeline.unwrap_or(false),
            memo: env.memo.unwrap_or(false),
            ..SimConfig::default()
        })
    }

    /// The worker count after resolving `workers == 0` against the
    /// `FPPN_SIM_WORKERS` environment variable (absent/empty → 1).
    ///
    /// # Panics
    ///
    /// Panics with a message naming the variable if it holds an invalid
    /// value (use [`SimConfig::from_env`] for a `Result`).
    pub fn resolved_workers(&self) -> usize {
        if self.workers != 0 {
            return self.workers;
        }
        SimEnv::from_env_or_panic().workers.unwrap_or(1)
    }

    /// Whether behavior execution shards in the barrier backend: the
    /// explicit field, or the `FPPN_SIM_PAR_BEHAVIORS` environment variable
    /// when the field is unset — the hook the CI determinism job uses to
    /// force the sharded data plane through the entire test-suite.
    ///
    /// # Panics
    ///
    /// Panics with a message naming the variable on an invalid value.
    pub fn resolved_parallel_behaviors(&self) -> bool {
        self.parallel_behaviors
            || SimEnv::from_env_or_panic()
                .parallel_behaviors
                .unwrap_or(false)
    }

    /// Whether the streaming pipeline is requested: the explicit field, or
    /// the `FPPN_SIM_PIPELINE` environment variable when the field is
    /// unset — the hook the CI pipeline job uses to force the streaming
    /// backend through the entire test-suite.
    ///
    /// # Panics
    ///
    /// Panics with a message naming the variable on an invalid value.
    pub fn resolved_pipeline(&self) -> bool {
        self.pipeline || SimEnv::from_env_or_panic().pipeline.unwrap_or(false)
    }

    /// Whether frame memoization is requested: the explicit field, or the
    /// `FPPN_SIM_MEMO` environment variable when the field is unset — the
    /// hook the CI memo job uses to force the memoized round loop through
    /// the entire test-suite. Requesting the memo does not guarantee
    /// replay: the engine additionally requires the deterministic
    /// [`ExecTimeModel::Wcet`] model and a network without bounded-capacity
    /// FIFOs before it consults the table at all.
    ///
    /// # Panics
    ///
    /// Panics with a message naming the variable on an invalid value.
    pub fn resolved_memo(&self) -> bool {
        self.memo || SimEnv::from_env_or_panic().memo.unwrap_or(false)
    }

    /// Absorbs the *semantic* configuration — the fields that change what a
    /// simulation computes — into a content hash: frame count, overhead
    /// model, and execution-time model (tagged, with its parameters,
    /// including the `Jitter` seed).
    ///
    /// `workers`, `parallel_behaviors`, `pipeline` and `memo` are
    /// deliberately **excluded**: every backend is bit-identical to the
    /// sequential oracle (and the memoized loop to the plain one), so a
    /// result cached under one backend is valid for all of them — that
    /// cross-backend reuse is the point of keying the serve-layer
    /// `RunCache` on this fingerprint.
    pub fn content_hash_into(&self, h: &mut ContentHasher) {
        h.write_u64(self.frames);
        h.write_time(self.overhead.first_frame);
        h.write_time(self.overhead.steady_frame);
        match self.exec_time {
            ExecTimeModel::Wcet => h.write_u8(0),
            ExecTimeModel::Scaled { num, den } => {
                h.write_u8(1);
                h.write_u32(num);
                h.write_u32(den);
            }
            ExecTimeModel::Jitter {
                lo_permille,
                hi_permille,
                seed,
            } => {
                h.write_u8(2);
                h.write_u32(lo_permille);
                h.write_u32(hi_permille);
                h.write_u64(seed);
            }
        }
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            frames: 1,
            overhead: OverheadModel::NONE,
            exec_time: ExecTimeModel::Wcet,
            workers: 0,
            parallel_behaviors: false,
            pipeline: false,
            memo: false,
        }
    }
}

/// The fate of one scheduled job instance (one round).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobRecord {
    /// The process.
    pub process: ProcessId,
    /// Frame index.
    pub frame: u64,
    /// Job id within the task graph (per-frame).
    pub job: JobId,
    /// Global invocation count actually executed (0 for skipped slots).
    pub global_k: u64,
    /// Processor that ran (or resolved) the round.
    pub processor: usize,
    /// Real invocation time: `f·H + A_i` for periodic jobs, the matching
    /// event arrival for sporadic slots, the window close for false slots.
    pub invoked_at: TimeQ,
    /// Execution start (equals `invoked_at`-resolution for skipped slots).
    pub start: TimeQ,
    /// Completion (resolution time for skipped slots).
    pub completion: TimeQ,
    /// Absolute deadline (untruncated: invocation + relative deadline).
    pub deadline: TimeQ,
    /// Whether the deadline was missed.
    pub missed: bool,
    /// Whether this was a false-marked (skipped) server slot.
    pub skipped: bool,
}

/// Aggregate statistics of one simulation.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SimStats {
    /// Jobs actually executed.
    pub executed: usize,
    /// Server slots skipped as false.
    pub skipped: usize,
    /// Deadline misses among executed jobs.
    pub deadline_misses: usize,
    /// Largest `completion − deadline` over missing jobs (zero if none).
    pub max_lateness: TimeQ,
    /// Latest completion time observed.
    pub makespan: TimeQ,
}

/// The result of a simulation run.
#[derive(Debug)]
pub struct SimRun {
    /// Per-channel / per-output observable value sequences; must equal the
    /// zero-delay reference for the same stimuli (Prop. 4.1).
    pub observables: Observables,
    /// Execution timeline (application rows first, runtime-overhead row
    /// last when the overhead model is active).
    pub gantt: Gantt,
    /// Every round, in behavior-execution order.
    pub records: Vec<JobRecord>,
    /// Aggregate statistics.
    pub stats: SimStats,
}

/// Errors from the simulator.
#[derive(Debug)]
#[non_exhaustive]
pub enum SimError {
    /// The stimuli are inconsistent with the network.
    Network(NetworkError),
    /// A behavior failed while executing.
    Exec(ExecError),
    /// The per-processor static orders deadlocked against the precedence
    /// constraints (the schedule was not produced by a correct scheduler).
    Stalled {
        /// Rounds completed before the stall.
        completed_rounds: usize,
    },
    /// The run's [`CancelToken`](crate::CancelToken) tripped (explicit
    /// cancel, expired deadline, or cancelled parent) and the backend
    /// abandoned the run at a frame/round boundary.
    Cancelled {
        /// Rounds fully computed before the run observed the cancellation.
        completed_rounds: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Network(e) => write!(f, "invalid stimuli: {e}"),
            SimError::Exec(e) => write!(f, "behavior failed: {e}"),
            SimError::Stalled { completed_rounds } => write!(
                f,
                "static-order policy deadlocked after {completed_rounds} rounds \
                 (schedule inconsistent with precedence constraints)"
            ),
            SimError::Cancelled { completed_rounds } => write!(
                f,
                "run cancelled after {completed_rounds} completed rounds"
            ),
        }
    }
}

impl Error for SimError {}

impl From<NetworkError> for SimError {
    fn from(e: NetworkError) -> Self {
        SimError::Network(e)
    }
}

impl From<ExecError> for SimError {
    fn from(e: ExecError) -> Self {
        SimError::Exec(e)
    }
}

/// Clips sporadic arrivals to the window range covered by `frames` frames
/// of server slots, so that a zero-delay reference over the same horizon
/// observes exactly the jobs the simulation will execute.
///
/// A sporadic process with server period `T′` has its last simulated slot
/// subset at `frames·H − T′`; arrivals beyond that subset's window would
/// only be handled by the (unsimulated) next frame.
pub fn clip_stimuli(
    net: &Fppn,
    derived: &DerivedTaskGraph,
    stimuli: &Stimuli,
    frames: u64,
) -> Stimuli {
    let mut clipped = stimuli.clone();
    let h = derived.hyperperiod;
    let end = TimeQ::from_int(frames as i64) * h;
    for pid in net.process_ids() {
        if let Some(server) = derived.server(pid) {
            let last_subset = end - server.period;
            let keep: Vec<TimeQ> = stimuli
                .arrival_times(pid)
                .iter()
                .copied()
                .filter(|&t| {
                    if server.priority_over_user {
                        // Window (b − T', b]: covered iff t <= last_subset.
                        t <= last_subset
                    } else {
                        // Window [b − T', b): covered iff t < last_subset.
                        t < last_subset
                    }
                })
                .collect();
            clipped.arrivals(pid, keep.into_iter().collect());
        }
    }
    clipped
}

/// Reusable buffers for [`RoundEngine::compute_rounds_seq_into`]: the flat
/// completion table (`[frame * n_jobs + job]`), per-processor availability,
/// the per-processor cursors and the output records. Owned by the caller
/// so a steady-state loop recomputing rounds over the same engine shape
/// reuses every buffer instead of reallocating per pass.
#[derive(Debug, Default)]
pub(crate) struct RoundScratch {
    completion: Vec<Option<TimeQ>>,
    proc_avail: Vec<TimeQ>,
    cursors: Vec<(u64, usize)>,
    pub(crate) records: Vec<JobRecord>,
    /// Fingerprint-keyed frame memo for the memoized sequential loop.
    /// Living in the scratch (hence in `RunScratch`) lets a serve worker's
    /// steady state reuse the entry buffers run after run.
    memo: FrameMemo,
}

impl RoundScratch {
    /// Empty scratch; the first compute pass sizes the buffers.
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Cumulative frame-memo `(hits, misses)` over every memoized compute
    /// into this scratch. Both stay zero when the memo never engages
    /// (disabled, non-`Wcet` model, bounded FIFOs, or the plain loop).
    pub(crate) fn memo_stats(&self) -> (u64, u64) {
        (self.memo.hits, self.memo.misses)
    }
}

/// A bounded, FNV-fingerprint-keyed table of computed frames.
///
/// One entry memoizes one frame's full round table (records plus the
/// processor-availability snapshot it leaves behind), stored **absolute**
/// alongside the source frame's base time; replay shifts everything by
/// `base_now − src_base`. The table is reset (keys cleared, entry buffers
/// retained) at the start of every compute, so entries never leak across
/// runs — cross-run reuse is purely of buffer *capacity*, which is what
/// keeps the steady-state hit and re-insert paths allocation-free.
///
/// Lookup is a linear scan over at most [`FrameMemo::CAPACITY`] keys:
/// distinct fingerprints per run are bounded by the distinct carry-in
/// states, which periodic workloads keep at one or two, and a scan of 16
/// `u64`s beats any hash-map indirection at that size. Eviction is a plain
/// ring over the slots.
#[derive(Debug, Default)]
struct FrameMemo {
    /// Live fingerprints; `keys[i]` owns `entries[i]`.
    keys: Vec<u64>,
    /// Entry buffers; may outnumber `keys` after a reset (spares keep
    /// their capacity for re-insertion).
    entries: Vec<MemoEntry>,
    /// Next slot to overwrite once the table is full.
    next_evict: usize,
    hits: u64,
    misses: u64,
}

/// One memoized frame: the records it produced and the per-processor
/// availability it left, both absolute, plus the frame base they are
/// relative to under translation.
#[derive(Debug, Default)]
struct MemoEntry {
    src_base: TimeQ,
    records: Vec<JobRecord>,
    avail_out: Vec<TimeQ>,
    /// The frame's completions at the wrap-predecessor jobs (absolute).
    /// These are the only completion slots any *later* frame reads — via
    /// `wrap_preds_of` during computation and `wrap_pred_data` during
    /// fingerprinting — so a replay hit fills just these few instead of
    /// storing all `n_jobs` completions back.
    wrap_out: Vec<(u32, TimeQ)>,
}

impl FrameMemo {
    const CAPACITY: usize = 16;

    /// Forgets every entry while keeping all buffer capacity (and the
    /// cumulative hit/miss counters).
    fn reset(&mut self) {
        self.keys.clear();
        self.next_evict = 0;
    }

    /// Looks up a fingerprint, counting the hit or miss.
    fn lookup(&mut self, fingerprint: u64) -> Option<usize> {
        match self.keys.iter().position(|&k| k == fingerprint) {
            Some(i) => {
                self.hits += 1;
                Some(i)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Memoizes one computed frame, evicting round-robin when full. The
    /// copy is `clear` + `extend_from_slice` into retained buffers:
    /// allocation-free once the buffers have warmed to the frame size.
    fn insert(
        &mut self,
        fingerprint: u64,
        src_base: TimeQ,
        records: &[JobRecord],
        avail: &[TimeQ],
        wrap_preds: &[JobId],
        frame_completion: &[Option<TimeQ>],
    ) {
        let slot = if self.keys.len() < Self::CAPACITY {
            self.keys.push(fingerprint);
            if self.entries.len() < self.keys.len() {
                self.entries.push(MemoEntry::default());
            }
            self.keys.len() - 1
        } else {
            let slot = self.next_evict;
            self.next_evict = (slot + 1) % Self::CAPACITY;
            self.keys[slot] = fingerprint;
            slot
        };
        let entry = &mut self.entries[slot];
        entry.src_base = src_base;
        entry.records.clear();
        entry.records.extend_from_slice(records);
        entry.avail_out.clear();
        entry.avail_out.extend_from_slice(avail);
        entry.wrap_out.clear();
        for &p in wrap_preds {
            let j = p.index();
            let done = frame_completion[j].expect("memoized frames are complete");
            entry.wrap_out.push((j as u32, done));
        }
    }
}

/// The frame-repeated policy table plus everything a backend needs to
/// compute rounds: static per-processor orders, wrap-around predecessors,
/// per-instance slot resolutions, pre-drawn execution times and per-frame
/// release gates. Shared by the sequential and parallel backends so both
/// perform *identical arithmetic* on every round.
///
/// The compile-phase tables (CSR orders, wrap predecessors, topological
/// positions, slot templates) are **borrowed** from a
/// [`StaticTables`] — built once per compiled network and shared by any
/// number of runs. Only the per-run slabs (slot resolutions bound to this
/// run's stimuli, pre-drawn execution times, frame gates) are owned here,
/// still flat struct-of-arrays indexed by `frame * n_jobs + job` so the
/// steady-state loop does contiguous indexed loads.
pub(crate) struct RoundEngine<'a> {
    pub(crate) graph: &'a TaskGraph,
    pub(crate) frames: u64,
    pub(crate) n_jobs: usize,
    pub(crate) m_procs: usize,
    /// Borrowed compile-phase tables (CSR orders, wrap preds, topo, …).
    tables: &'a StaticTables,
    /// Slot-resolution slabs, `[frame * n_jobs + job]`.
    slot_invoked: Vec<TimeQ>,
    slot_deadline: Vec<TimeQ>,
    slot_executable: Vec<bool>,
    /// Pre-drawn execution times, `[frame * n_jobs + job]`.
    exec_times: Vec<TimeQ>,
    /// `f·H + frame_overhead(f)` per frame: no executed job starts earlier.
    frame_gates: Vec<TimeQ>,
    h: TimeQ,
    overhead: OverheadModel,
    /// Whether the sequential loop may consult the frame memo: requested
    /// via [`SimConfig::resolved_memo`] **and** sound to replay — the
    /// deterministic [`ExecTimeModel::Wcet`] model on a network without
    /// bounded-capacity FIFOs. Everything else computes every frame live.
    memo_enabled: bool,
    /// Job indices whose slots are server (sporadic) slots — the only
    /// slots whose resolution can differ between frames relative to the
    /// frame base, hence the only slots the frame fingerprint must absorb.
    server_slots: Vec<usize>,
    /// Per-frame static fingerprint contribution (server-slot resolutions
    /// and the release gate, relative to the frame base) — fixed once the
    /// stimuli are bound, so it is hashed once at engine build instead of
    /// once per compute. Empty unless the memo is enabled; the
    /// collision-audit path builds its own copy on demand.
    frame_fp_static: Vec<u64>,
    /// Cooperative cancellation, polled at round/frame boundaries by every
    /// backend. `None` (the default) compiles the checks down to a branch
    /// on a constant — classic runs pay nothing.
    cancel: Option<&'a CancelToken>,
}

impl<'a> RoundEngine<'a> {
    /// Validates stimuli and binds the per-run slabs to the borrowed
    /// compile-phase tables.
    pub(crate) fn new(
        net: &Fppn,
        stimuli: &Stimuli,
        derived: &'a DerivedTaskGraph,
        tables: &'a StaticTables,
        config: &SimConfig,
    ) -> Result<Self, SimError> {
        stimuli.validate(net)?;
        let graph = &derived.graph;
        let h = derived.hyperperiod;
        let frames = config.frames;
        let n_jobs = graph.job_count();
        let m_procs = tables.processors();
        debug_assert_eq!(tables.templates.job_count(), n_jobs);

        // Per-instance slot resolution, streamed straight into SoA slabs
        // in canonical (frame, job-id) order.
        let total = frames as usize * n_jobs;
        let mut slot_invoked = Vec::with_capacity(total);
        let mut slot_deadline = Vec::with_capacity(total);
        let mut slot_executable = Vec::with_capacity(total);
        tables.templates.for_each_slot(stimuli, frames, |res| {
            slot_invoked.push(res.invoked_at);
            slot_deadline.push(res.deadline);
            slot_executable.push(res.executable);
        });

        // Pre-drawn execution times in canonical (frame, job-id) order, so
        // the random draws do not depend on simulation internals (or on the
        // backend executing the rounds).
        let mut sampler = config.exec_time.sampler();
        let mut exec_times = Vec::with_capacity(total);
        for _ in 0..frames {
            exec_times.extend(graph.jobs().iter().map(|j| sampler.sample(j)));
        }

        let frame_gates: Vec<TimeQ> = (0..frames)
            .map(|f| TimeQ::from_int(f as i64) * h + config.overhead.frame_overhead(f))
            .collect();

        // Replay is only sound when the exec-time draws are a pure function
        // of the job (`Wcet`: sample ≡ wcet, frame-invariant by
        // construction); the bounded-FIFO exclusion is deliberately
        // conservative — round *times* ignore capacities, but capacity
        // networks already take fallback paths elsewhere (sharding) and the
        // differential suite pins this gate as a fallback case.
        let memo_enabled = config.resolved_memo()
            && matches!(config.exec_time, ExecTimeModel::Wcet)
            && !net.channels().iter().any(|c| c.capacity().is_some());

        // Built unconditionally (it is one cheap pass) so the
        // collision-audit path fingerprints identically whether or not the
        // memo itself is enabled.
        let server_slots: Vec<usize> = graph
            .jobs()
            .iter()
            .enumerate()
            .filter(|(_, j)| j.is_server)
            .map(|(i, _)| i)
            .collect();
        #[cfg(debug_assertions)]
        if memo_enabled {
            // The fingerprint skips non-server slots because their
            // resolution is frame-invariant relative to the frame base
            // (`Template::Periodic`: invoked = base + A_i, deadline =
            // invoked + D_i, always executable). Pin that template
            // contract here so a future resolver change cannot silently
            // unsound the memo.
            for f in 1..frames as usize {
                let base = TimeQ::from_int(f as i64) * h;
                for (j, job) in graph.jobs().iter().enumerate() {
                    if job.is_server {
                        continue;
                    }
                    let s = f * n_jobs + j;
                    debug_assert_eq!(slot_invoked[s] - base, slot_invoked[j]);
                    debug_assert_eq!(slot_deadline[s] - base, slot_deadline[j]);
                    debug_assert!(slot_executable[s] && slot_executable[j]);
                }
            }
        }

        let mut engine = RoundEngine {
            graph,
            frames,
            n_jobs,
            m_procs,
            tables,
            slot_invoked,
            slot_deadline,
            slot_executable,
            exec_times,
            frame_gates,
            h,
            overhead: config.overhead,
            memo_enabled,
            server_slots,
            frame_fp_static: Vec::new(),
            cancel: None,
        };
        if engine.memo_enabled {
            engine.frame_fp_static = engine.build_static_frame_fps();
        }
        Ok(engine)
    }

    /// Hashes each frame's static fingerprint contribution: the server
    /// slots' resolutions and the release gate, relative to the frame
    /// base. Everything else a frame's round computation depends on is
    /// either carry-in (hashed per compute) or frame-invariant by template
    /// construction (see the `debug_assert` in [`RoundEngine::new`]).
    fn build_static_frame_fps(&self) -> Vec<u64> {
        (0..self.frames)
            .map(|frame| {
                let base = TimeQ::from_int(frame as i64) * self.h;
                let slots = frame as usize * self.n_jobs;
                let mut h = ContentHasher::new();
                for &j in &self.server_slots {
                    h.write_time_words(self.slot_invoked[slots + j] - base);
                    h.write_time_words(self.slot_deadline[slots + j] - base);
                    h.write_u64_word(u64::from(self.slot_executable[slots + j]));
                }
                h.write_time_words(self.frame_gates[frame as usize] - base);
                h.finish()
            })
            .collect()
    }

    /// Arms cooperative cancellation: every backend polls `token` at
    /// round-scan / frame boundaries and returns
    /// [`SimError::Cancelled`] once it trips.
    pub(crate) fn set_cancel(&mut self, token: &'a CancelToken) {
        self.cancel = Some(token);
    }

    /// Whether the armed token (if any) has tripped. Allocation-free.
    pub(crate) fn cancelled(&self) -> bool {
        self.cancel.is_some_and(CancelToken::is_cancelled)
    }

    /// The armed token, for backends that hand it to behavior workers.
    pub(crate) fn cancel_token(&self) -> Option<&'a CancelToken> {
        self.cancel
    }

    /// Total number of rounds over all frames.
    pub(crate) fn total_rounds(&self) -> usize {
        self.frames as usize * self.n_jobs
    }

    /// Processor `m`'s static round order.
    pub(crate) fn proc_order(&self, m: usize) -> &[JobId] {
        let t = self.tables;
        &t.proc_order_data[t.proc_order_bounds[m]..t.proc_order_bounds[m + 1]]
    }

    /// The previous-frame (wrap-around) predecessors of a job.
    fn wrap_preds_of(&self, id: JobId) -> &[JobId] {
        let t = self.tables;
        &t.wrap_pred_data[t.wrap_pred_bounds[id.index()]..t.wrap_pred_bounds[id.index() + 1]]
    }

    /// Attempts the round `(frame, id)` on processor `m` whose timeline is
    /// free at `proc_avail`. `completion_of` reports the completion time of
    /// an already-finished round (`None` = not finished yet).
    ///
    /// Returns `None` when a predecessor has not completed (the round
    /// blocks), otherwise the finished [`JobRecord`]; the caller publishes
    /// `record.completion` as this round's completion and advances the
    /// processor's availability to it.
    pub(crate) fn try_round(
        &self,
        frame: u64,
        id: JobId,
        m: usize,
        proc_avail: TimeQ,
        completion_of: impl Fn(u64, JobId) -> Option<TimeQ>,
    ) -> Option<JobRecord> {
        let job = self.graph.job(id);
        let mut ready_at = proc_avail;
        for p in self.graph.predecessors(id) {
            ready_at = ready_at.max(completion_of(frame, p)?);
        }
        if frame > 0 {
            for &p in self.wrap_preds_of(id) {
                ready_at = ready_at.max(completion_of(frame - 1, p)?);
            }
        }
        let slot = frame as usize * self.n_jobs + id.index();
        let (invoked_at, deadline) = (self.slot_invoked[slot], self.slot_deadline[slot]);
        Some(if !self.slot_executable[slot] {
            // False slot: resolved (and "completed") at the window close;
            // consumes no processor time.
            let t = ready_at.max(invoked_at);
            JobRecord {
                process: job.process,
                frame,
                job: id,
                global_k: 0,
                processor: m,
                invoked_at,
                start: t,
                completion: t,
                deadline,
                missed: false,
                skipped: true,
            }
        } else {
            let start = ready_at
                .max(invoked_at)
                .max(self.frame_gates[frame as usize]);
            let end = start + self.exec_times[slot];
            JobRecord {
                process: job.process,
                frame,
                job: id,
                global_k: 0, // assigned during behavior execution
                processor: m,
                invoked_at,
                start,
                completion: end,
                deadline,
                missed: end > deadline,
                skipped: false,
            }
        })
    }

    /// Drives the per-processor cursors to completion on one thread,
    /// calling `advance(frame, id, processor)` for the next round of each
    /// timeline; `advance` returns whether that round could complete.
    /// This is the single copy of the cursor/stall skeleton shared by the
    /// sequential backend and the order pre-check, so their round order —
    /// and their `Stalled { completed_rounds }` accounting — can never
    /// drift apart.
    fn drive_cursors(
        &self,
        cursors: &mut Vec<(u64, usize)>,
        mut advance: impl FnMut(u64, JobId, usize) -> bool,
    ) -> Result<(), SimError> {
        let total_rounds = self.total_rounds();
        cursors.clear();
        cursors.resize(self.m_procs, (0u64, 0usize));
        let mut done_rounds = 0usize;
        while done_rounds < total_rounds {
            if self.cancelled() {
                return Err(SimError::Cancelled {
                    completed_rounds: done_rounds,
                });
            }
            let mut progressed = false;
            for (m, cursor) in cursors.iter_mut().enumerate() {
                let order = self.proc_order(m);
                loop {
                    let (frame, idx) = *cursor;
                    if frame >= self.frames {
                        break;
                    }
                    if idx >= order.len() {
                        *cursor = (frame + 1, 0);
                        continue;
                    }
                    if !advance(frame, order[idx], m) {
                        break;
                    }
                    *cursor = (frame, idx + 1);
                    done_rounds += 1;
                    progressed = true;
                }
            }
            if !progressed && done_rounds < total_rounds {
                return Err(SimError::Stalled {
                    completed_rounds: done_rounds,
                });
            }
        }
        Ok(())
    }

    /// Computes every round on one thread by polling per-processor cursors.
    pub(crate) fn compute_rounds_seq(&self) -> Result<Vec<JobRecord>, SimError> {
        let mut scratch = RoundScratch::new();
        self.compute_rounds_seq_into(&mut scratch)?;
        Ok(std::mem::take(&mut scratch.records))
    }

    /// [`RoundEngine::compute_rounds_seq`] into caller-owned scratch
    /// buffers: after one warm-up pass over the same engine shape, repeated
    /// calls perform **zero heap allocations** (asserted by the
    /// `alloc_zero` regression test in `fppn-bench`). The computed records
    /// are left in `scratch.records`.
    ///
    /// When the engine's memo gate is open this routes through the
    /// fingerprint-keyed frame loop; a `Stalled` result there falls back to
    /// the plain free-interleave loop, whose `completed_rounds` accounting
    /// is the one every backend agrees on (frame-major driving can stop
    /// earlier than the dataflow fixed point when a stall in frame `f`
    /// keeps it from ever attempting frame `f+1` rounds other processors
    /// could still finish).
    pub(crate) fn compute_rounds_seq_into(
        &self,
        scratch: &mut RoundScratch,
    ) -> Result<(), SimError> {
        if self.memo_enabled {
            match self.compute_rounds_memo_into(scratch) {
                Err(SimError::Stalled { .. }) => {}
                other => return other,
            }
        }
        let RoundScratch {
            completion,
            proc_avail,
            cursors,
            records,
            memo: _,
        } = scratch;
        completion.clear();
        completion.resize(self.total_rounds(), None);
        proc_avail.clear();
        proc_avail.resize(self.m_procs, TimeQ::ZERO);
        records.clear();
        records.reserve(self.total_rounds());
        let n_jobs = self.n_jobs;
        self.drive_cursors(cursors, |frame, id, m| {
            let lookup =
                |f: u64, p: JobId| completion[f as usize * n_jobs + p.index()];
            let Some(rec) = self.try_round(frame, id, m, proc_avail[m], lookup) else {
                return false;
            };
            completion[frame as usize * n_jobs + id.index()] = Some(rec.completion);
            proc_avail[m] = rec.completion;
            records.push(rec);
            true
        })
    }

    /// Fingerprints frame `frame`'s full round-computation input, relative
    /// to its base time `frame · H`:
    ///
    /// * the determinism class of the exec-time draws (only `Wcet`
    ///   memoizes, so this tag is future-proofing, not discrimination);
    /// * per-processor carry-in availability, `proc_avail − base`;
    /// * the previous frame's completions at every wrap-predecessor slot,
    ///   `completion − base` (hashed only on networks that *have* wrap
    ///   predecessors; frame 0, which has none incoming, is tagged so it
    ///   can still seed replay on wrap-free networks);
    /// * `static_fp`, the frame's precomputed static contribution from
    ///   [`RoundEngine::build_static_frame_fps`] — every **server** slot's
    ///   resolution (`invoked_at − base`, `deadline − base`, executability)
    ///   and the frame release gate, `gate − base`. Periodic slots are
    ///   deliberately absent: their resolution is frame-invariant relative
    ///   to the base by template construction (pinned by a `debug_assert`
    ///   in [`RoundEngine::new`]), so hashing them would spend the bulk of
    ///   the fingerprint cost discriminating nothing.
    ///
    /// Round arithmetic is built from `max` and `+` over these quantities
    /// plus the (frame-invariant under `Wcet`) execution times, so it is
    /// equivariant under time translation: equal fingerprints ⇒ the frames'
    /// round tables are exact translates of each other. That implication is
    /// what the collision-audit proptest exercises.
    fn frame_fingerprint(
        &self,
        frame: u64,
        base: TimeQ,
        completion: &[Option<TimeQ>],
        proc_avail: &[TimeQ],
        static_fp: u64,
    ) -> u64 {
        // Word-granularity FNV throughout: this runs once per frame per
        // compute over thousands of server slots, and the 16× round
        // reduction vs the byte family is what keeps a fingerprint cheaper
        // than the frame it saves.
        let mut h = ContentHasher::new();
        h.write_u64_word(0); // determinism class: Wcet
        for &avail in proc_avail {
            h.write_time_words(avail - base);
        }
        let t = self.tables;
        if !t.wrap_pred_data.is_empty() {
            h.write_u64_word(u64::from(frame == 0));
            if frame > 0 {
                let prev = (frame as usize - 1) * self.n_jobs;
                for p in &t.wrap_pred_data {
                    let done = completion[prev + p.index()]
                        .expect("fingerprinting runs after the previous frame completed");
                    h.write_time_words(done - base);
                }
            }
        }
        h.write_u64_word(static_fp);
        h.finish()
    }

    /// Drives every processor's cursor through exactly one frame (free
    /// interleaving *within* the frame — sound because no round depends on
    /// a later frame), appending the frame's `n_jobs` records.
    fn compute_frame(
        &self,
        frame: u64,
        completion: &mut [Option<TimeQ>],
        proc_avail: &mut [TimeQ],
        cursors: &mut Vec<(u64, usize)>,
        records: &mut Vec<JobRecord>,
    ) -> Result<(), SimError> {
        cursors.clear();
        cursors.resize(self.m_procs, (frame, 0));
        let n_jobs = self.n_jobs;
        let mut done = 0usize;
        while done < n_jobs {
            if self.cancelled() {
                return Err(SimError::Cancelled {
                    completed_rounds: records.len(),
                });
            }
            let mut progressed = false;
            for (m, cursor) in cursors.iter_mut().enumerate() {
                let order = self.proc_order(m);
                while cursor.1 < order.len() {
                    let id = order[cursor.1];
                    let lookup =
                        |f: u64, p: JobId| completion[f as usize * n_jobs + p.index()];
                    let Some(rec) = self.try_round(frame, id, m, proc_avail[m], lookup)
                    else {
                        break;
                    };
                    completion[frame as usize * n_jobs + id.index()] = Some(rec.completion);
                    proc_avail[m] = rec.completion;
                    records.push(rec);
                    cursor.1 += 1;
                    done += 1;
                    progressed = true;
                }
            }
            if !progressed && done < n_jobs {
                return Err(SimError::Stalled {
                    completed_rounds: records.len(),
                });
            }
        }
        Ok(())
    }

    /// The memoized sequential loop: frame-major (valid because rounds
    /// never depend on later frames and `canonicalize` makes record
    /// production order irrelevant), fingerprinting each frame's carry-in
    /// and replaying the memoized round table — every time shifted by the
    /// frame-base delta — on a fingerprint hit. A periodic workload
    /// computes frame 0 and replays the other `N−1`.
    fn compute_rounds_memo_into(&self, scratch: &mut RoundScratch) -> Result<(), SimError> {
        let RoundScratch {
            completion,
            proc_avail,
            cursors,
            records,
            memo,
        } = scratch;
        completion.clear();
        completion.resize(self.total_rounds(), None);
        proc_avail.clear();
        proc_avail.resize(self.m_procs, TimeQ::ZERO);
        records.clear();
        records.reserve(self.total_rounds());
        memo.reset();
        let n_jobs = self.n_jobs;
        for frame in 0..self.frames {
            let base = TimeQ::from_int(frame as i64) * self.h;
            let fp = self.frame_fingerprint(
                frame,
                base,
                completion,
                proc_avail,
                self.frame_fp_static[frame as usize],
            );
            if let Some(slot) = memo.lookup(fp) {
                let entry = &memo.entries[slot];
                let delta = base - entry.src_base;
                let out = frame as usize * n_jobs;
                // One fused copy+shift pass (the slice iterator's exact
                // length elides per-push capacity checks); these records
                // are wide enough that a second patching pass over the
                // block is measurably memory-bound.
                records.extend(entry.records.iter().map(|rec| JobRecord {
                    frame,
                    invoked_at: rec.invoked_at + delta,
                    start: rec.start + delta,
                    completion: rec.completion + delta,
                    deadline: rec.deadline + delta,
                    ..*rec
                }));
                // Later frames only ever read the wrap-predecessor
                // completions of this frame, so replay fills just those.
                for &(j, done) in &entry.wrap_out {
                    completion[out + j as usize] = Some(done + delta);
                }
                for (avail, &src) in proc_avail.iter_mut().zip(&entry.avail_out) {
                    *avail = src + delta;
                }
            } else {
                let start = records.len();
                self.compute_frame(frame, completion, proc_avail, cursors, records)?;
                // Sort the freshly computed block into the canonical
                // per-frame order `(completion, topological position)`
                // before memoizing it: replays (a uniform time shift)
                // preserve the order, so the whole memoized run streams
                // out already canonical and `canonicalize`'s sorted fast
                // path collapses the final sort to a linear scan.
                let topo_pos = self.topo_positions();
                records[start..].sort_unstable_by(|a, b| {
                    (a.completion, topo_pos[a.job.index()])
                        .cmp(&(b.completion, topo_pos[b.job.index()]))
                });
                let out = frame as usize * n_jobs;
                memo.insert(
                    fp,
                    base,
                    &records[start..],
                    proc_avail,
                    &self.tables.wrap_pred_data,
                    &completion[out..out + n_jobs],
                );
            }
        }
        Ok(())
    }

    /// The frame-major loop with **replay disabled**: computes every frame
    /// live while reporting each frame's fingerprint. This is the
    /// collision-audit seam — a test can check that fingerprint-equal
    /// frames really did produce translate-identical round tables, with no
    /// memo in the loop to make the check vacuous. Fingerprints are only
    /// meaningful under [`ExecTimeModel::Wcet`] (the fingerprint does not
    /// absorb stochastic draws).
    pub(crate) fn compute_rounds_fingerprinted(
        &self,
        scratch: &mut RoundScratch,
        fingerprints: &mut Vec<u64>,
    ) -> Result<(), SimError> {
        let RoundScratch {
            completion,
            proc_avail,
            cursors,
            records,
            memo: _,
        } = scratch;
        completion.clear();
        completion.resize(self.total_rounds(), None);
        proc_avail.clear();
        proc_avail.resize(self.m_procs, TimeQ::ZERO);
        records.clear();
        records.reserve(self.total_rounds());
        fingerprints.clear();
        // The audit path works whether or not the memo is enabled, so it
        // builds its own static contributions instead of relying on the
        // engine's (empty-when-disabled) cache. Perf is irrelevant here.
        let static_fps = self.build_static_frame_fps();
        for frame in 0..self.frames {
            let base = TimeQ::from_int(frame as i64) * self.h;
            fingerprints.push(self.frame_fingerprint(
                frame,
                base,
                completion,
                proc_avail,
                static_fps[frame as usize],
            ));
            self.compute_frame(frame, completion, proc_avail, cursors, records)?;
        }
        Ok(())
    }

    /// Checks that the per-processor orders are consistent with the
    /// precedence constraints — i.e. that the full round table completes —
    /// *without* computing any times. The parallel backend runs this before
    /// spawning workers: its blocking rendezvous would otherwise deadlock
    /// (rather than error) on a structurally invalid schedule. The count of
    /// completable rounds is a unique dataflow fixed point, so the error
    /// matches the sequential backend's exactly.
    pub(crate) fn check_order(&self) -> Result<(), SimError> {
        let mut done = vec![false; self.total_rounds()];
        let mut cursors = Vec::new();
        let n_jobs = self.n_jobs;
        self.drive_cursors(&mut cursors, |frame, id, _m| {
            for p in self.graph.predecessors(id) {
                if !done[frame as usize * n_jobs + p.index()] {
                    return false;
                }
            }
            if frame > 0 {
                for p in self.wrap_preds_of(id) {
                    if !done[(frame as usize - 1) * n_jobs + p.index()] {
                        return false;
                    }
                }
            }
            done[frame as usize * n_jobs + id.index()] = true;
            true
        })
    }

    /// The topological position of every job — the third component of the
    /// canonical record key `(completion, frame, topo)`. Borrowed from the
    /// compile-phase tables, so repeated runs share one copy.
    pub(crate) fn topo_positions(&self) -> &'a [usize] {
        &self.tables.topo_pos
    }

    /// Sorts `records` into the canonical total order `(completion, frame,
    /// topological position)` and assigns each executed round its global
    /// invocation count — a pure function of that order, so every backend
    /// (and the streaming sequencer, which never materializes an unsorted
    /// vector at all) computes identical identities.
    pub(crate) fn canonicalize(&self, net: &Fppn, records: &mut [JobRecord]) {
        let topo_pos = self.topo_positions();
        let key = |r: &JobRecord| (r.completion, r.frame, topo_pos[r.job.index()] as u32);
        // Sorted fast path: the memoized sequential loop emits each frame
        // block pre-sorted, so on schedulable workloads (no frame overruns
        // its hyperperiod) the concatenation is already canonical and one
        // linear scan replaces the sort + permutation entirely.
        if !records.windows(2).all(|w| key(&w[0]) <= key(&w[1])) {
            // Decorate-sort-permute with an *unstable* sort: the canonical
            // key is already a total order (the topological position is
            // unique per job within a frame), so stability buys nothing and
            // pdqsort over compact `(key, index)` pairs avoids the stable
            // sort's merge scratch. The trailing index is a tie-breaker in
            // theory only.
            let mut keyed: Vec<(TimeQ, u64, u32, u32)> = records
                .iter()
                .enumerate()
                .map(|(i, r)| (r.completion, r.frame, topo_pos[r.job.index()] as u32, i as u32))
                .collect();
            keyed.sort_unstable();
            for i in 0..keyed.len() {
                let mut index = keyed[i].3 as usize;
                while index < i {
                    index = keyed[index].3 as usize;
                }
                keyed[i].3 = index as u32;
                records.swap(i, index);
            }
        }

        // Global invocation counts are a pure function of the canonical
        // order; assigning them up front lets the sharded executor know
        // every job's identity before any behavior runs.
        let mut counts = vec![0u64; net.process_count()];
        for rec in records.iter_mut() {
            if rec.skipped {
                continue;
            }
            let c = &mut counts[rec.process.index()];
            *c += 1;
            rec.global_k = *c;
        }
    }

    /// Sorts the records canonically, runs the behaviors (sequentially, or
    /// sharded across `behavior_workers` threads when non-zero), renders
    /// the Gantt and accumulates the statistics.
    ///
    /// The canonical order `(completion, frame, topological position)` is a
    /// *total* order on rounds (the topological position is unique per job
    /// within a frame), so the result is independent of the order in which
    /// a backend produced the records — the keystone of the bit-identity
    /// contract between the backends. This is the **barrier** finalization:
    /// every record exists before the first behavior fires. The streaming
    /// backend (`crate::pipeline`) instead interleaves the same three steps
    /// per record and calls [`RoundEngine::render`] directly.
    pub(crate) fn finalize(
        &self,
        net: &Fppn,
        bank: &BehaviorBank,
        stimuli: &Stimuli,
        mut records: Vec<JobRecord>,
        behavior_workers: usize,
    ) -> Result<SimRun, SimError> {
        self.canonicalize(net, &mut records);

        // Execute behaviors in the precedence-consistent canonical order:
        // sharded over the worker pool when requested and expressible,
        // else through the sequential store.
        let observables = if behavior_workers > 0 && SharedChannels::supports(net) {
            crate::behavior::run_behaviors_sharded(
                net,
                bank,
                stimuli,
                &records,
                behavior_workers,
                self.cancel,
            )?
        } else {
            let mut behaviors = bank.instantiate();
            let mut state = ExecState::new(net, stimuli);
            for (done, rec) in records.iter().enumerate() {
                // Behaviors are where wall-clock time actually goes, so the
                // data plane polls per job — the round loop's per-scan check
                // alone would never interrupt a slow behavior.
                if self.cancelled() {
                    return Err(SimError::Cancelled {
                        completed_rounds: done,
                    });
                }
                if rec.skipped {
                    continue;
                }
                state.run_job(&mut behaviors, rec.process, rec.global_k, rec.invoked_at)?;
            }
            state.into_observables()
        };
        Ok(self.render(net, records, observables))
    }

    /// Renders the [`SimRun`] from canonically-ordered records (with
    /// `global_k` assigned) and already-computed observables: the Gantt,
    /// then the aggregate statistics. Shared by the barrier finalization
    /// above and the streaming pipeline, so presentation can never drift
    /// between backends.
    pub(crate) fn render(
        &self,
        net: &Fppn,
        records: Vec<JobRecord>,
        observables: Observables,
    ) -> SimRun {
        // Gantt: application rows + a runtime row when overhead is modeled.
        let overhead_row = (!self.overhead.is_none()) as usize;
        let mut gantt = Gantt::new(self.m_procs + overhead_row);
        // `name[k]@frame`, assembled by hand: one `format!` per segment is
        // measurable at hundreds of thousands of rounds.
        fn push_u64(out: &mut String, mut v: u64) {
            let mut buf = [0u8; 20];
            let mut i = buf.len();
            loop {
                i -= 1;
                buf[i] = b'0' + (v % 10) as u8;
                v /= 10;
                if v == 0 {
                    break;
                }
            }
            out.push_str(std::str::from_utf8(&buf[i..]).expect("ascii digits"));
        }
        for rec in &records {
            if rec.skipped {
                continue;
            }
            let name = net.process(rec.process).name();
            let mut label = String::with_capacity(name.len() + 24);
            label.push_str(name);
            label.push('[');
            push_u64(&mut label, rec.global_k);
            label.push_str("]@");
            push_u64(&mut label, rec.frame);
            gantt.push(Segment {
                processor: rec.processor,
                label,
                start: rec.start,
                end: rec.completion,
                kind: SegmentKind::Job,
            });
        }
        if overhead_row == 1 {
            for f in 0..self.frames {
                let base = TimeQ::from_int(f as i64) * self.h;
                gantt.push(Segment {
                    processor: self.m_procs,
                    label: format!("runtime@{f}"),
                    start: base,
                    end: base + self.overhead.frame_overhead(f),
                    kind: SegmentKind::Overhead,
                });
            }
        }

        let mut stats = SimStats::default();
        for rec in &records {
            if rec.skipped {
                stats.skipped += 1;
                continue;
            }
            stats.executed += 1;
            stats.makespan = stats.makespan.max(rec.completion);
            if rec.missed {
                stats.deadline_misses += 1;
                stats.max_lateness =
                    stats.max_lateness.max(rec.completion - rec.deadline);
            }
        }

        SimRun {
            observables,
            gantt,
            records,
            stats,
        }
    }
}

/// Simulates `config.frames` frames of the static-order policy,
/// dispatching on [`SimConfig`]: the streaming pipeline when
/// [`SimConfig::pipeline`] resolves true, else the sequential or barrier
/// parallel backend per [`SimConfig::workers`] (all backends produce
/// bit-identical results).
///
/// # Errors
///
/// Returns [`SimError`] on invalid stimuli, behavior failures, or a
/// deadlocked (structurally invalid) schedule.
pub fn simulate(
    net: &Fppn,
    bank: &BehaviorBank,
    stimuli: &Stimuli,
    derived: &DerivedTaskGraph,
    schedule: &StaticSchedule,
    config: &SimConfig,
) -> Result<SimRun, SimError> {
    let tables = StaticTables::build(net, derived, schedule);
    simulate_with_tables(net, bank, stimuli, derived, &tables, config, None)
}

/// The mode dispatcher against already-built compile-phase tables: every
/// backend borrows the same [`StaticTables`], so switching modes on one
/// compiled network performs zero recompilation. [`simulate`] is the
/// compile+run wrapper over this;
/// [`CompiledNetwork::simulate`](crate::CompiledNetwork::simulate) calls
/// it with cached tables.
pub(crate) fn simulate_with_tables(
    net: &Fppn,
    bank: &BehaviorBank,
    stimuli: &Stimuli,
    derived: &DerivedTaskGraph,
    tables: &StaticTables,
    config: &SimConfig,
    cancel: Option<&CancelToken>,
) -> Result<SimRun, SimError> {
    let workers = config.resolved_workers();
    // The pipeline routes even at one worker, exactly like behavior
    // sharding below: a 1-worker pipelined run exercises the full
    // frontier/feed machinery.
    if config.resolved_pipeline() {
        return crate::pipeline::simulate_pipelined_tables(
            net,
            bank,
            stimuli,
            derived,
            tables,
            config,
            workers.max(1),
            cancel,
        );
    }
    // Behavior sharding routes through the parallel backend even at one
    // worker: a 1-worker sharded run exercises the full rendezvous
    // machinery, exactly like the 1-worker round backend.
    if workers <= 1 && !config.resolved_parallel_behaviors() {
        run_seq(net, bank, stimuli, derived, tables, config, cancel)
    } else {
        crate::parallel::simulate_parallel_tables(
            net,
            bank,
            stimuli,
            derived,
            tables,
            config,
            workers.max(1),
            cancel,
        )
    }
}

/// The sequential backend: one thread walks all per-processor cursors.
///
/// Retained (and exported) as the differential oracle for the parallel
/// backend, exactly like `list_schedule_naive` oracles the event-driven
/// scheduler.
///
/// # Errors
///
/// Returns [`SimError`] on invalid stimuli, behavior failures, or a
/// deadlocked (structurally invalid) schedule.
pub fn simulate_seq(
    net: &Fppn,
    bank: &BehaviorBank,
    stimuli: &Stimuli,
    derived: &DerivedTaskGraph,
    schedule: &StaticSchedule,
    config: &SimConfig,
) -> Result<SimRun, SimError> {
    let tables = StaticTables::build(net, derived, schedule);
    run_seq(net, bank, stimuli, derived, &tables, config, None)
}

/// The sequential backend against borrowed compile-phase tables.
pub(crate) fn run_seq(
    net: &Fppn,
    bank: &BehaviorBank,
    stimuli: &Stimuli,
    derived: &DerivedTaskGraph,
    tables: &StaticTables,
    config: &SimConfig,
    cancel: Option<&CancelToken>,
) -> Result<SimRun, SimError> {
    let mut engine = RoundEngine::new(net, stimuli, derived, tables, config)?;
    if let Some(token) = cancel {
        engine.set_cancel(token);
    }
    let records = engine.compute_rounds_seq()?;
    // The oracle never shards behaviors, whatever the config says.
    engine.finalize(net, bank, stimuli, records, 0)
}

/// [`run_seq`] into caller-owned scratch buffers: the round loop reuses
/// the scratch's completion/availability/cursor vectors across runs
/// (records move into the returned [`SimRun`]). The `fppn-serve` worker
/// pool drives this through
/// [`CompiledNetwork::simulate_with_scratch`](crate::CompiledNetwork::simulate_with_scratch).
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_seq_into(
    net: &Fppn,
    bank: &BehaviorBank,
    stimuli: &Stimuli,
    derived: &DerivedTaskGraph,
    tables: &StaticTables,
    config: &SimConfig,
    scratch: &mut RoundScratch,
    cancel: Option<&CancelToken>,
) -> Result<SimRun, SimError> {
    let mut engine = RoundEngine::new(net, stimuli, derived, tables, config)?;
    if let Some(token) = cancel {
        engine.set_cancel(token);
    }
    engine.compute_rounds_seq_into(scratch)?;
    let records = std::mem::take(&mut scratch.records);
    engine.finalize(net, bank, stimuli, records, 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fppn_core::{
        run_zero_delay, ChannelKind, EventSpec, FppnBuilder, JobCtx, JobOrdering, PortId,
        ProcessSpec, SporadicTrace, Value,
    };
    use fppn_sched::{list_schedule, Heuristic};
    use fppn_taskgraph::{derive_task_graph, WcetModel};

    fn ms(v: i64) -> TimeQ {
        TimeQ::from_ms(v)
    }

    /// input(200ms) -> filter(100ms) -> output(200ms), FIFO chain.
    fn chain_app() -> (Fppn, BehaviorBank) {
        let mut b = FppnBuilder::new();
        let input = b.process(ProcessSpec::new("input", EventSpec::periodic(ms(200))));
        let filter = b.process(ProcessSpec::new("filter", EventSpec::periodic(ms(100))));
        let output =
            b.process(ProcessSpec::new("output", EventSpec::periodic(ms(200))).with_output("o"));
        let c1 = b.channel("c1", input, filter, ChannelKind::Fifo);
        let c2 = b.channel("c2", filter, output, ChannelKind::Fifo);
        b.priority(input, filter);
        b.priority(filter, output);
        b.behavior(input, move || {
            Box::new(move |ctx: &mut JobCtx<'_>| ctx.write(c1, Value::Int(ctx.k() as i64)))
        });
        b.behavior(filter, move || {
            Box::new(move |ctx: &mut JobCtx<'_>| {
                if let Some(Value::Int(v)) = ctx.read(c1) {
                    ctx.write(c2, Value::Int(v * 10));
                }
            })
        });
        b.behavior(output, move || {
            Box::new(move |ctx: &mut JobCtx<'_>| {
                let v = ctx.read_value(c2);
                ctx.write_output(PortId::from_index(0), v);
            })
        });
        let (net, bank) = b.build().unwrap();
        (net, bank)
    }

    #[test]
    fn simulation_matches_zero_delay_reference() {
        let (net, bank) = chain_app();
        let derived = derive_task_graph(&net, &WcetModel::uniform(ms(10))).unwrap();
        let schedule = list_schedule(&derived.graph, 2, Heuristic::AlapEdf);
        let frames = 3;
        let config = SimConfig {
            frames,
            ..SimConfig::default()
        };
        let run = simulate(&net, &bank, &Stimuli::new(), &derived, &schedule, &config).unwrap();

        let mut behaviors = bank.instantiate();
        let horizon = TimeQ::from_int(frames as i64) * derived.hyperperiod;
        let reference = run_zero_delay(
            &net,
            &mut behaviors,
            &Stimuli::new(),
            horizon,
            JobOrdering::default(),
        )
        .unwrap();
        assert_eq!(run.observables.diff(&reference.observables), None);
        assert_eq!(run.stats.deadline_misses, 0);
        assert_eq!(run.stats.executed, 3 * 4); // 4 jobs per 200ms frame
    }

    #[test]
    fn jitter_execution_still_meets_deadlines_and_is_deterministic() {
        // Prop. 4.1: with a feasible schedule and exec times <= WCET,
        // deadlines hold and observables match the reference.
        let (net, bank) = chain_app();
        let derived = derive_task_graph(&net, &WcetModel::uniform(ms(30))).unwrap();
        let schedule = list_schedule(&derived.graph, 2, Heuristic::AlapEdf);
        assert!(schedule.check_feasible(&derived.graph).is_ok());
        for seed in 0..5 {
            let config = SimConfig {
                frames: 4,
                exec_time: ExecTimeModel::typical_jitter(seed),
                ..SimConfig::default()
            };
            let run =
                simulate(&net, &bank, &Stimuli::new(), &derived, &schedule, &config).unwrap();
            assert_eq!(run.stats.deadline_misses, 0, "seed {seed}");
            let mut behaviors = bank.instantiate();
            let horizon = TimeQ::from_int(4) * derived.hyperperiod;
            let reference = run_zero_delay(
                &net,
                &mut behaviors,
                &Stimuli::new(),
                horizon,
                JobOrdering::default(),
            )
            .unwrap();
            assert_eq!(run.observables.diff(&reference.observables), None);
        }
    }

    /// user(200ms) with sporadic cfg (2 per 700ms) writing a blackboard.
    fn sporadic_app(cfg_priority: bool) -> (Fppn, BehaviorBank, ProcessId) {
        let mut b = FppnBuilder::new();
        let user =
            b.process(ProcessSpec::new("user", EventSpec::periodic(ms(200))).with_output("o"));
        let cfg = b.process(ProcessSpec::new("cfg", EventSpec::sporadic(2, ms(700))));
        let ch = b.channel("c", cfg, user, ChannelKind::Blackboard);
        if cfg_priority {
            b.priority(cfg, user);
        } else {
            b.priority(user, cfg);
        }
        b.behavior(cfg, move || {
            Box::new(move |ctx: &mut JobCtx<'_>| ctx.write(ch, Value::Int(100 * ctx.k() as i64)))
        });
        b.behavior(user, move || {
            Box::new(move |ctx: &mut JobCtx<'_>| {
                let v = ctx.read_value(ch);
                ctx.write_output(PortId::from_index(0), v);
            })
        });
        let (net, bank) = b.build().unwrap();
        (net, bank, cfg)
    }

    #[test]
    fn sporadic_slots_execute_and_match_reference() {
        for cfg_priority in [true, false] {
            let (net, bank, cfg) = sporadic_app(cfg_priority);
            let derived = derive_task_graph(&net, &WcetModel::uniform(ms(10))).unwrap();
            let schedule = list_schedule(&derived.graph, 1, Heuristic::AlapEdf);
            let frames = 5;
            let mut stimuli = Stimuli::new();
            stimuli.arrivals(cfg, SporadicTrace::new(vec![ms(50), ms(400), ms(750)]));
            let stimuli = clip_stimuli(&net, &derived, &stimuli, frames);
            let config = SimConfig {
                frames,
                ..SimConfig::default()
            };
            let run = simulate(&net, &bank, &stimuli, &derived, &schedule, &config).unwrap();
            // 3 arrivals executed; 2 slots per frame x 5 frames = 10 slots,
            // so 7 were skipped as false.
            assert_eq!(run.stats.skipped, 7, "priority {cfg_priority}");
            let mut behaviors = bank.instantiate();
            let horizon = TimeQ::from_int(frames as i64) * derived.hyperperiod;
            let reference =
                run_zero_delay(&net, &mut behaviors, &stimuli, horizon, JobOrdering::default())
                    .unwrap();
            assert_eq!(
                run.observables.diff(&reference.observables),
                None,
                "priority {cfg_priority}"
            );
        }
    }

    #[test]
    fn boundary_rule_differs_at_exact_window_close() {
        // An arrival exactly at a window boundary b = 200 is handled by the
        // subset at 200 when cfg -> user, but postponed when user -> cfg.
        // In both cases the observables match the zero-delay reference
        // (where the same tie is broken by FP at execution time).
        for cfg_priority in [true, false] {
            let (net, bank, cfg) = sporadic_app(cfg_priority);
            let derived = derive_task_graph(&net, &WcetModel::uniform(ms(10))).unwrap();
            let schedule = list_schedule(&derived.graph, 1, Heuristic::AlapEdf);
            let frames = 4;
            let mut stimuli = Stimuli::new();
            stimuli.arrivals(cfg, SporadicTrace::new(vec![ms(200)]));
            let stimuli = clip_stimuli(&net, &derived, &stimuli, frames);
            let config = SimConfig {
                frames,
                ..SimConfig::default()
            };
            let run = simulate(&net, &bank, &stimuli, &derived, &schedule, &config).unwrap();
            let mut behaviors = bank.instantiate();
            let horizon = TimeQ::from_int(frames as i64) * derived.hyperperiod;
            let reference =
                run_zero_delay(&net, &mut behaviors, &stimuli, horizon, JobOrdering::default())
                    .unwrap();
            assert_eq!(
                run.observables.diff(&reference.observables),
                None,
                "priority {cfg_priority}"
            );
            // The user job at 200 sees the config value iff cfg has
            // priority.
            let out = &run.observables.outputs[0].1;
            let user_job_2 = &out[1].1; // user[2] invoked at 200
            if cfg_priority {
                assert_eq!(user_job_2, &Value::Int(100));
            } else {
                assert_eq!(user_job_2, &Value::Absent);
            }
        }
    }

    #[test]
    fn overhead_delays_starts_and_causes_misses_on_tight_load() {
        let (net, bank) = chain_app();
        // filter: 100ms period & deadline; WCET 45ms x2 + others on one
        // processor with 30ms overhead => frame jobs squeezed.
        let mut wcet = WcetModel::uniform(ms(45));
        let _ = &mut wcet;
        let derived = derive_task_graph(&net, &wcet).unwrap();
        let schedule = list_schedule(&derived.graph, 1, Heuristic::AlapEdf);
        let base = SimConfig {
            frames: 3,
            ..SimConfig::default()
        };
        let no_overhead = simulate(&net, &bank, &Stimuli::new(), &derived, &schedule, &base)
            .unwrap();
        let with_overhead = simulate(
            &net,
            &bank,
            &Stimuli::new(),
            &derived,
            &schedule,
            &SimConfig {
                overhead: OverheadModel::constant(ms(30)),
                ..base
            },
        )
        .unwrap();
        assert!(no_overhead.stats.deadline_misses < with_overhead.stats.deadline_misses);
        // Overhead row appears in the Gantt.
        assert_eq!(with_overhead.gantt.processors(), 2);
        assert_eq!(no_overhead.gantt.processors(), 1);
        // Determinism holds even under overload.
        let mut behaviors = bank.instantiate();
        let horizon = TimeQ::from_int(3) * derived.hyperperiod;
        let reference = run_zero_delay(
            &net,
            &mut behaviors,
            &Stimuli::new(),
            horizon,
            JobOrdering::default(),
        )
        .unwrap();
        assert_eq!(with_overhead.observables.diff(&reference.observables), None);
    }

    #[test]
    fn stats_accumulate() {
        let (net, bank) = chain_app();
        let derived = derive_task_graph(&net, &WcetModel::uniform(ms(10))).unwrap();
        let schedule = list_schedule(&derived.graph, 1, Heuristic::AlapEdf);
        let run = simulate(
            &net,
            &bank,
            &Stimuli::new(),
            &derived,
            &schedule,
            &SimConfig {
                frames: 2,
                ..SimConfig::default()
            },
        )
        .unwrap();
        assert_eq!(run.stats.executed, 8);
        assert_eq!(run.stats.skipped, 0);
        assert!(run.stats.makespan <= TimeQ::from_int(2) * derived.hyperperiod);
        assert_eq!(run.records.len(), 8);
    }

    #[test]
    fn workers_field_resolution() {
        let explicit = SimConfig {
            workers: 3,
            ..SimConfig::default()
        };
        assert_eq!(explicit.resolved_workers(), 3);
        // workers == 0 resolves via the environment; in the test harness the
        // variable is either unset/empty (→ 1) or a valid positive override
        // (→ itself; invalid values now panic with the variable's name).
        let auto = SimConfig::default();
        let resolved = auto.resolved_workers();
        match std::env::var("FPPN_SIM_WORKERS").ok().filter(|v| !v.is_empty()) {
            Some(v) => assert_eq!(resolved, v.parse::<usize>().unwrap()),
            None => assert_eq!(resolved, 1),
        }
    }

    #[test]
    fn from_env_agrees_with_resolved_accessors() {
        let cfg = SimConfig::from_env().expect("harness env vars are valid");
        assert_eq!(cfg.workers.max(1), SimConfig::default().resolved_workers());
        assert_eq!(
            cfg.parallel_behaviors,
            SimConfig::default().resolved_parallel_behaviors()
        );
        assert_eq!(cfg.pipeline, SimConfig::default().resolved_pipeline());
        assert_eq!(cfg.frames, 1, "from_env starts from the defaults");
    }
}
