//! Cooperative run cancellation: the mechanism behind per-run wall-clock
//! deadlines and server shutdown in `fppn-serve`.
//!
//! A [`CancelToken`] is a cheap, cloneable handle checked *between* units
//! of work — at round-scan and frame boundaries in every backend, and
//! before each behavior job — never preemptively. Cooperative checks keep
//! the determinism contract trivially intact: a cancelled run returns
//! [`SimError::Cancelled`](crate::SimError::Cancelled) with partial
//! progress, while a run that is *not* cancelled performs arithmetic
//! completely untouched by the token (a relaxed flag load has no effect on
//! any computed value), so non-cancelled runs stay bit-identical to runs
//! without a token. The checks also never allocate, preserving the
//! zero-alloc steady state of the round loop (asserted by the `alloc_zero`
//! gate with an armed token).
//!
//! Tokens form a chain: a child token trips when its parent does, so one
//! server-wide shutdown token fans out to every in-flight run while each
//! run still owns a private deadline.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

#[derive(Debug)]
struct Inner {
    cancelled: AtomicBool,
    /// Wall-clock instant past which the token reports cancelled.
    deadline: Option<Instant>,
    /// Cancelling the parent cancels this token too (checked lazily).
    parent: Option<Arc<Inner>>,
}

impl Inner {
    fn is_cancelled(&self) -> bool {
        // Fast path: one relaxed load. The flag latches deadline expiry and
        // parent cancellation, so repeated checks after the first trip cost
        // a single load and never consult the clock again.
        if self.cancelled.load(Ordering::Relaxed) {
            return true;
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                self.cancelled.store(true, Ordering::Relaxed);
                return true;
            }
        }
        if let Some(parent) = &self.parent {
            if parent.is_cancelled() {
                self.cancelled.store(true, Ordering::Relaxed);
                return true;
            }
        }
        false
    }
}

/// A cooperative cancellation handle: simulation backends poll it at round
/// and frame boundaries and abandon the run with
/// [`SimError::Cancelled`](crate::SimError::Cancelled) once it trips —
/// via [`CancelToken::cancel`], an expired deadline, or a tripped parent.
///
/// Cloning shares the same underlying flag; [`CancelToken::child`] creates
/// a *linked* token that trips with its parent but can also be cancelled
/// (or deadlined) independently.
#[derive(Debug, Clone)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl CancelToken {
    /// A fresh token that only trips on an explicit [`CancelToken::cancel`].
    #[must_use]
    pub fn new() -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: None,
                parent: None,
            }),
        }
    }

    /// A token that trips `budget` from now (or on explicit cancel).
    #[must_use]
    pub fn with_deadline(budget: Duration) -> Self {
        Self::with_deadline_at(Instant::now() + budget)
    }

    /// A token that trips at the absolute instant `deadline`.
    #[must_use]
    pub fn with_deadline_at(deadline: Instant) -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: Some(deadline),
                parent: None,
            }),
        }
    }

    /// A child token: trips when `self` trips, or on its own cancel.
    #[must_use]
    pub fn child(&self) -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: None,
                parent: Some(Arc::clone(&self.inner)),
            }),
        }
    }

    /// A child token with its own absolute deadline: trips when `self`
    /// trips, when `deadline` passes, or on its own cancel — the shape of
    /// a per-run deadline under a server-wide shutdown token.
    #[must_use]
    pub fn child_with_deadline_at(&self, deadline: Instant) -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: Some(deadline),
                parent: Some(Arc::clone(&self.inner)),
            }),
        }
    }

    /// Trips the token; every clone and child observes it on its next
    /// check. Idempotent.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Relaxed);
    }

    /// Whether the token has tripped (explicitly, by deadline expiry, or
    /// through a cancelled parent). Allocation-free; after the first trip
    /// it is a single relaxed load.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.inner.is_cancelled()
    }

    /// The absolute deadline this token carries, if any.
    #[must_use]
    pub fn deadline(&self) -> Option<Instant> {
        self.inner.deadline
    }
}

impl Default for CancelToken {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_cancel_trips_clones_and_children() {
        let token = CancelToken::new();
        let clone = token.clone();
        let child = token.child();
        assert!(!token.is_cancelled() && !clone.is_cancelled() && !child.is_cancelled());
        token.cancel();
        assert!(clone.is_cancelled(), "clones share the flag");
        assert!(child.is_cancelled(), "children observe the parent");
    }

    #[test]
    fn child_cancel_does_not_trip_parent() {
        let parent = CancelToken::new();
        let child = parent.child();
        child.cancel();
        assert!(child.is_cancelled());
        assert!(!parent.is_cancelled(), "cancellation flows downward only");
    }

    #[test]
    fn deadline_expiry_latches() {
        let token = CancelToken::with_deadline(Duration::from_millis(0));
        // The deadline is already past; the first check latches the flag.
        assert!(token.is_cancelled());
        assert!(token.is_cancelled(), "stays cancelled");
    }

    #[test]
    fn far_deadline_does_not_trip() {
        let token = CancelToken::with_deadline(Duration::from_secs(3600));
        assert!(!token.is_cancelled());
        assert!(token.deadline().is_some());
    }

    #[test]
    fn child_with_deadline_trips_on_either_cause() {
        let shutdown = CancelToken::new();
        let run = shutdown.child_with_deadline_at(Instant::now() + Duration::from_secs(3600));
        assert!(!run.is_cancelled());
        shutdown.cancel();
        assert!(run.is_cancelled(), "parent shutdown cancels the run token");

        let shutdown = CancelToken::new();
        let run = shutdown.child_with_deadline_at(Instant::now());
        assert!(run.is_cancelled(), "expired per-run deadline trips alone");
        assert!(!shutdown.is_cancelled());
    }
}
