//! Sharded behavior execution: the data plane on the worker pool.
//!
//! # The remaining Amdahl residue, and why it shards
//!
//! `parallel.rs` shards the §IV round *timing*, but `finalize` used to
//! replay every behavior through one sequential [`ExecState`] — so the
//! moment behaviors do real work, the data plane serializes the whole
//! simulation. The model itself licenses sharding it: each channel has one
//! writer and one reader (Def. 2.1), so job `p[k]` at canonical position
//! `i` depends on exactly the jobs of its channel writers at positions
//! `< i`. Those are a *prefix* of each writer's job sequence, because every
//! process's jobs are canonically ordered among themselves.
//!
//! # Protocol
//!
//! The canonical record order — `(completion, frame, topo)`, already fixed
//! before any behavior runs — is scanned once to build a static plan: per
//! executed job, its `global_k`, the per-read-channel count of writer jobs
//! canonically before it (the *visibility*), and the distinct
//! `(writer, count)` rendezvous gates. Workers own whole processes
//! (clustered by the [`ChannelDependencyMap`]'s weakly-connected
//! components, so disjoint clusters never exchange wake-ups) and advance
//! each process's job sequence in order:
//!
//! 1. **gate** — spin/sleep until `progress[w] ≥ J` for every gate, where
//!    `progress[w]` counts the jobs process `w` has *committed*;
//! 2. **execute** — run the behavior against the process's
//!    [`ProcessShard`], which resolves reads from the committed prefixes;
//! 3. **publish** — after the shard commits the job's writes, bump
//!    `progress[p]` and wake sleepers.
//!
//! Every gate points strictly backwards in the canonical total order, so
//! the wait graph is acyclic: the globally-least unexecuted job is always
//! runnable and its owner always reaches it on the next scan — the same
//! deadlock-freedom argument (and monitor construction) as the round
//! backend's completion board.
//!
//! Determinism does not rest on the scheduler: each read is a pure function
//! of `(visibility, reader cursor, committed prefix)`, all derived from the
//! canonical order — so the merged [`Observables`] are bit-identical to the
//! sequential replay, which the differential suite asserts across worker
//! counts, workloads and models.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

use fppn_core::{
    BehaviorBank, BoxedBehavior, ExecError, Fppn, Observables, ProcessShard, ShardedExec,
    Stimuli,
};
use fppn_taskgraph::ChannelDependencyMap;
use fppn_time::TimeQ;
use parking_lot::{Condvar, Mutex};

use crate::cancel::CancelToken;
use crate::policy::{JobRecord, SimError};

/// Per-process committed-job counters plus the sleep/wake monitor.
pub(crate) struct ProgressBoard {
    /// `progress[p]` = jobs process `p` has committed. Only `p`'s owning
    /// worker stores; gates load.
    progress: Vec<AtomicU64>,
    /// Total committed jobs; doubles as the wake-up generation.
    generation: AtomicU64,
    waiters: AtomicUsize,
    /// Set on behavior error or worker panic: everyone must wake and exit.
    aborted: AtomicBool,
    monitor: Mutex<()>,
    cond: Condvar,
}

impl ProgressBoard {
    pub(crate) fn new(n: usize) -> Self {
        ProgressBoard {
            progress: (0..n).map(|_| AtomicU64::new(0)).collect(),
            generation: AtomicU64::new(0),
            waiters: AtomicUsize::new(0),
            aborted: AtomicBool::new(false),
            monitor: Mutex::new(()),
            cond: Condvar::new(),
        }
    }

    /// Bumps the generation and wakes sleepers — the wake half of
    /// [`ProgressBoard::publish`], also used on its own after feed appends
    /// (a newly *planned* job is progress a blocked worker must see, even
    /// though no counter moved; the sequencer batches one notify per
    /// ingested round burst).
    pub(crate) fn notify(&self) {
        self.generation.fetch_add(1, Ordering::SeqCst);
        if self.waiters.load(Ordering::SeqCst) > 0 {
            let _guard = self.monitor.lock();
            self.cond.notify_all();
        }
    }

    /// Publishes one committed job of process `p` and wakes sleepers. The
    /// progress store precedes the `SeqCst` generation bump, so a waiter
    /// observing the new generation re-scans against fresh counters.
    fn publish(&self, p: usize, committed: u64) {
        self.progress[p].store(committed, Ordering::SeqCst);
        self.notify();
    }

    fn snapshot(&self) -> u64 {
        self.generation.load(Ordering::SeqCst)
    }

    /// Blocks until the generation moves past `seen` (the waiter registers
    /// before re-checking under the lock; publishers bump before checking
    /// `waiters` — no lost wake-ups).
    fn wait_for_progress(&self, seen: u64) {
        let mut guard = self.monitor.lock();
        self.waiters.fetch_add(1, Ordering::SeqCst);
        if self.generation.load(Ordering::SeqCst) == seen
            && !self.aborted.load(Ordering::SeqCst)
        {
            self.cond.wait(&mut guard);
        }
        self.waiters.fetch_sub(1, Ordering::SeqCst);
    }

    pub(crate) fn abort(&self) {
        self.aborted.store(true, Ordering::SeqCst);
        let _guard = self.monitor.lock();
        self.cond.notify_all();
    }

    pub(crate) fn is_aborted(&self) -> bool {
        self.aborted.load(Ordering::SeqCst)
    }
}

/// Flags the board aborted if its worker unwinds before disarming, so a
/// panicking behavior cannot strand peers on the monitor.
struct AbortOnUnwind<'a> {
    board: &'a ProgressBoard,
    armed: bool,
}

impl Drop for AbortOnUnwind<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.board.abort();
        }
    }
}

/// A tiny inline-first buffer for `Copy` plan entries: up to `N` elements
/// live in the struct itself and only a (rare) overflow spills to the heap.
/// `PlannedJob` is built once per executed round, and a process's read /
/// writer fan-in is almost always small, so inlining removes two heap
/// allocations per round from the planning hot path.
#[derive(Debug, Clone)]
pub(crate) struct SmallBuf<T: Copy + Default, const N: usize> {
    inline: [T; N],
    len: usize,
    /// Holds *all* elements once `len > N`; empty while inline.
    spill: Vec<T>,
}

impl<T: Copy + Default, const N: usize> SmallBuf<T, N> {
    pub(crate) fn new() -> Self {
        SmallBuf {
            inline: [T::default(); N],
            len: 0,
            spill: Vec::new(),
        }
    }

    pub(crate) fn push(&mut self, v: T) {
        if self.len < N {
            self.inline[self.len] = v;
        } else {
            if self.spill.is_empty() {
                self.spill.extend_from_slice(&self.inline);
            }
            self.spill.push(v);
        }
        self.len += 1;
    }

    pub(crate) fn as_slice(&self) -> &[T] {
        if self.len <= N {
            &self.inline[..self.len]
        } else {
            &self.spill
        }
    }
}

impl<T: Copy + Default, const N: usize> FromIterator<T> for SmallBuf<T, N> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut buf = Self::new();
        for v in iter {
            buf.push(v);
        }
        buf
    }
}

/// The static plan of one executed job.
pub(crate) struct PlannedJob {
    k: u64,
    invoked_at: TimeQ,
    /// Committed-writer-job counts visible per read channel, aligned with
    /// [`ProcessShard::read_channels`].
    visible: SmallBuf<u64, 4>,
    /// Distinct rendezvous gates: `(writer process index, required
    /// committed count)`. Zero-count gates are dropped at plan time.
    gates: SmallBuf<(usize, u64), 4>,
}

/// One process timeline owned by a worker.
struct Timeline<'s> {
    p: usize,
    shard: ProcessShard<'s>,
    behavior: BoxedBehavior,
    jobs: Vec<PlannedJob>,
    next: usize,
}

/// Turns canonically-ordered records into [`PlannedJob`]s one record at a
/// time — the single copy of the visibility/gate arithmetic, consumed
/// whole-frame by [`build_plan`] (the barrier executor) and record-by-record
/// by the streaming pipeline's sequencer.
pub(crate) struct RecordPlanner<'n> {
    net: &'n Fppn,
    deps: ChannelDependencyMap,
    committed: Vec<u64>,
}

impl<'n> RecordPlanner<'n> {
    pub(crate) fn new(net: &'n Fppn) -> Self {
        RecordPlanner {
            net,
            deps: ChannelDependencyMap::analyze(net),
            committed: vec![0u64; net.process_count()],
        }
    }

    pub(crate) fn deps(&self) -> &ChannelDependencyMap {
        &self.deps
    }

    /// Plans the next record of the canonical order; `None` for skipped
    /// slots (no behavior runs). `rec.global_k` must already be assigned.
    pub(crate) fn plan(&mut self, rec: &JobRecord) -> Option<PlannedJob> {
        if rec.skipped {
            return None;
        }
        let p = rec.process;
        let visible: SmallBuf<u64, 4> = self
            .deps
            .reads(p)
            .iter()
            .map(|&ch| self.committed[self.net.channel(ch).writer().index()])
            .collect();
        let gates: SmallBuf<(usize, u64), 4> = self
            .deps
            .direct_writers(p)
            .iter()
            .map(|w| (w.index(), self.committed[w.index()]))
            .filter(|&(_, j)| j > 0)
            .collect();
        self.committed[p.index()] += 1;
        debug_assert_eq!(
            rec.global_k,
            self.committed[p.index()],
            "canonical k drifted"
        );
        Some(PlannedJob {
            k: rec.global_k,
            invoked_at: rec.invoked_at,
            visible,
            gates,
        })
    }
}

/// Scans the canonical record order once into per-process job plans.
fn build_plan(
    net: &Fppn,
    planner: &mut RecordPlanner<'_>,
    records: &[JobRecord],
) -> Vec<Vec<PlannedJob>> {
    let mut plan: Vec<Vec<PlannedJob>> = (0..net.process_count()).map(|_| Vec::new()).collect();
    for rec in records {
        if let Some(job) = planner.plan(rec) {
            plan[rec.process.index()].push(job);
        }
    }
    plan
}

/// Partitions processes into `workers` chunks, keeping each dependency
/// component contiguous and balancing by per-process job weight, so
/// cross-worker rendezvous only happens where the data actually flows.
/// The barrier executor weighs by exact planned job counts; the streaming
/// pipeline (which partitions before any record exists) weighs by the
/// static jobs-per-frame census — the same balance up to skipped slots.
pub(crate) fn partition(
    deps: &ChannelDependencyMap,
    weights: &[usize],
    workers: usize,
) -> Vec<Vec<usize>> {
    let order: Vec<usize> = deps
        .components()
        .iter()
        .flat_map(|c| c.iter().map(|p| p.index()))
        .collect();
    let total: usize = weights.iter().sum();
    let workers = workers.clamp(1, order.len().max(1));
    let target = total.div_ceil(workers).max(1);
    let mut chunks: Vec<Vec<usize>> = vec![Vec::new(); workers];
    let (mut w, mut filled) = (0usize, 0usize);
    for p in order {
        if filled >= target && w + 1 < workers {
            w += 1;
            filled = 0;
        }
        chunks[w].push(p);
        filled += weights[p];
    }
    chunks
}

/// Advances every timeline owned by one worker until all are exhausted,
/// publishing progress after each committed job.
fn run_worker(
    board: &ProgressBoard,
    timelines: &mut [Timeline<'_>],
    error: &Mutex<Option<ExecError>>,
    cancel: Option<&CancelToken>,
) {
    let mut guard = AbortOnUnwind { board, armed: true };
    let mut remaining = timelines
        .iter()
        .filter(|t| t.next < t.jobs.len())
        .count();
    let mut idle_scans = 0u32;
    while remaining > 0 && !board.aborted.load(Ordering::SeqCst) {
        let seen = board.snapshot();
        let mut progressed = false;
        for tl in timelines.iter_mut() {
            while tl.next < tl.jobs.len() {
                // Re-check the abort flag per job, not just per scan: a
                // peer's error must not leave this worker burning through
                // a long runnable backlog whose results will be discarded.
                if board.aborted.load(Ordering::SeqCst) {
                    guard.armed = false;
                    return;
                }
                // Behaviors are where wall-clock time goes, so cancellation
                // polls per job: one slow behavior cannot pin the run past
                // its deadline by more than its own duration.
                if cancel.is_some_and(CancelToken::is_cancelled) {
                    board.abort();
                    guard.armed = false;
                    return;
                }
                let job = &tl.jobs[tl.next];
                if !job
                    .gates
                    .as_slice()
                    .iter()
                    .all(|&(w, j)| board.progress[w].load(Ordering::SeqCst) >= j)
                {
                    break;
                }
                let result =
                    tl.shard
                        .run_job(&mut tl.behavior, job.k, job.invoked_at, job.visible.as_slice());
                tl.next += 1;
                // Publish even a failed job: its writes committed, exactly
                // as the sequential store logs a failed job's actions.
                board.publish(tl.p, tl.shard.executed());
                progressed = true;
                if let Err(e) = result {
                    error.lock().get_or_insert(e);
                    board.abort();
                    guard.armed = false;
                    return;
                }
                if tl.next == tl.jobs.len() {
                    remaining -= 1;
                }
            }
        }
        if remaining > 0 && !progressed {
            idle_scans += 1;
            if idle_scans < 4 {
                std::thread::yield_now();
            } else {
                board.wait_for_progress(seen);
            }
        } else {
            idle_scans = 0;
        }
    }
    guard.armed = false;
}

/// Executes the behaviors of canonically-sorted `records` (with `global_k`
/// already assigned) on `workers` threads over per-process shards, and
/// merges the shard-local observables back into sequential shape.
///
/// Callers must gate on [`fppn_core::SharedChannels::supports`].
///
/// # Errors
///
/// Returns [`SimError::Exec`] when a behavior fails. When several
/// behaviors fail in one run, which failure is reported depends on
/// execution interleaving (the run is aborted at the first observed one);
/// a single failure — the overwhelmingly common case — is reported exactly
/// like the sequential replay.
pub(crate) fn run_behaviors_sharded(
    net: &Fppn,
    bank: &BehaviorBank,
    stimuli: &Stimuli,
    records: &[JobRecord],
    workers: usize,
    cancel: Option<&CancelToken>,
) -> Result<Observables, SimError> {
    let mut planner = RecordPlanner::new(net);
    let plan = build_plan(net, &mut planner, records);
    let deps = planner.deps();
    let weights: Vec<usize> = plan.iter().map(Vec::len).collect();
    let chunks = partition(deps, &weights, workers);

    let exec = ShardedExec::new(net);
    let shards = exec.shards(stimuli);
    let behaviors = bank.instantiate();

    // Deal shards/behaviors/plans out to their owning worker's timelines.
    let mut slots: Vec<Option<(ProcessShard<'_>, BoxedBehavior, Vec<PlannedJob>)>> = shards
        .into_iter()
        .zip(behaviors)
        .zip(plan)
        .map(|((s, b), j)| Some((s, b, j)))
        .collect();
    let mut worker_timelines: Vec<Vec<Timeline<'_>>> = chunks
        .iter()
        .map(|chunk| {
            chunk
                .iter()
                .map(|&p| {
                    let (shard, behavior, jobs) =
                        slots[p].take().expect("process assigned to one worker");
                    debug_assert!(
                        shard.read_channels().eq(deps.reads(shard.process()).iter().copied()),
                        "shard and dependency-map read orders must agree"
                    );
                    Timeline {
                        p,
                        shard,
                        behavior,
                        jobs,
                        next: 0,
                    }
                })
                .collect()
        })
        .collect();

    let board = ProgressBoard::new(net.process_count());
    let error: Mutex<Option<ExecError>> = Mutex::new(None);

    let scope_result = crossbeam::thread::scope(|s| {
        let mut handles = Vec::new();
        for timelines in worker_timelines.iter_mut() {
            let board = &board;
            let error = &error;
            handles.push(s.spawn(move |_| run_worker(board, &mut timelines[..], error, cancel)));
        }
        // An explicitly joined child's panic does NOT re-raise through the
        // scope result (only unjoined panics do) — collect the first
        // payload here so a panicking behavior surfaces instead of
        // tripping the completeness assert below as a phantom abort.
        let mut first_panic = None;
        for h in handles {
            if let Err(payload) = h.join() {
                first_panic.get_or_insert(payload);
            }
        }
        first_panic
    });
    match scope_result {
        Err(payload) | Ok(Some(payload)) => std::panic::resume_unwind(payload),
        Ok(None) => {}
    }
    if let Some(e) = error.into_inner() {
        return Err(SimError::Exec(e));
    }
    // A cancelled run aborted the board with jobs outstanding; report it
    // before the drained-feed assertion below. The per-timeline cursors
    // count exactly the behaviors that committed.
    if cancel.is_some_and(CancelToken::is_cancelled) {
        let completed_rounds = worker_timelines
            .iter()
            .flatten()
            .map(|tl| tl.next)
            .sum();
        return Err(SimError::Cancelled { completed_rounds });
    }

    let shards: Vec<ProcessShard<'_>> = worker_timelines
        .into_iter()
        .flatten()
        .map(|tl| {
            assert_eq!(
                tl.next,
                tl.jobs.len(),
                "worker exited with unexecuted jobs but no error"
            );
            tl.shard
        })
        .collect();
    let (observables, _) = exec.merge(shards, None);
    Ok(observables)
}

// ---------------------------------------------------------------------------
// Streaming consumption: the pipeline's data plane.
//
// The barrier executor above receives the *complete* plan before any worker
// starts. The streaming pipeline inverts that: the sequencer appends
// `PlannedJob`s to this feed as round records become canonically final,
// while behavior workers are already draining it. Everything else — shards,
// visibility counts, gates, the progress rendezvous — is byte-for-byte the
// same machinery.
// ---------------------------------------------------------------------------

/// Per-process queues of planned jobs, appended in canonical order by the
/// pipeline sequencer and drained by the owning behavior worker.
pub(crate) struct JobFeed {
    queues: Vec<Mutex<VecDeque<PlannedJob>>>,
    /// `planned[p]` = jobs of process `p` appended so far. Workers check it
    /// lock-free before touching the queue mutex.
    planned: Vec<AtomicU64>,
    /// Set once the sequencer has planned every round: an empty queue then
    /// means *exhausted*, not *starved*.
    sealed: AtomicBool,
}

impl JobFeed {
    pub(crate) fn new(n: usize) -> Self {
        JobFeed {
            queues: (0..n).map(|_| Mutex::new(VecDeque::new())).collect(),
            planned: (0..n).map(|_| AtomicU64::new(0)).collect(),
            sealed: AtomicBool::new(false),
        }
    }

    /// Appends one planned job of process `p`. The queue push precedes the
    /// `planned` bump, so a worker observing the new count always finds
    /// the job in the queue. **Quiet**: the caller must
    /// [`ProgressBoard::notify`] after its append batch, or blocked
    /// workers never see the jobs.
    pub(crate) fn push(&self, p: usize, job: PlannedJob) {
        self.queues[p].lock().push_back(job);
        self.planned[p].fetch_add(1, Ordering::SeqCst);
    }

    /// Marks the feed complete (no job will ever be appended again) and
    /// wakes workers so they can drain and exit.
    pub(crate) fn seal(&self, board: &ProgressBoard) {
        self.sealed.store(true, Ordering::SeqCst);
        board.notify();
    }
}

/// One process timeline of a streaming behavior worker: like [`Timeline`],
/// but jobs are pulled from the [`JobFeed`] instead of a prebuilt vector.
pub(crate) struct StreamTimeline<'s> {
    p: usize,
    shard: ProcessShard<'s>,
    behavior: BoxedBehavior,
    /// The next job, pulled but not yet runnable (gate unsatisfied).
    pending: Option<PlannedJob>,
    exhausted: bool,
}

/// Builds the per-worker streaming timelines: processes are partitioned by
/// dependency component (weighted by the static per-process job census in
/// `weights`), and each worker receives its processes' shards and behavior
/// instances.
pub(crate) fn stream_timelines<'s>(
    deps: &ChannelDependencyMap,
    shards: Vec<ProcessShard<'s>>,
    behaviors: Vec<BoxedBehavior>,
    weights: &[usize],
    workers: usize,
) -> Vec<Vec<StreamTimeline<'s>>> {
    let chunks = partition(deps, weights, workers);
    let mut slots: Vec<Option<(ProcessShard<'s>, BoxedBehavior)>> = shards
        .into_iter()
        .zip(behaviors)
        .map(Some)
        .collect();
    chunks
        .iter()
        .map(|chunk| {
            chunk
                .iter()
                .map(|&p| {
                    let (shard, behavior) =
                        slots[p].take().expect("process assigned to one worker");
                    debug_assert!(
                        shard
                            .read_channels()
                            .eq(deps.reads(shard.process()).iter().copied()),
                        "shard and dependency-map read orders must agree"
                    );
                    StreamTimeline {
                        p,
                        shard,
                        behavior,
                        pending: None,
                        exhausted: false,
                    }
                })
                .collect()
        })
        .filter(|tls: &Vec<StreamTimeline<'s>>| !tls.is_empty())
        .collect()
}

/// Tears the streaming timelines back down into their shards for the
/// merge, asserting every feed was drained (unless the run aborted).
pub(crate) fn into_shards(timelines: Vec<Vec<StreamTimeline<'_>>>) -> Vec<ProcessShard<'_>> {
    timelines
        .into_iter()
        .flatten()
        .map(|tl| {
            assert!(
                tl.exhausted && tl.pending.is_none(),
                "worker exited with unexecuted jobs but no error"
            );
            tl.shard
        })
        .collect()
}

/// Advances every streaming timeline owned by one worker until the feed is
/// sealed and drained, publishing progress after each committed job.
///
/// The same acyclic-wait argument as [`run_worker`] applies, with one new
/// wait reason — "my next job is not planned yet" — discharged by the
/// sequencer: it plans records in canonical order and every gate of a
/// planned job points at canonically-earlier jobs, which are therefore
/// already planned (and will be executed by their owner). The feed's
/// `seal` + notify breaks the final wait.
pub(crate) fn run_worker_streaming(
    board: &ProgressBoard,
    feed: &JobFeed,
    timelines: &mut [StreamTimeline<'_>],
    error: &Mutex<Option<ExecError>>,
    cancel: Option<&CancelToken>,
) {
    let mut guard = AbortOnUnwind { board, armed: true };
    let mut remaining = timelines.len();
    let mut idle_scans = 0u32;
    while remaining > 0 && !board.is_aborted() {
        let seen = board.snapshot();
        let mut progressed = false;
        for tl in timelines.iter_mut() {
            if tl.exhausted {
                continue;
            }
            loop {
                if board.is_aborted() {
                    guard.armed = false;
                    return;
                }
                // Per-job cancellation poll, same rationale as the barrier
                // executor: the data plane is where wall-clock time goes.
                if cancel.is_some_and(CancelToken::is_cancelled) {
                    board.abort();
                    guard.armed = false;
                    return;
                }
                if tl.pending.is_none() {
                    let executed = tl.shard.executed();
                    if feed.planned[tl.p].load(Ordering::SeqCst) > executed {
                        tl.pending = feed.queues[tl.p].lock().pop_front();
                        debug_assert!(tl.pending.is_some(), "planned count exceeds queue");
                    } else if feed.sealed.load(Ordering::SeqCst) {
                        // Re-check after observing the seal: the sequencer
                        // seals strictly after its last push, so a count
                        // read *after* the seal is final.
                        if feed.planned[tl.p].load(Ordering::SeqCst) > executed {
                            continue;
                        }
                        tl.exhausted = true;
                        remaining -= 1;
                        progressed = true;
                        break;
                    } else {
                        break; // starved: wait for the sequencer
                    }
                }
                let job = tl.pending.as_ref().expect("pulled or pending");
                if !job
                    .gates
                    .as_slice()
                    .iter()
                    .all(|&(w, j)| board.progress[w].load(Ordering::SeqCst) >= j)
                {
                    break;
                }
                let job = tl.pending.take().expect("gate-checked job");
                let result =
                    tl.shard
                        .run_job(&mut tl.behavior, job.k, job.invoked_at, job.visible.as_slice());
                // Publish even a failed job: its writes committed, exactly
                // as the sequential store logs a failed job's actions.
                board.publish(tl.p, tl.shard.executed());
                progressed = true;
                if let Err(e) = result {
                    error.lock().get_or_insert(e);
                    board.abort();
                    guard.armed = false;
                    return;
                }
            }
        }
        if remaining > 0 && !progressed {
            idle_scans += 1;
            if idle_scans < 4 {
                std::thread::yield_now();
            } else {
                board.wait_for_progress(seen);
            }
        } else {
            idle_scans = 0;
        }
    }
    guard.armed = false;
}

#[cfg(test)]
mod tests {
    use super::*;
    use fppn_core::ProcessId;

    #[test]
    fn partition_keeps_components_contiguous_and_covers_all() {
        use fppn_core::{ChannelKind, EventSpec, FppnBuilder, ProcessSpec};
        let ms = TimeQ::from_ms;
        let mut b = FppnBuilder::new();
        let ids: Vec<ProcessId> = (0..6)
            .map(|i| b.process(ProcessSpec::new(format!("p{i}"), EventSpec::periodic(ms(10)))))
            .collect();
        // Two independent chains: 0->1->2 and 3->4, plus isolated 5.
        for (a, c) in [(0, 1), (1, 2), (3, 4)] {
            b.channel(format!("c{a}_{c}"), ids[a], ids[c], ChannelKind::Fifo);
            b.priority(ids[a], ids[c]);
        }
        let (net, _) = b.build().unwrap();
        let deps = ChannelDependencyMap::analyze(&net);
        for weights in [vec![0usize; 6], vec![5, 1, 4, 2, 3, 6]] {
            for workers in 1..=8 {
                let chunks = partition(&deps, &weights, workers);
                let mut seen: Vec<usize> = chunks.iter().flatten().copied().collect();
                seen.sort_unstable();
                assert_eq!(seen, vec![0, 1, 2, 3, 4, 5], "workers {workers}");
            }
        }
    }

    #[test]
    fn abort_wakes_blocked_waiters() {
        let board = ProgressBoard::new(1);
        std::thread::scope(|s| {
            let h = s.spawn(|| board.wait_for_progress(board.snapshot()));
            std::thread::sleep(std::time::Duration::from_millis(20));
            board.abort();
            h.join().unwrap();
        });
        assert!(board.aborted.load(Ordering::SeqCst));
    }
}
