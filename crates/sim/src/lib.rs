//! # fppn-sim — discrete-event platform simulator and online policy (§IV)
//!
//! This crate substitutes for the paper's hardware testbeds (Kalray MPPA
//! many-core, Linux/i7): a deterministic discrete-event simulation of `M`
//! identical processors executing an FPPN under the **static-order online
//! policy**, with a calibratable runtime-overhead model (the 41 ms / 20 ms
//! frame-management costs measured in §V-A) and configurable actual
//! execution times.
//!
//! The simulator runs the *real* process behaviors, so its observable
//! outputs can be compared bit-for-bit against the zero-delay reference of
//! `fppn-core` — the workspace's mechanized check of Prop. 4.1.
//!
//! Three backends share the round computation: [`simulate_seq`] (the
//! single-threaded oracle), [`simulate_parallel`] (per-processor timelines
//! on a worker pool — Prop. 4.1 is precisely the license to parallelize,
//! with an optional sharded data plane behind a barrier), and
//! [`simulate_pipelined`] (the streaming frame pipeline: behaviors launch
//! as soon as their round records are canonically committed, overlapping
//! the data plane with round computation — no barrier at all). The
//! differential test-suite proves all three bit-identical. [`simulate`]
//! dispatches on [`SimConfig`] (`workers == 0` / the `pipeline` flag
//! resolve from the `FPPN_SIM_WORKERS` / `FPPN_SIM_PIPELINE` environment
//! variables — see [`SimEnv`]).
//!
//! The compile phase (task-graph derivation, list scheduling, round
//! tables) is split from the run phase: [`CompiledNetwork`] reifies it as
//! an immutable, content-hash-keyed artifact ([`compile_key`]) so many
//! runs — any backend, any stimuli — execute against one borrowed compile.
//! The classic entry points are thin compile+run wrappers over it;
//! `fppn-serve` adds an artifact cache and a multi-tenant run pool on top.
//!
//! See [`simulate`] for the entry point and `fppn-apps`/`fppn-bench` for
//! full reproductions of the paper's Figures 4 and 6.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod behavior;
mod cancel;
mod compile;
mod env;
mod exectime;
mod gantt;
#[doc(hidden)]
pub mod hotpath;
mod metrics;
mod overhead;
mod parallel;
mod pipeline;
mod policy;
mod stimgen;

pub use cancel::CancelToken;
pub use compile::{
    compile_key, CompileConfig, CompileError, CompiledNetwork, RunScratch, StaticTables,
};
pub use env::{SimEnv, SimEnvError};
pub use exectime::{ExecTimeModel, ExecTimeSampler};
pub use gantt::{Gantt, Segment, SegmentKind};
pub use metrics::{
    completion_table, end_to_end_latency, missed_jobs, response_stats, response_table,
    ResponseStats,
};
pub use overhead::OverheadModel;
pub use parallel::simulate_parallel;
pub use pipeline::simulate_pipelined;
pub use policy::{
    clip_stimuli, simulate, simulate_seq, JobRecord, SimConfig, SimError, SimRun, SimStats,
};
pub use stimgen::adversarial::{adversarial_stimuli, max_density_flood_trace, AdversarialClass};
pub use stimgen::{
    random_sporadic_trace, random_stimuli, sporadic_processes, tiled_sporadic_trace,
    validate_stimuli,
};
