//! # fppn-sim — discrete-event platform simulator and online policy (§IV)
//!
//! This crate substitutes for the paper's hardware testbeds (Kalray MPPA
//! many-core, Linux/i7): a deterministic discrete-event simulation of `M`
//! identical processors executing an FPPN under the **static-order online
//! policy**, with a calibratable runtime-overhead model (the 41 ms / 20 ms
//! frame-management costs measured in §V-A) and configurable actual
//! execution times.
//!
//! The simulator runs the *real* process behaviors, so its observable
//! outputs can be compared bit-for-bit against the zero-delay reference of
//! `fppn-core` — the workspace's mechanized check of Prop. 4.1.
//!
//! Two backends share the round computation: [`simulate_seq`] (the
//! single-threaded oracle) and [`simulate_parallel`] (per-processor
//! timelines on a worker pool — Prop. 4.1 is precisely the license to
//! parallelize, and the differential test-suite proves both backends
//! bit-identical). [`simulate`] dispatches on [`SimConfig::workers`]
//! (`0` = the `FPPN_SIM_WORKERS` environment variable).
//!
//! See [`simulate`] for the entry point and `fppn-apps`/`fppn-bench` for
//! full reproductions of the paper's Figures 4 and 6.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod behavior;
mod exectime;
mod gantt;
mod metrics;
mod overhead;
mod parallel;
mod policy;
mod stimgen;

pub use exectime::{ExecTimeModel, ExecTimeSampler};
pub use gantt::{Gantt, Segment, SegmentKind};
pub use metrics::{end_to_end_latency, response_stats, ResponseStats};
pub use overhead::OverheadModel;
pub use parallel::simulate_parallel;
pub use policy::{
    clip_stimuli, simulate, simulate_seq, JobRecord, SimConfig, SimError, SimRun, SimStats,
};
pub use stimgen::{random_sporadic_trace, random_stimuli, sporadic_processes, validate_stimuli};
