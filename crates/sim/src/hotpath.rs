//! A deliberately narrow public window onto the round-computation hot
//! path, for allocation instrumentation.
//!
//! The `RoundEngine` and its scratch buffers are crate-private; this module
//! re-exposes exactly the "build once, recompute rounds into reused
//! buffers" loop so `fppn-bench` can (a) assert the steady-state round
//! loop performs zero heap allocations (the `alloc_zero` regression test)
//! and (b) report allocation counts from the scalability bin under
//! `FPPN_ALLOC_STATS=1`. It is `#[doc(hidden)]`: not a supported API,
//! only a measurement seam.

use fppn_core::{Fppn, Stimuli};
use fppn_taskgraph::DerivedTaskGraph;

use crate::cancel::CancelToken;
use crate::compile::StaticTables;
use crate::policy::{RoundEngine, RoundScratch, SimConfig, SimError};

/// Owns a [`RoundEngine`] plus its reusable [`RoundScratch`]: after one
/// warm-up [`SeqRounds::compute`], further computes allocate nothing.
pub struct SeqRounds<'a> {
    engine: RoundEngine<'a>,
    scratch: RoundScratch,
}

impl<'a> SeqRounds<'a> {
    /// Builds the round tables for one simulation shape.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] on stimuli inconsistent with the network.
    pub fn new(
        net: &Fppn,
        stimuli: &Stimuli,
        derived: &'a DerivedTaskGraph,
        tables: &'a StaticTables,
        config: &SimConfig,
    ) -> Result<Self, SimError> {
        Ok(SeqRounds {
            engine: RoundEngine::new(net, stimuli, derived, tables, config)?,
            scratch: RoundScratch::new(),
        })
    }

    /// Arms cooperative cancellation on the engine, so the `alloc_zero`
    /// gate can assert the round loop stays allocation-free with a live
    /// (never-tripping) token's deadline checks on the hot path.
    pub fn set_cancel(&mut self, token: &'a CancelToken) {
        self.engine.set_cancel(token);
    }

    /// Recomputes every round into the reused scratch buffers and returns
    /// the number of rounds computed.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Stalled`] on a structurally invalid schedule.
    pub fn compute(&mut self) -> Result<usize, SimError> {
        self.engine.compute_rounds_seq_into(&mut self.scratch)?;
        Ok(self.scratch.records.len())
    }
}
