//! A deliberately narrow public window onto the round-computation hot
//! path, for allocation instrumentation.
//!
//! The `RoundEngine` and its scratch buffers are crate-private; this module
//! re-exposes exactly the "build once, recompute rounds into reused
//! buffers" loop so `fppn-bench` can (a) assert the steady-state round
//! loop performs zero heap allocations (the `alloc_zero` regression test)
//! and (b) report allocation counts from the scalability bin under
//! `FPPN_ALLOC_STATS=1`. It is `#[doc(hidden)]`: not a supported API,
//! only a measurement seam.

use fppn_core::{Fppn, Stimuli};
use fppn_taskgraph::DerivedTaskGraph;

use crate::cancel::CancelToken;
use crate::compile::StaticTables;
use crate::policy::{RoundEngine, RoundScratch, SimConfig, SimError};

/// Owns a [`RoundEngine`] plus its reusable [`RoundScratch`]: after one
/// warm-up [`SeqRounds::compute`], further computes allocate nothing.
pub struct SeqRounds<'a> {
    engine: RoundEngine<'a>,
    scratch: RoundScratch,
}

impl<'a> SeqRounds<'a> {
    /// Builds the round tables for one simulation shape.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] on stimuli inconsistent with the network.
    pub fn new(
        net: &Fppn,
        stimuli: &Stimuli,
        derived: &'a DerivedTaskGraph,
        tables: &'a StaticTables,
        config: &SimConfig,
    ) -> Result<Self, SimError> {
        Ok(SeqRounds {
            engine: RoundEngine::new(net, stimuli, derived, tables, config)?,
            scratch: RoundScratch::new(),
        })
    }

    /// Arms cooperative cancellation on the engine, so the `alloc_zero`
    /// gate can assert the round loop stays allocation-free with a live
    /// (never-tripping) token's deadline checks on the hot path.
    pub fn set_cancel(&mut self, token: &'a CancelToken) {
        self.engine.set_cancel(token);
    }

    /// Recomputes every round into the reused scratch buffers and returns
    /// the number of rounds computed.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Stalled`] on a structurally invalid schedule.
    pub fn compute(&mut self) -> Result<usize, SimError> {
        self.engine.compute_rounds_seq_into(&mut self.scratch)?;
        Ok(self.scratch.records.len())
    }

    /// Cumulative frame-memo `(hits, misses)` across every [`Self::compute`]
    /// so far. Both zero unless the memo engaged (enabled via
    /// [`SimConfig`](crate::SimConfig) `memo` / `FPPN_SIM_MEMO`, `Wcet`
    /// exec model, no bounded FIFOs).
    pub fn memo_stats(&self) -> (u64, u64) {
        self.scratch.memo_stats()
    }

    /// Computes every round frame-major with replay **disabled**, pushing
    /// each frame's carry-in fingerprint into `fingerprints` and returning
    /// the computed records (canonical `(frame, job)` order within each
    /// frame is *not* guaranteed; compare frames as sets or sort first).
    /// The collision-audit seam: fingerprint-equal frames must have
    /// produced translate-identical round tables.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Stalled`] on a structurally invalid schedule.
    pub fn compute_fingerprinted(
        &mut self,
        fingerprints: &mut Vec<u64>,
    ) -> Result<Vec<crate::JobRecord>, SimError> {
        self.engine
            .compute_rounds_fingerprinted(&mut self.scratch, fingerprints)?;
        Ok(self.scratch.records.clone())
    }
}
