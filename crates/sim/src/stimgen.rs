//! Random stimulus generation: sporadic arrival traces and input streams.
//!
//! The paper's sporadic events come from pilots and reconfiguration
//! commands; here they are drawn from seeded RNGs under the exact `(m, T)`
//! constraint, so experiments are reproducible and strictly cover the
//! admissible arrival space.

use fppn_core::{EventKind, Fppn, ProcessId, SporadicTrace, Stimuli, Value};
use fppn_time::TimeQ;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates a random arrival trace for a sporadic `(m, T)` generator over
/// `[0, horizon)`, respecting the half-open-window constraint.
///
/// `density_permille` scales how aggressively the admissible rate is used:
/// 1000 ≈ as many events as the constraint allows, 0 = none.
pub fn random_sporadic_trace(
    burst: u32,
    period: TimeQ,
    horizon: TimeQ,
    density_permille: u32,
    seed: u64,
) -> SporadicTrace {
    let density = density_permille.min(1000);
    if density == 0 {
        return SporadicTrace::empty();
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut arrivals: Vec<TimeQ> = Vec::new();
    // Enforce the constraint directly: arrival i+m >= arrival i + T.
    // Density controls the random inter-arrival slack on top of that bound
    // (density 1000 => no slack => maximal admissible rate).
    let slack_cap = (period * TimeQ::new(2 * (1000 - density) as i128, 1000))
        .ceil()
        .max(0);
    let mut t = TimeQ::ZERO;
    loop {
        let gap = if slack_cap == 0 {
            TimeQ::ZERO
        } else {
            TimeQ::from_int_i128(rng.gen_range(0..=slack_cap))
        };
        let mut next = t + gap;
        if arrivals.len() >= burst as usize {
            let bound = arrivals[arrivals.len() - burst as usize] + period;
            next = next.max(bound);
        }
        if next >= horizon {
            break;
        }
        arrivals.push(next);
        t = next;
    }
    SporadicTrace::new(arrivals)
}

/// Fills a [`Stimuli`] with random arrival traces for every sporadic
/// process of a network, plus integer input streams for every declared
/// external input port.
///
/// Traces are seeded per process (`seed + process index`) so adding a
/// process does not reshuffle the others.
pub fn random_stimuli(net: &Fppn, horizon: TimeQ, density_permille: u32, seed: u64) -> Stimuli {
    let mut stimuli = Stimuli::new();
    for pid in net.process_ids() {
        let spec = net.process(pid);
        let ev = spec.event();
        if ev.kind() == EventKind::Sporadic {
            let trace = random_sporadic_trace(
                ev.burst(),
                ev.period(),
                horizon,
                density_permille,
                seed.wrapping_add(pid.index() as u64),
            );
            stimuli.arrivals(pid, trace);
        }
        // Input samples: enough for every possible job (period lower bound
        // T/m jobs... be generous: horizon / (T / burst) + burst).
        let max_jobs =
            ((horizon / ev.period()).ceil() as u64 + 2) * ev.burst() as u64;
        for (port_idx, _) in spec.input_ports().iter().enumerate() {
            let mut rng =
                StdRng::seed_from_u64(seed ^ (pid.index() as u64) << 16 ^ port_idx as u64);
            let samples: Vec<Value> = (0..max_jobs)
                .map(|_| Value::Int(rng.gen_range(-1000..1000)))
                .collect();
            stimuli.input(pid, fppn_core::PortId::from_index(port_idx), samples);
        }
    }
    stimuli
}

/// Validates that every generated sporadic trace satisfies its generator's
/// constraint (used by the property test-suite; generation should always
/// pass this by construction).
pub fn validate_stimuli(net: &Fppn, stimuli: &Stimuli) -> bool {
    stimuli.validate(net).is_ok()
}

/// Convenience: the process ids of all sporadic processes of a network.
pub fn sporadic_processes(net: &Fppn) -> Vec<ProcessId> {
    net.process_ids()
        .filter(|&p| net.process(p).event().kind() == EventKind::Sporadic)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fppn_core::{ChannelKind, EventSpec, FppnBuilder, ProcessSpec};

    fn ms(v: i64) -> TimeQ {
        TimeQ::from_ms(v)
    }

    #[test]
    fn generated_traces_respect_constraint() {
        for seed in 0..50 {
            let spec = EventSpec::sporadic(3, ms(500));
            let t = random_sporadic_trace(3, ms(500), ms(10_000), 800, seed);
            assert!(
                t.validate_against(&spec, "gen").is_ok(),
                "seed {seed}: {:?}",
                t.arrivals()
            );
        }
    }

    #[test]
    fn zero_density_gives_empty_trace() {
        let t = random_sporadic_trace(2, ms(100), ms(1000), 0, 7);
        assert!(t.is_empty());
    }

    #[test]
    fn trace_is_reproducible() {
        let a = random_sporadic_trace(2, ms(300), ms(5000), 700, 11);
        let b = random_sporadic_trace(2, ms(300), ms(5000), 700, 11);
        assert_eq!(a, b);
    }

    #[test]
    fn random_stimuli_cover_all_sporadics() {
        let mut b = FppnBuilder::new();
        let u = b.process(ProcessSpec::new("u", EventSpec::periodic(ms(100))).with_input("in"));
        let s1 = b.process(ProcessSpec::new("s1", EventSpec::sporadic(1, ms(400))));
        let s2 = b.process(ProcessSpec::new("s2", EventSpec::sporadic(2, ms(800))));
        b.channel("c1", s1, u, ChannelKind::Blackboard);
        b.channel("c2", s2, u, ChannelKind::Blackboard);
        b.priority(s1, u);
        b.priority(s2, u);
        let (net, _) = b.build().unwrap();
        let stimuli = random_stimuli(&net, ms(4000), 900, 3);
        assert!(validate_stimuli(&net, &stimuli));
        assert_eq!(sporadic_processes(&net), vec![s1, s2]);
        // Input stream present for the user's port.
        assert!(stimuli
            .input_sample(u, fppn_core::PortId::from_index(0), 1)
            .is_some());
    }
}
