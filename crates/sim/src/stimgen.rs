//! Random stimulus generation: sporadic arrival traces and input streams.
//!
//! The paper's sporadic events come from pilots and reconfiguration
//! commands; here they are drawn from seeded RNGs under the exact `(m, T)`
//! constraint, so experiments are reproducible and strictly cover the
//! admissible arrival space.

use fppn_core::{EventKind, Fppn, ProcessId, SporadicTrace, Stimuli, Value};
use fppn_time::TimeQ;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub mod adversarial;

/// SplitMix64's finalizer: a full-avalanche 64-bit mixer.
pub(crate) fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives an independent stream seed for `(seed, pid, port)` by chaining
/// the SplitMix64 finalizer over each component.
///
/// The previous scheme (`seed ^ (pid << 16) ^ port`) was collision-prone:
/// any process index ≥ 2¹⁶ aliased back onto the port bits, `(pid=p,
/// port=q)` collided with `(pid=q·2¹⁶ ⊕ …)` cross-pairs, and the whole
/// expression silently depended on `<<` binding tighter than `^`. Full
/// avalanche after every component makes any two distinct `(seed, pid,
/// port)` triples yield (with overwhelming probability) unrelated
/// xoshiro256++ seedings.
pub(crate) fn stream_seed(seed: u64, pid: u64, port: u64) -> u64 {
    splitmix64(splitmix64(splitmix64(seed) ^ pid) ^ port)
}

/// Port index used for a process's *arrival-trace* stream, distinct from
/// every real input-port index.
pub(crate) const TRACE_STREAM: u64 = u64::MAX;

/// Generates a random arrival trace for a sporadic `(m, T)` generator over
/// `[0, horizon)`, respecting the half-open-window constraint.
///
/// `density_permille` scales how aggressively the admissible rate is used:
/// 1000 ≈ as many events as the constraint allows, 0 = none.
pub fn random_sporadic_trace(
    burst: u32,
    period: TimeQ,
    horizon: TimeQ,
    density_permille: u32,
    seed: u64,
) -> SporadicTrace {
    let density = density_permille.min(1000);
    if density == 0 {
        return SporadicTrace::empty();
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut arrivals: Vec<TimeQ> = Vec::new();
    // Enforce the constraint directly: arrival i+m >= arrival i + T.
    // Density controls the random inter-arrival slack on top of that bound
    // (density 1000 => no slack => maximal admissible rate).
    let slack_cap = (period * TimeQ::new(2 * (1000 - density) as i128, 1000))
        .ceil()
        .max(0);
    let mut t = TimeQ::ZERO;
    loop {
        let gap = if slack_cap == 0 {
            TimeQ::ZERO
        } else {
            TimeQ::from_int_i128(rng.gen_range(0..=slack_cap))
        };
        let mut next = t + gap;
        if arrivals.len() >= burst as usize {
            let bound = arrivals[arrivals.len() - burst as usize] + period;
            next = next.max(bound);
        }
        if next >= horizon {
            break;
        }
        arrivals.push(next);
        t = next;
    }
    SporadicTrace::new(arrivals)
}

/// Generates a random sporadic trace that is **periodic in the
/// hyperperiod**: one random base pattern is drawn over a single
/// hyperperiod and tiled across `frames` copies, each shifted by a whole
/// hyperperiod.
///
/// Every frame then carries the *same* arrival pattern relative to its
/// own base, which is exactly the shape the frame memo
/// ([`SimConfig::memo`](crate::SimConfig)) exploits: once the carry-in
/// state settles, every later frame fingerprints equal to an earlier one
/// and replays instead of recomputing. Ordinary
/// [`random_sporadic_trace`] draws over the whole horizon, so no two
/// frames ever match.
///
/// The base pattern is drawn over `[0, hyperperiod − burst·period)`, so
/// tiling cannot violate the `(m, T)` constraint across a frame
/// boundary: any window of `burst` consecutive arrivals that spans the
/// boundary stretches over the excluded tail and is at least one period
/// wide.
pub fn tiled_sporadic_trace(
    burst: u32,
    period: TimeQ,
    hyperperiod: TimeQ,
    frames: u64,
    density_permille: u32,
    seed: u64,
) -> SporadicTrace {
    let margin = period * TimeQ::from_int(burst.max(1) as i64);
    let base_horizon = (hyperperiod - margin).max(TimeQ::ZERO);
    let base = random_sporadic_trace(burst, period, base_horizon, density_permille, seed);
    let mut arrivals = Vec::with_capacity(base.arrivals().len() * frames as usize);
    for f in 0..frames {
        let offset = TimeQ::from_int(f as i64) * hyperperiod;
        arrivals.extend(base.arrivals().iter().map(|&t| t + offset));
    }
    SporadicTrace::new(arrivals)
}

/// Fills a [`Stimuli`] with random arrival traces for every sporadic
/// process of a network, plus integer input streams for every declared
/// external input port.
///
/// Every stream — each port's samples and each process's arrival trace —
/// draws from an independently seeded RNG ([`stream_seed`]), so adding a
/// process or port never reshuffles the others and distinct `(pid, port)`
/// pairs get distinct streams.
///
/// A process consumes one input sample per *executed* job, so a sporadic
/// process needs exactly one sample per generated arrival (a slot only
/// executes against a matching arrival); the sample count is derived from
/// the actual trace length rather than a closed-form bound, which a
/// maximal-rate (density 1000, burst > 1) trace rendered fragile.
pub fn random_stimuli(net: &Fppn, horizon: TimeQ, density_permille: u32, seed: u64) -> Stimuli {
    let mut stimuli = Stimuli::new();
    for pid in net.process_ids() {
        let spec = net.process(pid);
        let ev = spec.event();
        let max_jobs = if ev.kind() == EventKind::Sporadic {
            let trace = random_sporadic_trace(
                ev.burst(),
                ev.period(),
                horizon,
                density_permille,
                stream_seed(seed, pid.index() as u64, TRACE_STREAM),
            );
            let arrivals = trace.arrivals().len() as u64;
            stimuli.arrivals(pid, trace);
            arrivals
        } else {
            // Periodic: exactly horizon / T jobs; keep a small margin for
            // callers rounding the horizon up to whole frames.
            ((horizon / ev.period()).ceil() as u64 + 2) * ev.burst() as u64
        };
        for (port_idx, _) in spec.input_ports().iter().enumerate() {
            let mut rng = StdRng::seed_from_u64(stream_seed(
                seed,
                pid.index() as u64,
                port_idx as u64,
            ));
            let samples: Vec<Value> = (0..max_jobs)
                .map(|_| Value::Int(rng.gen_range(-1000..1000)))
                .collect();
            stimuli.input(pid, fppn_core::PortId::from_index(port_idx), samples);
        }
    }
    stimuli
}

/// Validates that every generated sporadic trace satisfies its generator's
/// constraint (used by the property test-suite; generation should always
/// pass this by construction).
pub fn validate_stimuli(net: &Fppn, stimuli: &Stimuli) -> bool {
    stimuli.validate(net).is_ok()
}

/// Convenience: the process ids of all sporadic processes of a network.
pub fn sporadic_processes(net: &Fppn) -> Vec<ProcessId> {
    net.process_ids()
        .filter(|&p| net.process(p).event().kind() == EventKind::Sporadic)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fppn_core::{ChannelKind, EventSpec, FppnBuilder, ProcessSpec};

    fn ms(v: i64) -> TimeQ {
        TimeQ::from_ms(v)
    }

    #[test]
    fn generated_traces_respect_constraint() {
        for seed in 0..50 {
            let spec = EventSpec::sporadic(3, ms(500));
            let t = random_sporadic_trace(3, ms(500), ms(10_000), 800, seed);
            assert!(
                t.validate_against(&spec, "gen").is_ok(),
                "seed {seed}: {:?}",
                t.arrivals()
            );
        }
    }

    #[test]
    fn tiled_traces_respect_constraint_and_repeat_per_frame() {
        let hyper = ms(2_000);
        for seed in 0..50 {
            let spec = EventSpec::sporadic(3, ms(500));
            let t = tiled_sporadic_trace(3, ms(500), hyper, 4, 1000, seed);
            assert!(
                t.validate_against(&spec, "tiled").is_ok(),
                "seed {seed}: {:?}",
                t.arrivals()
            );
            // Every frame's block is the base pattern shifted by f·H.
            let n = t.arrivals().len() / 4;
            for f in 1..4usize {
                let off = TimeQ::from_int(f as i64) * hyper;
                for i in 0..n {
                    assert_eq!(t.arrivals()[f * n + i], t.arrivals()[i] + off, "seed {seed}");
                }
            }
        }
    }

    #[test]
    fn zero_density_gives_empty_trace() {
        let t = random_sporadic_trace(2, ms(100), ms(1000), 0, 7);
        assert!(t.is_empty());
    }

    #[test]
    fn trace_is_reproducible() {
        let a = random_sporadic_trace(2, ms(300), ms(5000), 700, 11);
        let b = random_sporadic_trace(2, ms(300), ms(5000), 700, 11);
        assert_eq!(a, b);
    }

    #[test]
    fn stream_seeds_do_not_alias() {
        // The old xor/shift scheme collided exactly on these pairs:
        // (pid=1, port=0) vs (pid=0, port=1<<16) both gave seed ^ (1<<16).
        for seed in [0u64, 7, 0xDEAD_BEEF] {
            assert_ne!(
                stream_seed(seed, 1, 0),
                stream_seed(seed, 0, 1 << 16),
                "seed {seed}: pid/port cross-collision"
            );
            // pid and port must not be interchangeable either.
            assert_ne!(stream_seed(seed, 2, 5), stream_seed(seed, 5, 2));
            // The trace stream is distinct from every real port stream.
            assert_ne!(stream_seed(seed, 3, TRACE_STREAM), stream_seed(seed, 3, 0));
        }
        // Pairwise-distinct over a dense grid (a collision here would be a
        // mixer regression, not bad luck: 900 values of 2^64).
        let mut seen = std::collections::BTreeSet::new();
        for pid in 0..30u64 {
            for port in 0..30u64 {
                assert!(
                    seen.insert(stream_seed(42, pid, port)),
                    "collision at ({pid}, {port})"
                );
            }
        }
    }

    #[test]
    fn distinct_ports_get_distinct_streams() {
        let mut b = FppnBuilder::new();
        let u = b.process(
            ProcessSpec::new("u", EventSpec::periodic(ms(100)))
                .with_input("a")
                .with_input("b"),
        );
        let v = b.process(ProcessSpec::new("v", EventSpec::periodic(ms(100))).with_input("a"));
        b.channel("c", u, v, ChannelKind::Blackboard);
        b.priority(u, v);
        let (net, _) = b.build().unwrap();
        let stimuli = random_stimuli(&net, ms(10_000), 500, 99);
        let port = fppn_core::PortId::from_index;
        let stream = |pid, p| -> Vec<_> {
            (1..=100)
                .map(|k| stimuli.input_sample(pid, port(p), k).unwrap())
                .collect()
        };
        let ua = stream(u, 0);
        let ub = stream(u, 1);
        let va = stream(v, 0);
        assert_ne!(ua, ub, "two ports of one process share a stream");
        assert_ne!(ua, va, "same port index of two processes share a stream");
        assert_ne!(ub, va);
    }

    #[test]
    fn max_density_run_never_exhausts_input_samples() {
        // A sporadic process at the maximal admissible rate (density 1000,
        // burst > 1) consumes one input sample per arrival; the stream must
        // cover every executed job even in the densest windows.
        let mut b = FppnBuilder::new();
        let u = b.process(ProcessSpec::new("u", EventSpec::periodic(ms(100))));
        let s = b.process(
            ProcessSpec::new("s", EventSpec::sporadic(3, ms(250))).with_input("cmd"),
        );
        b.channel("c", s, u, ChannelKind::Blackboard);
        b.priority(s, u);
        let (net, _) = b.build().unwrap();
        for seed in 0..20 {
            let stimuli = random_stimuli(&net, ms(20_000), 1000, seed);
            assert!(validate_stimuli(&net, &stimuli));
            let arrivals = stimuli.arrival_trace(s).len() as u64;
            assert!(arrivals > 0, "seed {seed}: max density generated no events");
            // One sample per executed job k = 1..=arrivals.
            for k in 1..=arrivals {
                assert!(
                    stimuli
                        .input_sample(s, fppn_core::PortId::from_index(0), k)
                        .is_some(),
                    "seed {seed}: sample {k}/{arrivals} missing"
                );
            }
        }
    }

    #[test]
    fn random_stimuli_cover_all_sporadics() {
        let mut b = FppnBuilder::new();
        let u = b.process(ProcessSpec::new("u", EventSpec::periodic(ms(100))).with_input("in"));
        let s1 = b.process(ProcessSpec::new("s1", EventSpec::sporadic(1, ms(400))));
        let s2 = b.process(ProcessSpec::new("s2", EventSpec::sporadic(2, ms(800))));
        b.channel("c1", s1, u, ChannelKind::Blackboard);
        b.channel("c2", s2, u, ChannelKind::Blackboard);
        b.priority(s1, u);
        b.priority(s2, u);
        let (net, _) = b.build().unwrap();
        let stimuli = random_stimuli(&net, ms(4000), 900, 3);
        assert!(validate_stimuli(&net, &stimuli));
        assert_eq!(sporadic_processes(&net), vec![s1, s2]);
        // Input stream present for the user's port.
        assert!(stimuli
            .input_sample(u, fppn_core::PortId::from_index(0), 1)
            .is_some());
    }
}
