//! Gantt charts of simulated executions (Fig. 6's presentation).

use std::fmt;

use fppn_time::TimeQ;

/// What a Gantt segment represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegmentKind {
    /// An application job executing.
    Job,
    /// Runtime frame-management overhead (on the runtime processor).
    Overhead,
}

/// One busy interval on one processor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Segment {
    /// Processor row (application processors first; the runtime overhead
    /// row, if any, comes last).
    pub processor: usize,
    /// Human-readable label, e.g. `FilterA[2]@1` (`process[k]@frame`).
    pub label: String,
    /// Segment start (absolute simulation time).
    pub start: TimeQ,
    /// Segment end.
    pub end: TimeQ,
    /// Job or overhead.
    pub kind: SegmentKind,
}

/// A multi-processor execution timeline.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Gantt {
    segments: Vec<Segment>,
    processors: usize,
}

impl Gantt {
    /// An empty chart over `processors` rows.
    pub fn new(processors: usize) -> Self {
        Gantt {
            segments: Vec::new(),
            processors,
        }
    }

    /// Appends a segment.
    ///
    /// # Panics
    ///
    /// Panics if the processor row is out of range or `end < start`.
    pub fn push(&mut self, segment: Segment) {
        assert!(segment.processor < self.processors, "row out of range");
        assert!(segment.end >= segment.start, "segment ends before it starts");
        self.segments.push(segment);
    }

    /// All segments in insertion order.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// The number of processor rows.
    pub fn processors(&self) -> usize {
        self.processors
    }

    /// Segments of one processor, sorted by start.
    pub fn row(&self, processor: usize) -> Vec<&Segment> {
        let mut v: Vec<&Segment> = self
            .segments
            .iter()
            .filter(|s| s.processor == processor)
            .collect();
        v.sort_by_key(|s| s.start);
        v
    }

    /// Renders an ASCII chart: `width` character columns spanning
    /// `[0, horizon]`.
    pub fn render_ascii(&self, horizon: TimeQ, width: usize) -> String {
        let mut out = String::new();
        if horizon.is_zero() || width == 0 {
            return out;
        }
        let col_of = |t: TimeQ| -> usize {
            let frac = t / horizon;
            let c = (frac * TimeQ::from_int(width as i64)).floor();
            (c.max(0) as usize).min(width)
        };
        for m in 0..self.processors {
            let mut line = vec![b'.'; width];
            for seg in self.row(m) {
                let (a, b) = (col_of(seg.start), col_of(seg.end));
                let glyph = match seg.kind {
                    SegmentKind::Job => b'#',
                    SegmentKind::Overhead => b'%',
                };
                for cell in line.iter_mut().take(b.max(a + 1).min(width)).skip(a) {
                    *cell = glyph;
                }
            }
            out.push_str(&format!("M{m} |"));
            out.push_str(std::str::from_utf8(&line).expect("ascii"));
            out.push_str("|\n");
        }
        out
    }

    /// Renders a per-segment CSV: `processor,label,start,end,kind`.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("processor,label,start_ms,end_ms,kind\n");
        for s in &self.segments {
            out.push_str(&format!(
                "{},{},{},{},{}\n",
                s.processor,
                s.label,
                s.start.to_f64(),
                s.end.to_f64(),
                match s.kind {
                    SegmentKind::Job => "job",
                    SegmentKind::Overhead => "overhead",
                }
            ));
        }
        out
    }
}

impl fmt::Display for Gantt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let horizon = self
            .segments
            .iter()
            .map(|s| s.end)
            .max()
            .unwrap_or(TimeQ::ZERO);
        write!(f, "{}", self.render_ascii(horizon, 80))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(m: usize, s: i64, e: i64, kind: SegmentKind) -> Segment {
        Segment {
            processor: m,
            label: format!("j{s}"),
            start: TimeQ::from_ms(s),
            end: TimeQ::from_ms(e),
            kind,
        }
    }

    #[test]
    fn rows_sorted_by_start() {
        let mut g = Gantt::new(2);
        g.push(seg(0, 50, 60, SegmentKind::Job));
        g.push(seg(0, 0, 10, SegmentKind::Job));
        g.push(seg(1, 5, 15, SegmentKind::Overhead));
        let row0 = g.row(0);
        assert_eq!(row0.len(), 2);
        assert!(row0[0].start < row0[1].start);
        assert_eq!(g.row(1).len(), 1);
    }

    #[test]
    fn ascii_render_marks_busy_cells() {
        let mut g = Gantt::new(1);
        g.push(seg(0, 0, 50, SegmentKind::Job));
        let art = g.render_ascii(TimeQ::from_ms(100), 10);
        assert!(art.starts_with("M0 |#####"));
        assert!(art.contains('.'));
    }

    #[test]
    fn csv_export() {
        let mut g = Gantt::new(1);
        g.push(seg(0, 0, 25, SegmentKind::Overhead));
        let csv = g.to_csv();
        assert!(csv.contains("overhead"));
        assert!(csv.lines().count() == 2);
    }

    #[test]
    #[should_panic(expected = "row out of range")]
    fn bad_row_panics() {
        let mut g = Gantt::new(1);
        g.push(seg(1, 0, 1, SegmentKind::Job));
    }
}
