//! Unified environment-variable plumbing for the simulator.
//!
//! Four variables tune [`SimConfig`](crate::SimConfig) resolution without
//! touching call sites — the hook the CI determinism jobs use to force a
//! backend through the *entire* test-suite:
//!
//! * [`FPPN_SIM_WORKERS`](SimEnv::WORKERS) — worker-thread count (`≥ 1`),
//!   consulted when `SimConfig::workers == 0`;
//! * [`FPPN_SIM_PAR_BEHAVIORS`](SimEnv::PAR_BEHAVIORS) — boolean: shard the
//!   data plane in the barrier backend;
//! * [`FPPN_SIM_PIPELINE`](SimEnv::PIPELINE) — boolean: stream behaviors
//!   behind round computation (subsumes `PAR_BEHAVIORS`);
//! * [`FPPN_SIM_MEMO`](SimEnv::MEMO) — boolean: fingerprint-keyed frame
//!   memoization in the sequential round loop (replays repeated frames
//!   instead of recomputing them; bit-identical output, asserted by the
//!   differential suite).
//!
//! All of them are parsed in one place, by one grammar, with one failure
//! mode: an **invalid value is an error naming the variable**, never a
//! silent fallback (the previous per-flag parsing dropped `FPPN_SIM_WORKERS=x`
//! on the floor and read every non-`1` `FPPN_SIM_PAR_BEHAVIORS` as false —
//! a typo'd CI job would silently test nothing). An *empty* value is
//! treated as unset, matching shell conventions (`FPPN_SIM_PIPELINE= cmd`).

use std::error::Error;
use std::fmt;

/// The simulator's environment overrides, parsed once (see module docs).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SimEnv {
    /// `FPPN_SIM_WORKERS`: worker threads, `None` when unset/empty.
    pub workers: Option<usize>,
    /// `FPPN_SIM_PAR_BEHAVIORS`: barrier-mode data-plane sharding.
    pub parallel_behaviors: Option<bool>,
    /// `FPPN_SIM_PIPELINE`: streaming frame pipeline.
    pub pipeline: Option<bool>,
    /// `FPPN_SIM_MEMO`: frame-resolution memoization in the sequential
    /// round loop.
    pub memo: Option<bool>,
}

/// An environment variable holding an unparseable value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimEnvError {
    /// The offending variable's name.
    pub var: &'static str,
    /// The value found.
    pub value: String,
    /// What a valid value looks like.
    pub expected: &'static str,
}

impl fmt::Display for SimEnvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid {}={:?}: expected {}",
            self.var, self.value, self.expected
        )
    }
}

impl Error for SimEnvError {}

/// Parses a worker count: a positive integer (`0` is rejected — `0` only
/// means "auto" in the `SimConfig` *field*, where the environment is the
/// thing being consulted).
fn parse_workers(var: &'static str, value: &str) -> Result<usize, SimEnvError> {
    value
        .parse::<usize>()
        .ok()
        .filter(|&w| w >= 1)
        .ok_or(SimEnvError {
            var,
            value: value.to_owned(),
            expected: "a positive worker count (e.g. 4)",
        })
}

/// Parses a boolean flag: `1`/`true`/`yes`/`on` or `0`/`false`/`no`/`off`
/// (ASCII case-insensitive).
fn parse_bool(var: &'static str, value: &str) -> Result<bool, SimEnvError> {
    let v = value.to_ascii_lowercase();
    match v.as_str() {
        "1" | "true" | "yes" | "on" => Ok(true),
        "0" | "false" | "no" | "off" => Ok(false),
        _ => Err(SimEnvError {
            var,
            value: value.to_owned(),
            expected: "a boolean: 1/true/yes/on or 0/false/no/off",
        }),
    }
}

impl SimEnv {
    /// Worker-thread count variable.
    pub const WORKERS: &'static str = "FPPN_SIM_WORKERS";
    /// Barrier-mode data-plane sharding variable.
    pub const PAR_BEHAVIORS: &'static str = "FPPN_SIM_PAR_BEHAVIORS";
    /// Streaming-pipeline variable.
    pub const PIPELINE: &'static str = "FPPN_SIM_PIPELINE";
    /// Frame-memoization variable.
    pub const MEMO: &'static str = "FPPN_SIM_MEMO";

    /// Reads and parses all four variables from the process environment.
    ///
    /// # Errors
    ///
    /// Returns [`SimEnvError`] (naming the variable and the expected
    /// grammar) on the first invalid value found.
    pub fn from_env() -> Result<Self, SimEnvError> {
        let read = |var: &'static str| std::env::var(var).ok().filter(|v| !v.is_empty());
        Ok(SimEnv {
            workers: read(Self::WORKERS)
                .map(|v| parse_workers(Self::WORKERS, &v))
                .transpose()?,
            parallel_behaviors: read(Self::PAR_BEHAVIORS)
                .map(|v| parse_bool(Self::PAR_BEHAVIORS, &v))
                .transpose()?,
            pipeline: read(Self::PIPELINE)
                .map(|v| parse_bool(Self::PIPELINE, &v))
                .transpose()?,
            memo: read(Self::MEMO)
                .map(|v| parse_bool(Self::MEMO, &v))
                .transpose()?,
        })
    }

    /// [`SimEnv::from_env`], panicking with the error's message on an
    /// invalid value. Used by the `SimConfig::resolved_*` accessors, whose
    /// signatures predate the unified parser: a misconfigured CI job must
    /// fail loudly at the first simulation, not silently run the wrong
    /// backend.
    pub(crate) fn from_env_or_panic() -> Self {
        match Self::from_env() {
            Ok(env) => env,
            Err(e) => panic!("{e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The parsers are tested on in-memory strings, not by mutating the
    // process environment: `std::env::set_var` from a threaded test
    // harness races with every other test reading the same variables.

    #[test]
    fn workers_accepts_positive_integers_only() {
        assert_eq!(parse_workers(SimEnv::WORKERS, "1"), Ok(1));
        assert_eq!(parse_workers(SimEnv::WORKERS, "64"), Ok(64));
        for bad in ["0", "-1", "x", "4.5", " 4", "4 "] {
            let err = parse_workers(SimEnv::WORKERS, bad).unwrap_err();
            assert_eq!(err.var, "FPPN_SIM_WORKERS");
            let msg = err.to_string();
            assert!(
                msg.contains("FPPN_SIM_WORKERS") && msg.contains(bad),
                "error must name the variable and value: {msg}"
            );
        }
    }

    #[test]
    fn bools_accept_the_documented_grammar() {
        for yes in ["1", "true", "TRUE", "yes", "On"] {
            assert_eq!(parse_bool(SimEnv::PIPELINE, yes), Ok(true), "{yes}");
        }
        for no in ["0", "false", "False", "no", "OFF"] {
            assert_eq!(parse_bool(SimEnv::PIPELINE, no), Ok(false), "{no}");
        }
        for bad in ["2", "enable", "tru", ""] {
            let err = parse_bool(SimEnv::PIPELINE, bad).unwrap_err();
            assert!(
                err.to_string().contains("FPPN_SIM_PIPELINE"),
                "error must name the variable: {err}"
            );
        }
    }

    #[test]
    fn memo_parses_with_the_shared_bool_grammar() {
        assert_eq!(parse_bool(SimEnv::MEMO, "on"), Ok(true));
        assert_eq!(parse_bool(SimEnv::MEMO, "0"), Ok(false));
        let err = parse_bool(SimEnv::MEMO, "maybe").unwrap_err();
        assert!(
            err.to_string().contains("FPPN_SIM_MEMO"),
            "error must name the variable: {err}"
        );
    }

    #[test]
    fn from_env_reflects_the_harness_environment() {
        // Whatever the variables are set to in this harness must either
        // parse (CI sets valid values) or be unset; `from_env` must agree
        // with a direct read either way.
        let env = SimEnv::from_env().expect("harness variables are valid");
        match std::env::var(SimEnv::WORKERS).ok().filter(|v| !v.is_empty()) {
            Some(v) => assert_eq!(env.workers, Some(v.parse::<usize>().unwrap())),
            None => assert_eq!(env.workers, None),
        }
    }
}
