//! Response-time and end-to-end latency metrics over simulation records.
//!
//! The paper's introduction motivates determinism partly by end-to-end
//! timing: "Without deterministic communication it is impossible to define
//! and guarantee end-to-end timing constraints." With deterministic
//! FPPN execution, end-to-end latencies along process chains are
//! well-defined functions of the schedule; this module measures them.

use std::collections::BTreeMap;

use fppn_core::{Fppn, ProcessId};
use fppn_taskgraph::JobId;
use fppn_time::TimeQ;

use crate::policy::JobRecord;

/// Response-time statistics of one process over a simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResponseStats {
    /// Executed job instances observed.
    pub count: usize,
    /// Worst response time (completion − invocation).
    pub worst: TimeQ,
    /// Best response time.
    pub best: TimeQ,
    /// Sum of response times (mean = `total / count`).
    pub total: TimeQ,
}

impl ResponseStats {
    /// The mean response time.
    pub fn mean(&self) -> TimeQ {
        if self.count == 0 {
            TimeQ::ZERO
        } else {
            self.total / TimeQ::from_int(self.count as i64)
        }
    }
}

/// Computes per-process response-time statistics from simulation records
/// (skipped server slots excluded).
pub fn response_stats(records: &[JobRecord]) -> BTreeMap<ProcessId, ResponseStats> {
    let mut out: BTreeMap<ProcessId, ResponseStats> = BTreeMap::new();
    for r in records {
        if r.skipped {
            continue;
        }
        let resp = r.completion - r.invoked_at;
        let e = out.entry(r.process).or_insert(ResponseStats {
            count: 0,
            worst: TimeQ::ZERO,
            best: resp,
            total: TimeQ::ZERO,
        });
        e.count += 1;
        e.worst = e.worst.max(resp);
        e.best = e.best.min(resp);
        e.total += resp;
    }
    out
}

/// Per-job completion times keyed by the stable slot identity
/// `(frame, job)`.
///
/// Two runs of the *same network, schedule and stimuli* produce records
/// for exactly the same `(frame, job)` slots, so this table supports
/// pointwise cross-run comparison — the predictability property compares
/// the tables of an execution-time-shrunk run against the original.
/// Skipped (false) server slots are included: their completion is the
/// round's resolution time, which must be just as monotone under
/// execution-time shrinking as a real completion.
pub fn completion_table(records: &[JobRecord]) -> BTreeMap<(u64, JobId), TimeQ> {
    records
        .iter()
        .map(|r| ((r.frame, r.job), r.completion))
        .collect()
}

/// Per-executed-job response times grouped by `(process, invocation
/// instant)`, each group sorted ascending.
///
/// This is the cross-run identity that survives *different arrival
/// traces*: an executed sporadic job is identified by its arrival
/// instant, a periodic job by its release. Simultaneous arrivals (bursts)
/// share a key, so the value is the sorted multiset of their response
/// times; the sustainability property compares groups rank-by-rank
/// (`i`-th smallest vs `i`-th smallest). Skipped slots are excluded —
/// they execute nothing and have no response time.
pub fn response_table(records: &[JobRecord]) -> BTreeMap<(ProcessId, TimeQ), Vec<TimeQ>> {
    let mut out: BTreeMap<(ProcessId, TimeQ), Vec<TimeQ>> = BTreeMap::new();
    for r in records {
        if r.skipped {
            continue;
        }
        out.entry((r.process, r.invoked_at))
            .or_default()
            .push(r.completion - r.invoked_at);
    }
    for v in out.values_mut() {
        v.sort();
    }
    out
}

/// The executed jobs that missed their deadline, as `(process, invoked
/// at)` pairs in record order. The sustainability property asserts that
/// sparsifying arrivals never *adds* entries to this set.
pub fn missed_jobs(records: &[JobRecord]) -> Vec<(ProcessId, TimeQ)> {
    records
        .iter()
        .filter(|r| !r.skipped && r.missed)
        .map(|r| (r.process, r.invoked_at))
        .collect()
}

/// The measured end-to-end latency of a source→…→sink process chain:
/// for each source job instance, the delay until the first job of the sink
/// process that *completes after* every chain member has processed the
/// corresponding data wave. Conservatively measured as the delay from the
/// source invocation to the completion of the first sink job whose start
/// is not earlier than the source job's completion.
///
/// Returns `(count, worst, mean)`; `None` if the chain never completes in
/// the simulated window or a process is missing from the records.
pub fn end_to_end_latency(
    net: &Fppn,
    records: &[JobRecord],
    chain: &[ProcessId],
) -> Option<(usize, TimeQ, TimeQ)> {
    let (&source, &sink) = (chain.first()?, chain.last()?);
    // Validate the chain is channel-connected (defence against typos).
    for w in chain.windows(2) {
        let connected = net
            .channels()
            .iter()
            .any(|c| c.writer() == w[0] && c.reader() == w[1]);
        if !connected {
            return None;
        }
    }
    let mut sink_completions: Vec<(TimeQ, TimeQ)> = records
        .iter()
        .filter(|r| !r.skipped && r.process == sink)
        .map(|r| (r.start, r.completion))
        .collect();
    sink_completions.sort();

    let mut count = 0usize;
    let mut worst = TimeQ::ZERO;
    let mut total = TimeQ::ZERO;
    for src in records.iter().filter(|r| !r.skipped && r.process == source) {
        // First sink job starting at/after the source job completed.
        if let Some(&(_, completion)) = sink_completions
            .iter()
            .find(|(start, _)| *start >= src.completion)
        {
            let latency = completion - src.invoked_at;
            count += 1;
            worst = worst.max(latency);
            total += latency;
        }
    }
    (count > 0).then(|| (count, worst, total / TimeQ::from_int(count as i64)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{simulate, SimConfig};
    use fppn_core::{ChannelKind, EventSpec, FppnBuilder, JobCtx, ProcessSpec, Stimuli, Value};
    use fppn_sched::{list_schedule, Heuristic};
    use fppn_taskgraph::{derive_task_graph, JobId, WcetModel};

    fn ms(v: i64) -> TimeQ {
        TimeQ::from_ms(v)
    }

    fn chain_net() -> (Fppn, fppn_core::BehaviorBank, Vec<ProcessId>) {
        let mut b = FppnBuilder::new();
        let a = b.process(ProcessSpec::new("a", EventSpec::periodic(ms(100))));
        let m = b.process(ProcessSpec::new("m", EventSpec::periodic(ms(100))));
        let z = b.process(ProcessSpec::new("z", EventSpec::periodic(ms(100))));
        let c1 = b.channel("c1", a, m, ChannelKind::Fifo);
        let c2 = b.channel("c2", m, z, ChannelKind::Fifo);
        b.priority(a, m);
        b.priority(m, z);
        b.behavior(a, move || {
            Box::new(move |ctx: &mut JobCtx<'_>| ctx.write(c1, Value::Int(ctx.k() as i64)))
        });
        b.behavior(m, move || {
            Box::new(move |ctx: &mut JobCtx<'_>| {
                if let Some(v) = ctx.read(c1) {
                    ctx.write(c2, v);
                }
            })
        });
        b.behavior(z, move || {
            Box::new(move |ctx: &mut JobCtx<'_>| {
                let _ = ctx.read(c2);
            })
        });
        let (net, bank) = b.build().unwrap();
        (net, bank, vec![a, m, z])
    }

    #[test]
    fn response_stats_reflect_chain_position() {
        let (net, bank, chain) = chain_net();
        let derived = derive_task_graph(&net, &WcetModel::uniform(ms(10))).unwrap();
        let schedule = list_schedule(&derived.graph, 1, Heuristic::AlapEdf);
        let run = simulate(
            &net,
            &bank,
            &Stimuli::new(),
            &derived,
            &schedule,
            &SimConfig {
                frames: 3,
                ..SimConfig::default()
            },
        )
        .unwrap();
        let stats = response_stats(&run.records);
        // a runs first (response 10 ms), z last (30 ms), every frame.
        assert_eq!(stats[&chain[0]].worst, ms(10));
        assert_eq!(stats[&chain[2]].worst, ms(30));
        assert_eq!(stats[&chain[2]].best, ms(30));
        assert_eq!(stats[&chain[0]].count, 3);
        assert_eq!(stats[&chain[0]].mean(), ms(10));
    }

    #[test]
    fn end_to_end_latency_over_chain() {
        let (net, bank, chain) = chain_net();
        let derived = derive_task_graph(&net, &WcetModel::uniform(ms(10))).unwrap();
        let schedule = list_schedule(&derived.graph, 1, Heuristic::AlapEdf);
        let run = simulate(
            &net,
            &bank,
            &Stimuli::new(),
            &derived,
            &schedule,
            &SimConfig {
                frames: 3,
                ..SimConfig::default()
            },
        )
        .unwrap();
        let (count, worst, mean) = end_to_end_latency(&net, &run.records, &chain).unwrap();
        assert_eq!(count, 3);
        // a completes at 10, z starts at 20 and completes at 30 per frame.
        assert_eq!(worst, ms(30));
        assert_eq!(mean, ms(30));
        // Unconnected chain is rejected.
        assert_eq!(
            end_to_end_latency(&net, &run.records, &[chain[2], chain[0]]),
            None
        );
        let _ = JobId::from_index(0);
    }
}
