//! The runtime-overhead model calibrated from §V-A.
//!
//! On the MPPA platform the paper measured that "the runtime causes an
//! overhead at the beginning of each frame, which is 41 ms for the first
//! frame (probably due to initial cache misses) and 20 ms for all
//! subsequent frames, required to manage the arrival of 14 jobs". The
//! management activity runs on a *separate* runtime processor (third row of
//! Fig. 6) and delays the start of every job of the frame; the paper models
//! it "by an extra 41 ms job with a precedence edge directed to the
//! generator".

use fppn_time::TimeQ;

/// Per-frame runtime overhead: application jobs of frame `f` cannot start
/// before `f·H + overhead(f)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OverheadModel {
    /// Overhead of frame 0 (cold caches): 41 ms in the paper's FFT run.
    pub first_frame: TimeQ,
    /// Overhead of every later frame: 20 ms in the paper's FFT run.
    pub steady_frame: TimeQ,
}

impl OverheadModel {
    /// No overhead: the idealized platform.
    pub const NONE: OverheadModel = OverheadModel {
        first_frame: TimeQ::ZERO,
        steady_frame: TimeQ::ZERO,
    };

    /// The §V-A MPPA calibration: 41 ms first frame, 20 ms after.
    pub fn mppa_fft() -> Self {
        OverheadModel {
            first_frame: TimeQ::from_ms(41),
            steady_frame: TimeQ::from_ms(20),
        }
    }

    /// A constant overhead for every frame.
    pub fn constant(per_frame: TimeQ) -> Self {
        OverheadModel {
            first_frame: per_frame,
            steady_frame: per_frame,
        }
    }

    /// The management duration charged at the start of frame `f`.
    pub fn frame_overhead(&self, frame: u64) -> TimeQ {
        if frame == 0 {
            self.first_frame
        } else {
            self.steady_frame
        }
    }

    /// Whether this model charges any overhead at all.
    pub fn is_none(&self) -> bool {
        self.first_frame.is_zero() && self.steady_frame.is_zero()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mppa_calibration() {
        let m = OverheadModel::mppa_fft();
        assert_eq!(m.frame_overhead(0), TimeQ::from_ms(41));
        assert_eq!(m.frame_overhead(1), TimeQ::from_ms(20));
        assert_eq!(m.frame_overhead(100), TimeQ::from_ms(20));
        assert!(!m.is_none());
    }

    #[test]
    fn none_is_zero() {
        assert!(OverheadModel::NONE.is_none());
        assert_eq!(OverheadModel::default(), OverheadModel::NONE);
        assert_eq!(OverheadModel::NONE.frame_overhead(0), TimeQ::ZERO);
    }

    #[test]
    fn constant_model() {
        let m = OverheadModel::constant(TimeQ::from_ms(5));
        assert_eq!(m.frame_overhead(0), TimeQ::from_ms(5));
        assert_eq!(m.frame_overhead(7), TimeQ::from_ms(5));
    }
}
