//! Compile-once/run-many: the cacheable compile phase of the simulator.
//!
//! Every artifact the online policy needs — the derived task graph, the
//! static schedule, the per-processor round orders, the wrap-around
//! predecessors, the topological positions and the stimuli-independent
//! slot templates — is a *deterministic function* of the network and the
//! compile parameters (WCET model, processor count, heuristic). This
//! module reifies that function as an immutable [`CompiledNetwork`]
//! artifact, keyed by a stable content hash ([`compile_key`]), so the
//! expensive compile phase runs once and arbitrarily many simulations
//! execute against a *borrowed* artifact.
//!
//! The classic entry points ([`crate::simulate`], [`crate::simulate_seq`],
//! …) are thin compile+run wrappers over this module; `fppn-serve` builds
//! a content-hash-keyed artifact cache and a multi-tenant run pool on top
//! of it.

use std::error::Error;
use std::fmt;

use fppn_core::{BehaviorBank, Fppn, Stimuli};
use fppn_sched::{list_schedule, Heuristic, StaticSchedule};
use fppn_taskgraph::{
    derive_task_graph, wrap_predecessors, DeriveError, DerivedTaskGraph, JobId, SlotTemplates,
    WcetModel,
};
use fppn_time::ContentHasher;

use crate::cancel::CancelToken;
use crate::policy::{
    run_seq_into, simulate_with_tables, RoundScratch, SimConfig, SimError, SimRun,
};

/// The stimuli-independent round tables shared by every backend: CSR
/// per-processor static orders, CSR wrap-around predecessors, topological
/// positions and the per-job slot templates. A pure function of
/// `(network, derived graph, schedule)`, built once per compile.
#[derive(Debug, Clone)]
pub struct StaticTables {
    /// CSR over processors: `proc_order_data[bounds[m]..bounds[m + 1]]`
    /// is processor `m`'s static round order.
    pub(crate) proc_order_data: Vec<JobId>,
    pub(crate) proc_order_bounds: Vec<usize>,
    /// CSR over jobs: the previous-frame (wrap-around) predecessors.
    pub(crate) wrap_pred_data: Vec<JobId>,
    pub(crate) wrap_pred_bounds: Vec<usize>,
    /// Topological position of every job — the third component of the
    /// canonical record key `(completion, frame, topo)`.
    pub(crate) topo_pos: Vec<usize>,
    /// Stimuli-independent half of slot resolution.
    pub(crate) templates: SlotTemplates,
}

impl StaticTables {
    /// Assembles the tables from an already-derived graph and schedule.
    pub fn build(net: &Fppn, derived: &DerivedTaskGraph, schedule: &StaticSchedule) -> Self {
        let graph = &derived.graph;
        let (proc_order_data, proc_order_bounds) = schedule.processor_order_csr();

        // Cross-frame wrap edges (shared with the threaded runtime; see
        // fppn-taskgraph), flattened to CSR over job ids.
        let wrap_preds = wrap_predecessors(net, derived);
        let mut wrap_pred_data = Vec::new();
        let mut wrap_pred_bounds = Vec::with_capacity(graph.job_count() + 1);
        wrap_pred_bounds.push(0);
        for preds in &wrap_preds {
            wrap_pred_data.extend_from_slice(preds);
            wrap_pred_bounds.push(wrap_pred_data.len());
        }

        let order = graph
            .topological_order()
            .expect("derived task graphs are acyclic");
        let mut topo_pos = vec![0usize; graph.job_count()];
        for (i, id) in order.iter().enumerate() {
            topo_pos[id.index()] = i;
        }

        StaticTables {
            proc_order_data,
            proc_order_bounds,
            wrap_pred_data,
            wrap_pred_bounds,
            topo_pos,
            templates: SlotTemplates::build(net, derived),
        }
    }

    /// The number of processors covered by the per-processor orders.
    pub fn processors(&self) -> usize {
        self.proc_order_bounds.len() - 1
    }
}

/// The compile-phase parameters: everything besides the network itself
/// that determines the derived graph, the schedule and the round tables.
/// Part of the [`compile_key`] cache key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileConfig {
    /// Per-process WCET table driving task-graph derivation.
    pub wcet: WcetModel,
    /// Number of processors `M` to schedule onto.
    pub processors: usize,
    /// The list-scheduling `SP` heuristic.
    pub heuristic: Heuristic,
}

impl CompileConfig {
    /// A config with the default ([`Heuristic::AlapEdf`]) heuristic.
    pub fn new(wcet: WcetModel, processors: usize) -> Self {
        CompileConfig {
            wcet,
            processors,
            heuristic: Heuristic::default(),
        }
    }
}

/// Errors from [`CompiledNetwork::compile`].
#[derive(Debug)]
#[non_exhaustive]
pub enum CompileError {
    /// Task-graph derivation failed (network outside the schedulable
    /// subclass of §III-A).
    Derive(DeriveError),
    /// `CompileConfig::processors` was zero.
    NoProcessors,
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Derive(e) => write!(f, "task-graph derivation failed: {e}"),
            CompileError::NoProcessors => write!(f, "compile requires at least one processor"),
        }
    }
}

impl Error for CompileError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CompileError::Derive(e) => Some(e),
            CompileError::NoProcessors => None,
        }
    }
}

impl From<DeriveError> for CompileError {
    fn from(e: DeriveError) -> Self {
        CompileError::Derive(e)
    }
}

/// The stable content hash keying a compiled artifact: the network's
/// static structure (processes, channels, FP edges — behaviors excluded)
/// plus every compile parameter (WCET table, processor count, heuristic).
///
/// Equal inputs always produce equal keys across processes and runs;
/// mutating any single input changes the key (asserted by the
/// differential suite). The hash is FNV-1a-64 over a field-tagged stream —
/// collision-resistant enough for cache keying, not cryptographic.
pub fn compile_key(net: &Fppn, cfg: &CompileConfig) -> u64 {
    let mut h = ContentHasher::new();
    net.content_hash_into(&mut h);
    cfg.wcet.content_hash_into(&mut h);
    h.write_usize(cfg.processors);
    h.write_u8(match cfg.heuristic {
        Heuristic::AlapEdf => 0,
        Heuristic::Edf => 1,
        Heuristic::BLevel => 2,
        Heuristic::DeadlineMonotonic => 3,
        Heuristic::Asap => 4,
        // `Heuristic` is non-exhaustive upstream; a new variant must get
        // its own tag before it can be cached.
        _ => unreachable!("unhashed heuristic variant"),
    });
    h.finish()
}

/// An immutable compile artifact: the validated network plus every
/// stimuli-independent table the simulator needs, keyed by
/// [`compile_key`]. Runs borrow the artifact; nothing in it is mutated by
/// (or specific to) a run, so one artifact can serve any number of
/// concurrent simulations.
#[derive(Debug)]
pub struct CompiledNetwork {
    net: Fppn,
    derived: DerivedTaskGraph,
    schedule: StaticSchedule,
    tables: StaticTables,
    content_hash: u64,
}

impl CompiledNetwork {
    /// Runs the full compile phase: task-graph derivation, list
    /// scheduling, round-table construction, content hashing.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError`] if derivation fails or `cfg.processors`
    /// is zero.
    pub fn compile(net: Fppn, cfg: &CompileConfig) -> Result<Self, CompileError> {
        if cfg.processors == 0 {
            return Err(CompileError::NoProcessors);
        }
        let derived = derive_task_graph(&net, &cfg.wcet)?;
        let schedule = list_schedule(&derived.graph, cfg.processors, cfg.heuristic);
        let tables = StaticTables::build(&net, &derived, &schedule);
        let content_hash = compile_key(&net, cfg);
        Ok(CompiledNetwork {
            net,
            derived,
            schedule,
            tables,
            content_hash,
        })
    }

    /// The validated network.
    pub fn net(&self) -> &Fppn {
        &self.net
    }

    /// The derived task graph (one hyperperiod of jobs).
    pub fn derived(&self) -> &DerivedTaskGraph {
        &self.derived
    }

    /// The static schedule the online policy repeats every frame.
    pub fn schedule(&self) -> &StaticSchedule {
        &self.schedule
    }

    /// The precomputed round tables.
    pub fn tables(&self) -> &StaticTables {
        &self.tables
    }

    /// The [`compile_key`] this artifact was built under.
    pub fn content_hash(&self) -> u64 {
        self.content_hash
    }

    /// Simulates against this artifact, dispatching on [`SimConfig`]
    /// exactly like [`crate::simulate`] — but with zero recompilation:
    /// the compile-phase tables are borrowed, whatever backend runs.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] on invalid stimuli, behavior failures, or a
    /// deadlocked (structurally invalid) schedule.
    pub fn simulate(
        &self,
        bank: &BehaviorBank,
        stimuli: &Stimuli,
        config: &SimConfig,
    ) -> Result<SimRun, SimError> {
        simulate_with_tables(
            &self.net,
            bank,
            stimuli,
            &self.derived,
            &self.tables,
            config,
            None,
        )
    }

    /// Like [`CompiledNetwork::simulate`], but reusing caller-owned
    /// scratch buffers when the sequential backend is selected: a worker
    /// running many simulations back to back keeps its round buffers warm
    /// across runs (the `fppn-serve` pool gives every worker one
    /// [`RunScratch`]). Parallel/pipelined configs dispatch normally and
    /// leave the scratch untouched.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] on invalid stimuli, behavior failures, or a
    /// deadlocked (structurally invalid) schedule.
    pub fn simulate_with_scratch(
        &self,
        bank: &BehaviorBank,
        stimuli: &Stimuli,
        config: &SimConfig,
        scratch: &mut RunScratch,
    ) -> Result<SimRun, SimError> {
        let seq = config.resolved_workers() <= 1
            && !config.resolved_parallel_behaviors()
            && !config.resolved_pipeline();
        if seq {
            run_seq_into(
                &self.net,
                bank,
                stimuli,
                &self.derived,
                &self.tables,
                config,
                &mut scratch.inner,
                None,
            )
        } else {
            self.simulate(bank, stimuli, config)
        }
    }

    /// Like [`CompiledNetwork::simulate_with_scratch`], but with
    /// cooperative cancellation armed: every backend polls `cancel` at
    /// round/frame boundaries (and the data planes per behavior job) and
    /// abandons the run with [`SimError::Cancelled`] once it trips — the
    /// mechanism behind `fppn-serve`'s per-run deadlines and server
    /// shutdown. A run whose token never trips is bit-identical to
    /// [`CompiledNetwork::simulate`] (the polls read a flag and touch no
    /// computed value), and the steady-state sequential path still
    /// allocates nothing (asserted by the `alloc_zero` gate).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Cancelled`] when the token trips mid-run, and
    /// every [`CompiledNetwork::simulate`] error otherwise.
    pub fn simulate_cancellable(
        &self,
        bank: &BehaviorBank,
        stimuli: &Stimuli,
        config: &SimConfig,
        scratch: &mut RunScratch,
        cancel: &CancelToken,
    ) -> Result<SimRun, SimError> {
        let seq = config.resolved_workers() <= 1
            && !config.resolved_parallel_behaviors()
            && !config.resolved_pipeline();
        if seq {
            run_seq_into(
                &self.net,
                bank,
                stimuli,
                &self.derived,
                &self.tables,
                config,
                &mut scratch.inner,
                Some(cancel),
            )
        } else {
            simulate_with_tables(
                &self.net,
                bank,
                stimuli,
                &self.derived,
                &self.tables,
                config,
                Some(cancel),
            )
        }
    }
}

/// Caller-owned scratch buffers for [`CompiledNetwork::simulate_with_scratch`]:
/// the completion table, per-processor availability and cursor state of
/// the sequential round loop, reused across runs (records are handed to
/// each [`SimRun`] and therefore reallocated per run).
#[derive(Debug, Default)]
pub struct RunScratch {
    pub(crate) inner: RoundScratch,
}

impl RunScratch {
    /// Empty scratch; the first run sizes the buffers.
    pub fn new() -> Self {
        Self::default()
    }
}
