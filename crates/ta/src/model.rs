//! Extended timed automata: clocks, invariants, guarded edges and shared
//! boolean variables.
//!
//! The paper's tool-chain is "based on automatic translation of the FPPN
//! network and the schedule to a network of timed automata" (§V, [10]).
//! This module provides the target formalism: a network of timed automata
//! with per-automaton clocks and network-global boolean variables (the
//! UPPAAL-style extension used to encode job-completion flags).

use fppn_time::TimeQ;

/// Index of a location within one automaton.
pub type TaLocId = usize;

/// Index of a clock within one automaton.
pub type ClockId = usize;

/// Index of a network-global boolean variable.
pub type VarId = usize;

/// One atomic guard conjunct.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Guard {
    /// `clock ≥ bound`.
    ClockGe(ClockId, TimeQ),
    /// `clock ≤ bound`.
    ClockLe(ClockId, TimeQ),
    /// `var == value`.
    VarIs(VarId, bool),
}

/// A location with an optional invariant (conjunction of `clock ≤ bound`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaLocation {
    /// Display name.
    pub name: String,
    /// Upper bounds that must hold while the automaton stays here.
    pub invariant: Vec<(ClockId, TimeQ)>,
}

/// A guarded edge with clock resets and variable assignments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaEdge {
    /// Source location.
    pub from: TaLocId,
    /// Conjunction of guards.
    pub guard: Vec<Guard>,
    /// Clocks reset to zero when firing.
    pub resets: Vec<ClockId>,
    /// Boolean variables assigned when firing.
    pub sets: Vec<(VarId, bool)>,
    /// Target location.
    pub to: TaLocId,
    /// Display label, surfaced in simulation traces.
    pub label: String,
}

/// One timed automaton of a network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimedAutomaton {
    name: String,
    locations: Vec<TaLocation>,
    clocks: Vec<String>,
    edges: Vec<TaEdge>,
    initial: TaLocId,
}

impl TimedAutomaton {
    /// Starts a builder; the first added location is initial.
    pub fn builder(name: impl Into<String>) -> TaBuilder {
        TaBuilder {
            name: name.into(),
            locations: Vec::new(),
            clocks: Vec::new(),
            edges: Vec::new(),
        }
    }

    /// The automaton name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The locations.
    pub fn locations(&self) -> &[TaLocation] {
        &self.locations
    }

    /// The declared clock names.
    pub fn clocks(&self) -> &[String] {
        &self.clocks
    }

    /// The edges.
    pub fn edges(&self) -> &[TaEdge] {
        &self.edges
    }

    /// The initial location.
    pub fn initial(&self) -> TaLocId {
        self.initial
    }
}

/// Builder for [`TimedAutomaton`].
#[derive(Debug)]
pub struct TaBuilder {
    name: String,
    locations: Vec<TaLocation>,
    clocks: Vec<String>,
    edges: Vec<TaEdge>,
}

impl TaBuilder {
    /// Adds a location without invariant; returns its id.
    pub fn location(&mut self, name: impl Into<String>) -> TaLocId {
        self.location_inv(name, Vec::new())
    }

    /// Adds a location with an invariant; returns its id.
    pub fn location_inv(
        &mut self,
        name: impl Into<String>,
        invariant: Vec<(ClockId, TimeQ)>,
    ) -> TaLocId {
        self.locations.push(TaLocation {
            name: name.into(),
            invariant,
        });
        self.locations.len() - 1
    }

    /// Declares a clock; returns its id.
    pub fn clock(&mut self, name: impl Into<String>) -> ClockId {
        self.clocks.push(name.into());
        self.clocks.len() - 1
    }

    /// Adds an edge.
    pub fn edge(&mut self, edge: TaEdge) -> &mut Self {
        self.edges.push(edge);
        self
    }

    /// Freezes the automaton.
    ///
    /// # Panics
    ///
    /// Panics if no location exists or an edge/invariant references an
    /// unknown location or clock.
    pub fn build(self) -> TimedAutomaton {
        assert!(
            !self.locations.is_empty(),
            "timed automaton {:?} needs at least one location",
            self.name
        );
        let n_loc = self.locations.len();
        let n_clk = self.clocks.len();
        for loc in &self.locations {
            for (c, _) in &loc.invariant {
                assert!(*c < n_clk, "invariant references unknown clock");
            }
        }
        for e in &self.edges {
            assert!(e.from < n_loc && e.to < n_loc, "edge references unknown location");
            for g in &e.guard {
                match g {
                    Guard::ClockGe(c, _) | Guard::ClockLe(c, _) => {
                        assert!(*c < n_clk, "guard references unknown clock")
                    }
                    Guard::VarIs(..) => {}
                }
            }
            for c in &e.resets {
                assert!(*c < n_clk, "reset references unknown clock");
            }
        }
        TimedAutomaton {
            name: self.name,
            locations: self.locations,
            clocks: self.clocks,
            edges: self.edges,
            initial: 0,
        }
    }
}

/// A network of timed automata over shared boolean variables.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TaNetwork {
    automata: Vec<TimedAutomaton>,
    variables: Vec<String>,
}

impl TaNetwork {
    /// An empty network.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a global boolean variable (initially `false`).
    pub fn variable(&mut self, name: impl Into<String>) -> VarId {
        self.variables.push(name.into());
        self.variables.len() - 1
    }

    /// Adds an automaton; returns its index.
    pub fn add(&mut self, automaton: TimedAutomaton) -> usize {
        self.automata.push(automaton);
        self.automata.len() - 1
    }

    /// The automata.
    pub fn automata(&self) -> &[TimedAutomaton] {
        &self.automata
    }

    /// The global variable names.
    pub fn variables(&self) -> &[String] {
        &self.variables
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: i64) -> TimeQ {
        TimeQ::from_ms(v)
    }

    #[test]
    fn build_simple_automaton() {
        let mut b = TimedAutomaton::builder("t");
        let c = b.clock("x");
        let idle = b.location("idle");
        let busy = b.location_inv("busy", vec![(c, ms(10))]);
        b.edge(TaEdge {
            from: idle,
            guard: vec![Guard::ClockGe(c, ms(5))],
            resets: vec![c],
            sets: vec![],
            to: busy,
            label: "go".into(),
        });
        let ta = b.build();
        assert_eq!(ta.locations().len(), 2);
        assert_eq!(ta.edges().len(), 1);
        assert_eq!(ta.initial(), 0);
        assert_eq!(ta.clocks(), &["x".to_owned()]);
    }

    #[test]
    #[should_panic(expected = "unknown clock")]
    fn unknown_clock_rejected() {
        let mut b = TimedAutomaton::builder("t");
        let l = b.location("l");
        b.edge(TaEdge {
            from: l,
            guard: vec![Guard::ClockGe(3, ms(1))],
            resets: vec![],
            sets: vec![],
            to: l,
            label: "bad".into(),
        });
        let _ = b.build();
    }

    #[test]
    fn network_variables() {
        let mut net = TaNetwork::new();
        let v = net.variable("done_j0");
        assert_eq!(v, 0);
        assert_eq!(net.variables(), &["done_j0".to_owned()]);
    }
}
