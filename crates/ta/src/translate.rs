//! Automatic translation of an FPPN + static schedule into a network of
//! timed automata — the code-generation pipeline of the paper's tools (ref. \[10\]).
//!
//! Each processor of the schedule becomes one timed automaton that walks
//! its static-order round list: a `wait` location per round (guarded by the
//! job's invocation time and its predecessors' completion flags), an `exec`
//! location held exactly `C_i` time units by an invariant/guard pair, and a
//! completion edge setting the job's `done` variable. False sporadic slots
//! translate to guarded skip edges. Simulating the resulting network with
//! [`crate::simulate_network`] reproduces the §IV policy timeline exactly —
//! cross-checked against `fppn-sim` by the integration test-suite.

use fppn_core::{Fppn, Stimuli};
use fppn_sched::StaticSchedule;
use fppn_taskgraph::{wrap_predecessors, DerivedTaskGraph, JobId, RoundResolution};
use fppn_time::TimeQ;

use crate::model::{Guard, TaEdge, TaNetwork, TimedAutomaton};
use crate::sim::TaTrace;

/// The product of a translation.
#[derive(Debug)]
pub struct Translation {
    /// The generated network (one automaton per processor).
    pub network: TaNetwork,
    /// Total number of rounds encoded (frames × jobs).
    pub rounds: usize,
}

impl Translation {
    /// A safe discrete-step bound for simulating this translation:
    /// each round fires at most two edges.
    pub fn step_bound(&self) -> usize {
        self.rounds * 2 + 16
    }
}

/// The timing of one job instance recovered from a TA simulation trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobTiming {
    /// Frame index.
    pub frame: u64,
    /// Task-graph job.
    pub job: JobId,
    /// Execution start (resolution time for skipped slots).
    pub start: TimeQ,
    /// Completion (equal to `start` for skipped slots).
    pub completion: TimeQ,
    /// Whether the slot was skipped as false.
    pub skipped: bool,
}

/// Translates the network, schedule and (resolved) stimuli over `frames`
/// frames into a TA network.
///
/// Like the paper's generator, the translation bakes the schedule and the
/// event timestamps into guard constants; execution times are the WCETs.
pub fn translate(
    net: &Fppn,
    derived: &DerivedTaskGraph,
    schedule: &StaticSchedule,
    stimuli: &Stimuli,
    frames: u64,
) -> Translation {
    let graph = &derived.graph;
    let n_jobs = graph.job_count();
    let resolution = RoundResolution::resolve(net, derived, stimuli, frames);
    let wraps = wrap_predecessors(net, derived);

    let mut network = TaNetwork::new();
    // done variable per (frame, job).
    let mut done = Vec::with_capacity(frames as usize * n_jobs);
    for f in 0..frames {
        for j in 0..n_jobs {
            done.push(network.variable(format!("done_{f}_{j}")));
        }
    }
    let done_of = |frame: u64, job: JobId| done[frame as usize * n_jobs + job.index()];

    let mut rounds = 0usize;
    for m in 0..schedule.processors() {
        let order = schedule.processor_order(m);
        let mut b = TimedAutomaton::builder(format!("sched_M{m}"));
        let x = b.clock("x"); // absolute time, never reset
        let c = b.clock("c"); // per-execution timer
        let mut cur = b.location(format!("start_M{m}"));
        for f in 0..frames {
            for &job_id in &order {
                rounds += 1;
                let job = graph.job(job_id);
                let res = resolution.get(f, job_id);
                // Precedence guards: same-frame predecessors + wraps.
                let mut guards: Vec<Guard> = graph
                    .predecessors(job_id)
                    .map(|p| Guard::VarIs(done_of(f, p), true))
                    .collect();
                if f > 0 {
                    guards.extend(
                        wraps[job_id.index()]
                            .iter()
                            .map(|&p| Guard::VarIs(done_of(f - 1, p), true)),
                    );
                }
                // Executable rounds are additionally gated at the frame
                // start f·H: the policy dispatches a frame's rounds only
                // once the frame has begun (§IV), even when a sporadic
                // invocation arrived earlier.
                let frame_base = derived.hyperperiod * fppn_time::TimeQ::from_int(f as i64);
                if res.executable {
                    guards.push(Guard::ClockGe(x, res.invoked_at.max(frame_base)));
                } else {
                    guards.push(Guard::ClockGe(x, res.invoked_at));
                }
                let next = b.location(format!("after_{f}_{}", job_id.index()));
                if res.executable {
                    let dur = job.wcet;
                    let exec =
                        b.location_inv(format!("exec_{f}_{}", job_id.index()), vec![(c, dur)]);
                    b.edge(TaEdge {
                        from: cur,
                        guard: guards,
                        resets: vec![c],
                        sets: vec![],
                        to: exec,
                        label: format!("start:{f}:{}", job_id.index()),
                    });
                    b.edge(TaEdge {
                        from: exec,
                        guard: vec![Guard::ClockGe(c, dur)],
                        resets: vec![],
                        sets: vec![(done_of(f, job_id), true)],
                        to: next,
                        label: format!("done:{f}:{}", job_id.index()),
                    });
                } else {
                    b.edge(TaEdge {
                        from: cur,
                        guard: guards,
                        resets: vec![],
                        sets: vec![(done_of(f, job_id), true)],
                        to: next,
                        label: format!("skip:{f}:{}", job_id.index()),
                    });
                }
                cur = next;
            }
        }
        network.add(b.build());
    }
    Translation { network, rounds }
}

/// Recovers per-job-instance timings from a simulation trace of a
/// translated network.
pub fn extract_timings(trace: &TaTrace) -> Vec<JobTiming> {
    let mut open: std::collections::BTreeMap<(u64, usize), TimeQ> = std::collections::BTreeMap::new();
    let mut out = Vec::new();
    for e in &trace.events {
        let mut parts = e.label.splitn(3, ':');
        let kind = parts.next().unwrap_or("");
        let (Some(f), Some(j)) = (parts.next(), parts.next()) else {
            continue;
        };
        let (Ok(f), Ok(j)) = (f.parse::<u64>(), j.parse::<usize>()) else {
            continue;
        };
        match kind {
            "start" => {
                open.insert((f, j), e.time);
            }
            "done" => {
                let start = open.remove(&(f, j)).unwrap_or(e.time);
                out.push(JobTiming {
                    frame: f,
                    job: JobId::from_index(j),
                    start,
                    completion: e.time,
                    skipped: false,
                });
            }
            "skip" => out.push(JobTiming {
                frame: f,
                job: JobId::from_index(j),
                start: e.time,
                completion: e.time,
                skipped: true,
            }),
            _ => {}
        }
    }
    out.sort_by_key(|t| (t.frame, t.start, t.job));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::simulate_network;
    use fppn_core::{ChannelKind, EventSpec, FppnBuilder, ProcessSpec, SporadicTrace};
    use fppn_sched::{list_schedule, Heuristic};
    use fppn_taskgraph::{derive_task_graph, WcetModel};

    fn ms(v: i64) -> TimeQ {
        TimeQ::from_ms(v)
    }

    fn pipeline() -> Fppn {
        let mut b = FppnBuilder::new();
        let a = b.process(ProcessSpec::new("a", EventSpec::periodic(ms(100))));
        let c = b.process(ProcessSpec::new("c", EventSpec::periodic(ms(100))));
        b.channel("x", a, c, ChannelKind::Fifo);
        b.priority(a, c);
        b.build().unwrap().0
    }

    #[test]
    fn two_jobs_on_one_processor_serialize() {
        let net = pipeline();
        let derived = derive_task_graph(&net, &WcetModel::uniform(ms(30))).unwrap();
        let schedule = list_schedule(&derived.graph, 1, Heuristic::AlapEdf);
        let t = translate(&net, &derived, &schedule, &Stimuli::new(), 2);
        let trace = simulate_network(&t.network, ms(1000), t.step_bound());
        let timings = extract_timings(&trace);
        assert_eq!(timings.len(), 4); // 2 jobs x 2 frames
        // Frame 0: a at [0, 30), c at [30, 60). Frame 1 shifted by 100.
        assert_eq!(timings[0].start, ms(0));
        assert_eq!(timings[0].completion, ms(30));
        assert_eq!(timings[1].start, ms(30));
        assert_eq!(timings[1].completion, ms(60));
        assert_eq!(timings[2].start, ms(100));
        assert_eq!(timings[3].completion, ms(160));
    }

    #[test]
    fn cross_processor_precedence_honored() {
        let net = pipeline();
        let derived = derive_task_graph(&net, &WcetModel::uniform(ms(30))).unwrap();
        let schedule = list_schedule(&derived.graph, 2, Heuristic::AlapEdf);
        let t = translate(&net, &derived, &schedule, &Stimuli::new(), 1);
        let trace = simulate_network(&t.network, ms(1000), t.step_bound());
        let timings = extract_timings(&trace);
        // Even on 2 processors, c must wait for a.
        let a_done = timings.iter().find(|t| t.job.index() == 0).unwrap().completion;
        let c_start = timings.iter().find(|t| t.job.index() == 1).unwrap().start;
        assert!(c_start >= a_done);
    }

    #[test]
    fn sporadic_slots_translate_to_skips() {
        let mut b = FppnBuilder::new();
        let user = b.process(ProcessSpec::new("user", EventSpec::periodic(ms(200))));
        let cfg = b.process(ProcessSpec::new("cfg", EventSpec::sporadic(1, ms(400))));
        b.channel("c", cfg, user, ChannelKind::Blackboard);
        b.priority(cfg, user);
        let (net, _) = b.build().unwrap();
        let derived = derive_task_graph(&net, &WcetModel::uniform(ms(10))).unwrap();
        let schedule = list_schedule(&derived.graph, 1, Heuristic::AlapEdf);
        let mut stimuli = Stimuli::new();
        stimuli.arrivals(cfg, SporadicTrace::new(vec![ms(150)]));
        let t = translate(&net, &derived, &schedule, &stimuli, 2);
        let trace = simulate_network(&t.network, ms(1000), t.step_bound());
        let timings = extract_timings(&trace);
        let skips: Vec<_> = timings.iter().filter(|t| t.skipped).collect();
        let execs: Vec<_> = timings.iter().filter(|t| !t.skipped).collect();
        // cfg slot of frame 0 skipped; frame 1 slot runs (arrival 150).
        assert_eq!(skips.len(), 1);
        assert_eq!(execs.len(), 3); // user x2 + cfg x1
        assert_eq!(trace.stopped, crate::sim::StopReason::Quiescent);
    }
}
