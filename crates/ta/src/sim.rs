//! Deterministic simulation of a timed-automata network.
//!
//! Discrete steps fire the lowest-indexed enabled edge; when nothing is
//! enabled, time advances to the earliest instant at which some edge
//! becomes enabled (bounded by location invariants). This semantics is
//! deterministic and complete for the networks produced by
//! [`crate::translate`], whose edges are mutually exclusive by
//! construction.

use fppn_time::TimeQ;

use crate::model::{Guard, TaNetwork};

/// One fired edge in a simulation trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaEvent {
    /// Global time of the step.
    pub time: TimeQ,
    /// Index of the automaton that fired.
    pub automaton: usize,
    /// The fired edge's label.
    pub label: String,
}

/// Why the simulation stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// No edge can ever fire again (all automata quiescent).
    Quiescent,
    /// The time horizon was reached.
    Horizon,
    /// The discrete-step bound was hit (livelock guard).
    StepBound,
}

/// The result of simulating a network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaTrace {
    /// Fired edges in order.
    pub events: Vec<TaEvent>,
    /// Final global time.
    pub end_time: TimeQ,
    /// Why the run stopped.
    pub stopped: StopReason,
}

impl TaTrace {
    /// The times of events whose label equals `label`.
    pub fn times_of(&self, label: &str) -> Vec<TimeQ> {
        self.events
            .iter()
            .filter(|e| e.label == label)
            .map(|e| e.time)
            .collect()
    }
}

/// Simulates the network from its initial state up to `horizon` (global
/// time) or `max_steps` discrete steps.
pub fn simulate_network(net: &TaNetwork, horizon: TimeQ, max_steps: usize) -> TaTrace {
    let n = net.automata().len();
    let mut locations: Vec<usize> = net.automata().iter().map(|a| a.initial()).collect();
    let mut clocks: Vec<Vec<TimeQ>> = net
        .automata()
        .iter()
        .map(|a| vec![TimeQ::ZERO; a.clocks().len()])
        .collect();
    let mut vars = vec![false; net.variables().len()];
    let mut now = TimeQ::ZERO;
    let mut events = Vec::new();

    let guard_sat = |g: &Guard, ai: usize, clocks: &[Vec<TimeQ>], vars: &[bool]| -> bool {
        match g {
            Guard::ClockGe(c, b) => clocks[ai][*c] >= *b,
            Guard::ClockLe(c, b) => clocks[ai][*c] <= *b,
            Guard::VarIs(v, val) => vars[*v] == *val,
        }
    };

    let mut discrete_steps = 0usize;
    // Iteration bound: every iteration either fires an edge (counted
    // against `max_steps`) or advances time; at most two consecutive
    // advances can occur before either a firing or quiescence.
    let max_iterations = max_steps.saturating_mul(4).saturating_add(64);
    for _iter in 0..max_iterations {
        if discrete_steps >= max_steps {
            break;
        }
        // 1. Fire the lowest-indexed enabled edge, if any.
        let mut fired = false;
        'outer: for ai in 0..n {
            let a = &net.automata()[ai];
            for e in a.edges() {
                if e.from != locations[ai] {
                    continue;
                }
                if e.guard.iter().all(|g| guard_sat(g, ai, &clocks, &vars)) {
                    for &c in &e.resets {
                        clocks[ai][c] = TimeQ::ZERO;
                    }
                    for &(v, val) in &e.sets {
                        vars[v] = val;
                    }
                    locations[ai] = e.to;
                    events.push(TaEvent {
                        time: now,
                        automaton: ai,
                        label: e.label.clone(),
                    });
                    fired = true;
                    break 'outer;
                }
            }
        }
        if fired {
            discrete_steps += 1;
            continue;
        }

        // 2. Advance time: smallest positive delay enabling some edge,
        //    bounded by invariants.
        let mut max_delay: Option<TimeQ> = None; // invariant bound
        for ai in 0..n {
            let a = &net.automata()[ai];
            for &(c, bound) in &a.locations()[locations[ai]].invariant {
                let slack = bound - clocks[ai][c];
                max_delay = Some(match max_delay {
                    None => slack,
                    Some(m) => m.min(slack),
                });
            }
        }
        let mut best: Option<TimeQ> = None;
        for ai in 0..n {
            let a = &net.automata()[ai];
            for e in a.edges() {
                if e.from != locations[ai] {
                    continue;
                }
                // Variable guards cannot change by delay; clock-Le guards
                // only get worse. Edge is a candidate if all var/Le guards
                // hold now and the Ge guards can be met by waiting.
                let static_ok = e.guard.iter().all(|g| match g {
                    Guard::VarIs(..) => guard_sat(g, ai, &clocks, &vars),
                    Guard::ClockLe(..) => true, // re-checked after delay
                    Guard::ClockGe(..) => true,
                });
                if !static_ok {
                    continue;
                }
                let mut needed = TimeQ::ZERO;
                for g in &e.guard {
                    if let Guard::ClockGe(c, b) = g {
                        let gap = *b - clocks[ai][*c];
                        needed = needed.max(gap);
                    }
                }
                if needed.is_positive() {
                    // Would Le guards still hold after the delay?
                    let le_ok = e.guard.iter().all(|g| match g {
                        Guard::ClockLe(c, b) => clocks[ai][*c] + needed <= *b,
                        _ => true,
                    });
                    if le_ok {
                        best = Some(match best {
                            None => needed,
                            Some(b) => b.min(needed),
                        });
                    }
                }
            }
        }
        let delay = match (best, max_delay) {
            (Some(d), Some(m)) => d.min(m),
            (Some(d), None) => d,
            (None, Some(m)) if m.is_positive() => m,
            _ => {
                return TaTrace {
                    events,
                    end_time: now,
                    stopped: StopReason::Quiescent,
                }
            }
        };
        if !delay.is_positive() {
            // Invariant blocks but nothing can fire: quiescent (deadlock).
            return TaTrace {
                events,
                end_time: now,
                stopped: StopReason::Quiescent,
            };
        }
        if now + delay > horizon {
            return TaTrace {
                events,
                end_time: horizon,
                stopped: StopReason::Horizon,
            };
        }
        now += delay;
        for automaton_clocks in clocks.iter_mut() {
            for c in automaton_clocks.iter_mut() {
                *c += delay;
            }
        }
    }
    TaTrace {
        events,
        end_time: now,
        stopped: StopReason::StepBound,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{TaEdge, TimedAutomaton};

    fn ms(v: i64) -> TimeQ {
        TimeQ::from_ms(v)
    }

    /// An automaton that fires `tick` every 10 ms (reset loop).
    fn ticker() -> TimedAutomaton {
        let mut b = TimedAutomaton::builder("ticker");
        let x = b.clock("x");
        let l = b.location_inv("l", vec![(x, ms(10))]);
        b.edge(TaEdge {
            from: l,
            guard: vec![Guard::ClockGe(x, ms(10))],
            resets: vec![x],
            sets: vec![],
            to: l,
            label: "tick".into(),
        });
        b.build()
    }

    #[test]
    fn periodic_ticks() {
        let mut net = TaNetwork::new();
        net.add(ticker());
        let trace = simulate_network(&net, ms(35), 100);
        assert_eq!(trace.times_of("tick"), vec![ms(10), ms(20), ms(30)]);
        assert_eq!(trace.stopped, StopReason::Horizon);
    }

    #[test]
    fn variables_synchronize_automata() {
        let mut net = TaNetwork::new();
        let done = net.variable("done");
        // Producer: sets `done` at t = 5.
        let mut p = TimedAutomaton::builder("producer");
        let x = p.clock("x");
        let l0 = p.location("l0");
        let l1 = p.location("l1");
        p.edge(TaEdge {
            from: l0,
            guard: vec![Guard::ClockGe(x, ms(5))],
            resets: vec![],
            sets: vec![(done, true)],
            to: l1,
            label: "produce".into(),
        });
        net.add(p.build());
        // Consumer: waits for `done` plus 3 ms more on its own clock.
        let mut c = TimedAutomaton::builder("consumer");
        let y = c.clock("y");
        let m0 = c.location("m0");
        let m1 = c.location("m1");
        let m2 = c.location("m2");
        c.edge(TaEdge {
            from: m0,
            guard: vec![Guard::VarIs(done, true)],
            resets: vec![y],
            sets: vec![],
            to: m1,
            label: "notice".into(),
        });
        c.edge(TaEdge {
            from: m1,
            guard: vec![Guard::ClockGe(y, ms(3))],
            resets: vec![],
            sets: vec![],
            to: m2,
            label: "consume".into(),
        });
        net.add(c.build());
        let trace = simulate_network(&net, ms(100), 100);
        assert_eq!(trace.times_of("produce"), vec![ms(5)]);
        assert_eq!(trace.times_of("notice"), vec![ms(5)]);
        assert_eq!(trace.times_of("consume"), vec![ms(8)]);
        assert_eq!(trace.stopped, StopReason::Quiescent);
    }

    #[test]
    fn step_bound_guards_livelock() {
        // A loop with no guard fires forever at t = 0.
        let mut b = TimedAutomaton::builder("spin");
        let l = b.location("l");
        b.edge(TaEdge {
            from: l,
            guard: vec![],
            resets: vec![],
            sets: vec![],
            to: l,
            label: "spin".into(),
        });
        let mut net = TaNetwork::new();
        net.add(b.build());
        let trace = simulate_network(&net, ms(10), 50);
        assert_eq!(trace.stopped, StopReason::StepBound);
        assert_eq!(trace.events.len(), 50);
    }

    #[test]
    fn quiescent_when_nothing_enabled() {
        let mut b = TimedAutomaton::builder("idle");
        b.location("l");
        let mut net = TaNetwork::new();
        net.add(b.build());
        let trace = simulate_network(&net, ms(10), 50);
        assert_eq!(trace.stopped, StopReason::Quiescent);
        assert!(trace.events.is_empty());
    }
}
