//! # fppn-ta — timed automata and the FPPN→TA translation (§V tooling)
//!
//! The paper's code-generation tools are "based on automatic translation of
//! the FPPN network and the schedule to a network of timed automata" (ref. \[10\] of the paper).
//! This crate reproduces that pipeline:
//!
//! * model types: extended timed automata — clocks, invariants, guarded
//!   edges, shared boolean variables (re-exported at the crate root).
//! * [`simulate_network`]: a deterministic simulator for such networks.
//! * [`translate`]: compiles an FPPN, its derived task graph, a static
//!   schedule and resolved sporadic arrivals into one scheduler automaton
//!   per processor; simulating the result reproduces the §IV policy
//!   timeline, which the integration suite cross-checks against `fppn-sim`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod model;
mod sim;
mod translate;

pub use model::{Guard, TaBuilder, TaEdge, TaLocId, TaLocation, TaNetwork, TimedAutomaton, VarId, ClockId};
pub use sim::{simulate_network, StopReason, TaEvent, TaTrace};
pub use translate::{extract_timings, translate, JobTiming, Translation};
