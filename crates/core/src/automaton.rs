//! Interpreted process automata (Def. 2.2).
//!
//! A process is formally "a deterministic automaton
//! `(ℓ_p0, L_p, X_p, X_p0, I_p, O_p, A_p, T_p)`" whose transitions carry a
//! guard over the local variables and an action (assignments, channel
//! reads, channel writes). A *job execution run* is a non-empty sequence of
//! steps returning to the initial location.
//!
//! This module is a faithful interpreter for that definition: build an
//! [`Automaton`] from locations, variables and guarded [`Transition`]s,
//! then wrap it in an [`AutomatonBehavior`] and register it like any other
//! behavior. The interpreter *checks determinism at run time*: if two
//! transition guards are simultaneously enabled, execution stops with
//! [`ExecError::AutomatonNondeterministic`].

use std::collections::BTreeMap;
use std::sync::Arc;

use crate::error::ExecError;
use crate::ids::{ChannelId, PortId};
use crate::process::{Behavior, JobCtx};
use crate::value::Value;

/// Index of a location in an [`Automaton`].
pub type LocId = usize;

/// Side-effect-free expression over the automaton's local variables.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A literal value.
    Const(Value),
    /// The current value of a local variable.
    Var(String),
    /// The job index `k` of the current run, as an `Int`.
    JobIndex,
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Shorthand for an integer literal.
    pub fn int(v: i64) -> Expr {
        Expr::Const(Value::Int(v))
    }

    /// Shorthand for a float literal.
    pub fn float(v: f64) -> Expr {
        Expr::Const(Value::Float(v))
    }

    /// Shorthand for a variable reference.
    pub fn var(name: impl Into<String>) -> Expr {
        Expr::Var(name.into())
    }

    /// Builds `lhs op rhs`.
    pub fn bin(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binary(op, Box::new(lhs), Box::new(rhs))
    }

    /// Builds `op e`.
    pub fn un(op: UnOp, e: Expr) -> Expr {
        Expr::Unary(op, Box::new(e))
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Boolean negation.
    Not,
    /// `true` iff the operand is not [`Value::Absent`] — the test on the
    /// paper's non-availability indicator.
    IsPresent,
}

/// Binary operators. Arithmetic on two `Int`s stays integral; any `Float`
/// operand promotes the operation to floats.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division (integer division on two `Int`s).
    Div,
    /// Remainder (Ints only).
    Rem,
    /// Structural equality.
    Eq,
    /// Structural inequality.
    Ne,
    /// Less-than on numbers.
    Lt,
    /// Less-or-equal on numbers.
    Le,
    /// Greater-than on numbers.
    Gt,
    /// Greater-or-equal on numbers.
    Ge,
    /// Boolean conjunction.
    And,
    /// Boolean disjunction.
    Or,
    /// Numeric minimum.
    Min,
    /// Numeric maximum.
    Max,
}

/// One statement in a transition's action (`A_p`).
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `x := e` — variable assignment.
    Assign {
        /// Assigned variable.
        var: String,
        /// Right-hand side.
        expr: Expr,
    },
    /// `x?c` — read a channel into a variable ([`Value::Absent`] if empty).
    ReadChannel {
        /// Destination variable.
        var: String,
        /// Source channel.
        channel: ChannelId,
    },
    /// `x!c` — write an expression's value to a channel.
    WriteChannel {
        /// Destination channel.
        channel: ChannelId,
        /// Value to write.
        expr: Expr,
    },
    /// `x?[k]I` — read this job's external input sample into a variable.
    ReadInput {
        /// Destination variable.
        var: String,
        /// Source port.
        port: PortId,
    },
    /// `x![k]O` — write this job's external output sample.
    WriteOutput {
        /// Destination port.
        port: PortId,
        /// Value to write.
        expr: Expr,
    },
}

/// A guarded transition `ℓ --[guard] / stmts--> ℓ'`.
#[derive(Debug, Clone, PartialEq)]
pub struct Transition {
    /// Source location.
    pub from: LocId,
    /// Guard over local variables; `None` means `true`.
    pub guard: Option<Expr>,
    /// Action statements, executed in order.
    pub stmts: Vec<Stmt>,
    /// Target location.
    pub to: LocId,
}

/// A deterministic process automaton (Def. 2.2).
///
/// # Examples
///
/// A one-location automaton that echoes a channel to an output with a
/// running sum:
///
/// ```
/// use fppn_core::automaton::{Automaton, BinOp, Expr, Stmt};
/// use fppn_core::{ChannelId, PortId, Value};
///
/// let a = Automaton::builder("sum")
///     .location("l0")
///     .variable("acc", Value::Int(0))
///     .variable("x", Value::Absent)
///     .transition(0, None, vec![
///         Stmt::ReadChannel { var: "x".into(), channel: ChannelId::from_index(0) },
///         Stmt::Assign {
///             var: "acc".into(),
///             expr: Expr::bin(BinOp::Add, Expr::var("acc"),
///                             Expr::bin(BinOp::Max, Expr::var("x"), Expr::int(0))),
///         },
///         Stmt::WriteOutput { port: PortId::from_index(0), expr: Expr::var("acc") },
///     ], 0)
///     .build();
/// assert_eq!(a.locations().len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Automaton {
    name: String,
    locations: Vec<String>,
    initial: LocId,
    variables: Vec<(String, Value)>,
    transitions: Vec<Transition>,
    step_bound: usize,
}

impl Automaton {
    /// Starts building an automaton; the first added location is initial.
    pub fn builder(name: impl Into<String>) -> AutomatonBuilder {
        AutomatonBuilder {
            name: name.into(),
            locations: Vec::new(),
            variables: Vec::new(),
            transitions: Vec::new(),
            step_bound: 1_000_000,
        }
    }

    /// The automaton name (diagnostics).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Location names, indexed by [`LocId`].
    pub fn locations(&self) -> &[String] {
        &self.locations
    }

    /// The declared variables with their initial values (`X_p`, `X_p0`).
    pub fn variables(&self) -> &[(String, Value)] {
        &self.variables
    }

    /// The transition relation `T_p`.
    pub fn transitions(&self) -> &[Transition] {
        &self.transitions
    }
}

/// Incremental constructor for [`Automaton`].
#[derive(Debug)]
pub struct AutomatonBuilder {
    name: String,
    locations: Vec<String>,
    variables: Vec<(String, Value)>,
    transitions: Vec<Transition>,
    step_bound: usize,
}

impl AutomatonBuilder {
    /// Adds a location and returns its id; the first one is initial.
    pub fn location(mut self, name: impl Into<String>) -> Self {
        self.locations.push(name.into());
        self
    }

    /// Declares a local variable with its initial value.
    pub fn variable(mut self, name: impl Into<String>, initial: Value) -> Self {
        self.variables.push((name.into(), initial));
        self
    }

    /// Adds a transition.
    pub fn transition(
        mut self,
        from: LocId,
        guard: Option<Expr>,
        stmts: Vec<Stmt>,
        to: LocId,
    ) -> Self {
        self.transitions.push(Transition {
            from,
            guard,
            stmts,
            to,
        });
        self
    }

    /// Overrides the livelock guard (default: 1e6 steps per job run).
    pub fn step_bound(mut self, bound: usize) -> Self {
        self.step_bound = bound;
        self
    }

    /// Freezes the automaton.
    ///
    /// # Panics
    ///
    /// Panics if no location was declared or a transition references an
    /// unknown location — these are construction-time programming errors.
    pub fn build(self) -> Automaton {
        assert!(
            !self.locations.is_empty(),
            "automaton {:?} needs at least one location",
            self.name
        );
        for t in &self.transitions {
            assert!(
                t.from < self.locations.len() && t.to < self.locations.len(),
                "automaton {:?}: transition references unknown location",
                self.name
            );
        }
        Automaton {
            name: self.name,
            locations: self.locations,
            initial: 0,
            variables: self.variables,
            transitions: self.transitions,
            step_bound: self.step_bound,
        }
    }
}

/// Run-time interpreter state for one automaton instance; implements
/// [`Behavior`], so it plugs into any executor.
pub struct AutomatonBehavior {
    automaton: Arc<Automaton>,
    location: LocId,
    env: BTreeMap<String, Value>,
}

impl AutomatonBehavior {
    /// Instantiates the automaton at its initial location and variable
    /// values.
    pub fn new(automaton: Arc<Automaton>) -> Self {
        let env = automaton
            .variables
            .iter()
            .map(|(n, v)| (n.clone(), v.clone()))
            .collect();
        AutomatonBehavior {
            location: automaton.initial,
            automaton,
            env,
        }
    }

    fn eval(&self, expr: &Expr, k: u64) -> Result<Value, ExecError> {
        let fail = |detail: String| ExecError::Eval {
            process: self.automaton.name.clone(),
            detail,
        };
        Ok(match expr {
            Expr::Const(v) => v.clone(),
            Expr::JobIndex => Value::Int(k as i64),
            Expr::Var(name) => self
                .env
                .get(name)
                .cloned()
                .ok_or_else(|| fail(format!("unknown variable {name:?}")))?,
            Expr::Unary(op, e) => {
                let v = self.eval(e, k)?;
                match op {
                    UnOp::IsPresent => Value::Bool(v.is_present()),
                    UnOp::Not => Value::Bool(
                        !v.as_bool()
                            .ok_or_else(|| fail(format!("not: expected bool, got {v}")))?,
                    ),
                    UnOp::Neg => match v {
                        Value::Int(i) => Value::Int(-i),
                        Value::Float(x) => Value::Float(-x),
                        other => return Err(fail(format!("neg: expected number, got {other}"))),
                    },
                }
            }
            Expr::Binary(op, l, r) => {
                let lv = self.eval(l, k)?;
                let rv = self.eval(r, k)?;
                eval_binop(*op, lv, rv).map_err(fail)?
            }
        })
    }

    fn exec_stmt(&mut self, stmt: &Stmt, ctx: &mut JobCtx<'_>) -> Result<(), ExecError> {
        match stmt {
            Stmt::Assign { var, expr } => {
                let v = self.eval(expr, ctx.k())?;
                self.env.insert(var.clone(), v);
            }
            Stmt::ReadChannel { var, channel } => {
                let v = ctx.read_value(*channel);
                self.env.insert(var.clone(), v);
            }
            Stmt::WriteChannel { channel, expr } => {
                let v = self.eval(expr, ctx.k())?;
                ctx.write(*channel, v);
            }
            Stmt::ReadInput { var, port } => {
                let v = ctx.read_input(*port).unwrap_or(Value::Absent);
                self.env.insert(var.clone(), v);
            }
            Stmt::WriteOutput { port, expr } => {
                let v = self.eval(expr, ctx.k())?;
                ctx.write_output(*port, v);
            }
        }
        Ok(())
    }

    /// The current value of a local variable (for tests/inspection).
    pub fn variable(&self, name: &str) -> Option<&Value> {
        self.env.get(name)
    }
}

fn eval_binop(op: BinOp, l: Value, r: Value) -> Result<Value, String> {
    use BinOp::*;
    // Comparison / equality first: structural.
    match op {
        Eq => return Ok(Value::Bool(l == r)),
        Ne => return Ok(Value::Bool(l != r)),
        And | Or => {
            let (a, b) = match (l.as_bool(), r.as_bool()) {
                (Some(a), Some(b)) => (a, b),
                _ => return Err(format!("{op:?}: expected booleans")),
            };
            return Ok(Value::Bool(if op == And { a && b } else { a || b }));
        }
        _ => {}
    }
    // Numeric ops: Int × Int stays integral, otherwise promote to float.
    match (&l, &r) {
        (Value::Int(a), Value::Int(b)) => {
            let (a, b) = (*a, *b);
            Ok(match op {
                Add => Value::Int(a.wrapping_add(b)),
                Sub => Value::Int(a.wrapping_sub(b)),
                Mul => Value::Int(a.wrapping_mul(b)),
                Div => {
                    if b == 0 {
                        return Err("integer division by zero".into());
                    }
                    Value::Int(a / b)
                }
                Rem => {
                    if b == 0 {
                        return Err("integer remainder by zero".into());
                    }
                    Value::Int(a % b)
                }
                Lt => Value::Bool(a < b),
                Le => Value::Bool(a <= b),
                Gt => Value::Bool(a > b),
                Ge => Value::Bool(a >= b),
                Min => Value::Int(a.min(b)),
                Max => Value::Int(a.max(b)),
                Eq | Ne | And | Or => unreachable!("handled above"),
            })
        }
        _ => {
            let (a, b) = match (l.as_float(), r.as_float()) {
                (Some(a), Some(b)) => (a, b),
                _ => return Err(format!("{op:?}: expected numbers, got {l} and {r}")),
            };
            Ok(match op {
                Add => Value::Float(a + b),
                Sub => Value::Float(a - b),
                Mul => Value::Float(a * b),
                Div => Value::Float(a / b),
                Rem => return Err("remainder on floats is not defined".into()),
                Lt => Value::Bool(a < b),
                Le => Value::Bool(a <= b),
                Gt => Value::Bool(a > b),
                Ge => Value::Bool(a >= b),
                Min => Value::Float(a.min(b)),
                Max => Value::Float(a.max(b)),
                Eq | Ne | And | Or => unreachable!("handled above"),
            })
        }
    }
}

impl Behavior for AutomatonBehavior {
    fn on_job(&mut self, ctx: &mut JobCtx<'_>) -> Result<(), ExecError> {
        let a = Arc::clone(&self.automaton);
        let mut steps = 0usize;
        loop {
            // Select the unique enabled transition from the current location.
            let mut chosen: Option<&Transition> = None;
            for t in a.transitions.iter().filter(|t| t.from == self.location) {
                let enabled = match &t.guard {
                    None => true,
                    Some(g) => self
                        .eval(g, ctx.k())?
                        .as_bool()
                        .ok_or_else(|| ExecError::Eval {
                            process: a.name.clone(),
                            detail: "guard did not evaluate to a boolean".into(),
                        })?,
                };
                if enabled {
                    if chosen.is_some() {
                        return Err(ExecError::AutomatonNondeterministic {
                            process: a.name.clone(),
                            location: a.locations[self.location].clone(),
                        });
                    }
                    chosen = Some(t);
                }
            }
            let t = match chosen {
                Some(t) => t,
                None => {
                    // No transition enabled: legal only back at the initial
                    // location after at least one step (job run complete).
                    return if self.location == a.initial && steps > 0 {
                        Ok(())
                    } else {
                        Err(ExecError::AutomatonStuck {
                            process: a.name.clone(),
                            location: a.locations[self.location].clone(),
                        })
                    };
                }
            };
            for stmt in &t.stmts {
                self.exec_stmt(stmt, ctx)?;
            }
            self.location = t.to;
            steps += 1;
            if steps >= a.step_bound {
                return Err(ExecError::AutomatonDiverged {
                    process: a.name.clone(),
                    bound: a.step_bound,
                });
            }
            // A job execution run "brings it back to its initial location".
            if self.location == a.initial {
                return Ok(());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::ChannelKind;
    use crate::event::EventSpec;
    use crate::exec::{ExecState, Stimuli};
    use crate::network::FppnBuilder;
    use crate::process::ProcessSpec;
    use fppn_time::TimeQ;

    fn ms(v: i64) -> TimeQ {
        TimeQ::from_ms(v)
    }

    /// An automaton with two locations: read, then conditionally write.
    fn filter_automaton(input: ChannelId, output: ChannelId) -> Automaton {
        Automaton::builder("filter")
            .location("idle")
            .location("got")
            .variable("x", Value::Absent)
            .transition(
                0,
                None,
                vec![Stmt::ReadChannel {
                    var: "x".into(),
                    channel: input,
                }],
                1,
            )
            .transition(
                1,
                Some(Expr::un(UnOp::IsPresent, Expr::var("x"))),
                vec![Stmt::WriteChannel {
                    channel: output,
                    expr: Expr::bin(BinOp::Mul, Expr::var("x"), Expr::int(2)),
                }],
                0,
            )
            .transition(
                1,
                Some(Expr::un(UnOp::Not, Expr::un(UnOp::IsPresent, Expr::var("x")))),
                vec![],
                0,
            )
            .build()
    }

    fn harness() -> (crate::Fppn, crate::network::BehaviorBank, ChannelId, ChannelId) {
        let mut b = FppnBuilder::new();
        let src = b.process(ProcessSpec::new("src", EventSpec::periodic(ms(100))));
        let flt = b.process(ProcessSpec::new("flt", EventSpec::periodic(ms(100))));
        let snk = b.process(ProcessSpec::new("snk", EventSpec::periodic(ms(100))));
        let c_in = b.channel("in", src, flt, ChannelKind::Fifo);
        let c_out = b.channel("out", flt, snk, ChannelKind::Fifo);
        b.priority(src, flt);
        b.priority(flt, snk);
        let automaton = Arc::new(filter_automaton(c_in, c_out));
        b.behavior(flt, move || {
            Box::new(AutomatonBehavior::new(Arc::clone(&automaton)))
        });
        b.behavior(src, move || {
            Box::new(move |ctx: &mut JobCtx<'_>| ctx.write(c_in, Value::Int(ctx.k() as i64)))
        });
        let (net, bank) = b.build().unwrap();
        (net, bank, c_in, c_out)
    }

    #[test]
    fn automaton_runs_job_and_returns_to_initial() {
        let (net, bank, _c_in, c_out) = harness();
        let mut behaviors = bank.instantiate();
        let stimuli = Stimuli::new();
        let mut st = ExecState::new(&net, &stimuli);
        let src = net.process_by_name("src").unwrap();
        let flt = net.process_by_name("flt").unwrap();
        let mut run = |pid, at_ms: i64| {
            st.run_next_job(&mut behaviors, pid, ms(at_ms))
                .unwrap_or_else(|e| {
                    panic!("job of {} at {at_ms} ms failed: {e}", net.process(pid).name())
                })
        };
        assert_eq!(run(src, 0), 1);
        assert_eq!(run(flt, 0), 1);
        // flt's second job runs before src produced its second sample: the
        // read comes up Absent and the automaton must take its
        // not-IsPresent transition back to the initial location, writing
        // nothing — not error out, and not stall in location 1.
        assert_eq!(run(flt, 100), 2, "empty read is still a completed job");
        assert_eq!(run(src, 100), 2);
        assert_eq!(run(flt, 200), 3);
        let obs = st.observables();
        // Filter doubled samples 1 and 2; the empty read wrote nothing.
        assert_eq!(
            obs.channels[c_out.index()],
            vec![Value::Int(2), Value::Int(4)]
        );
    }

    #[test]
    fn nondeterministic_automaton_is_reported() {
        let a = Automaton::builder("bad")
            .location("l0")
            .location("l1")
            .transition(0, None, vec![], 1)
            .transition(0, None, vec![], 1)
            .transition(1, None, vec![], 0)
            .build();
        let mut b = FppnBuilder::new();
        let p = b.process(ProcessSpec::new("p", EventSpec::periodic(ms(1))));
        let arc = Arc::new(a);
        b.behavior(p, move || Box::new(AutomatonBehavior::new(Arc::clone(&arc))));
        let (net, bank) = b.build().unwrap();
        let mut behaviors = bank.instantiate();
        let stimuli = Stimuli::new();
        let mut st = ExecState::new(&net, &stimuli);
        let err = st.run_next_job(&mut behaviors, p, ms(0)).unwrap_err();
        assert!(matches!(err, ExecError::AutomatonNondeterministic { .. }));
    }

    #[test]
    fn stuck_automaton_is_reported() {
        let a = Automaton::builder("stuck")
            .location("l0")
            .location("dead")
            .transition(0, None, vec![], 1)
            .build();
        let mut b = FppnBuilder::new();
        let p = b.process(ProcessSpec::new("p", EventSpec::periodic(ms(1))));
        let arc = Arc::new(a);
        b.behavior(p, move || Box::new(AutomatonBehavior::new(Arc::clone(&arc))));
        let (net, bank) = b.build().unwrap();
        let mut behaviors = bank.instantiate();
        let stimuli = Stimuli::new();
        let mut st = ExecState::new(&net, &stimuli);
        let err = st.run_next_job(&mut behaviors, p, ms(0)).unwrap_err();
        assert!(matches!(err, ExecError::AutomatonStuck { .. }));
    }

    #[test]
    fn diverging_automaton_is_bounded() {
        let a = Automaton::builder("spin")
            .location("l0")
            .location("l1")
            .location("l2")
            .transition(0, None, vec![], 1)
            .transition(1, None, vec![], 2)
            .transition(2, None, vec![], 1) // 1 <-> 2 forever
            .step_bound(100)
            .build();
        let mut b = FppnBuilder::new();
        let p = b.process(ProcessSpec::new("p", EventSpec::periodic(ms(1))));
        let arc = Arc::new(a);
        b.behavior(p, move || Box::new(AutomatonBehavior::new(Arc::clone(&arc))));
        let (net, bank) = b.build().unwrap();
        let mut behaviors = bank.instantiate();
        let stimuli = Stimuli::new();
        let mut st = ExecState::new(&net, &stimuli);
        let err = st.run_next_job(&mut behaviors, p, ms(0)).unwrap_err();
        assert!(matches!(err, ExecError::AutomatonDiverged { bound: 100, .. }));
    }

    #[test]
    fn expression_evaluation() {
        let a = Arc::new(
            Automaton::builder("calc")
                .location("l0")
                .variable("acc", Value::Int(0))
                .transition(
                    0,
                    None,
                    vec![Stmt::Assign {
                        var: "acc".into(),
                        expr: Expr::bin(
                            BinOp::Add,
                            Expr::var("acc"),
                            Expr::bin(BinOp::Mul, Expr::JobIndex, Expr::int(10)),
                        ),
                    }],
                    0,
                )
                .build(),
        );
        let mut b = FppnBuilder::new();
        let p = b.process(ProcessSpec::new("p", EventSpec::periodic(ms(1))));
        let (_net, _) = b.build().unwrap();
        let mut beh = AutomatonBehavior::new(a);
        let mut backend = NullAccess;
        let mut ctx = JobCtx::new(&mut backend, p, 1, ms(0));
        beh.on_job(&mut ctx).unwrap();
        let mut ctx = JobCtx::new(&mut backend, p, 2, ms(1));
        beh.on_job(&mut ctx).unwrap();
        assert_eq!(beh.variable("acc"), Some(&Value::Int(30)));
    }

    /// Minimal DataAccess stub for driving behaviors directly.
    struct NullAccess;
    impl crate::process::DataAccess for NullAccess {
        fn read_channel(&mut self, _: crate::ProcessId, _: ChannelId) -> Option<Value> {
            None
        }
        fn write_channel(&mut self, _: crate::ProcessId, _: ChannelId, _: Value) {}
        fn read_external(&mut self, _: crate::ProcessId, _: PortId, _: u64) -> Option<Value> {
            None
        }
        fn write_external(&mut self, _: crate::ProcessId, _: PortId, _: u64, _: Value) {}
    }

    #[test]
    fn binop_type_errors() {
        assert!(eval_binop(BinOp::Add, Value::Str("a".into()), Value::Int(1)).is_err());
        assert!(eval_binop(BinOp::Div, Value::Int(1), Value::Int(0)).is_err());
        assert!(eval_binop(BinOp::Rem, Value::Float(1.0), Value::Float(2.0)).is_err());
        assert!(eval_binop(BinOp::And, Value::Int(1), Value::Bool(true)).is_err());
        assert_eq!(
            eval_binop(BinOp::Add, Value::Int(1), Value::Float(0.5)).unwrap(),
            Value::Float(1.5)
        );
        assert_eq!(
            eval_binop(BinOp::Eq, Value::Absent, Value::Absent).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            eval_binop(BinOp::Max, Value::Int(3), Value::Int(5)).unwrap(),
            Value::Int(5)
        );
    }
}
