//! The zero-delay semantics of FPPN (§II-B).
//!
//! Given the sequence `(t1, P¹), (t2, P²), …` of invocation timestamps and
//! invoked-process multisets, the zero-delay execution trace is
//! `w(t1) ∘ α1 ∘ w(t2) ∘ α2 …`, where each `αi` concatenates the job runs
//! of the processes in `Pⁱ` *in an order such that if `p1 → p2` then the
//! jobs of `p1` execute before the jobs of `p2`*.
//!
//! The order of FP-**unrelated** processes within one timestamp is left open
//! by the paper — determinism (Prop. 2.1) holds because unrelated processes
//! share no channels. [`JobOrdering`] exposes that freedom so the test-suite
//! can *verify* Prop. 2.1 by executing with different linearizations and
//! comparing observables.

use std::collections::BTreeMap;

use fppn_time::TimeQ;

use crate::error::{ExecError, NetworkError};
use crate::exec::{ExecState, Stimuli};
use crate::ids::ProcessId;
use crate::network::Fppn;
use crate::process::BoxedBehavior;
use crate::trace::{Observables, Trace};

/// One job invocation: process `p`, invocation count `k`, timestamp.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Invocation {
    /// Invocation timestamp.
    pub time: TimeQ,
    /// Invoked process.
    pub process: ProcessId,
    /// 1-based invocation count (`k` in `p[k]`).
    pub k: u64,
}

/// Which linear extension of the FP DAG orders simultaneous invocations.
///
/// Both variants respect every FP edge; they differ only on unrelated
/// processes. Executing under both and comparing observables is a direct
/// test of Prop. 2.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum JobOrdering {
    /// Kahn's algorithm popping the smallest ready process id first
    /// (the workspace-wide canonical order).
    #[default]
    MinRankFirst,
    /// Kahn's algorithm popping the largest ready process id first —
    /// a different, equally valid linearization.
    MaxRankFirst,
}

/// Computes per-process ranks for the chosen linear extension of FP.
pub fn linearization_ranks(net: &Fppn, ordering: JobOrdering) -> Vec<u32> {
    let n = net.process_count();
    let mut indegree = vec![0usize; n];
    let mut succ: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (a, b) in net.priority_edges() {
        indegree[b.index()] += 1;
        succ[a.index()].push(b.index());
    }
    let mut ready: std::collections::BTreeSet<usize> = (0..n)
        .filter(|&i| indegree[i] == 0)
        .collect();
    let mut rank = vec![0u32; n];
    let mut next = 0u32;
    while !ready.is_empty() {
        let node = match ordering {
            JobOrdering::MinRankFirst => *ready.iter().next().expect("non-empty"),
            JobOrdering::MaxRankFirst => *ready.iter().next_back().expect("non-empty"),
        };
        ready.remove(&node);
        rank[node] = next;
        next += 1;
        for &s in &succ[node] {
            indegree[s] -= 1;
            if indegree[s] == 0 {
                ready.insert(s);
            }
        }
    }
    debug_assert_eq!(next as usize, n, "network FP graph must be acyclic");
    rank
}

/// Groups every invocation in `[0, horizon)` by timestamp.
///
/// Periodic processes are invoked at `phase, phase+T, …` with `m` jobs per
/// burst; sporadic ones at the times of their [`Stimuli`] arrival trace.
/// Within one process, `k` counts invocations in time order.
pub fn invocations_by_time(
    net: &Fppn,
    stimuli: &Stimuli,
    horizon: TimeQ,
) -> BTreeMap<TimeQ, Vec<Invocation>> {
    let mut by_time: BTreeMap<TimeQ, Vec<Invocation>> = BTreeMap::new();
    for pid in net.process_ids() {
        let ev = net.process(pid).event();
        let times: Vec<TimeQ> = if ev.is_sporadic() {
            stimuli
                .arrivals_of(pid)
                .map(|t| t.arrivals_in(TimeQ::ZERO, horizon).to_vec())
                .unwrap_or_default()
        } else {
            ev.periodic_invocations(horizon)
        };
        for (i, t) in times.into_iter().enumerate() {
            by_time.entry(t).or_default().push(Invocation {
                time: t,
                process: pid,
                k: i as u64 + 1,
            });
        }
    }
    by_time
}

/// The result of a zero-delay execution.
#[derive(Debug)]
pub struct ZeroDelayRun {
    /// Per-channel and per-output observable value sequences (Prop. 2.1).
    pub observables: Observables,
    /// Full action trace (always recorded by the reference executor).
    pub trace: Trace,
    /// Every executed invocation, in execution order.
    pub executed: Vec<Invocation>,
}

/// Errors from the zero-delay executor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SemanticsError {
    /// The stimuli are inconsistent with the network.
    Network(NetworkError),
    /// A behavior failed during execution.
    Exec(ExecError),
}

impl std::fmt::Display for SemanticsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SemanticsError::Network(e) => write!(f, "invalid stimuli: {e}"),
            SemanticsError::Exec(e) => write!(f, "execution failed: {e}"),
        }
    }
}

impl std::error::Error for SemanticsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SemanticsError::Network(e) => Some(e),
            SemanticsError::Exec(e) => Some(e),
        }
    }
}

impl From<NetworkError> for SemanticsError {
    fn from(e: NetworkError) -> Self {
        SemanticsError::Network(e)
    }
}

impl From<ExecError> for SemanticsError {
    fn from(e: ExecError) -> Self {
        SemanticsError::Exec(e)
    }
}

/// Executes the network under the zero-delay semantics over `[0, horizon)`.
///
/// This is the *reference* executor: every other backend (discrete-event
/// simulator, threaded runtime, timed-automata simulation) must produce the
/// same [`Observables`] for the same network and stimuli.
///
/// # Errors
///
/// Returns [`SemanticsError::Network`] if the stimuli violate a sporadic
/// constraint and [`SemanticsError::Exec`] if a behavior fails.
///
/// # Examples
///
/// ```
/// use fppn_core::{run_zero_delay, ChannelKind, EventSpec, FppnBuilder, JobOrdering,
///                 ProcessSpec, Stimuli, Value};
/// use fppn_time::TimeQ;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = FppnBuilder::new();
/// let src = b.process(ProcessSpec::new("src", EventSpec::periodic(TimeQ::from_ms(100))));
/// let dst = b.process(ProcessSpec::new("dst", EventSpec::periodic(TimeQ::from_ms(100))));
/// let ch = b.channel("c", src, dst, ChannelKind::Fifo);
/// b.priority(src, dst);
/// b.behavior(src, move || Box::new(move |ctx: &mut fppn_core::JobCtx<'_>| {
///     ctx.write(ch, Value::Int(ctx.k() as i64));
/// }));
/// let (net, bank) = b.build()?;
/// let mut behaviors = bank.instantiate();
/// let run = run_zero_delay(&net, &mut behaviors, &Stimuli::new(),
///                          TimeQ::from_ms(300), JobOrdering::default())?;
/// assert_eq!(run.observables.channels[0],
///            vec![Value::Int(1), Value::Int(2), Value::Int(3)]);
/// # Ok(())
/// # }
/// ```
pub fn run_zero_delay(
    net: &Fppn,
    behaviors: &mut [BoxedBehavior],
    stimuli: &Stimuli,
    horizon: TimeQ,
    ordering: JobOrdering,
) -> Result<ZeroDelayRun, SemanticsError> {
    stimuli.validate(net)?;
    let ranks = linearization_ranks(net, ordering);
    let by_time = invocations_by_time(net, stimuli, horizon);

    let mut state = ExecState::new(net, stimuli).record_trace();
    let mut executed = Vec::new();
    for (_t, mut group) in by_time {
        // Order the multiset Pⁱ: FP-linearization rank, then k.
        group.sort_by_key(|inv| (ranks[inv.process.index()], inv.k));
        for inv in group {
            state.run_job(behaviors, inv.process, inv.k, inv.time)?;
            executed.push(inv);
        }
    }
    let (observables, trace) = state.into_parts();
    Ok(ZeroDelayRun {
        observables,
        trace: trace.unwrap_or_default(),
        executed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::ChannelKind;
    use crate::event::{EventSpec, SporadicTrace};
    use crate::process::{JobCtx, ProcessSpec};
    use crate::value::Value;
    use crate::FppnBuilder;

    fn ms(v: i64) -> TimeQ {
        TimeQ::from_ms(v)
    }

    /// Two producers (unrelated to each other) feeding one consumer that
    /// concatenates whatever is available; exercises ordering freedom.
    fn diamond() -> (Fppn, crate::network::BehaviorBank) {
        let mut b = FppnBuilder::new();
        let p1 = b.process(ProcessSpec::new("p1", EventSpec::periodic(ms(100))));
        let p2 = b.process(ProcessSpec::new("p2", EventSpec::periodic(ms(100))));
        let c = b.process(ProcessSpec::new("cons", EventSpec::periodic(ms(100))).with_output("o"));
        let ch1 = b.channel("c1", p1, c, ChannelKind::Fifo);
        let ch2 = b.channel("c2", p2, c, ChannelKind::Fifo);
        b.priority(p1, c);
        b.priority(p2, c);
        b.behavior(p1, move || {
            Box::new(move |ctx: &mut JobCtx<'_>| ctx.write(ch1, Value::Int(10 + ctx.k() as i64)))
        });
        b.behavior(p2, move || {
            Box::new(move |ctx: &mut JobCtx<'_>| ctx.write(ch2, Value::Int(20 + ctx.k() as i64)))
        });
        b.behavior(c, move || {
            Box::new(move |ctx: &mut JobCtx<'_>| {
                let a = ctx.read_value(ch1);
                let b = ctx.read_value(ch2);
                ctx.write_output(crate::PortId::from_index(0), Value::List(vec![a, b]));
            })
        });
        let (net, bank) = b.build().unwrap();
        (net, bank)
    }

    #[test]
    fn priority_order_is_respected() {
        let (net, bank) = diamond();
        let mut behaviors = bank.instantiate();
        let run = run_zero_delay(
            &net,
            &mut behaviors,
            &Stimuli::new(),
            ms(200),
            JobOrdering::MinRankFirst,
        )
        .unwrap();
        // Consumer runs last at each timestamp, so it always sees data.
        let out = &run.observables.outputs[0].1;
        assert_eq!(
            out[0].1,
            Value::List(vec![Value::Int(11), Value::Int(21)])
        );
        assert_eq!(
            out[1].1,
            Value::List(vec![Value::Int(12), Value::Int(22)])
        );
        assert_eq!(run.executed.len(), 6);
        // p1[1], p2[1] precede cons[1] in the executed order.
        let pos = |name: &str, k: u64| {
            let pid = net.process_by_name(name).unwrap();
            run.executed
                .iter()
                .position(|i| i.process == pid && i.k == k)
                .unwrap()
        };
        assert!(pos("p1", 1) < pos("cons", 1));
        assert!(pos("p2", 1) < pos("cons", 1));
    }

    #[test]
    fn prop_2_1_observables_independent_of_linearization() {
        let (net, bank) = diamond();
        let mut b1 = bank.instantiate();
        let r1 = run_zero_delay(&net, &mut b1, &Stimuli::new(), ms(500), JobOrdering::MinRankFirst)
            .unwrap();
        let mut b2 = bank.instantiate();
        let r2 = run_zero_delay(&net, &mut b2, &Stimuli::new(), ms(500), JobOrdering::MaxRankFirst)
            .unwrap();
        assert_eq!(r1.observables.diff(&r2.observables), None);
        // But the executed orders do differ (p1 vs p2 swap).
        assert_ne!(r1.executed, r2.executed);
    }

    #[test]
    fn sporadic_invocations_follow_trace() {
        let mut b = FppnBuilder::new();
        let u = b.process(ProcessSpec::new("user", EventSpec::periodic(ms(200))).with_output("o"));
        let s = b.process(ProcessSpec::new("cfg", EventSpec::sporadic(2, ms(700))));
        let ch = b.channel("c", s, u, ChannelKind::Blackboard);
        b.priority(s, u);
        b.behavior(s, move || {
            Box::new(move |ctx: &mut JobCtx<'_>| ctx.write(ch, Value::Int(100 * ctx.k() as i64)))
        });
        b.behavior(u, move || {
            Box::new(move |ctx: &mut JobCtx<'_>| {
                let v = ctx.read_value(ch);
                ctx.write_output(crate::PortId::from_index(0), v);
            })
        });
        let (net, bank) = b.build().unwrap();
        let mut stimuli = Stimuli::new();
        stimuli.arrivals(s, SporadicTrace::new(vec![ms(50), ms(400)]));
        let mut behaviors = bank.instantiate();
        let run =
            run_zero_delay(&net, &mut behaviors, &stimuli, ms(600), JobOrdering::default())
                .unwrap();
        // user jobs at 0, 200, 400: see Absent, 100 (cfg@50), 200 (cfg@400,
        // which has priority and runs first at t=400).
        let out = &run.observables.outputs[0].1;
        assert_eq!(out[0].1, Value::Absent);
        assert_eq!(out[1].1, Value::Int(100));
        assert_eq!(out[2].1, Value::Int(200));
    }

    #[test]
    fn equal_time_priority_decides_read_vs_write() {
        // Reader has priority over writer => at equal timestamps the reader
        // runs first and observes the *previous* value: still deterministic.
        let mut b = FppnBuilder::new();
        let w = b.process(ProcessSpec::new("w", EventSpec::periodic(ms(100))));
        let r = b.process(ProcessSpec::new("r", EventSpec::periodic(ms(100))).with_output("o"));
        let ch = b.channel("c", w, r, ChannelKind::Blackboard);
        b.priority(r, w); // reader first!
        b.behavior(w, move || {
            Box::new(move |ctx: &mut JobCtx<'_>| ctx.write(ch, Value::Int(ctx.k() as i64)))
        });
        b.behavior(r, move || {
            Box::new(move |ctx: &mut JobCtx<'_>| {
                let v = ctx.read_value(ch);
                ctx.write_output(crate::PortId::from_index(0), v);
            })
        });
        let (net, bank) = b.build().unwrap();
        let mut behaviors = bank.instantiate();
        let run = run_zero_delay(
            &net,
            &mut behaviors,
            &Stimuli::new(),
            ms(300),
            JobOrdering::default(),
        )
        .unwrap();
        let out = &run.observables.outputs[0].1;
        assert_eq!(out[0].1, Value::Absent); // before w[1]
        assert_eq!(out[1].1, Value::Int(1)); // w[1]'s value
        assert_eq!(out[2].1, Value::Int(2));
    }

    #[test]
    fn invocation_plan_counts_bursts() {
        let mut b = FppnBuilder::new();
        let p = b.process(ProcessSpec::new("p", EventSpec::multi_periodic(2, ms(100))));
        let (net, _) = b.build().unwrap();
        let plan = invocations_by_time(&net, &Stimuli::new(), ms(200));
        assert_eq!(plan[&ms(0)].len(), 2);
        assert_eq!(plan[&ms(100)].len(), 2);
        assert_eq!(plan[&ms(100)][0].k, 3);
        assert_eq!(plan[&ms(100)][1].k, 4);
        let _ = p;
    }

    #[test]
    fn invalid_stimuli_rejected() {
        let mut b = FppnBuilder::new();
        let u = b.process(ProcessSpec::new("u", EventSpec::periodic(ms(200))));
        let s = b.process(ProcessSpec::new("s", EventSpec::sporadic(1, ms(1000))));
        b.channel("c", s, u, ChannelKind::Blackboard);
        b.priority(s, u);
        let (net, bank) = b.build().unwrap();
        let mut stimuli = Stimuli::new();
        stimuli.arrivals(s, SporadicTrace::new(vec![ms(0), ms(10)]));
        let mut behaviors = bank.instantiate();
        let err = run_zero_delay(&net, &mut behaviors, &stimuli, ms(2000), JobOrdering::default());
        assert!(matches!(err, Err(SemanticsError::Network(_))));
    }
}
