//! Sharded data-plane stores for parallel behavior execution.
//!
//! [`ExecState`](crate::ExecState) funnels every job's data effects through
//! one `&mut` store, which serializes behavior execution no matter how the
//! surrounding scheduler/simulator parallelizes. The paper's own model makes
//! the data plane shardable: Def. 2.1 gives every channel **exactly one
//! writer and one reader**, so the channel graph is a Kahn-style ownership
//! structure in which jobs touching disjoint channel sets commute.
//!
//! This module splits the store along process boundaries:
//!
//! * each [`ProcessShard`] owns its process's job counter, external-output
//!   log, trace fragment, the full [`ChannelState`] of every **self-loop**
//!   channel of the process, and a private staging buffer for the channels
//!   it writes;
//! * each cross-process channel lives in the [`SharedChannels`] table as an
//!   append-only write log, segmented by writer job: the writer commits its
//!   staged writes at job end and records the cumulative write count, so a
//!   reader that knows *how many writer jobs precede it* in the canonical
//!   execution order can reconstruct exactly the FIFO/blackboard contents
//!   the sequential executor would have observed — independent of how far
//!   the writer has raced ahead physically.
//!
//! The synchronization protocol (who may read when) is the executor's
//! business — `fppn-sim` rendezvouses on per-process progress counters —
//! but the *determinism* argument lives here: every read depends only on
//! `(visible writer-job count, reader-local cursor, committed log prefix)`,
//! all of which are functions of the canonical order, not of thread timing.
//!
//! Bounded-capacity FIFOs between distinct processes are the one construct
//! that cannot shard: the full-queue panic depends on how many samples the
//! reader has already popped, which a decoupled writer cannot know. Use
//! [`SharedChannels::supports`] to detect such networks and fall back to the
//! sequential store (self-loop capacities are fine — they stay shard-local).

use std::collections::BTreeMap;
use std::sync::Mutex;

use fppn_time::TimeQ;

use crate::channel::{ChannelKind, ChannelState};
use crate::error::ExecError;
use crate::exec::Stimuli;
use crate::ids::{ChannelId, PortId, ProcessId};
use crate::network::Fppn;
use crate::process::{BoxedBehavior, DataAccess, JobCtx};
use crate::trace::{Action, JobRun, Observables, Trace};
use crate::value::Value;

/// Append-only write log of one cross-process channel, segmented by
/// committed writer job.
#[derive(Debug, Default)]
struct ChannelLog {
    /// Every write, in writer-job order (within a job: program order).
    values: Vec<Value>,
    /// `job_end[j]` = total writes after the writer's `(j+1)`-th executed
    /// job committed. One entry per executed writer job, even write-free
    /// ones, so a reader can translate "first `J` writer jobs" into a
    /// value-prefix length.
    job_end: Vec<usize>,
}

impl ChannelLog {
    /// Writes visible to a reader once the writer's first `visible_jobs`
    /// executed jobs have committed.
    fn visible_writes(&self, visible_jobs: u64) -> usize {
        if visible_jobs == 0 {
            0
        } else {
            self.job_end[visible_jobs as usize - 1]
        }
    }
}

/// The shared half of the sharded store: one lock-protected append-only
/// log per cross-process channel (self-loop channels stay shard-local).
///
/// Lock contention is per channel and involves exactly two parties — the
/// unique writer (one short batch append per job) and the unique reader.
pub struct SharedChannels {
    /// Indexed by [`ChannelId`]; `None` for self-loop channels.
    logs: Vec<Option<Mutex<ChannelLog>>>,
}

impl SharedChannels {
    /// Whether a network's data plane can shard: every bounded-capacity
    /// FIFO must be a self-loop (see the module docs for why). Capacity
    /// bounds on blackboards are irrelevant — [`ChannelState`] documents
    /// and implements them as ignored — so they do not block sharding.
    pub fn supports(net: &Fppn) -> bool {
        net.channels().iter().all(|c| {
            c.kind() != ChannelKind::Fifo || c.capacity().is_none() || c.is_self_loop()
        })
    }

    /// Creates the shared channel table for a network.
    ///
    /// # Panics
    ///
    /// Panics if [`SharedChannels::supports`] is false for `net`; callers
    /// gate on it and fall back to the sequential store.
    pub fn new(net: &Fppn) -> Self {
        assert!(
            Self::supports(net),
            "bounded-capacity cross-process FIFOs cannot shard; \
             check SharedChannels::supports before constructing"
        );
        SharedChannels {
            logs: net
                .channels()
                .iter()
                .map(|c| (!c.is_self_loop()).then(|| Mutex::new(ChannelLog::default())))
                .collect(),
        }
    }

    fn log(&self, ch: ChannelId) -> &Mutex<ChannelLog> {
        self.logs[ch.index()]
            .as_ref()
            .expect("self-loop channels are shard-local, not shared")
    }

    /// Drains the per-channel write logs (self-loops `None`). Called once
    /// at merge time, after every writer committed its last job.
    fn drain_logs(&self) -> Vec<Option<Vec<Value>>> {
        self.logs
            .iter()
            .map(|l| {
                l.as_ref().map(|m| {
                    std::mem::take(&mut m.lock().expect("channel log lock poisoned").values)
                })
            })
            .collect()
    }
}

/// A shard's relationship to one channel.
#[derive(Debug, Clone, Copy)]
enum ChannelRole {
    /// Self-loop: full sequential semantics, shard-local state + log.
    Local(usize),
    /// Cross-process channel this shard reads: index into the cursor table.
    ReadShared(usize),
    /// Cross-process channel this shard writes: index into the staging table.
    WriteShared(usize),
}

/// One entry of a shard's read table.
#[derive(Debug)]
struct ReadEntry {
    ch: ChannelId,
    kind: ChannelKind,
    initial: Option<Value>,
    /// FIFO pop cursor over `[initial…] ++ shared log` (unused for
    /// blackboards).
    cursor: usize,
    /// Executed writer jobs visible to the *current* job of this shard
    /// (set by [`ProcessShard::begin_job`]).
    visible_jobs: u64,
}

/// The per-process half of the sharded store.
///
/// Implements [`DataAccess`] for exactly one process: behaviors run against
/// it unchanged. Jobs are bracketed by [`ProcessShard::begin_job`] /
/// commit inside [`ProcessShard::run_job`]; the executor must not begin a
/// job before the visibility contract holds (every channel's writer has
/// *committed* at least the job's `visible_jobs`).
pub struct ProcessShard<'n> {
    net: &'n Fppn,
    stimuli: &'n Stimuli,
    shared: &'n SharedChannels,
    pid: ProcessId,
    /// Per-channel roles, indexed by `ChannelId` (only this process's
    /// channels are populated).
    roles: BTreeMap<u32, ChannelRole>,
    /// Cross-process channels this process reads, `ChannelId`-ascending.
    reads: Vec<ReadEntry>,
    /// Cross-process channels this process writes, `ChannelId`-ascending,
    /// with the staged (uncommitted) writes of the current job.
    writes: Vec<(ChannelId, Vec<Value>)>,
    /// Self-loop channels: live state plus the shard-local write log.
    local: Vec<(ChannelId, ChannelState, Vec<Value>)>,
    outputs: BTreeMap<(ProcessId, PortId), Vec<(u64, Value)>>,
    executed: u64,
    current_k: u64,
    trace: Option<Vec<JobRun>>,
    current_actions: Vec<Action>,
}

impl<'n> ProcessShard<'n> {
    fn new(net: &'n Fppn, stimuli: &'n Stimuli, shared: &'n SharedChannels, pid: ProcessId) -> Self {
        let mut roles = BTreeMap::new();
        let mut reads = Vec::new();
        let mut writes = Vec::new();
        let mut local = Vec::new();
        // Channel ids ascend, so each role table is ChannelId-sorted.
        for (i, spec) in net.channels().iter().enumerate() {
            let ch = ChannelId::from_index(i);
            if spec.is_self_loop() {
                if spec.writer() == pid {
                    roles.insert(ch.index() as u32, ChannelRole::Local(local.len()));
                    local.push((ch, ChannelState::new(spec), Vec::new()));
                }
                continue;
            }
            if spec.reader() == pid {
                roles.insert(ch.index() as u32, ChannelRole::ReadShared(reads.len()));
                reads.push(ReadEntry {
                    ch,
                    kind: spec.kind(),
                    initial: spec.initial().cloned(),
                    cursor: 0,
                    visible_jobs: 0,
                });
            }
            if spec.writer() == pid {
                roles.insert(ch.index() as u32, ChannelRole::WriteShared(writes.len()));
                writes.push((ch, Vec::new()));
            }
        }
        ProcessShard {
            net,
            stimuli,
            shared,
            pid,
            roles,
            reads,
            writes,
            local,
            outputs: BTreeMap::new(),
            executed: 0,
            current_k: 0,
            trace: None,
            current_actions: Vec::new(),
        }
    }

    /// Enables trace recording on this shard (mirrors
    /// [`ExecState::record_trace`](crate::ExecState::record_trace)).
    #[must_use]
    pub fn record_trace(mut self) -> Self {
        self.trace = Some(Vec::new());
        self
    }

    /// The process this shard owns.
    pub fn process(&self) -> ProcessId {
        self.pid
    }

    /// Jobs executed so far.
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// The cross-process channels this shard reads, `ChannelId`-ascending —
    /// the order in which [`ProcessShard::run_job`] expects per-channel
    /// visibility counts.
    pub fn read_channels(&self) -> impl Iterator<Item = ChannelId> + '_ {
        self.reads.iter().map(|r| r.ch)
    }

    fn begin_job(&mut self, k: u64, visible_jobs: &[u64]) {
        assert_eq!(
            k,
            self.executed + 1,
            "job {}[{k}] executed out of order (expected k = {})",
            self.net.process(self.pid).name(),
            self.executed + 1
        );
        assert_eq!(
            visible_jobs.len(),
            self.reads.len(),
            "visibility counts must align with read_channels()"
        );
        for (entry, &v) in self.reads.iter_mut().zip(visible_jobs) {
            debug_assert!(v >= entry.visible_jobs, "visibility is monotone");
            entry.visible_jobs = v;
        }
        self.current_k = k;
        self.current_actions.clear();
    }

    /// Commits the current job: staged cross-process writes are appended to
    /// the shared logs (one `job_end` mark per written channel), and the
    /// job counter advances. After this returns — and only after — the
    /// executor may publish this shard's progress to readers.
    fn commit_job(&mut self, invoked_at: TimeQ) {
        for (ch, staged) in self.writes.iter_mut() {
            let mut log = self
                .shared
                .log(*ch)
                .lock()
                .expect("channel log lock poisoned");
            log.values.append(staged);
            let end = log.values.len();
            log.job_end.push(end);
        }
        self.executed = self.current_k;
        if let Some(trace) = &mut self.trace {
            trace.push(JobRun {
                process: self.pid,
                k: self.current_k,
                invoked_at,
                actions: std::mem::take(&mut self.current_actions),
            });
        }
    }

    /// Runs job `p[k]` at timestamp `now`, with `visible_jobs[i]` committed
    /// writer jobs visible on the `i`-th channel of
    /// [`ProcessShard::read_channels`].
    ///
    /// `k` must be exactly one past the jobs already executed (same-process
    /// precedence), and the executor must guarantee each read channel's
    /// writer has committed at least `visible_jobs[i]` jobs before calling.
    ///
    /// # Errors
    ///
    /// Propagates behavior failures; the job is still committed (matching
    /// the sequential executor, which logs the partial actions of a failed
    /// job before surfacing the error).
    ///
    /// # Panics
    ///
    /// Panics on out-of-order `k` or endpoint-ownership violations — caller
    /// logic bugs, not recoverable conditions.
    pub fn run_job(
        &mut self,
        behavior: &mut BoxedBehavior,
        k: u64,
        now: TimeQ,
        visible_jobs: &[u64],
    ) -> Result<(), ExecError> {
        self.begin_job(k, visible_jobs);
        let pid = self.pid;
        let result = {
            let mut ctx = JobCtx::new(self, pid, k, now);
            behavior.on_job(&mut ctx)
        };
        self.commit_job(now);
        result
    }

    fn role(&self, ch: ChannelId) -> Option<ChannelRole> {
        self.roles.get(&(ch.index() as u32)).copied()
    }
}

impl DataAccess for ProcessShard<'_> {
    fn read_channel(&mut self, pid: ProcessId, ch: ChannelId) -> Option<Value> {
        let spec = self.net.channel(ch);
        assert!(
            spec.reader() == pid && pid == self.pid,
            "process {} read from channel {:?} whose reader is {}",
            self.net.process(pid).name(),
            spec.name(),
            self.net.process(spec.reader()).name()
        );
        let v = match self.role(ch) {
            Some(ChannelRole::Local(i)) => self.local[i].1.read(),
            Some(ChannelRole::ReadShared(i)) => {
                let entry = &mut self.reads[i];
                let log = self
                    .shared
                    .log(ch)
                    .lock()
                    .expect("channel log lock poisoned");
                let visible = log.visible_writes(entry.visible_jobs);
                match entry.kind {
                    ChannelKind::Fifo => {
                        // Conceptual queue = [initial…] ++ visible log
                        // prefix; the cursor counts this reader's pops.
                        let init = usize::from(entry.initial.is_some());
                        if entry.cursor < init {
                            entry.cursor += 1;
                            entry.initial.clone()
                        } else if entry.cursor - init < visible {
                            let v = log.values[entry.cursor - init].clone();
                            entry.cursor += 1;
                            Some(v)
                        } else {
                            None
                        }
                    }
                    ChannelKind::Blackboard => {
                        if visible > 0 {
                            Some(log.values[visible - 1].clone())
                        } else {
                            entry.initial.clone()
                        }
                    }
                }
            }
            _ => unreachable!("reader role exists for every read endpoint"),
        };
        if self.trace.is_some() {
            self.current_actions.push(Action::Read {
                channel: ch,
                value: v.clone(),
            });
        }
        v
    }

    fn write_channel(&mut self, pid: ProcessId, ch: ChannelId, value: Value) {
        let spec = self.net.channel(ch);
        assert!(
            spec.writer() == pid && pid == self.pid,
            "process {} wrote to channel {:?} whose writer is {}",
            self.net.process(pid).name(),
            spec.name(),
            self.net.process(spec.writer()).name()
        );
        if self.trace.is_some() {
            self.current_actions.push(Action::Write {
                channel: ch,
                value: value.clone(),
            });
        }
        match self.role(ch) {
            Some(ChannelRole::Local(i)) => {
                let (_, state, local_log) = &mut self.local[i];
                state.write(value.clone());
                local_log.push(value);
            }
            Some(ChannelRole::WriteShared(i)) => self.writes[i].1.push(value),
            _ => unreachable!("writer role exists for every write endpoint"),
        }
    }

    fn read_external(&mut self, pid: ProcessId, port: PortId, k: u64) -> Option<Value> {
        assert!(
            port.index() < self.net.process(pid).input_ports().len(),
            "process {} read from undeclared input {port}",
            self.net.process(pid).name()
        );
        let v = self.stimuli.input_sample_ref(pid, port, k).cloned();
        if self.trace.is_some() {
            self.current_actions.push(Action::ReadInput {
                port,
                k,
                value: v.clone(),
            });
        }
        v
    }

    fn write_external(&mut self, pid: ProcessId, port: PortId, k: u64, value: Value) {
        assert!(
            port.index() < self.net.process(pid).output_ports().len(),
            "process {} wrote to undeclared output {port}",
            self.net.process(pid).name()
        );
        if self.trace.is_some() {
            self.current_actions.push(Action::WriteOutput {
                port,
                k,
                value: value.clone(),
            });
        }
        self.outputs.entry((pid, port)).or_default().push((k, value));
    }
}

/// Coordinator for one sharded execution: builds the shard set and merges
/// the shard-local results back into the canonical [`Observables`] /
/// [`Trace`] shape the sequential executor produces.
pub struct ShardedExec<'n> {
    net: &'n Fppn,
    shared: SharedChannels,
}

impl<'n> ShardedExec<'n> {
    /// Creates the coordinator (panics if [`SharedChannels::supports`] is
    /// false for `net`; gate on it first).
    pub fn new(net: &'n Fppn) -> Self {
        ShardedExec {
            shared: SharedChannels::new(net),
            net,
        }
    }

    /// Builds one shard per process. Shards borrow the coordinator's shared
    /// channel table; each is `Send` and meant to move to a worker.
    pub fn shards<'s>(&'s self, stimuli: &'s Stimuli) -> Vec<ProcessShard<'s>> {
        self.net
            .process_ids()
            .map(|pid| ProcessShard::new(self.net, stimuli, &self.shared, pid))
            .collect()
    }

    /// Merges the shards back into sequential-shaped observables, plus the
    /// merged [`Trace`] when `canonical` is given and the shards recorded
    /// traces. `canonical` is the executed-job process sequence in
    /// canonical order; shard trace fragments are interleaved along it.
    ///
    /// # Panics
    ///
    /// Panics if a shard is missing or duplicated, or if `canonical`
    /// disagrees with the shards' executed-job counts.
    pub fn merge(
        &self,
        shards: Vec<ProcessShard<'_>>,
        canonical: Option<&[ProcessId]>,
    ) -> (Observables, Option<Trace>) {
        let n = self.net.process_count();
        assert_eq!(shards.len(), n, "one shard per process required");
        let mut by_pid: Vec<Option<ProcessShard<'_>>> = (0..n).map(|_| None).collect();
        for s in shards {
            let slot = &mut by_pid[s.pid.index()];
            assert!(slot.replace(s).is_none(), "duplicate shard");
        }
        let mut shards: Vec<ProcessShard<'_>> =
            by_pid.into_iter().map(|s| s.expect("missing shard")).collect();

        // Channels: shared logs are already in writer-job (= canonical
        // write) order; self-loop logs come from the owning shard.
        let mut channels: Vec<Vec<Value>> = self
            .shared
            .drain_logs()
            .into_iter()
            .map(|l| l.unwrap_or_default())
            .collect();
        for shard in &mut shards {
            for (ch, _, local_log) in shard.local.iter_mut() {
                channels[ch.index()] = std::mem::take(local_log);
            }
        }

        // Outputs: per-process maps have disjoint keys; a BTreeMap union
        // yields the canonical sorted OutputLog.
        let mut outputs: BTreeMap<(ProcessId, PortId), Vec<(u64, Value)>> = BTreeMap::new();
        for shard in &mut shards {
            outputs.append(&mut shard.outputs);
        }

        // Trace: interleave per-shard fragments along the canonical order.
        let trace = canonical.and_then(|order| {
            let mut fragments: Vec<Option<std::vec::IntoIter<JobRun>>> = shards
                .iter_mut()
                .map(|s| s.trace.take().map(|t| t.into_iter()))
                .collect();
            if fragments.iter().any(Option::is_none) {
                return None;
            }
            let mut merged = Trace::new();
            for &pid in order {
                let run = fragments[pid.index()]
                    .as_mut()
                    .and_then(Iterator::next)
                    .expect("canonical order exceeds a shard's executed jobs");
                merged.push(run);
            }
            assert!(
                fragments.iter_mut().all(|f| f.as_mut().unwrap().next().is_none()),
                "canonical order missing executed jobs"
            );
            Some(merged)
        });

        (
            Observables {
                channels,
                outputs: outputs.into_iter().collect(),
            },
            trace,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::ChannelKind;
    use crate::event::EventSpec;
    use crate::exec::ExecState;
    use crate::network::{BehaviorBank, FppnBuilder};
    use crate::process::ProcessSpec;

    fn ms(v: i64) -> TimeQ {
        TimeQ::from_ms(v)
    }

    /// src --fifo--> mid --blackboard--> dst, plus a self-loop accumulator
    /// on mid and an external output on dst.
    fn app() -> (Fppn, BehaviorBank, [ChannelId; 3]) {
        let mut b = FppnBuilder::new();
        let src = b.process(ProcessSpec::new("src", EventSpec::periodic(ms(100))));
        let mid = b.process(ProcessSpec::new("mid", EventSpec::periodic(ms(100))));
        let dst =
            b.process(ProcessSpec::new("dst", EventSpec::periodic(ms(100))).with_output("o"));
        let c1 = b.channel("c1", src, mid, ChannelKind::Fifo);
        let state = b.channel_spec(
            crate::channel::ChannelSpec::new("state", mid, mid, ChannelKind::Blackboard)
                .with_initial(Value::Int(100)),
        );
        let c2 = b.channel("c2", mid, dst, ChannelKind::Blackboard);
        b.priority(src, mid);
        b.priority(mid, dst);
        b.behavior(src, move || {
            Box::new(move |ctx: &mut JobCtx<'_>| {
                ctx.write(c1, Value::Int(ctx.k() as i64));
                ctx.write(c1, Value::Int(-(ctx.k() as i64)));
            })
        });
        b.behavior(mid, move || {
            Box::new(move |ctx: &mut JobCtx<'_>| {
                let mut acc = match ctx.read(state) {
                    Some(Value::Int(a)) => a,
                    _ => 0,
                };
                while let Some(Value::Int(v)) = ctx.read(c1) {
                    acc += v * 3;
                }
                ctx.write(state, Value::Int(acc + 1));
                ctx.write(c2, Value::Int(acc));
            })
        });
        b.behavior(dst, move || {
            Box::new(move |ctx: &mut JobCtx<'_>| {
                let v = ctx.read_value(c2);
                ctx.write_output(PortId::from_index(0), v);
            })
        });
        let (net, bank) = b.build().unwrap();
        (net, bank, [c1, state, c2])
    }

    /// Runs the same job sequence through ExecState and through shards with
    /// the sequentially-exact visibility counts, and compares everything.
    #[test]
    fn shards_replay_the_sequential_execution_bit_identically() {
        let (net, bank, _) = app();
        let src = net.process_by_name("src").unwrap();
        let mid = net.process_by_name("mid").unwrap();
        let dst = net.process_by_name("dst").unwrap();
        // Canonical order with interleavings that exercise FIFO backlog
        // (src runs twice before mid) and blackboard staleness.
        let order = [src, src, mid, dst, src, mid, mid, dst, dst];

        let mut behaviors = bank.instantiate();
        let stimuli = Stimuli::new();
        let mut seq = ExecState::new(&net, &stimuli).record_trace();
        for (i, &pid) in order.iter().enumerate() {
            seq.run_next_job(&mut behaviors, pid, ms(i as i64))
                .unwrap_or_else(|e| panic!("sequential job {i} ({:?}) failed: {e}", pid));
        }

        let stimuli = Stimuli::new();
        let exec = ShardedExec::new(&net);
        let mut shards: Vec<ProcessShard<'_>> = exec
            .shards(&stimuli)
            .into_iter()
            .map(ProcessShard::record_trace)
            .collect();
        let mut behaviors = bank.instantiate();
        let mut executed = vec![0u64; net.process_count()];
        for (i, &pid) in order.iter().enumerate() {
            // Visibility = executed jobs of each read channel's writer so
            // far in the canonical prefix — exactly the rendezvous target.
            let visible: Vec<u64> = shards[pid.index()]
                .read_channels()
                .map(|ch| executed[net.channel(ch).writer().index()])
                .collect();
            executed[pid.index()] += 1;
            let k = executed[pid.index()];
            shards[pid.index()]
                .run_job(&mut behaviors[pid.index()], k, ms(i as i64), &visible)
                .unwrap();
        }
        let (obs, trace) = exec.merge(shards, Some(&order));
        assert_eq!(seq.observables().diff(&obs), None);
        assert_eq!(seq.observables(), obs);
        assert_eq!(seq.trace(), trace.as_ref());
    }

    /// A reader whose writer raced ahead must still see only its visible
    /// prefix — the crux of out-of-(wall-clock-)order determinism.
    #[test]
    fn visibility_prefix_hides_raced_ahead_writes() {
        let (net, bank, _) = app();
        let src = net.process_by_name("src").unwrap();
        let mid = net.process_by_name("mid").unwrap();
        let stimuli = Stimuli::new();
        let exec = ShardedExec::new(&net);
        let mut shards = exec.shards(&stimuli);
        let mut behaviors = bank.instantiate();
        // src races 3 jobs ahead.
        for k in 1..=3 {
            shards[src.index()]
                .run_job(&mut behaviors[src.index()], k, ms(0), &[])
                .unwrap();
        }
        // mid's first job is canonically ordered after only src[1]: it must
        // drain exactly src[1]'s two samples (1, -1), not all six.
        // acc = 100 + 1*3 + (-1)*3 = 100; state := 101; c2 := 100.
        shards[mid.index()]
            .run_job(&mut behaviors[mid.index()], 1, ms(0), &[1])
            .unwrap();
        let (obs, _) = exec.merge(shards, None);
        let c2 = net.channel_by_name("c2").unwrap();
        assert_eq!(obs.channels[c2.index()], vec![Value::Int(100)]);
    }

    #[test]
    fn supports_rejects_bounded_cross_process_fifos_only() {
        let mut b = FppnBuilder::new();
        let a = b.process(ProcessSpec::new("a", EventSpec::periodic(ms(1))));
        let c = b.process(ProcessSpec::new("c", EventSpec::periodic(ms(1))));
        b.channel_spec(
            crate::channel::ChannelSpec::new("x", a, c, ChannelKind::Fifo)
                .with_capacity(std::num::NonZeroUsize::new(2).unwrap()),
        );
        b.priority(a, c);
        let (net, _) = b.build().unwrap();
        assert!(!SharedChannels::supports(&net));

        let mut b = FppnBuilder::new();
        let a = b.process(ProcessSpec::new("a", EventSpec::periodic(ms(1))));
        b.channel_spec(
            crate::channel::ChannelSpec::new("loop", a, a, ChannelKind::Fifo)
                .with_capacity(std::num::NonZeroUsize::new(2).unwrap()),
        );
        let (net, _) = b.build().unwrap();
        assert!(SharedChannels::supports(&net));

        // A capacity on a cross-process *blackboard* is ignored by
        // ChannelState and must not disable sharding.
        let mut b = FppnBuilder::new();
        let a = b.process(ProcessSpec::new("a", EventSpec::periodic(ms(1))));
        let c = b.process(ProcessSpec::new("c", EventSpec::periodic(ms(1))));
        b.channel_spec(
            crate::channel::ChannelSpec::new("bb", a, c, ChannelKind::Blackboard)
                .with_capacity(std::num::NonZeroUsize::new(2).unwrap()),
        );
        b.priority(a, c);
        let (net, _) = b.build().unwrap();
        assert!(SharedChannels::supports(&net));
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn out_of_order_job_panics() {
        let (net, bank, _) = app();
        let src = net.process_by_name("src").unwrap();
        let stimuli = Stimuli::new();
        let exec = ShardedExec::new(&net);
        let mut shards = exec.shards(&stimuli);
        let mut behaviors = bank.instantiate();
        let _ = shards[src.index()].run_job(&mut behaviors[src.index()], 2, ms(0), &[]);
    }
}
