//! Compact value interning: [`ValueId`] handles over a hash-consing
//! [`ValuePool`].
//!
//! The execution hot paths (channel-write logs, trace action records) used
//! to store full [`Value`] clones in nested `Vec<Vec<Value>>` structures.
//! Interning replaces each stored value by a 4-byte id: trivially small
//! scalars (`Absent`, `Unit`, booleans and small integers) are tagged
//! *inline* in the id space and never touch the pool at all, while
//! everything else is hash-consed into one arena so repeated values are
//! stored once.
//!
//! Id layout (most ids are inline — FPPN behaviors overwhelmingly exchange
//! small integers and unit tokens):
//!
//! ```text
//! 0x0000_0000 .. 0xF000_0000   pool indices (arena slots)
//! 0xF000_0000 .. 0xFFFF_FFF8   inline Int(v), v in [-2^27, 2^27 - 8)
//! 0xFFFF_FFFC                  inline Bool(true)
//! 0xFFFF_FFFD                  inline Bool(false)
//! 0xFFFF_FFFE                  inline Unit
//! 0xFFFF_FFFF                  inline Absent
//! ```
//!
//! Within one pool, id equality is value equality: equal values always take
//! the same encoding path (the inline predicate is deterministic and the
//! pool deduplicates), so two ids from the same pool compare equal iff the
//! values they denote are equal — the property the round-trip proptests
//! pin.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

use crate::value::Value;

/// Compact handle to an interned [`Value`]; resolve it against the
/// [`ValuePool`] that produced it (see the module docs for the encoding).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ValueId(u32);

/// First id above the pool-index range; inline encodings live at or above
/// this, so the pool can hold at most `SMALL_INT_BASE` distinct values.
const SMALL_INT_BASE: u32 = 0xF000_0000;
/// Bias added to an inline integer: id = `SMALL_INT_BASE + (v + BIAS)`.
const SMALL_INT_BIAS: i64 = 1 << 27;
/// Exclusive upper bound of the inline-int payload range (the top eight
/// slots of the id space are reserved for the scalar tags below).
const SMALL_INT_SPAN: i64 = (1 << 28) - 8;
const ID_TRUE: u32 = u32::MAX - 3;
const ID_FALSE: u32 = u32::MAX - 2;
const ID_UNIT: u32 = u32::MAX - 1;
const ID_ABSENT: u32 = u32::MAX;

impl ValueId {
    /// The inline encoding of a value, if it has one. Deterministic, so
    /// equal values either both encode inline (to equal ids) or both pool.
    fn inline(v: &Value) -> Option<ValueId> {
        match *v {
            Value::Absent => Some(ValueId(ID_ABSENT)),
            Value::Unit => Some(ValueId(ID_UNIT)),
            Value::Bool(b) => Some(ValueId(if b { ID_TRUE } else { ID_FALSE })),
            Value::Int(i) => {
                let biased = i.checked_add(SMALL_INT_BIAS)?;
                if (0..SMALL_INT_SPAN).contains(&biased) {
                    Some(ValueId(SMALL_INT_BASE + biased as u32))
                } else {
                    None
                }
            }
            _ => None,
        }
    }

    /// Whether this id is an inline-tagged scalar (no pool slot).
    pub fn is_inline(self) -> bool {
        self.0 >= SMALL_INT_BASE
    }
}

/// Hash-consing arena for non-inline [`Value`]s.
///
/// [`ValuePool::intern`] maps equal values to equal [`ValueId`]s and stores
/// each distinct value once; [`ValuePool::resolve`] maps ids back. The
/// index maps a value's hash to the candidate arena slots with that hash,
/// so lookups never clone and insertion clones a new value exactly once.
#[derive(Debug, Clone, Default)]
pub struct ValuePool {
    values: Vec<Value>,
    index: HashMap<u64, Vec<u32>>,
}

fn hash_value(v: &Value) -> u64 {
    let mut h = DefaultHasher::new();
    v.hash(&mut h);
    h.finish()
}

impl ValuePool {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// The number of pooled (non-inline) distinct values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether no values have been pooled (inline ids need no pool).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The arena slot holding an already-interned value, if the value is
    /// not inline-encodable and has been seen before.
    fn lookup(&self, v: &Value, hash: u64) -> Option<u32> {
        self.index
            .get(&hash)?
            .iter()
            .copied()
            .find(|&i| self.values[i as usize] == *v)
    }

    fn insert(&mut self, v: Value, hash: u64) -> ValueId {
        let slot = u32::try_from(self.values.len()).expect("value pool overflow");
        assert!(slot < SMALL_INT_BASE, "value pool overflow");
        self.values.push(v);
        self.index.entry(hash).or_default().push(slot);
        ValueId(slot)
    }

    /// Interns by reference: inline scalars never touch the pool, known
    /// values return their existing id, and only a genuinely new value is
    /// cloned into the arena.
    pub fn intern(&mut self, v: &Value) -> ValueId {
        if let Some(id) = ValueId::inline(v) {
            return id;
        }
        let hash = hash_value(v);
        match self.lookup(v, hash) {
            Some(slot) => ValueId(slot),
            None => self.insert(v.clone(), hash),
        }
    }

    /// Interns an owned value: like [`ValuePool::intern`] but a new value
    /// is moved into the arena instead of cloned.
    pub fn intern_owned(&mut self, v: Value) -> ValueId {
        if let Some(id) = ValueId::inline(&v) {
            return id;
        }
        let hash = hash_value(&v);
        match self.lookup(&v, hash) {
            Some(slot) => ValueId(slot),
            None => self.insert(v, hash),
        }
    }

    /// Materializes the value an id denotes. Inline ids decode without
    /// touching the pool; pooled ids clone their arena slot.
    ///
    /// # Panics
    ///
    /// Panics if a pooled id is out of range for this pool (an id from a
    /// different pool).
    pub fn resolve(&self, id: ValueId) -> Value {
        match id.0 {
            ID_ABSENT => Value::Absent,
            ID_UNIT => Value::Unit,
            ID_FALSE => Value::Bool(false),
            ID_TRUE => Value::Bool(true),
            i if i >= SMALL_INT_BASE => {
                Value::Int(i64::from(i - SMALL_INT_BASE) - SMALL_INT_BIAS)
            }
            i => self.values[i as usize].clone(),
        }
    }

    /// The pooled value behind an id, by reference (`None` for inline ids).
    fn pooled(&self, id: ValueId) -> Option<&Value> {
        (!id.is_inline()).then(|| &self.values[id.0 as usize])
    }

    /// Whether `id` (from this pool) and `other_id` (from `other`) denote
    /// equal values — the cross-pool equality used when comparing traces
    /// assembled by different executors.
    pub fn value_eq(&self, id: ValueId, other: &ValuePool, other_id: ValueId) -> bool {
        match (self.pooled(id), other.pooled(other_id)) {
            // Both inline: the encoding is injective, compare ids directly.
            (None, None) => id == other_id,
            (Some(a), Some(b)) => a == b,
            // Mixed inline/pooled can only mean unequal values (the inline
            // predicate is deterministic), but compare anyway for clarity.
            (Some(a), None) => *a == other.resolve(other_id),
            (None, Some(b)) => self.resolve(id) == *b,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fppn_time::TimeQ;

    #[test]
    fn inline_scalars_bypass_the_pool() {
        let mut pool = ValuePool::new();
        for v in [
            Value::Absent,
            Value::Unit,
            Value::Bool(true),
            Value::Bool(false),
            Value::Int(0),
            Value::Int(-7),
            Value::Int(123_456),
        ] {
            let id = pool.intern(&v);
            assert!(id.is_inline(), "{v:?} should be inline");
            assert_eq!(pool.resolve(id), v);
        }
        assert!(pool.is_empty());
    }

    #[test]
    fn huge_ints_and_structured_values_pool_and_dedupe() {
        let mut pool = ValuePool::new();
        let vals = [
            Value::Int(i64::MAX),
            Value::Int(i64::MIN),
            Value::Float(1.5),
            Value::Time(TimeQ::from_ms(250)),
            Value::Str("hello".into()),
            Value::List(vec![Value::Int(1), Value::Str("x".into())]),
        ];
        let ids: Vec<ValueId> = vals.iter().map(|v| pool.intern(v)).collect();
        assert_eq!(pool.len(), vals.len());
        // Re-interning returns the same ids and grows nothing.
        for (v, &id) in vals.iter().zip(&ids) {
            assert_eq!(pool.intern(v), id);
            assert_eq!(pool.intern_owned(v.clone()), id);
            assert_eq!(pool.resolve(id), *v);
        }
        assert_eq!(pool.len(), vals.len());
    }

    #[test]
    fn id_equality_is_value_equality_within_a_pool() {
        let mut pool = ValuePool::new();
        let a = pool.intern(&Value::Str("a".into()));
        let b = pool.intern(&Value::Str("b".into()));
        let a2 = pool.intern(&Value::Str("a".into()));
        assert_eq!(a, a2);
        assert_ne!(a, b);
    }

    #[test]
    fn cross_pool_value_eq() {
        let mut p1 = ValuePool::new();
        let mut p2 = ValuePool::new();
        // Different interning orders give different slot numbers...
        let x1 = p1.intern(&Value::Str("x".into()));
        let _pad = p2.intern(&Value::Str("pad".into()));
        let x2 = p2.intern(&Value::Str("x".into()));
        assert_ne!(x1, x2);
        // ...but cross-pool comparison sees through the ids.
        assert!(p1.value_eq(x1, &p2, x2));
        assert!(!p1.value_eq(x1, &p2, _pad));
        // Inline ids compare across pools too.
        let i1 = p1.intern(&Value::Int(42));
        let i2 = p2.intern(&Value::Int(42));
        assert!(p1.value_eq(i1, &p2, i2));
    }

    #[test]
    fn float_values_intern_by_bits() {
        let mut pool = ValuePool::new();
        let nz = pool.intern(&Value::Float(-0.0));
        let pz = pool.intern(&Value::Float(0.0));
        // Value's Eq is bitwise for floats, so -0.0 and 0.0 are distinct.
        assert_ne!(nz, pz);
        let nan = pool.intern(&Value::Float(f64::NAN));
        assert_eq!(pool.intern(&Value::Float(f64::NAN)), nan);
    }
}
