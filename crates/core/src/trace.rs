//! Execution traces and observable outputs (Prop. 2.1).
//!
//! A trace is the sequence `w(t1) ∘ α1 ∘ w(t2) ∘ α2 …` of §II-A: waits
//! interleaved with job execution runs, each run being a sequence of
//! zero-delay actions. The *observables* — per-channel write sequences and
//! per-external-output sample sequences — are what Prop. 2.1 declares to be
//! a function of input data and event timestamps; equality of observables
//! across execution platforms is this workspace's determinism criterion.

use std::fmt;

use fppn_time::TimeQ;

use crate::ids::{ChannelId, PortId, ProcessId};
use crate::value::Value;

/// One zero-delay action inside a job execution run (`Act` in §II-A).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    /// `x?c`: read from an internal channel (`None` = non-availability).
    Read {
        /// Channel read from.
        channel: ChannelId,
        /// Observed value, if present.
        value: Option<Value>,
    },
    /// `x!c`: write to an internal channel.
    Write {
        /// Channel written to.
        channel: ChannelId,
        /// Written value.
        value: Value,
    },
    /// `x?[k]I`: read sample `k` from an external input port.
    ReadInput {
        /// Port read from.
        port: PortId,
        /// Sample index (1-based job count).
        k: u64,
        /// Observed value, if the stream provided one.
        value: Option<Value>,
    },
    /// `x![k]O`: write sample `k` to an external output port.
    WriteOutput {
        /// Port written to.
        port: PortId,
        /// Sample index (1-based job count).
        k: u64,
        /// Written value.
        value: Value,
    },
}

/// One job execution run: the actions of the `k`-th job of a process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobRun {
    /// The process the job belongs to.
    pub process: ProcessId,
    /// The 1-based invocation count.
    pub k: u64,
    /// The invocation timestamp (zero-delay: also the execution time).
    pub invoked_at: TimeQ,
    /// Actions performed, in order.
    pub actions: Vec<Action>,
}

/// A full execution trace: job runs in execution order, with their
/// timestamps (the `w(t)` waits are implicit in `invoked_at`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    runs: Vec<JobRun>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a job run.
    pub fn push(&mut self, run: JobRun) {
        self.runs.push(run);
    }

    /// The recorded job runs, in execution order.
    pub fn runs(&self) -> &[JobRun] {
        &self.runs
    }

    /// The number of recorded job runs.
    pub fn len(&self) -> usize {
        self.runs.len()
    }

    /// Whether no jobs were recorded.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Job runs of one process, in execution order.
    pub fn runs_of(&self, pid: ProcessId) -> impl Iterator<Item = &JobRun> + '_ {
        self.runs.iter().filter(move |r| r.process == pid)
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut last_time: Option<TimeQ> = None;
        for run in &self.runs {
            if last_time != Some(run.invoked_at) {
                writeln!(f, "w({})", run.invoked_at)?;
                last_time = Some(run.invoked_at);
            }
            writeln!(f, "  {}[{}]: {} actions", run.process, run.k, run.actions.len())?;
        }
        Ok(())
    }
}

/// The observable result of an execution: per-channel written-value
/// sequences and per-output-port sample sequences.
///
/// Two executions of the same FPPN with the same stimuli must produce equal
/// `Observables`, whatever the platform, schedule or execution times
/// (Prop. 2.1 / Prop. 4.1). Note that observables deliberately exclude
/// *when* values were produced — the real-time semantics only preserves
/// order, not timing; timeliness is checked separately against deadlines.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Observables {
    /// `channels[c]` = sequence of values written to channel `c`.
    pub channels: Vec<Vec<Value>>,
    /// `outputs[(p, port)]` = sequence of `(k, value)` samples written to
    /// that external output, in write order. Keyed sparsely and sorted so
    /// comparison is canonical.
    pub outputs: OutputLog,
}

/// Sorted sparse map from `(process, port)` to its `(k, value)` samples.
pub type OutputLog = Vec<((ProcessId, PortId), Vec<(u64, Value)>)>;

impl Observables {
    /// A human-oriented diff of two observables; `None` when equal.
    ///
    /// Used by the determinism test-suite to print actionable failures
    /// rather than a bare `assert_eq` dump.
    pub fn diff(&self, other: &Observables) -> Option<String> {
        if self == other {
            return None;
        }
        let mut out = String::new();
        for (i, (a, b)) in self.channels.iter().zip(&other.channels).enumerate() {
            if a != b {
                let first = a.iter().zip(b).position(|(x, y)| x != y);
                out.push_str(&format!(
                    "channel C{i}: {} vs {} writes, first divergence at {:?}\n",
                    a.len(),
                    b.len(),
                    first
                ));
            }
        }
        if self.channels.len() != other.channels.len() {
            out.push_str("different channel counts\n");
        }
        for ((ka, va), (kb, vb)) in self.outputs.iter().zip(&other.outputs) {
            if ka != kb || va != vb {
                out.push_str(&format!("output {ka:?} differs from {kb:?}\n"));
            }
        }
        if self.outputs.len() != other.outputs.len() {
            out.push_str("different output port counts\n");
        }
        if out.is_empty() {
            out.push_str("observables differ (structural)\n");
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(pid: usize, k: u64, at: i64) -> JobRun {
        JobRun {
            process: ProcessId::from_index(pid),
            k,
            invoked_at: TimeQ::from_ms(at),
            actions: vec![Action::Write {
                channel: ChannelId::from_index(0),
                value: Value::Int(k as i64),
            }],
        }
    }

    #[test]
    fn trace_accumulates_runs() {
        let mut t = Trace::new();
        assert!(t.is_empty());
        t.push(run(0, 1, 0));
        t.push(run(1, 1, 0));
        t.push(run(0, 2, 100));
        assert_eq!(t.len(), 3);
        assert_eq!(t.runs_of(ProcessId::from_index(0)).count(), 2);
        let display = t.to_string();
        assert!(display.contains("w(0)"));
        assert!(display.contains("w(100)"));
    }

    #[test]
    fn observables_diff_pinpoints_channel() {
        let a = Observables {
            channels: vec![vec![Value::Int(1), Value::Int(2)]],
            outputs: vec![],
        };
        let mut b = a.clone();
        assert_eq!(a.diff(&b), None);
        b.channels[0][1] = Value::Int(3);
        let d = a.diff(&b).unwrap();
        assert!(d.contains("channel C0"));
        assert!(d.contains("Some(1)"));
    }

    #[test]
    fn observables_diff_detects_output_mismatch() {
        let key = (ProcessId::from_index(0), PortId::from_index(0));
        let a = Observables {
            channels: vec![],
            outputs: vec![(key, vec![(1, Value::Int(1))])],
        };
        let b = Observables {
            channels: vec![],
            outputs: vec![(key, vec![(1, Value::Int(2))])],
        };
        assert!(a.diff(&b).is_some());
    }
}
