//! Execution traces and observable outputs (Prop. 2.1).
//!
//! A trace is the sequence `w(t1) ∘ α1 ∘ w(t2) ∘ α2 …` of §II-A: waits
//! interleaved with job execution runs, each run being a sequence of
//! zero-delay actions. The *observables* — per-channel write sequences and
//! per-external-output sample sequences — are what Prop. 2.1 declares to be
//! a function of input data and event timestamps; equality of observables
//! across execution platforms is this workspace's determinism criterion.

use std::fmt;

use fppn_time::TimeQ;

use crate::ids::{ChannelId, PortId, ProcessId};
use crate::intern::{ValueId, ValuePool};
use crate::value::Value;

/// One zero-delay action inside a job execution run (`Act` in §II-A).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    /// `x?c`: read from an internal channel (`None` = non-availability).
    Read {
        /// Channel read from.
        channel: ChannelId,
        /// Observed value, if present.
        value: Option<Value>,
    },
    /// `x!c`: write to an internal channel.
    Write {
        /// Channel written to.
        channel: ChannelId,
        /// Written value.
        value: Value,
    },
    /// `x?[k]I`: read sample `k` from an external input port.
    ReadInput {
        /// Port read from.
        port: PortId,
        /// Sample index (1-based job count).
        k: u64,
        /// Observed value, if the stream provided one.
        value: Option<Value>,
    },
    /// `x![k]O`: write sample `k` to an external output port.
    WriteOutput {
        /// Port written to.
        port: PortId,
        /// Sample index (1-based job count).
        k: u64,
        /// Written value.
        value: Value,
    },
}

/// One job execution run: the actions of the `k`-th job of a process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobRun {
    /// The process the job belongs to.
    pub process: ProcessId,
    /// The 1-based invocation count.
    pub k: u64,
    /// The invocation timestamp (zero-delay: also the execution time).
    pub invoked_at: TimeQ,
    /// Actions performed, in order.
    pub actions: Vec<Action>,
}

/// Interned twin of [`Action`]: a fixed-size record whose values are
/// [`ValueId`]s into the owning trace's [`ValuePool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ActionRec {
    Read { channel: ChannelId, value: Option<ValueId> },
    Write { channel: ChannelId, value: ValueId },
    ReadInput { port: PortId, k: u64, value: Option<ValueId> },
    WriteOutput { port: PortId, k: u64, value: ValueId },
}

/// Interned twin of [`JobRun`]: run metadata plus a `[start, start + len)`
/// window into the trace's flat action arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct RunRec {
    process: ProcessId,
    k: u64,
    invoked_at: TimeQ,
    actions_start: u32,
    actions_len: u32,
}

/// A full execution trace: job runs in execution order, with their
/// timestamps (the `w(t)` waits are implicit in `invoked_at`).
///
/// Internally the trace is index-based: one flat arena of fixed-size action
/// records over an interned [`ValuePool`], instead of a `Vec` of runs each
/// owning a `Vec` of cloned [`Value`]s. Pushing a [`JobRun`] interns its
/// values; the accessors materialize runs back on demand, so the public
/// vocabulary ([`Action`], [`JobRun`]) is unchanged.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    runs: Vec<RunRec>,
    actions: Vec<ActionRec>,
    pool: ValuePool,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a job run, interning its action values.
    pub fn push(&mut self, run: JobRun) {
        let actions_start = u32::try_from(self.actions.len()).expect("trace arena overflow");
        for action in run.actions {
            let rec = match action {
                Action::Read { channel, value } => ActionRec::Read {
                    channel,
                    value: value.map(|v| self.pool.intern_owned(v)),
                },
                Action::Write { channel, value } => ActionRec::Write {
                    channel,
                    value: self.pool.intern_owned(value),
                },
                Action::ReadInput { port, k, value } => ActionRec::ReadInput {
                    port,
                    k,
                    value: value.map(|v| self.pool.intern_owned(v)),
                },
                Action::WriteOutput { port, k, value } => ActionRec::WriteOutput {
                    port,
                    k,
                    value: self.pool.intern_owned(value),
                },
            };
            self.actions.push(rec);
        }
        let actions_len = u32::try_from(self.actions.len()).expect("trace arena overflow")
            - actions_start;
        self.runs.push(RunRec {
            process: run.process,
            k: run.k,
            invoked_at: run.invoked_at,
            actions_start,
            actions_len,
        });
    }

    fn materialize_action(&self, rec: &ActionRec) -> Action {
        match *rec {
            ActionRec::Read { channel, value } => Action::Read {
                channel,
                value: value.map(|id| self.pool.resolve(id)),
            },
            ActionRec::Write { channel, value } => Action::Write {
                channel,
                value: self.pool.resolve(value),
            },
            ActionRec::ReadInput { port, k, value } => Action::ReadInput {
                port,
                k,
                value: value.map(|id| self.pool.resolve(id)),
            },
            ActionRec::WriteOutput { port, k, value } => Action::WriteOutput {
                port,
                k,
                value: self.pool.resolve(value),
            },
        }
    }

    fn materialize(&self, rec: &RunRec) -> JobRun {
        let start = rec.actions_start as usize;
        let end = start + rec.actions_len as usize;
        JobRun {
            process: rec.process,
            k: rec.k,
            invoked_at: rec.invoked_at,
            actions: self.actions[start..end]
                .iter()
                .map(|a| self.materialize_action(a))
                .collect(),
        }
    }

    /// The recorded job runs, materialized in execution order.
    pub fn runs(&self) -> impl Iterator<Item = JobRun> + '_ {
        self.runs.iter().map(|r| self.materialize(r))
    }

    /// Materializes the `i`-th recorded job run.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn run(&self, i: usize) -> JobRun {
        self.materialize(&self.runs[i])
    }

    /// The number of recorded job runs.
    pub fn len(&self) -> usize {
        self.runs.len()
    }

    /// Whether no jobs were recorded.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Job runs of one process, materialized in execution order.
    pub fn runs_of(&self, pid: ProcessId) -> impl Iterator<Item = JobRun> + '_ {
        self.runs
            .iter()
            .filter(move |r| r.process == pid)
            .map(|r| self.materialize(r))
    }
}

/// Semantic equality: run metadata and resolved action values must match;
/// the arena slot numbers (which depend on interning order) do not — two
/// traces assembled by different executors compare equal iff they denote
/// the same action sequences.
impl PartialEq for Trace {
    fn eq(&self, other: &Self) -> bool {
        fn opt_eq(
            a_pool: &ValuePool,
            a: Option<ValueId>,
            b_pool: &ValuePool,
            b: Option<ValueId>,
        ) -> bool {
            match (a, b) {
                (None, None) => true,
                (Some(a), Some(b)) => a_pool.value_eq(a, b_pool, b),
                _ => false,
            }
        }
        let action_eq = |a: &ActionRec, b: &ActionRec| match (*a, *b) {
            (
                ActionRec::Read { channel: ca, value: va },
                ActionRec::Read { channel: cb, value: vb },
            ) => ca == cb && opt_eq(&self.pool, va, &other.pool, vb),
            (
                ActionRec::Write { channel: ca, value: va },
                ActionRec::Write { channel: cb, value: vb },
            ) => ca == cb && self.pool.value_eq(va, &other.pool, vb),
            (
                ActionRec::ReadInput { port: pa, k: ka, value: va },
                ActionRec::ReadInput { port: pb, k: kb, value: vb },
            ) => pa == pb && ka == kb && opt_eq(&self.pool, va, &other.pool, vb),
            (
                ActionRec::WriteOutput { port: pa, k: ka, value: va },
                ActionRec::WriteOutput { port: pb, k: kb, value: vb },
            ) => pa == pb && ka == kb && self.pool.value_eq(va, &other.pool, vb),
            _ => false,
        };
        // Equal per-run action lengths imply equal (cumulative) starts, so
        // comparing the flat arenas position-by-position lines up.
        self.runs.len() == other.runs.len()
            && self.actions.len() == other.actions.len()
            && self.runs.iter().zip(&other.runs).all(|(a, b)| {
                a.process == b.process
                    && a.k == b.k
                    && a.invoked_at == b.invoked_at
                    && a.actions_len == b.actions_len
            })
            && self
                .actions
                .iter()
                .zip(&other.actions)
                .all(|(a, b)| action_eq(a, b))
    }
}

impl Eq for Trace {}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut last_time: Option<TimeQ> = None;
        for run in &self.runs {
            if last_time != Some(run.invoked_at) {
                writeln!(f, "w({})", run.invoked_at)?;
                last_time = Some(run.invoked_at);
            }
            writeln!(f, "  {}[{}]: {} actions", run.process, run.k, run.actions_len)?;
        }
        Ok(())
    }
}

/// The observable result of an execution: per-channel written-value
/// sequences and per-output-port sample sequences.
///
/// Two executions of the same FPPN with the same stimuli must produce equal
/// `Observables`, whatever the platform, schedule or execution times
/// (Prop. 2.1 / Prop. 4.1). Note that observables deliberately exclude
/// *when* values were produced — the real-time semantics only preserves
/// order, not timing; timeliness is checked separately against deadlines.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Observables {
    /// `channels[c]` = sequence of values written to channel `c`.
    pub channels: Vec<Vec<Value>>,
    /// `outputs[(p, port)]` = sequence of `(k, value)` samples written to
    /// that external output, in write order. Keyed sparsely and sorted so
    /// comparison is canonical.
    pub outputs: OutputLog,
}

/// Sorted sparse map from `(process, port)` to its `(k, value)` samples.
pub type OutputLog = Vec<((ProcessId, PortId), Vec<(u64, Value)>)>;

impl Observables {
    /// A human-oriented diff of two observables; `None` when equal.
    ///
    /// Used by the determinism test-suite to print actionable failures
    /// rather than a bare `assert_eq` dump.
    pub fn diff(&self, other: &Observables) -> Option<String> {
        if self == other {
            return None;
        }
        let mut out = String::new();
        for (i, (a, b)) in self.channels.iter().zip(&other.channels).enumerate() {
            if a != b {
                let first = a.iter().zip(b).position(|(x, y)| x != y);
                out.push_str(&format!(
                    "channel C{i}: {} vs {} writes, first divergence at {:?}\n",
                    a.len(),
                    b.len(),
                    first
                ));
            }
        }
        if self.channels.len() != other.channels.len() {
            out.push_str("different channel counts\n");
        }
        for ((ka, va), (kb, vb)) in self.outputs.iter().zip(&other.outputs) {
            if ka != kb || va != vb {
                out.push_str(&format!("output {ka:?} differs from {kb:?}\n"));
            }
        }
        if self.outputs.len() != other.outputs.len() {
            out.push_str("different output port counts\n");
        }
        if out.is_empty() {
            out.push_str("observables differ (structural)\n");
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(pid: usize, k: u64, at: i64) -> JobRun {
        JobRun {
            process: ProcessId::from_index(pid),
            k,
            invoked_at: TimeQ::from_ms(at),
            actions: vec![Action::Write {
                channel: ChannelId::from_index(0),
                value: Value::Int(k as i64),
            }],
        }
    }

    #[test]
    fn trace_accumulates_runs() {
        let mut t = Trace::new();
        assert!(t.is_empty());
        t.push(run(0, 1, 0));
        t.push(run(1, 1, 0));
        t.push(run(0, 2, 100));
        assert_eq!(t.len(), 3);
        assert_eq!(t.runs_of(ProcessId::from_index(0)).count(), 2);
        let display = t.to_string();
        assert!(display.contains("w(0)"));
        assert!(display.contains("w(100)"));
    }

    #[test]
    fn interned_runs_materialize_losslessly() {
        let mut t = Trace::new();
        let original = JobRun {
            process: ProcessId::from_index(3),
            k: 7,
            invoked_at: TimeQ::from_ms(250),
            actions: vec![
                Action::Read {
                    channel: ChannelId::from_index(1),
                    value: Some(Value::Str("big".into())),
                },
                Action::Read {
                    channel: ChannelId::from_index(2),
                    value: None,
                },
                Action::Write {
                    channel: ChannelId::from_index(1),
                    value: Value::List(vec![Value::Int(i64::MAX), Value::Unit]),
                },
                Action::ReadInput {
                    port: PortId::from_index(0),
                    k: 7,
                    value: Some(Value::Int(-5)),
                },
                Action::WriteOutput {
                    port: PortId::from_index(0),
                    k: 7,
                    value: Value::Bool(true),
                },
            ],
        };
        t.push(original.clone());
        assert_eq!(t.run(0), original);
        assert_eq!(t.runs().next().unwrap(), original);
    }

    #[test]
    fn trace_equality_compares_resolved_values() {
        let w = |s: &str| Action::Write {
            channel: ChannelId::from_index(0),
            value: Value::Str(s.into()),
        };
        let mk = |actions: Vec<Action>| JobRun {
            process: ProcessId::from_index(0),
            k: 1,
            invoked_at: TimeQ::from_ms(0),
            actions,
        };
        let mut a = Trace::new();
        a.push(JobRun { k: 0, ..mk(vec![w("x"), w("y")]) });
        a.push(mk(vec![w("y"), w("x")]));
        let mut b = Trace::new();
        b.push(JobRun { k: 0, ..mk(vec![w("x"), w("y")]) });
        b.push(mk(vec![w("y"), w("x")]));
        assert_eq!(a, b);
        let mut c = Trace::new();
        c.push(JobRun { k: 0, ..mk(vec![w("x"), w("y")]) });
        c.push(mk(vec![w("x"), w("y")]));
        assert_ne!(a, c);
    }

    #[test]
    fn observables_diff_pinpoints_channel() {
        let a = Observables {
            channels: vec![vec![Value::Int(1), Value::Int(2)]],
            outputs: vec![],
        };
        let mut b = a.clone();
        assert_eq!(a.diff(&b), None);
        b.channels[0][1] = Value::Int(3);
        let d = a.diff(&b).unwrap();
        assert!(d.contains("channel C0"));
        assert!(d.contains("Some(1)"));
    }

    #[test]
    fn observables_diff_detects_output_mismatch() {
        let key = (ProcessId::from_index(0), PortId::from_index(0));
        let a = Observables {
            channels: vec![],
            outputs: vec![(key, vec![(1, Value::Int(1))])],
        };
        let b = Observables {
            channels: vec![],
            outputs: vec![(key, vec![(1, Value::Int(2))])],
        };
        assert!(a.diff(&b).is_some());
    }
}
