//! Channel types and their read/write semantics (§II-A).
//!
//! The paper defines two default channel types: the **FIFO**, with queue
//! semantics, and the **blackboard**, which "remembers the last written
//! value, and … can be read multiple times". Reading from an empty FIFO or
//! a non-initialized blackboard returns the non-availability indicator,
//! here [`Value::Absent`] (surfaced as `None` through the Rust API).

use std::collections::VecDeque;
use std::fmt;
use std::num::NonZeroUsize;

use crate::ids::ProcessId;
use crate::value::Value;

/// The type of an internal or external channel (`CT_c` in Def. 2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ChannelKind {
    /// Queue semantics: writes append, reads pop the oldest sample; a read
    /// from an empty queue yields the non-availability indicator.
    #[default]
    Fifo,
    /// Shared-variable semantics: a write overwrites, reads return the last
    /// written value any number of times; reading before any write yields
    /// the non-availability indicator.
    Blackboard,
}

impl fmt::Display for ChannelKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChannelKind::Fifo => write!(f, "fifo"),
            ChannelKind::Blackboard => write!(f, "blackboard"),
        }
    }
}

/// Static description of an internal channel: a `(writer, reader)` pair with
/// a type, an optional initial value, and an optional FIFO capacity bound.
///
/// Def. 2.1 treats `c ∈ C` as "a channel (state variable) and at the same
/// time a pair of writer and reader". Multi-writer or multi-reader exchange
/// is modeled with several channels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChannelSpec {
    name: String,
    writer: ProcessId,
    reader: ProcessId,
    kind: ChannelKind,
    initial: Option<Value>,
    capacity: Option<NonZeroUsize>,
}

impl ChannelSpec {
    /// Creates a channel description.
    pub fn new(
        name: impl Into<String>,
        writer: ProcessId,
        reader: ProcessId,
        kind: ChannelKind,
    ) -> Self {
        ChannelSpec {
            name: name.into(),
            writer,
            reader,
            kind,
            initial: None,
            capacity: None,
        }
    }

    /// Sets an initial value (the paper: "each variable initialized at
    /// start"; an uninitialized channel starts absent/empty).
    #[must_use]
    pub fn with_initial(mut self, value: Value) -> Self {
        self.initial = Some(value);
        self
    }

    /// Bounds the FIFO capacity. Ignored for blackboards.
    #[must_use]
    pub fn with_capacity(mut self, capacity: NonZeroUsize) -> Self {
        self.capacity = Some(capacity);
        self
    }

    /// The channel name (for diagnostics and Gantt/report rendering).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The unique writing process.
    pub fn writer(&self) -> ProcessId {
        self.writer
    }

    /// The unique reading process.
    pub fn reader(&self) -> ProcessId {
        self.reader
    }

    /// The channel type.
    pub fn kind(&self) -> ChannelKind {
        self.kind
    }

    /// The initial value, if configured.
    pub fn initial(&self) -> Option<&Value> {
        self.initial.as_ref()
    }

    /// The FIFO capacity bound, if configured.
    pub fn capacity(&self) -> Option<NonZeroUsize> {
        self.capacity
    }

    /// Whether this channel connects a process to itself (state feedback).
    pub fn is_self_loop(&self) -> bool {
        self.writer == self.reader
    }
}

/// Mutable run-time state of one channel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChannelState {
    /// FIFO contents, oldest first.
    Fifo {
        /// Queued samples.
        queue: VecDeque<Value>,
        /// Capacity bound copied from the spec.
        capacity: Option<NonZeroUsize>,
    },
    /// Blackboard contents.
    Blackboard {
        /// Last written value, if any.
        current: Option<Value>,
    },
}

impl ChannelState {
    /// Creates the initial state for a channel spec.
    pub fn new(spec: &ChannelSpec) -> Self {
        match spec.kind() {
            ChannelKind::Fifo => ChannelState::Fifo {
                queue: spec.initial.iter().cloned().collect(),
                capacity: spec.capacity,
            },
            ChannelKind::Blackboard => ChannelState::Blackboard {
                current: spec.initial.clone(),
            },
        }
    }

    /// Performs a read action (`x?c`). Returns `None` (the non-availability
    /// indicator) on an empty FIFO or uninitialized blackboard.
    pub fn read(&mut self) -> Option<Value> {
        match self {
            ChannelState::Fifo { queue, .. } => queue.pop_front(),
            ChannelState::Blackboard { current } => current.clone(),
        }
    }

    /// Performs a write action (`x!c`).
    ///
    /// # Panics
    ///
    /// Panics if the channel is a bounded FIFO that is full: FPPN processes
    /// never block on data, so exceeding a declared bound is a modeling
    /// error (the unbounded default never panics).
    pub fn write(&mut self, value: Value) {
        match self {
            ChannelState::Fifo { queue, capacity } => {
                if let Some(cap) = capacity {
                    assert!(
                        queue.len() < cap.get(),
                        "write to full FIFO (capacity {cap}): FPPN writes are non-blocking"
                    );
                }
                queue.push_back(value);
            }
            ChannelState::Blackboard { current } => *current = Some(value),
        }
    }

    /// The number of samples a read could currently observe (queue length,
    /// or 1 for an initialized blackboard).
    pub fn len(&self) -> usize {
        match self {
            ChannelState::Fifo { queue, .. } => queue.len(),
            ChannelState::Blackboard { current } => usize::from(current.is_some()),
        }
    }

    /// Whether a read would return the non-availability indicator.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(i: usize) -> ProcessId {
        ProcessId::from_index(i)
    }

    #[test]
    fn fifo_orders_samples() {
        let spec = ChannelSpec::new("c", pid(0), pid(1), ChannelKind::Fifo);
        let mut st = ChannelState::new(&spec);
        assert_eq!(st.read(), None);
        st.write(Value::Int(1));
        st.write(Value::Int(2));
        assert_eq!(st.len(), 2);
        assert_eq!(st.read(), Some(Value::Int(1)));
        assert_eq!(st.read(), Some(Value::Int(2)));
        assert_eq!(st.read(), None);
        assert!(st.is_empty());
    }

    #[test]
    fn blackboard_keeps_last_value() {
        let spec = ChannelSpec::new("b", pid(0), pid(1), ChannelKind::Blackboard);
        let mut st = ChannelState::new(&spec);
        assert_eq!(st.read(), None);
        st.write(Value::Int(10));
        st.write(Value::Int(20));
        assert_eq!(st.read(), Some(Value::Int(20)));
        // Multiple reads observe the same value.
        assert_eq!(st.read(), Some(Value::Int(20)));
        assert_eq!(st.len(), 1);
    }

    #[test]
    fn initial_values() {
        let f = ChannelSpec::new("c", pid(0), pid(1), ChannelKind::Fifo)
            .with_initial(Value::Int(5));
        let mut st = ChannelState::new(&f);
        assert_eq!(st.read(), Some(Value::Int(5)));
        assert_eq!(st.read(), None);

        let b = ChannelSpec::new("b", pid(0), pid(1), ChannelKind::Blackboard)
            .with_initial(Value::Int(9));
        let mut st = ChannelState::new(&b);
        assert_eq!(st.read(), Some(Value::Int(9)));
        assert_eq!(st.read(), Some(Value::Int(9)));
    }

    #[test]
    fn bounded_fifo_accepts_up_to_capacity() {
        let spec = ChannelSpec::new("c", pid(0), pid(1), ChannelKind::Fifo)
            .with_capacity(NonZeroUsize::new(2).unwrap());
        let mut st = ChannelState::new(&spec);
        st.write(Value::Int(1));
        st.write(Value::Int(2));
        assert_eq!(st.len(), 2);
    }

    #[test]
    #[should_panic(expected = "full FIFO")]
    fn bounded_fifo_overflow_panics() {
        let spec = ChannelSpec::new("c", pid(0), pid(1), ChannelKind::Fifo)
            .with_capacity(NonZeroUsize::new(1).unwrap());
        let mut st = ChannelState::new(&spec);
        st.write(Value::Int(1));
        st.write(Value::Int(2));
    }

    #[test]
    fn self_loop_detection() {
        let spec = ChannelSpec::new("loop", pid(2), pid(2), ChannelKind::Blackboard);
        assert!(spec.is_self_loop());
    }
}
