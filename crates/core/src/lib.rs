//! # fppn-core — Fixed-Priority Process Networks
//!
//! The model of computation from *"Models for Deterministic Execution of
//! Real-Time Multiprocessor Applications"* (Poplavko, Socci, Bourgos,
//! Bensalem, Bozga — DATE 2015), §II.
//!
//! An **FPPN** is a network of processes invoked by *event generators*
//! (multi-periodic or sporadic), communicating over **FIFO** and
//! **blackboard** channels with *non-blocking* data access, plus an acyclic
//! **functional-priority** relation `FP` that must order every pair of
//! processes sharing a channel. The functional priority determines the
//! relative execution order of simultaneously invoked jobs, which makes the
//! whole network's observable behaviour a *function* of input data and
//! event timestamps (Prop. 2.1) — on any number of processors.
//!
//! This crate contains the static model ([`Fppn`], [`FppnBuilder`]), the
//! data/channel semantics ([`ChannelState`]), process behaviors (native
//! Rust [`Behavior`]s or interpreted [`automaton`]s per Def. 2.2), the
//! sequential execution substrate ([`ExecState`]) and the **zero-delay
//! reference semantics** ([`run_zero_delay`]). Scheduling lives in
//! `fppn-taskgraph`/`fppn-sched`; real-time execution backends in
//! `fppn-sim` and `fppn-runtime`.
//!
//! # Examples
//!
//! ```
//! use fppn_core::{run_zero_delay, ChannelKind, EventSpec, FppnBuilder, JobOrdering,
//!                 ProcessSpec, Stimuli, Value};
//! use fppn_time::TimeQ;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = FppnBuilder::new();
//! let ms = TimeQ::from_ms;
//! let input = b.process(ProcessSpec::new("input", EventSpec::periodic(ms(200))));
//! let filter = b.process(ProcessSpec::new("filter", EventSpec::periodic(ms(100))));
//! let data = b.channel("data", input, filter, ChannelKind::Fifo);
//! b.priority(input, filter);
//! b.behavior(input, move || Box::new(move |ctx: &mut fppn_core::JobCtx<'_>| {
//!     ctx.write(data, Value::Int(ctx.k() as i64));
//! }));
//! let (net, bank) = b.build()?;
//! let mut behaviors = bank.instantiate();
//! let run = run_zero_delay(&net, &mut behaviors, &Stimuli::new(), ms(400),
//!                          JobOrdering::default())?;
//! assert_eq!(run.observables.channels[0], vec![Value::Int(1), Value::Int(2)]);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod automaton;
mod channel;
mod error;
mod event;
mod exec;
mod ids;
mod intern;
pub mod lang;
mod network;
mod process;
mod semantics;
mod shard;
mod trace;
mod value;

pub use channel::{ChannelKind, ChannelSpec, ChannelState};
pub use error::{ExecError, NetworkError};
pub use event::{EventKind, EventSpec, SporadicTrace};
pub use exec::{ExecState, Stimuli};
pub use ids::{ChannelId, PortId, ProcessId};
pub use intern::{ValueId, ValuePool};
pub use network::{BehaviorBank, Fppn, FppnBuilder};
pub use process::{Behavior, BehaviorFactory, BoxedBehavior, DataAccess, JobCtx, ProcessSpec};
pub use semantics::{
    invocations_by_time, linearization_ranks, run_zero_delay, Invocation, JobOrdering,
    SemanticsError, ZeroDelayRun,
};
pub use shard::{ProcessShard, SharedChannels, ShardedExec};
pub use trace::{Action, JobRun, Observables, OutputLog, Trace};
pub use value::Value;
