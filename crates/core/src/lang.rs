//! A textual language for FPPN networks.
//!
//! §V of the paper: "In the context of the CERTAINTY EU project an
//! FPPN-related programming language was defined. For that language we
//! developed scheduling and code generation tools…". This module is that
//! frontend: a small declarative language describing processes, event
//! generators, channels, initial values and functional priorities, parsed
//! into an [`FppnBuilder`]. Behaviors are attached programmatically by
//! process name (or come from interpreted automata).
//!
//! # Syntax
//!
//! ```text
//! network example {
//!     process InputA  periodic(T = 200ms) { input sample; }
//!     process FilterA periodic(T = 100ms, d = 100ms);
//!     process CoefB   sporadic(m = 2, T = 700ms);
//!     process OutputB periodic(T = 100ms) { output out2; }
//!
//!     channel fifo       c1   : InputA -> FilterA;
//!     channel blackboard coef : CoefB  -> FilterB init 1;
//!
//!     priority InputA -> FilterA;
//!     priority CoefB  -> FilterB;
//! }
//! ```
//!
//! Times accept `ms`, `s`, `us` suffixes and exact fractions (`93/7ms`);
//! bare numbers are milliseconds. Generator parameters: `T` (period,
//! required), `m` (burst, default 1), `d` (deadline, default `T`),
//! `phase` (periodic only, default 0).

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

use fppn_time::TimeQ;

use crate::channel::{ChannelKind, ChannelSpec};
use crate::event::EventSpec;
use crate::ids::{ChannelId, ProcessId};
use crate::network::{BehaviorBank, Fppn, FppnBuilder};
use crate::process::{BoxedBehavior, ProcessSpec};
use crate::value::Value;
use crate::NetworkError;

/// A parsed network: the underlying builder plus name→id maps, so
/// behaviors can be attached by name before building.
pub struct ParsedNetwork {
    builder: FppnBuilder,
    name: String,
    processes: BTreeMap<String, ProcessId>,
    channels: BTreeMap<String, ChannelId>,
}

impl fmt::Debug for ParsedNetwork {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ParsedNetwork")
            .field("name", &self.name)
            .field("processes", &self.processes.len())
            .field("channels", &self.channels.len())
            .finish()
    }
}

impl ParsedNetwork {
    /// The declared network name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The process id declared under `name`.
    pub fn process(&self, name: &str) -> Option<ProcessId> {
        self.processes.get(name).copied()
    }

    /// The channel id declared under `name`.
    pub fn channel(&self, name: &str) -> Option<ChannelId> {
        self.channels.get(name).copied()
    }

    /// All declared process names in declaration order.
    pub fn process_names(&self) -> impl Iterator<Item = &str> {
        // BTreeMap iterates alphabetically; reconstruct declaration order
        // from the dense ids.
        let mut v: Vec<(&String, &ProcessId)> = self.processes.iter().collect();
        v.sort_by_key(|(_, id)| **id);
        v.into_iter().map(|(n, _)| n.as_str())
    }

    /// Attaches a behavior factory to a declared process.
    ///
    /// # Errors
    ///
    /// Returns [`ParseError`] if no process has that name.
    pub fn behavior(
        &mut self,
        process: &str,
        factory: impl Fn() -> BoxedBehavior + Send + Sync + 'static,
    ) -> Result<&mut Self, ParseError> {
        let pid = self.process(process).ok_or_else(|| ParseError {
            line: 0,
            message: format!("no process named {process:?}"),
        })?;
        self.builder.behavior(pid, factory);
        Ok(self)
    }

    /// Validates and freezes the network (see [`FppnBuilder::build`]).
    ///
    /// # Errors
    ///
    /// Propagates [`NetworkError`] from validation.
    pub fn build(self) -> Result<(Fppn, BehaviorBank), NetworkError> {
        self.builder.build()
    }
}

/// A parse error with a 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line of the offending token (0 = not location-specific).
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(f, "line {}: {}", self.line, self.message)
        } else {
            write!(f, "{}", self.message)
        }
    }
}

impl Error for ParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Number(i128),
    Float(f64),
    Punct(char),
    Arrow,
}

#[derive(Debug, Clone)]
struct SpannedTok {
    tok: Tok,
    line: usize,
}

fn tokenize(src: &str) -> Result<Vec<SpannedTok>, ParseError> {
    let mut out = Vec::new();
    let mut line = 1usize;
    let mut chars = src.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            '\n' => {
                line += 1;
                chars.next();
            }
            c if c.is_whitespace() => {
                chars.next();
            }
            '#' => {
                // Comment to end of line.
                for c in chars.by_ref() {
                    if c == '\n' {
                        line += 1;
                        break;
                    }
                }
            }
            '-' => {
                chars.next();
                match chars.peek() {
                    Some('>') => {
                        chars.next();
                        out.push(SpannedTok {
                            tok: Tok::Arrow,
                            line,
                        });
                    }
                    Some(d) if d.is_ascii_digit() => {
                        let n = read_number(&mut chars, line)?;
                        out.push(SpannedTok {
                            tok: match n {
                                Tok::Number(v) => Tok::Number(-v),
                                Tok::Float(v) => Tok::Float(-v),
                                t => t,
                            },
                            line,
                        });
                    }
                    _ => {
                        return Err(ParseError {
                            line,
                            message: "expected '->' or a number after '-'".into(),
                        })
                    }
                }
            }
            c if c.is_ascii_digit() => {
                let tok = read_number(&mut chars, line)?;
                out.push(SpannedTok { tok, line });
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut ident = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_alphanumeric() || c == '_' {
                        ident.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                out.push(SpannedTok {
                    tok: Tok::Ident(ident),
                    line,
                });
            }
            '{' | '}' | '(' | ')' | ';' | ':' | ',' | '=' | '/' => {
                chars.next();
                out.push(SpannedTok {
                    tok: Tok::Punct(c),
                    line,
                });
            }
            other => {
                return Err(ParseError {
                    line,
                    message: format!("unexpected character {other:?}"),
                })
            }
        }
    }
    Ok(out)
}

fn read_number(
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
    line: usize,
) -> Result<Tok, ParseError> {
    let mut text = String::new();
    let mut is_float = false;
    while let Some(&c) = chars.peek() {
        if c.is_ascii_digit() {
            text.push(c);
            chars.next();
        } else if c == '.' && !is_float {
            is_float = true;
            text.push(c);
            chars.next();
        } else {
            break;
        }
    }
    if is_float {
        text.parse::<f64>()
            .map(Tok::Float)
            .map_err(|_| ParseError {
                line,
                message: format!("invalid number {text:?}"),
            })
    } else {
        text.parse::<i128>()
            .map(Tok::Number)
            .map_err(|_| ParseError {
                line,
                message: format!("invalid number {text:?}"),
            })
    }
}

struct Parser {
    toks: Vec<SpannedTok>,
    pos: usize,
}

impl Parser {
    fn line(&self) -> usize {
        self.toks
            .get(self.pos.min(self.toks.len().saturating_sub(1)))
            .map(|t| t.line)
            .unwrap_or(0)
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            line: self.line(),
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|t| &t.tok)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|t| t.tok.clone());
        self.pos += 1;
        t
    }

    fn expect_punct(&mut self, c: char) -> Result<(), ParseError> {
        match self.next() {
            Some(Tok::Punct(p)) if p == c => Ok(()),
            other => Err(self.err(format!("expected {c:?}, found {other:?}"))),
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.next() {
            Some(Tok::Ident(s)) => Ok(s),
            other => Err(self.err(format!("expected identifier, found {other:?}"))),
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        let id = self.expect_ident()?;
        if id == kw {
            Ok(())
        } else {
            Err(self.err(format!("expected keyword {kw:?}, found {id:?}")))
        }
    }

    fn eat_punct(&mut self, c: char) -> bool {
        if self.peek() == Some(&Tok::Punct(c)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// `<int>[/<int>][ms|s|us]` — bare numbers are milliseconds.
    fn time(&mut self) -> Result<TimeQ, ParseError> {
        let num = match self.next() {
            Some(Tok::Number(n)) => n,
            other => return Err(self.err(format!("expected a time, found {other:?}"))),
        };
        let mut value = TimeQ::from_int_i128(num);
        if self.eat_punct('/') {
            match self.next() {
                Some(Tok::Number(d)) if d != 0 => {
                    value = TimeQ::new(num, d);
                }
                other => return Err(self.err(format!("expected a denominator, found {other:?}"))),
            }
        }
        if let Some(Tok::Ident(unit)) = self.peek() {
            let scale = match unit.as_str() {
                "ms" => Some(TimeQ::ONE),
                "s" => Some(TimeQ::from_int(1000)),
                "us" => Some(TimeQ::new(1, 1000)),
                _ => None,
            };
            if let Some(scale) = scale {
                self.pos += 1;
                value *= scale;
            }
        }
        Ok(value)
    }
}

/// Parses the FPPN language into a [`ParsedNetwork`].
///
/// # Errors
///
/// Returns a [`ParseError`] with the offending source line.
///
/// # Examples
///
/// ```
/// let src = r#"
///     network pair {
///         process src periodic(T = 100ms);
///         process dst periodic(T = 200ms, d = 150ms);
///         channel fifo c : src -> dst;
///         priority src -> dst;
///     }
/// "#;
/// let parsed = fppn_core::lang::parse_network(src)?;
/// let (net, _bank) = parsed.build()?;
/// assert_eq!(net.process_count(), 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn parse_network(src: &str) -> Result<ParsedNetwork, ParseError> {
    let mut p = Parser {
        toks: tokenize(src)?,
        pos: 0,
    };
    p.expect_keyword("network")?;
    let name = p.expect_ident()?;
    p.expect_punct('{')?;

    let mut builder = FppnBuilder::new();
    let mut processes: BTreeMap<String, ProcessId> = BTreeMap::new();
    let mut channels: BTreeMap<String, ChannelId> = BTreeMap::new();

    loop {
        match p.peek() {
            Some(Tok::Punct('}')) => {
                p.pos += 1;
                break;
            }
            Some(Tok::Ident(kw)) => match kw.as_str() {
                "process" => {
                    let (pname, spec) = parse_process(&mut p)?;
                    if processes.contains_key(&pname) {
                        return Err(p.err(format!("duplicate process {pname:?}")));
                    }
                    let id = builder.process(spec);
                    processes.insert(pname, id);
                }
                "channel" => {
                    let (cname, spec) = parse_channel(&mut p, &processes)?;
                    if channels.contains_key(&cname) {
                        return Err(p.err(format!("duplicate channel {cname:?}")));
                    }
                    let id = builder.channel_spec(spec);
                    channels.insert(cname, id);
                }
                "priority" => {
                    p.pos += 1;
                    let hi = p.expect_ident()?;
                    match p.next() {
                        Some(Tok::Arrow) => {}
                        other => return Err(p.err(format!("expected '->', found {other:?}"))),
                    }
                    let lo = p.expect_ident()?;
                    p.expect_punct(';')?;
                    let hi_id = *processes
                        .get(&hi)
                        .ok_or_else(|| p.err(format!("unknown process {hi:?}")))?;
                    let lo_id = *processes
                        .get(&lo)
                        .ok_or_else(|| p.err(format!("unknown process {lo:?}")))?;
                    builder.priority(hi_id, lo_id);
                }
                other => return Err(p.err(format!("unexpected keyword {other:?}"))),
            },
            other => return Err(p.err(format!("unexpected token {other:?}"))),
        }
    }

    Ok(ParsedNetwork {
        builder,
        name,
        processes,
        channels,
    })
}

/// `process <name> periodic|sporadic(<params>) [ { input a; output b; } ] ;`
fn parse_process(p: &mut Parser) -> Result<(String, ProcessSpec), ParseError> {
    p.expect_keyword("process")?;
    let name = p.expect_ident()?;
    let kind = p.expect_ident()?;
    p.expect_punct('(')?;
    let mut period: Option<TimeQ> = None;
    let mut burst: u32 = 1;
    let mut deadline: Option<TimeQ> = None;
    let mut phase: Option<TimeQ> = None;
    loop {
        if p.eat_punct(')') {
            break;
        }
        let key = p.expect_ident()?;
        p.expect_punct('=')?;
        match key.as_str() {
            "T" => period = Some(p.time()?),
            "d" => deadline = Some(p.time()?),
            "phase" => phase = Some(p.time()?),
            "m" => match p.next() {
                Some(Tok::Number(n)) if n > 0 => burst = n as u32,
                other => return Err(p.err(format!("expected a positive burst, found {other:?}"))),
            },
            other => return Err(p.err(format!("unknown generator parameter {other:?}"))),
        }
        let _ = p.eat_punct(',');
    }
    let period = period.ok_or_else(|| p.err(format!("process {name:?} needs T = <period>")))?;
    let mut event = match kind.as_str() {
        "periodic" => EventSpec::multi_periodic(burst, period),
        "sporadic" => EventSpec::sporadic(burst, period),
        other => return Err(p.err(format!("expected 'periodic' or 'sporadic', found {other:?}"))),
    };
    if let Some(d) = deadline {
        event = event.with_deadline(d);
    }
    if let Some(ph) = phase {
        event = event.with_phase(ph);
    }
    let mut spec = ProcessSpec::new(name.clone(), event);
    // Optional port block.
    if p.eat_punct('{') {
        loop {
            if p.eat_punct('}') {
                break;
            }
            let dir = p.expect_ident()?;
            let port = p.expect_ident()?;
            p.expect_punct(';')?;
            spec = match dir.as_str() {
                "input" => spec.with_input(port),
                "output" => spec.with_output(port),
                other => return Err(p.err(format!("expected 'input' or 'output', found {other:?}"))),
            };
        }
    } else {
        p.expect_punct(';')?;
        return Ok((name, spec));
    }
    let _ = p.eat_punct(';');
    Ok((name, spec))
}

/// `channel fifo|blackboard <name> : <writer> -> <reader> [init <value>] ;`
fn parse_channel(
    p: &mut Parser,
    processes: &BTreeMap<String, ProcessId>,
) -> Result<(String, ChannelSpec), ParseError> {
    p.expect_keyword("channel")?;
    let kind = match p.expect_ident()?.as_str() {
        "fifo" => ChannelKind::Fifo,
        "blackboard" => ChannelKind::Blackboard,
        other => {
            return Err(p.err(format!("expected 'fifo' or 'blackboard', found {other:?}")))
        }
    };
    let name = p.expect_ident()?;
    p.expect_punct(':')?;
    let writer = p.expect_ident()?;
    match p.next() {
        Some(Tok::Arrow) => {}
        other => return Err(p.err(format!("expected '->', found {other:?}"))),
    }
    let reader = p.expect_ident()?;
    let writer_id = *processes
        .get(&writer)
        .ok_or_else(|| p.err(format!("unknown process {writer:?}")))?;
    let reader_id = *processes
        .get(&reader)
        .ok_or_else(|| p.err(format!("unknown process {reader:?}")))?;
    let mut spec = ChannelSpec::new(name.clone(), writer_id, reader_id, kind);
    if let Some(Tok::Ident(kw)) = p.peek() {
        if kw == "init" {
            p.pos += 1;
            let value = match p.next() {
                Some(Tok::Number(n)) => Value::Int(n as i64),
                Some(Tok::Float(f)) => Value::Float(f),
                other => return Err(p.err(format!("expected an init value, found {other:?}"))),
            };
            spec = spec.with_initial(value);
        }
    }
    p.expect_punct(';')?;
    Ok((name, spec))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use crate::JobCtx;

    const FIG1_SRC: &str = r#"
        # The running example of the paper, in the FPPN language.
        network fig1 {
            process InputA  periodic(T = 200ms) { input sample; }
            process FilterB periodic(T = 200ms);
            process FilterA periodic(T = 100ms);
            process OutputA periodic(T = 200ms) { output out1; }
            process NormA   periodic(T = 200ms);
            process CoefB   sporadic(m = 2, T = 700ms);
            process OutputB periodic(T = 100ms) { output out2; }

            channel fifo       c_in_a    : InputA  -> FilterA;
            channel fifo       c_in_b    : InputA  -> FilterB;
            channel fifo       c_a_norm  : FilterA -> NormA;
            channel blackboard c_feedback: NormA   -> FilterA init 0.5;
            channel fifo       c_norm_out: NormA   -> OutputA;
            channel blackboard c_coef    : CoefB   -> FilterB init 1.0;
            channel blackboard c_b_out   : FilterB -> OutputB;

            priority InputA  -> FilterA;
            priority InputA  -> FilterB;
            priority InputA  -> NormA;
            priority FilterA -> NormA;
            priority NormA   -> OutputA;
            priority CoefB   -> FilterB;
            priority FilterB -> OutputB;
        }
    "#;

    #[test]
    fn parses_the_fig1_network() {
        let parsed = parse_network(FIG1_SRC).unwrap();
        assert_eq!(parsed.name(), "fig1");
        assert_eq!(parsed.process_names().count(), 7);
        let (net, _) = parsed.build().unwrap();
        assert_eq!(net.process_count(), 7);
        assert_eq!(net.channels().len(), 7);
        let coef = net.process_by_name("CoefB").unwrap();
        assert_eq!(net.process(coef).event().kind(), EventKind::Sporadic);
        assert_eq!(net.process(coef).event().burst(), 2);
        assert_eq!(net.process(coef).event().period(), TimeQ::from_ms(700));
        assert_eq!(net.user_of(coef), Some(net.process_by_name("FilterB").unwrap()));
        // Initial value survived.
        let fb = net.channel_by_name("c_feedback").unwrap();
        assert_eq!(net.channel(fb).initial(), Some(&Value::Float(0.5)));
    }

    #[test]
    fn behaviors_attach_by_name() {
        let mut parsed = parse_network(
            "network t { process a periodic(T = 10ms); process b periodic(T = 10ms); \
             channel fifo c : a -> b; priority a -> b; }",
        )
        .unwrap();
        let ch = parsed.channel("c").unwrap();
        parsed
            .behavior("a", move || {
                Box::new(move |ctx: &mut JobCtx<'_>| ctx.write(ch, Value::Int(ctx.k() as i64)))
            })
            .unwrap();
        assert!(parsed.behavior("zzz", || Box::new(|_: &mut JobCtx<'_>| {})).is_err());
        let (net, bank) = parsed.build().unwrap();
        let mut behaviors = bank.instantiate();
        let run = crate::run_zero_delay(
            &net,
            &mut behaviors,
            &crate::Stimuli::new(),
            TimeQ::from_ms(30),
            crate::JobOrdering::default(),
        )
        .unwrap();
        assert_eq!(
            run.observables.channels[0],
            vec![Value::Int(1), Value::Int(2), Value::Int(3)]
        );
    }

    #[test]
    fn time_units_and_fractions() {
        let parsed = parse_network(
            "network t { process a periodic(T = 2s, d = 93/7ms, phase = 500us); }",
        )
        .unwrap();
        let (net, _) = parsed.build().unwrap();
        let e = net.process(ProcessId::from_index(0)).event().clone();
        assert_eq!(e.period(), TimeQ::from_secs(2));
        assert_eq!(e.deadline(), TimeQ::new(93, 7));
        assert_eq!(e.phase(), TimeQ::new(1, 2));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let src = "network t {\n  process a periodic(T = 10ms);\n  chanel oops;\n}";
        let err = parse_network(src).unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.to_string().contains("line 3"));
    }

    #[test]
    fn unknown_process_in_channel_is_rejected() {
        let err = parse_network(
            "network t { process a periodic(T = 1ms); channel fifo c : a -> ghost; }",
        )
        .unwrap_err();
        assert!(err.message.contains("ghost"));
    }

    #[test]
    fn validation_still_applies_after_parsing() {
        // A channel without priority: parsing succeeds, build rejects.
        let parsed = parse_network(
            "network t { process a periodic(T = 1ms); process b periodic(T = 1ms); \
             channel fifo c : a -> b; }",
        )
        .unwrap();
        assert!(matches!(
            parsed.build(),
            Err(NetworkError::MissingPriority { .. })
        ));
    }

    #[test]
    fn comments_and_negative_numbers() {
        let parsed = parse_network(
            "# header\nnetwork t { process a periodic(T = 5ms); \
             channel blackboard c : a -> a init -3; }",
        )
        .unwrap();
        let (net, _) = parsed.build().unwrap();
        let c = net.channel_by_name("c").unwrap();
        assert_eq!(net.channel(c).initial(), Some(&Value::Int(-3)));
    }
}
