//! Event generators: multi-periodic and sporadic invocation sources (§II-A).
//!
//! An event generator is characterized by a burst size `m_e`, a period
//! `T_e` and a relative deadline `d_e`. A *multi-periodic* generator emits
//! bursts of `m_e` simultaneous events at times `0, T_e, 2T_e, …`; a
//! *sporadic* generator emits at most `m_e` events in any half-closed
//! interval of length `T_e`.

use std::fmt;

use fppn_time::TimeQ;

use crate::error::NetworkError;

/// Whether an event generator is time-triggered or event-triggered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// Bursts of `m` invocations at `phase, phase+T, phase+2T, …`.
    Periodic,
    /// At most `m` invocations in any half-closed window of length `T`;
    /// concrete arrival times come from a [`SporadicTrace`].
    Sporadic,
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EventKind::Periodic => write!(f, "periodic"),
            EventKind::Sporadic => write!(f, "sporadic"),
        }
    }
}

/// Static description of an event generator (`e` with `m_e`, `T_e`, `d_e`).
///
/// # Examples
///
/// ```
/// use fppn_core::{EventKind, EventSpec};
/// use fppn_time::TimeQ;
///
/// // CoefB from Fig. 1: sporadic, 2 events per 700 ms, implicit deadline.
/// let coef_b = EventSpec::sporadic(2, TimeQ::from_ms(700));
/// assert_eq!(coef_b.kind(), EventKind::Sporadic);
/// assert_eq!(coef_b.deadline(), TimeQ::from_ms(700));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct EventSpec {
    kind: EventKind,
    burst: u32,
    period: TimeQ,
    deadline: TimeQ,
    phase: TimeQ,
}

impl EventSpec {
    /// A periodic generator with burst size 1 and implicit deadline
    /// (`d = T`), the common case in the paper's applications.
    pub fn periodic(period: TimeQ) -> Self {
        Self::multi_periodic(1, period)
    }

    /// A multi-periodic generator with burst size `m` and implicit deadline.
    pub fn multi_periodic(burst: u32, period: TimeQ) -> Self {
        EventSpec {
            kind: EventKind::Periodic,
            burst,
            period,
            deadline: period,
            phase: TimeQ::ZERO,
        }
    }

    /// A sporadic generator: at most `burst` events per half-closed window
    /// of length `period`, with implicit deadline.
    pub fn sporadic(burst: u32, period: TimeQ) -> Self {
        EventSpec {
            kind: EventKind::Sporadic,
            burst,
            period,
            deadline: period,
            phase: TimeQ::ZERO,
        }
    }

    /// Overrides the relative deadline `d_e` (constrained or arbitrary).
    #[must_use]
    pub fn with_deadline(mut self, deadline: TimeQ) -> Self {
        self.deadline = deadline;
        self
    }

    /// Offsets the first burst of a periodic generator (an extension; the
    /// paper's generators all start at time 0). Ignored for sporadics.
    #[must_use]
    pub fn with_phase(mut self, phase: TimeQ) -> Self {
        self.phase = phase;
        self
    }

    /// Validates the parameters: `m ≥ 1`, `T > 0`, `d > 0`, `phase ≥ 0`.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::InvalidEvent`] describing the first violated
    /// constraint.
    pub fn validate(&self, context: &str) -> Result<(), NetworkError> {
        let fail = |what: &str| {
            Err(NetworkError::InvalidEvent {
                process: context.to_owned(),
                reason: what.to_owned(),
            })
        };
        if self.burst == 0 {
            return fail("burst size m must be at least 1");
        }
        if !self.period.is_positive() {
            return fail("period T must be strictly positive");
        }
        if !self.deadline.is_positive() {
            return fail("deadline d must be strictly positive");
        }
        if self.phase.is_negative() {
            return fail("phase must be non-negative");
        }
        Ok(())
    }

    /// The generator kind.
    pub fn kind(&self) -> EventKind {
        self.kind
    }

    /// The burst size `m_e`.
    pub fn burst(&self) -> u32 {
        self.burst
    }

    /// The period (periodic) or minimal window (sporadic) `T_e`.
    pub fn period(&self) -> TimeQ {
        self.period
    }

    /// The relative deadline `d_e`.
    pub fn deadline(&self) -> TimeQ {
        self.deadline
    }

    /// The release offset of the first periodic burst.
    pub fn phase(&self) -> TimeQ {
        self.phase
    }

    /// Whether the generator is sporadic.
    pub fn is_sporadic(&self) -> bool {
        self.kind == EventKind::Sporadic
    }

    /// Invocation timestamps of a periodic generator in `[0, horizon)`,
    /// with each burst expanded to `m` entries.
    ///
    /// Returns an empty vector for sporadic generators (their arrivals come
    /// from a [`SporadicTrace`]).
    pub fn periodic_invocations(&self, horizon: TimeQ) -> Vec<TimeQ> {
        let mut out = Vec::new();
        if self.kind != EventKind::Periodic {
            return out;
        }
        let mut t = self.phase;
        while t < horizon {
            for _ in 0..self.burst {
                out.push(t);
            }
            t += self.period;
        }
        out
    }
}

/// A concrete arrival-time sequence for one sporadic generator.
///
/// The trace is non-decreasing and must satisfy the sporadic constraint: at
/// most `m` arrivals in any half-closed interval of length `T` — checked by
/// [`SporadicTrace::validate_against`]. Simultaneous arrivals are allowed
/// (they model a burst) as long as the window constraint holds.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SporadicTrace {
    arrivals: Vec<TimeQ>,
}

impl SporadicTrace {
    /// An empty trace: the sporadic event never fires.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Builds a trace from arrival timestamps, sorting them.
    pub fn new(mut arrivals: Vec<TimeQ>) -> Self {
        arrivals.sort();
        SporadicTrace { arrivals }
    }

    /// The arrival timestamps, non-decreasing.
    pub fn arrivals(&self) -> &[TimeQ] {
        &self.arrivals
    }

    /// The number of arrivals.
    pub fn len(&self) -> usize {
        self.arrivals.len()
    }

    /// Whether the event never fires in this trace.
    pub fn is_empty(&self) -> bool {
        self.arrivals.is_empty()
    }

    /// Checks the trace against a sporadic generator's `(m, T)` constraint
    /// and non-negativity of the timestamps.
    ///
    /// The paper's constraint is "at most `m_e` events can occur in any
    /// half-closed interval of length `T_e`"; equivalently, arrivals `i` and
    /// `i + m` must be at least `T` apart.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::SporadicViolation`] naming the first window
    /// that overflows.
    pub fn validate_against(&self, spec: &EventSpec, context: &str) -> Result<(), NetworkError> {
        let m = spec.burst() as usize;
        if let Some(first) = self.arrivals.first() {
            if first.is_negative() {
                return Err(NetworkError::SporadicViolation {
                    process: context.to_owned(),
                    reason: format!("arrival at negative time {first}"),
                });
            }
        }
        for w in self.arrivals.windows(m + 1) {
            let (a, b) = (w[0], w[m]);
            // m+1 arrivals inside a half-closed window of length T exist
            // iff b - a < T.
            if b - a < spec.period() {
                return Err(NetworkError::SporadicViolation {
                    process: context.to_owned(),
                    reason: format!(
                        "{} arrivals within window [{a}, {b}] shorter than T = {}",
                        m + 1,
                        spec.period()
                    ),
                });
            }
        }
        Ok(())
    }

    /// The arrivals that fall in `[from, to)`.
    pub fn arrivals_in(&self, from: TimeQ, to: TimeQ) -> &[TimeQ] {
        let lo = self.arrivals.partition_point(|t| *t < from);
        let hi = self.arrivals.partition_point(|t| *t < to);
        &self.arrivals[lo..hi]
    }
}

impl FromIterator<TimeQ> for SporadicTrace {
    fn from_iter<I: IntoIterator<Item = TimeQ>>(iter: I) -> Self {
        SporadicTrace::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: i64) -> TimeQ {
        TimeQ::from_ms(v)
    }

    #[test]
    fn periodic_invocations_expand_bursts() {
        let e = EventSpec::multi_periodic(2, ms(100));
        assert_eq!(
            e.periodic_invocations(ms(250)),
            vec![ms(0), ms(0), ms(100), ms(100), ms(200), ms(200)]
        );
        // Horizon is half-open.
        assert_eq!(e.periodic_invocations(ms(200)).len(), 4);
    }

    #[test]
    fn phase_shifts_first_burst() {
        let e = EventSpec::periodic(ms(100)).with_phase(ms(30));
        assert_eq!(e.periodic_invocations(ms(250)), vec![ms(30), ms(130), ms(230)]);
    }

    #[test]
    fn sporadic_has_no_periodic_invocations() {
        let e = EventSpec::sporadic(2, ms(700));
        assert!(e.periodic_invocations(ms(10_000)).is_empty());
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        assert!(EventSpec::periodic(ms(0)).validate("p").is_err());
        assert!(EventSpec::multi_periodic(0, ms(10)).validate("p").is_err());
        assert!(EventSpec::periodic(ms(10))
            .with_deadline(ms(0))
            .validate("p")
            .is_err());
        assert!(EventSpec::periodic(ms(10))
            .with_phase(ms(-1))
            .validate("p")
            .is_err());
        assert!(EventSpec::sporadic(2, ms(700)).validate("p").is_ok());
    }

    #[test]
    fn implicit_deadline_equals_period() {
        assert_eq!(EventSpec::periodic(ms(250)).deadline(), ms(250));
        assert_eq!(
            EventSpec::periodic(ms(250)).with_deadline(ms(100)).deadline(),
            ms(100)
        );
    }

    #[test]
    fn sporadic_trace_window_constraint() {
        let spec = EventSpec::sporadic(2, ms(700));
        // 2 arrivals 1 ms apart: fine (m = 2).
        let t = SporadicTrace::new(vec![ms(0), ms(1)]);
        assert!(t.validate_against(&spec, "p").is_ok());
        // 3 arrivals within 700 ms: violation.
        let t = SporadicTrace::new(vec![ms(0), ms(1), ms(699)]);
        assert!(t.validate_against(&spec, "p").is_err());
        // Third arrival exactly T after the first: allowed (half-closed).
        let t = SporadicTrace::new(vec![ms(0), ms(1), ms(700)]);
        assert!(t.validate_against(&spec, "p").is_ok());
        // Negative arrival: rejected.
        let t = SporadicTrace::new(vec![ms(-5)]);
        assert!(t.validate_against(&spec, "p").is_err());
    }

    #[test]
    fn trace_is_sorted_and_sliceable() {
        let t: SporadicTrace = [ms(300), ms(100), ms(200)].into_iter().collect();
        assert_eq!(t.arrivals(), &[ms(100), ms(200), ms(300)]);
        assert_eq!(t.arrivals_in(ms(100), ms(300)), &[ms(100), ms(200)]);
        assert_eq!(t.arrivals_in(ms(301), ms(400)), &[] as &[TimeQ]);
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
        assert!(SporadicTrace::empty().is_empty());
    }
}
