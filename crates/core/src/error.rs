//! Error types for network construction and execution.

use std::error::Error;
use std::fmt;

/// Errors detected while building or validating an FPPN network.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetworkError {
    /// A process name is used twice (names must be unique for reporting).
    DuplicateProcessName {
        /// The offending name.
        name: String,
    },
    /// An event generator has invalid parameters.
    InvalidEvent {
        /// The owning process name.
        process: String,
        /// Which constraint failed.
        reason: String,
    },
    /// The functional-priority graph `(P, FP)` has a cycle; Def. 2.1
    /// requires it to be a DAG.
    PriorityCycle {
        /// Process names on one detected cycle, in order.
        cycle: Vec<String>,
    },
    /// Two distinct processes share a channel but are not related by a
    /// functional-priority edge (Def. 2.1: `(p1,p2) ∈ C ⇒ p1→p2 ∨ p2→p1`).
    MissingPriority {
        /// The channel name.
        channel: String,
        /// Writer process name.
        writer: String,
        /// Reader process name.
        reader: String,
    },
    /// Both `(p1, p2)` and `(p2, p1)` are in FP, which would be a 2-cycle.
    ContradictoryPriority {
        /// First process name.
        a: String,
        /// Second process name.
        b: String,
    },
    /// A functional-priority self-loop `p → p` was requested.
    SelfPriority {
        /// The process name.
        process: String,
    },
    /// A sporadic arrival trace violates its `(m, T)` constraint.
    SporadicViolation {
        /// The owning process name.
        process: String,
        /// Which window overflowed.
        reason: String,
    },
    /// An id referenced a process that does not exist in this network.
    UnknownProcess {
        /// The dangling index.
        index: usize,
    },
}

impl fmt::Display for NetworkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetworkError::DuplicateProcessName { name } => {
                write!(f, "duplicate process name {name:?}")
            }
            NetworkError::InvalidEvent { process, reason } => {
                write!(f, "invalid event generator for process {process:?}: {reason}")
            }
            NetworkError::PriorityCycle { cycle } => {
                write!(f, "functional priority graph has a cycle: {}", cycle.join(" -> "))
            }
            NetworkError::MissingPriority {
                channel,
                writer,
                reader,
            } => write!(
                f,
                "channel {channel:?} connects {writer:?} and {reader:?} \
                 but no functional priority relates them"
            ),
            NetworkError::ContradictoryPriority { a, b } => {
                write!(f, "both {a:?} -> {b:?} and {b:?} -> {a:?} are in FP")
            }
            NetworkError::SelfPriority { process } => {
                write!(f, "functional priority self-loop on process {process:?}")
            }
            NetworkError::SporadicViolation { process, reason } => {
                write!(f, "sporadic trace for process {process:?} violates (m, T): {reason}")
            }
            NetworkError::UnknownProcess { index } => {
                write!(f, "unknown process index {index}")
            }
        }
    }
}

impl Error for NetworkError {}

/// Errors raised while executing behaviors (interpreter faults, access
/// violations surfaced as values rather than panics where recoverable).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ExecError {
    /// A behavior accessed a channel it is not an endpoint of.
    AccessViolation {
        /// The executing process name.
        process: String,
        /// What was attempted.
        detail: String,
    },
    /// An interpreted automaton got stuck: no transition enabled outside
    /// the initial location.
    AutomatonStuck {
        /// The executing process name.
        process: String,
        /// Location where it is stuck.
        location: String,
    },
    /// An interpreted automaton is non-deterministic: several transitions
    /// enabled at once (Def. 2.2 requires a deterministic automaton).
    AutomatonNondeterministic {
        /// The executing process name.
        process: String,
        /// Location with multiple enabled transitions.
        location: String,
    },
    /// An automaton exceeded the step bound within a single job run
    /// (livelock guard).
    AutomatonDiverged {
        /// The executing process name.
        process: String,
        /// The configured step bound.
        bound: usize,
    },
    /// Expression evaluation failed (type error, unknown variable, …).
    Eval {
        /// The executing process name.
        process: String,
        /// Diagnostic message.
        detail: String,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::AccessViolation { process, detail } => {
                write!(f, "process {process:?}: channel access violation: {detail}")
            }
            ExecError::AutomatonStuck { process, location } => {
                write!(f, "process {process:?}: automaton stuck in location {location:?}")
            }
            ExecError::AutomatonNondeterministic { process, location } => write!(
                f,
                "process {process:?}: multiple transitions enabled in location {location:?} \
                 (automata must be deterministic)"
            ),
            ExecError::AutomatonDiverged { process, bound } => {
                write!(f, "process {process:?}: exceeded {bound} steps in one job run")
            }
            ExecError::Eval { process, detail } => {
                write!(f, "process {process:?}: evaluation error: {detail}")
            }
        }
    }
}

impl Error for ExecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = NetworkError::MissingPriority {
            channel: "c1".into(),
            writer: "A".into(),
            reader: "B".into(),
        };
        let s = e.to_string();
        assert!(s.contains("c1") && s.contains('A') && s.contains('B'));

        let e = ExecError::AutomatonNondeterministic {
            process: "p".into(),
            location: "l0".into(),
        };
        assert!(e.to_string().contains("deterministic"));
    }

    #[test]
    fn errors_are_std_errors() {
        fn takes_err<E: Error + Send + Sync + 'static>(_e: E) {}
        takes_err(NetworkError::UnknownProcess { index: 3 });
        takes_err(ExecError::AutomatonDiverged {
            process: "p".into(),
            bound: 10,
        });
    }
}
