//! Typed indices for processes, channels and external ports.

use std::fmt;

/// Identifies a process within one [`Fppn`](crate::Fppn) network.
///
/// Process ids are dense indices assigned in creation order by the
/// [`FppnBuilder`](crate::FppnBuilder).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcessId(pub(crate) u32);

impl ProcessId {
    /// The dense index of this process.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `ProcessId` from a dense index.
    ///
    /// Prefer keeping ids returned by the builder; this constructor exists
    /// for iteration helpers and (de)serialization.
    pub const fn from_index(index: usize) -> Self {
        ProcessId(index as u32)
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// Identifies an internal channel within one [`Fppn`](crate::Fppn) network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ChannelId(pub(crate) u32);

impl ChannelId {
    /// The dense index of this channel.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `ChannelId` from a dense index.
    pub const fn from_index(index: usize) -> Self {
        ChannelId(index as u32)
    }
}

impl fmt::Display for ChannelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C{}", self.0)
    }
}

/// Identifies an external input or output port of a process.
///
/// Ports are indexed per process, in declaration order (`0, 1, …`). The
/// paper partitions the external channels `I` and `O` among the event
/// generators (`I_e`, `O_e`); here each process declares its own port lists,
/// which realizes that partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PortId(pub(crate) u32);

impl PortId {
    /// The per-process dense index of this port.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `PortId` from a per-process index.
    pub const fn from_index(index: usize) -> Self {
        PortId(index as u32)
    }
}

impl fmt::Display for PortId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "port{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_index() {
        assert_eq!(ProcessId::from_index(3).to_string(), "P3");
        assert_eq!(ChannelId::from_index(1).to_string(), "C1");
        assert_eq!(PortId::from_index(0).to_string(), "port0");
        assert_eq!(ProcessId::from_index(9).index(), 9);
    }

    #[test]
    fn ordering_follows_indices() {
        assert!(ProcessId::from_index(1) < ProcessId::from_index(2));
    }
}
