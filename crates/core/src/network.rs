//! The FPPN network: processes, channels and the functional-priority DAG
//! (Def. 2.1), with static validation.

use std::collections::{BTreeMap, BTreeSet};

use fppn_time::{hyperperiod, TimeQ};

use crate::channel::{ChannelKind, ChannelSpec};
use crate::error::NetworkError;
use crate::event::EventKind;
use crate::ids::{ChannelId, ProcessId};
use crate::process::{BehaviorFactory, BoxedBehavior, ProcessSpec};

/// A validated Fixed-Priority Process Network.
///
/// `Fppn` is the static model only — process specs, channel specs and the
/// functional-priority relation. Behaviors are kept separately in a
/// [`BehaviorBank`] so that the same network can be analyzed (task-graph
/// derivation, scheduling) without executable code and executed repeatedly
/// from fresh state.
///
/// Construct through [`FppnBuilder`]; [`FppnBuilder::build`] performs the
/// Def. 2.1 well-formedness checks:
///
/// * the functional-priority graph `(P, FP)` is acyclic;
/// * every channel between two *distinct* processes has its endpoints
///   related by a direct FP edge (`(p1,p2) ∈ C ⇒ p1→p2 ∨ p2→p1`);
///   self-loop channels are exempt because jobs of one process are already
///   totally ordered by the semantics;
/// * event-generator parameters are sane (`m ≥ 1`, `T > 0`, `d > 0`).
#[derive(Debug, Clone)]
pub struct Fppn {
    processes: Vec<ProcessSpec>,
    channels: Vec<ChannelSpec>,
    fp_edges: BTreeSet<(u32, u32)>,
    /// Rank of each process in a fixed linearization of the FP DAG; used to
    /// order simultaneous invocations deterministically.
    topo_rank: Vec<u32>,
}

impl Fppn {
    /// The process descriptions, indexed by [`ProcessId`].
    pub fn processes(&self) -> &[ProcessSpec] {
        &self.processes
    }

    /// The channel descriptions, indexed by [`ChannelId`].
    pub fn channels(&self) -> &[ChannelSpec] {
        &self.channels
    }

    /// The number of processes.
    pub fn process_count(&self) -> usize {
        self.processes.len()
    }

    /// The spec of one process.
    ///
    /// # Panics
    ///
    /// Panics if `pid` does not belong to this network.
    pub fn process(&self, pid: ProcessId) -> &ProcessSpec {
        &self.processes[pid.index()]
    }

    /// The spec of one channel.
    ///
    /// # Panics
    ///
    /// Panics if `ch` does not belong to this network.
    pub fn channel(&self, ch: ChannelId) -> &ChannelSpec {
        &self.channels[ch.index()]
    }

    /// Iterates over `(id, spec)` pairs for all processes.
    pub fn process_ids(&self) -> impl Iterator<Item = ProcessId> + '_ {
        (0..self.processes.len()).map(ProcessId::from_index)
    }

    /// Looks up a process by name.
    pub fn process_by_name(&self, name: &str) -> Option<ProcessId> {
        self.processes
            .iter()
            .position(|p| p.name() == name)
            .map(ProcessId::from_index)
    }

    /// Looks up a channel by name.
    pub fn channel_by_name(&self, name: &str) -> Option<ChannelId> {
        self.channels
            .iter()
            .position(|c| c.name() == name)
            .map(ChannelId::from_index)
    }

    /// Whether `(a, b) ∈ FP`, i.e. `a → b` (a has functional priority
    /// over b).
    pub fn has_priority(&self, a: ProcessId, b: ProcessId) -> bool {
        self.fp_edges.contains(&(a.0, b.0))
    }

    /// The paper's `p_a ⋈ p_b`: the two processes are related by FP in
    /// either direction.
    pub fn related(&self, a: ProcessId, b: ProcessId) -> bool {
        self.has_priority(a, b) || self.has_priority(b, a)
    }

    /// All FP edges `(higher, lower)`.
    pub fn priority_edges(&self) -> impl Iterator<Item = (ProcessId, ProcessId)> + '_ {
        self.fp_edges
            .iter()
            .map(|&(a, b)| (ProcessId(a), ProcessId(b)))
    }

    /// The rank of `pid` in the fixed FP linearization used to order
    /// simultaneous invocations: if `a → b` then
    /// `topo_rank(a) < topo_rank(b)`.
    pub fn topo_rank(&self, pid: ProcessId) -> u32 {
        self.topo_rank[pid.index()]
    }

    /// Channels for which `pid` is the reader.
    pub fn inputs_of(&self, pid: ProcessId) -> impl Iterator<Item = ChannelId> + '_ {
        self.channels
            .iter()
            .enumerate()
            .filter(move |(_, c)| c.reader() == pid)
            .map(|(i, _)| ChannelId::from_index(i))
    }

    /// Channels for which `pid` is the writer.
    pub fn outputs_of(&self, pid: ProcessId) -> impl Iterator<Item = ChannelId> + '_ {
        self.channels
            .iter()
            .enumerate()
            .filter(move |(_, c)| c.writer() == pid)
            .map(|(i, _)| ChannelId::from_index(i))
    }

    /// The distinct processes connected to `pid` by at least one channel
    /// (excluding `pid` itself).
    pub fn channel_neighbors(&self, pid: ProcessId) -> Vec<ProcessId> {
        let mut out = BTreeSet::new();
        for c in &self.channels {
            if c.writer() == pid && c.reader() != pid {
                out.insert(c.reader());
            }
            if c.reader() == pid && c.writer() != pid {
                out.insert(c.writer());
            }
        }
        out.into_iter().collect()
    }

    /// For a sporadic process, its *user* `u(p)` in the schedulable
    /// subclass of §III-A: the unique periodic process it shares a channel
    /// with. Returns `None` if `pid` is not sporadic, has no channel
    /// neighbor, more than one, or a sporadic one.
    pub fn user_of(&self, pid: ProcessId) -> Option<ProcessId> {
        if self.process(pid).event().kind() != EventKind::Sporadic {
            return None;
        }
        match self.channel_neighbors(pid).as_slice() {
            [u] if self.process(*u).event().kind() == EventKind::Periodic => Some(*u),
            _ => None,
        }
    }

    /// Feeds the complete static definition of this network into a stable
    /// [`ContentHasher`] stream: every process (name, event-generator
    /// parameters, port lists), every channel (name, endpoints, kind,
    /// initial token, capacity) and every FP edge.
    ///
    /// Behaviors are *not* part of the stream — they live in the separate
    /// [`BehaviorBank`] and do not influence compile artifacts (task
    /// graph, schedule, slot templates), which is exactly what the hash
    /// keys. Two networks with equal static structure hash identically;
    /// any single mutation of that structure changes the stream.
    ///
    /// [`ContentHasher`]: fppn_time::ContentHasher
    pub fn content_hash_into(&self, h: &mut fppn_time::ContentHasher) {
        h.write_usize(self.processes.len());
        for p in &self.processes {
            let ev = p.event();
            h.write_str(p.name());
            h.write_u8(match ev.kind() {
                EventKind::Periodic => 0,
                EventKind::Sporadic => 1,
            });
            h.write_u32(ev.burst());
            h.write_time(ev.period());
            h.write_time(ev.deadline());
            h.write_time(ev.phase());
            h.write_usize(p.input_ports().len());
            for port in p.input_ports() {
                h.write_str(port);
            }
            h.write_usize(p.output_ports().len());
            for port in p.output_ports() {
                h.write_str(port);
            }
        }
        h.write_usize(self.channels.len());
        for c in &self.channels {
            h.write_str(c.name());
            h.write_usize(c.writer().index());
            h.write_usize(c.reader().index());
            h.write_u8(match c.kind() {
                ChannelKind::Fifo => 0,
                ChannelKind::Blackboard => 1,
            });
            match c.initial() {
                None => h.write_bool(false),
                Some(v) => {
                    h.write_bool(true);
                    v.content_hash_into(h);
                }
            }
            match c.capacity() {
                None => h.write_bool(false),
                Some(cap) => {
                    h.write_bool(true);
                    h.write_usize(cap.get());
                }
            }
        }
        h.write_usize(self.fp_edges.len());
        for &(a, b) in &self.fp_edges {
            h.write_u32(a);
            h.write_u32(b);
        }
    }

    /// The hyperperiod of the network after the sporadic→server transform:
    /// lcm of all periodic periods and of the user periods standing in for
    /// sporadic processes. Returns `None` if the network is empty or some
    /// sporadic process has no valid user.
    pub fn server_hyperperiod(&self) -> Option<TimeQ> {
        let mut periods = Vec::with_capacity(self.processes.len());
        for pid in self.process_ids() {
            let ev = self.process(pid).event();
            match ev.kind() {
                EventKind::Periodic => periods.push(ev.period()),
                EventKind::Sporadic => {
                    let user = self.user_of(pid)?;
                    periods.push(self.process(user).event().period());
                }
            }
        }
        hyperperiod(periods)
    }
}

/// Incremental constructor for [`Fppn`] networks (and their behaviors).
///
/// # Examples
///
/// ```
/// use fppn_core::{ChannelKind, EventSpec, FppnBuilder, ProcessSpec, Value};
/// use fppn_time::TimeQ;
///
/// # fn main() -> Result<(), fppn_core::NetworkError> {
/// let mut b = FppnBuilder::new();
/// let src = b.process(ProcessSpec::new("src", EventSpec::periodic(TimeQ::from_ms(100))));
/// let dst = b.process(ProcessSpec::new("dst", EventSpec::periodic(TimeQ::from_ms(100))));
/// let ch = b.channel("c", src, dst, ChannelKind::Fifo);
/// b.priority(src, dst); // required: src and dst share a channel
/// b.behavior(src, move || Box::new(move |ctx: &mut fppn_core::JobCtx<'_>| {
///     ctx.write(ch, Value::Int(ctx.k() as i64));
/// }));
/// let (net, _bank) = b.build()?;
/// assert_eq!(net.process_count(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Default)]
pub struct FppnBuilder {
    processes: Vec<ProcessSpec>,
    channels: Vec<ChannelSpec>,
    fp_edges: BTreeSet<(u32, u32)>,
    factories: BTreeMap<u32, BehaviorFactory>,
}

impl FppnBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a process and returns its id.
    pub fn process(&mut self, spec: ProcessSpec) -> ProcessId {
        let id = ProcessId(self.processes.len() as u32);
        self.processes.push(spec);
        id
    }

    /// Adds an internal channel from `writer` to `reader`.
    pub fn channel(
        &mut self,
        name: impl Into<String>,
        writer: ProcessId,
        reader: ProcessId,
        kind: ChannelKind,
    ) -> ChannelId {
        self.channel_spec(ChannelSpec::new(name, writer, reader, kind))
    }

    /// Adds a fully-configured channel spec (initial value, capacity).
    pub fn channel_spec(&mut self, spec: ChannelSpec) -> ChannelId {
        let id = ChannelId(self.channels.len() as u32);
        self.channels.push(spec);
        id
    }

    /// Declares the functional priority `higher → lower`.
    pub fn priority(&mut self, higher: ProcessId, lower: ProcessId) -> &mut Self {
        self.fp_edges.insert((higher.0, lower.0));
        self
    }

    /// Registers the behavior factory of a process. Executors instantiate a
    /// fresh behavior per run, so repeated runs start from identical state.
    pub fn behavior(
        &mut self,
        pid: ProcessId,
        factory: impl Fn() -> BoxedBehavior + Send + Sync + 'static,
    ) -> &mut Self {
        self.factories.insert(pid.0, Box::new(factory));
        self
    }

    /// Validates and freezes the network.
    ///
    /// # Errors
    ///
    /// Returns the first [`NetworkError`] found: duplicate names, invalid
    /// generator parameters, FP self-loops/2-cycles/cycles, or channels
    /// whose endpoints are unrelated by FP.
    pub fn build(self) -> Result<(Fppn, BehaviorBank), NetworkError> {
        let n = self.processes.len();
        // Unique names.
        let mut seen = BTreeSet::new();
        for p in &self.processes {
            if !seen.insert(p.name()) {
                return Err(NetworkError::DuplicateProcessName {
                    name: p.name().to_owned(),
                });
            }
        }
        // Generator parameters.
        for p in &self.processes {
            p.event().validate(p.name())?;
        }
        // Channel endpoints exist (ids are constructed by us, but specs can
        // be built manually via `channel_spec`).
        for c in &self.channels {
            for end in [c.writer(), c.reader()] {
                if end.index() >= n {
                    return Err(NetworkError::UnknownProcess { index: end.index() });
                }
            }
        }
        // FP sanity: endpoints exist, no self-loops, no 2-cycles.
        for &(a, b) in &self.fp_edges {
            if a as usize >= n || b as usize >= n {
                return Err(NetworkError::UnknownProcess {
                    index: a.max(b) as usize,
                });
            }
            if a == b {
                return Err(NetworkError::SelfPriority {
                    process: self.processes[a as usize].name().to_owned(),
                });
            }
            if self.fp_edges.contains(&(b, a)) {
                return Err(NetworkError::ContradictoryPriority {
                    a: self.processes[a as usize].name().to_owned(),
                    b: self.processes[b as usize].name().to_owned(),
                });
            }
        }
        // Channel coverage: distinct endpoints must be FP-related.
        for c in &self.channels {
            if c.is_self_loop() {
                continue;
            }
            let (w, r) = (c.writer().0, c.reader().0);
            if !self.fp_edges.contains(&(w, r)) && !self.fp_edges.contains(&(r, w)) {
                return Err(NetworkError::MissingPriority {
                    channel: c.name().to_owned(),
                    writer: self.processes[w as usize].name().to_owned(),
                    reader: self.processes[r as usize].name().to_owned(),
                });
            }
        }
        // Acyclicity + fixed linearization (Kahn, smallest id first so the
        // rank assignment is reproducible).
        let topo_rank = topological_ranks(n, &self.fp_edges).ok_or_else(|| {
            NetworkError::PriorityCycle {
                cycle: find_cycle(n, &self.fp_edges)
                    .into_iter()
                    .map(|i| self.processes[i].name().to_owned())
                    .collect(),
            }
        })?;

        let net = Fppn {
            processes: self.processes,
            channels: self.channels,
            fp_edges: self.fp_edges,
            topo_rank,
        };
        let bank = BehaviorBank {
            factories: into_factory_vec(self.factories, n),
        };
        Ok((net, bank))
    }
}

fn into_factory_vec(
    mut map: BTreeMap<u32, BehaviorFactory>,
    n: usize,
) -> Vec<Option<BehaviorFactory>> {
    (0..n as u32).map(|i| map.remove(&i)).collect()
}

/// Kahn's algorithm; returns per-node ranks or `None` on a cycle.
fn topological_ranks(n: usize, edges: &BTreeSet<(u32, u32)>) -> Option<Vec<u32>> {
    let mut indegree = vec![0usize; n];
    let mut succ: Vec<Vec<u32>> = vec![Vec::new(); n];
    for &(a, b) in edges {
        indegree[b as usize] += 1;
        succ[a as usize].push(b);
    }
    // BTreeSet as a priority queue keyed by node id => deterministic order.
    let mut ready: BTreeSet<u32> = (0..n as u32).filter(|&i| indegree[i as usize] == 0).collect();
    let mut rank = vec![0u32; n];
    let mut next_rank = 0u32;
    while let Some(&node) = ready.iter().next() {
        ready.remove(&node);
        rank[node as usize] = next_rank;
        next_rank += 1;
        for &s in &succ[node as usize] {
            indegree[s as usize] -= 1;
            if indegree[s as usize] == 0 {
                ready.insert(s);
            }
        }
    }
    (next_rank as usize == n).then_some(rank)
}

/// Finds one cycle in the FP graph (for the error message).
fn find_cycle(n: usize, edges: &BTreeSet<(u32, u32)>) -> Vec<usize> {
    let mut succ: Vec<Vec<usize>> = vec![Vec::new(); n];
    for &(a, b) in edges {
        succ[a as usize].push(b as usize);
    }
    // Iterative DFS with colors: 0 = white, 1 = on stack, 2 = done.
    let mut color = vec![0u8; n];
    let mut parent = vec![usize::MAX; n];
    for start in 0..n {
        if color[start] != 0 {
            continue;
        }
        let mut stack = vec![(start, 0usize)];
        color[start] = 1;
        while let Some(&mut (node, ref mut idx)) = stack.last_mut() {
            if *idx < succ[node].len() {
                let next = succ[node][*idx];
                *idx += 1;
                match color[next] {
                    0 => {
                        color[next] = 1;
                        parent[next] = node;
                        stack.push((next, 0));
                    }
                    1 => {
                        // Reconstruct node -> ... -> next -> node.
                        let mut cycle = vec![next];
                        let mut cur = node;
                        while cur != next {
                            cycle.push(cur);
                            cur = parent[cur];
                        }
                        cycle.reverse();
                        return cycle;
                    }
                    _ => {}
                }
            } else {
                color[node] = 2;
                stack.pop();
            }
        }
    }
    Vec::new()
}

/// Behavior factories for all processes of a network, in process-id order.
pub struct BehaviorBank {
    factories: Vec<Option<BehaviorFactory>>,
}

impl BehaviorBank {
    /// Instantiates a fresh behavior per process. Processes without a
    /// registered behavior get a no-op (useful for pure timing analysis).
    pub fn instantiate(&self) -> Vec<BoxedBehavior> {
        self.factories
            .iter()
            .map(|f| match f {
                Some(f) => f(),
                None => Box::new(|_: &mut crate::JobCtx<'_>| {}) as BoxedBehavior,
            })
            .collect()
    }

    /// Whether a behavior was registered for `pid`.
    pub fn has_behavior(&self, pid: ProcessId) -> bool {
        self.factories
            .get(pid.index())
            .map(Option::is_some)
            .unwrap_or(false)
    }
}

impl std::fmt::Debug for BehaviorBank {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BehaviorBank")
            .field("processes", &self.factories.len())
            .field(
                "with_behavior",
                &self.factories.iter().filter(|x| x.is_some()).count(),
            )
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventSpec;

    fn ms(v: i64) -> TimeQ {
        TimeQ::from_ms(v)
    }

    fn two_process_builder() -> (FppnBuilder, ProcessId, ProcessId) {
        let mut b = FppnBuilder::new();
        let a = b.process(ProcessSpec::new("a", EventSpec::periodic(ms(100))));
        let c = b.process(ProcessSpec::new("c", EventSpec::periodic(ms(200))));
        (b, a, c)
    }

    #[test]
    fn build_minimal_network() {
        let (mut b, a, c) = two_process_builder();
        b.channel("ch", a, c, ChannelKind::Fifo);
        b.priority(a, c);
        let (net, _) = b.build().unwrap();
        assert!(net.has_priority(a, c));
        assert!(!net.has_priority(c, a));
        assert!(net.related(a, c));
        assert!(net.topo_rank(a) < net.topo_rank(c));
        assert_eq!(net.process_by_name("c"), Some(c));
        assert_eq!(net.channel_by_name("ch"), Some(ChannelId::from_index(0)));
    }

    #[test]
    fn channel_without_priority_is_rejected() {
        let (mut b, a, c) = two_process_builder();
        b.channel("ch", a, c, ChannelKind::Fifo);
        match b.build() {
            Err(NetworkError::MissingPriority { channel, .. }) => assert_eq!(channel, "ch"),
            other => panic!("expected MissingPriority, got {other:?}"),
        }
    }

    #[test]
    fn self_loop_channel_needs_no_priority() {
        let mut b = FppnBuilder::new();
        let a = b.process(ProcessSpec::new("a", EventSpec::periodic(ms(100))));
        b.channel("state", a, a, ChannelKind::Blackboard);
        assert!(b.build().is_ok());
    }

    #[test]
    fn priority_cycle_is_rejected() {
        let mut b = FppnBuilder::new();
        let a = b.process(ProcessSpec::new("a", EventSpec::periodic(ms(1))));
        let c = b.process(ProcessSpec::new("c", EventSpec::periodic(ms(1))));
        let d = b.process(ProcessSpec::new("d", EventSpec::periodic(ms(1))));
        b.priority(a, c);
        b.priority(c, d);
        b.priority(d, a);
        match b.build() {
            Err(NetworkError::PriorityCycle { cycle }) => {
                assert_eq!(cycle.len(), 3);
            }
            other => panic!("expected PriorityCycle, got {other:?}"),
        }
    }

    #[test]
    fn contradictory_priority_is_rejected() {
        let (mut b, a, c) = two_process_builder();
        b.priority(a, c);
        b.priority(c, a);
        assert!(matches!(
            b.build(),
            Err(NetworkError::ContradictoryPriority { .. })
        ));
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut b = FppnBuilder::new();
        b.process(ProcessSpec::new("p", EventSpec::periodic(ms(1))));
        b.process(ProcessSpec::new("p", EventSpec::periodic(ms(1))));
        assert!(matches!(
            b.build(),
            Err(NetworkError::DuplicateProcessName { .. })
        ));
    }

    #[test]
    fn user_of_sporadic() {
        let mut b = FppnBuilder::new();
        let user = b.process(ProcessSpec::new("user", EventSpec::periodic(ms(200))));
        let cfg = b.process(ProcessSpec::new("cfg", EventSpec::sporadic(2, ms(700))));
        b.channel("c", cfg, user, ChannelKind::Blackboard);
        b.priority(cfg, user);
        let (net, _) = b.build().unwrap();
        assert_eq!(net.user_of(cfg), Some(user));
        assert_eq!(net.user_of(user), None);
        assert_eq!(net.server_hyperperiod(), Some(ms(200)));
    }

    #[test]
    fn sporadic_without_unique_user_has_none() {
        let mut b = FppnBuilder::new();
        let u1 = b.process(ProcessSpec::new("u1", EventSpec::periodic(ms(100))));
        let u2 = b.process(ProcessSpec::new("u2", EventSpec::periodic(ms(100))));
        let cfg = b.process(ProcessSpec::new("cfg", EventSpec::sporadic(1, ms(500))));
        b.channel("c1", cfg, u1, ChannelKind::Blackboard);
        b.channel("c2", cfg, u2, ChannelKind::Blackboard);
        b.priority(cfg, u1);
        b.priority(cfg, u2);
        let (net, _) = b.build().unwrap();
        assert_eq!(net.user_of(cfg), None);
        assert_eq!(net.server_hyperperiod(), None);
    }

    #[test]
    fn neighbors_and_port_queries() {
        let (mut b, a, c) = two_process_builder();
        let ch = b.channel("ch", a, c, ChannelKind::Fifo);
        b.priority(a, c);
        let (net, _) = b.build().unwrap();
        assert_eq!(net.channel_neighbors(a), vec![c]);
        assert_eq!(net.outputs_of(a).collect::<Vec<_>>(), vec![ch]);
        assert_eq!(net.inputs_of(c).collect::<Vec<_>>(), vec![ch]);
        assert_eq!(net.inputs_of(a).count(), 0);
    }

    #[test]
    fn behavior_bank_defaults_to_noop() {
        let (mut b, a, _) = two_process_builder();
        b.behavior(a, || Box::new(|_: &mut crate::JobCtx<'_>| {}));
        let (_, bank) = b.build().unwrap();
        assert!(bank.has_behavior(ProcessId::from_index(0)));
        assert!(!bank.has_behavior(ProcessId::from_index(1)));
        assert_eq!(bank.instantiate().len(), 2);
    }
}
