//! Data values carried by FPPN channels.

use std::fmt;

use fppn_time::TimeQ;

/// A dynamically-typed data sample exchanged over FPPN channels.
///
/// The FPPN model (Def. 2.1) parameterizes each channel with an alphabet
/// `Σ_c`; this enum is the union alphabet used by the interpreter and all
/// bundled applications. [`Value::Absent`] is the paper's "indicator of
/// non-availability of data" returned when reading an empty FIFO or an
/// uninitialized blackboard.
///
/// Equality is structural and **total** (floats compare by bit pattern), so
/// traces of values can be compared exactly when checking deterministic
/// execution (Prop. 2.1).
///
/// # Examples
///
/// ```
/// use fppn_core::Value;
///
/// let v = Value::List(vec![Value::Int(1), Value::Float(0.5)]);
/// assert_eq!(v, v.clone());
/// assert!(Value::Absent.is_absent());
/// ```
#[derive(Debug, Clone, Default)]
pub enum Value {
    /// Non-availability indicator: empty FIFO or uninitialized blackboard.
    #[default]
    Absent,
    /// A pure token with no payload.
    Unit,
    /// A boolean.
    Bool(bool),
    /// A 64-bit signed integer.
    Int(i64),
    /// A 64-bit IEEE float (equality compares bit patterns).
    Float(f64),
    /// An exact rational, typically a timestamp echoed through the dataflow.
    Time(TimeQ),
    /// A UTF-8 string.
    Str(String),
    /// An ordered list of values (used e.g. for complex numbers and vectors).
    List(Vec<Value>),
}

impl Value {
    /// Builds a complex number as a two-element list `[re, im]`.
    pub fn complex(re: f64, im: f64) -> Value {
        Value::List(vec![Value::Float(re), Value::Float(im)])
    }

    /// Whether this is the non-availability indicator.
    pub const fn is_absent(&self) -> bool {
        matches!(self, Value::Absent)
    }

    /// Whether a data sample is present (anything but [`Value::Absent`]).
    pub const fn is_present(&self) -> bool {
        !self.is_absent()
    }

    /// The integer payload, if this value is an [`Value::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The numeric payload widened to `f64`, if this value is numeric.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// The boolean payload, if this value is a [`Value::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(v) => Some(*v),
            _ => None,
        }
    }

    /// The list payload, if this value is a [`Value::List`].
    pub fn as_list(&self) -> Option<&[Value]> {
        match self {
            Value::List(v) => Some(v),
            _ => None,
        }
    }

    /// The `[re, im]` pair if this value was built by [`Value::complex`].
    pub fn as_complex(&self) -> Option<(f64, f64)> {
        match self.as_list()? {
            [re, im] => Some((re.as_float()?, im.as_float()?)),
            _ => None,
        }
    }

    /// Feeds this value into a stable [`ContentHasher`] stream.
    ///
    /// Used when hashing network definitions (channel initial tokens are
    /// part of the compile key). Mirrors the structural/total equality of
    /// the type: two equal values always produce identical streams, and
    /// every variant is tag-prefixed so distinct shapes cannot collide by
    /// concatenation.
    ///
    /// [`ContentHasher`]: fppn_time::ContentHasher
    pub fn content_hash_into(&self, h: &mut fppn_time::ContentHasher) {
        match self {
            Value::Absent => h.write_u8(0),
            Value::Unit => h.write_u8(1),
            Value::Bool(v) => {
                h.write_u8(2);
                h.write_bool(*v);
            }
            Value::Int(v) => {
                h.write_u8(3);
                h.write_u64(*v as u64);
            }
            Value::Float(v) => {
                h.write_u8(4);
                h.write_u64(v.to_bits());
            }
            Value::Time(v) => {
                h.write_u8(5);
                h.write_time(*v);
            }
            Value::Str(v) => {
                h.write_u8(6);
                h.write_str(v);
            }
            Value::List(v) => {
                h.write_u8(7);
                h.write_usize(v.len());
                for x in v {
                    x.content_hash_into(h);
                }
            }
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        use Value::*;
        match (self, other) {
            (Absent, Absent) | (Unit, Unit) => true,
            (Bool(a), Bool(b)) => a == b,
            (Int(a), Int(b)) => a == b,
            (Float(a), Float(b)) => a.to_bits() == b.to_bits(),
            (Time(a), Time(b)) => a == b,
            (Str(a), Str(b)) => a == b,
            (List(a), List(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        std::mem::discriminant(self).hash(state);
        match self {
            Value::Absent | Value::Unit => {}
            Value::Bool(v) => v.hash(state),
            Value::Int(v) => v.hash(state),
            Value::Float(v) => v.to_bits().hash(state),
            Value::Time(v) => v.hash(state),
            Value::Str(v) => v.hash(state),
            Value::List(v) => v.hash(state),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Absent => write!(f, "⊥"),
            Value::Unit => write!(f, "()"),
            Value::Bool(v) => write!(f, "{v}"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Time(v) => write!(f, "{v}"),
            Value::Str(v) => write!(f, "{v:?}"),
            Value::List(v) => {
                write!(f, "[")?;
                for (i, x) in v.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{x}")?;
                }
                write!(f, "]")
            }
        }
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<TimeQ> for Value {
    fn from(v: TimeQ) -> Self {
        Value::Time(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl From<Vec<Value>> for Value {
    fn from(v: Vec<Value>) -> Self {
        Value::List(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn float_equality_is_bitwise() {
        assert_eq!(Value::Float(0.5), Value::Float(0.5));
        assert_ne!(Value::Float(0.0), Value::Float(-0.0));
        assert_eq!(Value::Float(f64::NAN), Value::Float(f64::NAN));
    }

    #[test]
    fn presence() {
        assert!(Value::Absent.is_absent());
        assert!(Value::Unit.is_present());
        assert!(Value::Int(0).is_present());
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(7).as_int(), Some(7));
        assert_eq!(Value::Int(7).as_float(), Some(7.0));
        assert_eq!(Value::Float(2.5).as_float(), Some(2.5));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::Str("x".into()).as_int(), None);
        assert_eq!(Value::complex(1.0, -2.0).as_complex(), Some((1.0, -2.0)));
        assert_eq!(Value::Int(1).as_complex(), None);
    }

    #[test]
    fn hash_consistent_with_eq() {
        let a = Value::List(vec![Value::Int(1), Value::Float(2.0)]);
        let b = Value::List(vec![Value::Int(1), Value::Float(2.0)]);
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from(3i32), Value::Int(3));
        assert_eq!(Value::from(1.5), Value::Float(1.5));
        assert_eq!(Value::from("hi"), Value::Str("hi".into()));
        assert_eq!(Value::from(TimeQ::from_ms(5)), Value::Time(TimeQ::from_ms(5)));
    }

    #[test]
    fn display() {
        assert_eq!(Value::Absent.to_string(), "⊥");
        assert_eq!(Value::complex(1.0, 2.0).to_string(), "[1, 2]");
        assert_eq!(Value::Str("a".into()).to_string(), "\"a\"");
    }
}
