//! Sequential execution state: channel stores, stimuli and job running.
//!
//! [`ExecState`] is the shared substrate under the zero-delay reference
//! executor ([`crate::semantics`]) and the discrete-event simulator in
//! `fppn-sim`: both decide *when* and *in which order* jobs run, then call
//! [`ExecState::run_job`] to perform the data effects.

use std::collections::BTreeMap;

use fppn_time::TimeQ;

use crate::channel::ChannelState;
use crate::error::{ExecError, NetworkError};
use crate::event::SporadicTrace;
use crate::ids::{ChannelId, PortId, ProcessId};
use crate::intern::{ValueId, ValuePool};
use crate::network::Fppn;
use crate::process::{BoxedBehavior, DataAccess, JobCtx};
use crate::trace::{Action, JobRun, Observables, Trace};
use crate::value::Value;

/// External stimuli for one execution: input-stream samples per external
/// input port and arrival traces per sporadic process.
///
/// Prop. 2.1 states that the outputs are a function of exactly this data
/// (plus the network itself), so `Stimuli` is the complete input of every
/// execution backend.
#[derive(Debug, Clone, Default)]
pub struct Stimuli {
    inputs: BTreeMap<(ProcessId, PortId), Vec<Value>>,
    arrivals: BTreeMap<ProcessId, SporadicTrace>,
}

impl Stimuli {
    /// No inputs, no sporadic arrivals.
    pub fn new() -> Self {
        Self::default()
    }

    /// Supplies the sample stream of an external input port; the `k`-th job
    /// of the process reads sample `k` (1-based).
    pub fn input(&mut self, pid: ProcessId, port: PortId, samples: Vec<Value>) -> &mut Self {
        self.inputs.insert((pid, port), samples);
        self
    }

    /// Supplies the arrival trace of a sporadic process.
    pub fn arrivals(&mut self, pid: ProcessId, trace: SporadicTrace) -> &mut Self {
        self.arrivals.insert(pid, trace);
        self
    }

    /// Sample `[k]` of an input port, if the stream is long enough.
    ///
    /// Convenience wrapper over [`Stimuli::input_sample_ref`] that clones
    /// the sample; executors on the per-job hot path should prefer the
    /// reference accessor and clone only when a value is actually consumed.
    pub fn input_sample(&self, pid: ProcessId, port: PortId, k: u64) -> Option<Value> {
        self.input_sample_ref(pid, port, k).cloned()
    }

    /// Sample `[k]` of an input port by reference (no allocation), if the
    /// stream is long enough.
    pub fn input_sample_ref(&self, pid: ProcessId, port: PortId, k: u64) -> Option<&Value> {
        self.inputs
            .get(&(pid, port))
            .and_then(|s| s.get((k - 1) as usize))
    }

    /// The arrival trace registered for a sporadic process (empty trace if
    /// none was registered).
    ///
    /// Clones the whole trace; per-job/per-frame hot paths should use
    /// [`Stimuli::arrivals_of`] instead.
    pub fn arrival_trace(&self, pid: ProcessId) -> SporadicTrace {
        self.arrivals.get(&pid).cloned().unwrap_or_default()
    }

    /// The arrival trace of a sporadic process by reference, if one was
    /// registered.
    pub fn arrivals_of(&self, pid: ProcessId) -> Option<&SporadicTrace> {
        self.arrivals.get(&pid)
    }

    /// The arrival timestamps of a sporadic process (empty slice if no
    /// trace was registered) — the allocation-free view used by the
    /// resolution and clipping hot paths.
    pub fn arrival_times(&self, pid: ProcessId) -> &[TimeQ] {
        self.arrivals.get(&pid).map_or(&[], |t| t.arrivals())
    }

    /// Feeds the complete stimuli into a stable
    /// [`ContentHasher`](fppn_time::ContentHasher) stream.
    ///
    /// Prop. 2.1 makes `Stimuli` the entire run-specific input of an
    /// execution, so this hash (together with the compiled network's
    /// content hash and a config fingerprint) keys result caches: equal
    /// stimuli always produce identical streams. Both maps iterate in
    /// `BTreeMap` key order, and every section and entry is length- or
    /// id-prefixed, so structurally different stimuli cannot collide by
    /// concatenation.
    pub fn content_hash_into(&self, h: &mut fppn_time::ContentHasher) {
        h.write_usize(self.inputs.len());
        for (&(pid, port), samples) in &self.inputs {
            h.write_usize(pid.index());
            h.write_usize(port.index());
            h.write_usize(samples.len());
            for v in samples {
                v.content_hash_into(h);
            }
        }
        h.write_usize(self.arrivals.len());
        for (&pid, trace) in &self.arrivals {
            h.write_usize(pid.index());
            let times = trace.arrivals();
            h.write_usize(times.len());
            for &t in times {
                h.write_time(t);
            }
        }
    }

    /// Validates the stimuli against a network: arrival traces only for
    /// sporadic processes and each trace within its `(m, T)` constraint.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::SporadicViolation`] on the first offending
    /// trace.
    pub fn validate(&self, net: &Fppn) -> Result<(), NetworkError> {
        for (&pid, trace) in &self.arrivals {
            if pid.index() >= net.process_count() {
                return Err(NetworkError::UnknownProcess { index: pid.index() });
            }
            let spec = net.process(pid);
            if !spec.event().is_sporadic() {
                return Err(NetworkError::SporadicViolation {
                    process: spec.name().to_owned(),
                    reason: "arrival trace given for a non-sporadic process".to_owned(),
                });
            }
            trace.validate_against(spec.event(), spec.name())?;
        }
        Ok(())
    }
}

/// Sequential data store + job runner for one execution of a network.
///
/// Holds every channel's state, the external-output logs, the flat
/// channel-write log (the observables, as index records over an interned
/// [`ValuePool`] rather than nested value clones), per-process job counters
/// and (optionally) a full action [`Trace`].
pub struct ExecState<'n> {
    net: &'n Fppn,
    stimuli: &'n Stimuli,
    channels: Vec<ChannelState>,
    /// `(channel index, interned value)` per write, in global write order;
    /// materialized into per-channel sequences on demand.
    writes: Vec<(u32, ValueId)>,
    pool: ValuePool,
    outputs: BTreeMap<(ProcessId, PortId), Vec<(u64, Value)>>,
    job_counts: Vec<u64>,
    trace: Option<Trace>,
    current_actions: Vec<Action>,
}

impl<'n> ExecState<'n> {
    /// Creates a fresh execution state (all channels at their initial
    /// values, all job counters at zero). Trace recording is off; enable it
    /// with [`ExecState::record_trace`].
    pub fn new(net: &'n Fppn, stimuli: &'n Stimuli) -> Self {
        ExecState {
            channels: net.channels().iter().map(ChannelState::new).collect(),
            writes: Vec::new(),
            pool: ValuePool::new(),
            outputs: BTreeMap::new(),
            job_counts: vec![0; net.process_count()],
            trace: None,
            current_actions: Vec::new(),
            stimuli,
            net,
        }
    }

    /// Enables full action-trace recording.
    #[must_use]
    pub fn record_trace(mut self) -> Self {
        self.trace = Some(Trace::new());
        self
    }

    /// The network being executed.
    pub fn network(&self) -> &'n Fppn {
        self.net
    }

    /// The number of jobs of `pid` executed so far.
    pub fn job_count(&self, pid: ProcessId) -> u64 {
        self.job_counts[pid.index()]
    }

    /// Runs the next job of `pid` (incrementing its job counter) at
    /// timestamp `now`, using `behaviors[pid]`.
    ///
    /// Returns the 1-based job index `k` that was executed.
    ///
    /// # Errors
    ///
    /// Propagates behavior failures (automaton violations).
    pub fn run_next_job(
        &mut self,
        behaviors: &mut [BoxedBehavior],
        pid: ProcessId,
        now: TimeQ,
    ) -> Result<u64, ExecError> {
        let k = self.job_counts[pid.index()] + 1;
        self.run_job(behaviors, pid, k, now)?;
        Ok(k)
    }

    /// Runs job `p[k]` at timestamp `now`.
    ///
    /// `k` must be exactly one past the number of jobs of `pid` already
    /// executed: the model's same-process precedence means jobs of one
    /// process execute in invocation order.
    ///
    /// # Errors
    ///
    /// Propagates behavior failures.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of order — that is a scheduling-logic bug in
    /// the caller, not a recoverable condition.
    pub fn run_job(
        &mut self,
        behaviors: &mut [BoxedBehavior],
        pid: ProcessId,
        k: u64,
        now: TimeQ,
    ) -> Result<(), ExecError> {
        let expected = self.job_counts[pid.index()] + 1;
        assert_eq!(
            k, expected,
            "job {}[{k}] executed out of order (expected k = {expected})",
            self.net.process(pid).name()
        );
        self.job_counts[pid.index()] = k;
        self.current_actions.clear();
        let result = {
            let mut ctx_backend = AccessGuard { state: self };
            let mut ctx = JobCtx::new(&mut ctx_backend, pid, k, now);
            behaviors[pid.index()].on_job(&mut ctx)
        };
        if let Some(trace) = &mut self.trace {
            trace.push(JobRun {
                process: pid,
                k,
                invoked_at: now,
                actions: std::mem::take(&mut self.current_actions),
            });
        }
        result
    }

    /// Materializes the flat write log into per-channel value sequences.
    fn channel_sequences(&self) -> Vec<Vec<Value>> {
        let mut counts = vec![0usize; self.net.channels().len()];
        for &(c, _) in &self.writes {
            counts[c as usize] += 1;
        }
        let mut channels: Vec<Vec<Value>> =
            counts.iter().map(|&n| Vec::with_capacity(n)).collect();
        for &(c, id) in &self.writes {
            channels[c as usize].push(self.pool.resolve(id));
        }
        channels
    }

    /// The per-channel write logs and external-output logs, materialized
    /// from the interned write arena. Usable mid-execution; an executor
    /// done with the state should prefer [`ExecState::into_observables`],
    /// which moves the output logs instead of cloning them.
    pub fn observables(&self) -> Observables {
        Observables {
            channels: self.channel_sequences(),
            outputs: self
                .outputs
                .iter()
                .map(|(k, v)| (*k, v.clone()))
                .collect(),
        }
    }

    /// Consumes the state into its observables (no output-log clone).
    pub fn into_observables(self) -> Observables {
        self.into_parts().0
    }

    /// Consumes the state into its observables and recorded trace (if
    /// recording was enabled) — the end-of-run form of
    /// [`ExecState::observables`] + [`ExecState::trace`].
    pub fn into_parts(self) -> (Observables, Option<Trace>) {
        let channels = self.channel_sequences();
        (
            Observables {
                channels,
                outputs: self.outputs.into_iter().collect(),
            },
            self.trace,
        )
    }

    /// The recorded action trace, if recording was enabled.
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    /// Current state of one channel (for inspection/tests).
    pub fn channel_state(&self, ch: ChannelId) -> &ChannelState {
        &self.channels[ch.index()]
    }
}

/// Adapter implementing [`DataAccess`] with endpoint-ownership checks.
struct AccessGuard<'a, 'n> {
    state: &'a mut ExecState<'n>,
}

impl DataAccess for AccessGuard<'_, '_> {
    fn read_channel(&mut self, pid: ProcessId, ch: ChannelId) -> Option<Value> {
        let spec = self.state.net.channel(ch);
        assert!(
            spec.reader() == pid,
            "process {} read from channel {:?} whose reader is {}",
            self.state.net.process(pid).name(),
            spec.name(),
            self.state.net.process(spec.reader()).name()
        );
        let v = self.state.channels[ch.index()].read();
        if self.state.trace.is_some() {
            self.state.current_actions.push(Action::Read {
                channel: ch,
                value: v.clone(),
            });
        }
        v
    }

    fn write_channel(&mut self, pid: ProcessId, ch: ChannelId, value: Value) {
        let spec = self.state.net.channel(ch);
        assert!(
            spec.writer() == pid,
            "process {} wrote to channel {:?} whose writer is {}",
            self.state.net.process(pid).name(),
            spec.name(),
            self.state.net.process(spec.writer()).name()
        );
        if self.state.trace.is_some() {
            self.state.current_actions.push(Action::Write {
                channel: ch,
                value: value.clone(),
            });
        }
        // Log the interned id, then move the value into the channel store:
        // with tracing off the write path performs no clone at all.
        let id = self.state.pool.intern(&value);
        self.state.writes.push((ch.index() as u32, id));
        self.state.channels[ch.index()].write(value);
    }

    fn read_external(&mut self, pid: ProcessId, port: PortId, k: u64) -> Option<Value> {
        assert!(
            port.index() < self.state.net.process(pid).input_ports().len(),
            "process {} read from undeclared input {port}",
            self.state.net.process(pid).name()
        );
        // Reference lookup: the clone happens once, only for a present
        // sample, instead of once per call plus once per trace action.
        let v = self.state.stimuli.input_sample_ref(pid, port, k).cloned();
        if self.state.trace.is_some() {
            self.state.current_actions.push(Action::ReadInput {
                port,
                k,
                value: v.clone(),
            });
        }
        v
    }

    fn write_external(&mut self, pid: ProcessId, port: PortId, k: u64, value: Value) {
        assert!(
            port.index() < self.state.net.process(pid).output_ports().len(),
            "process {} wrote to undeclared output {port}",
            self.state.net.process(pid).name()
        );
        if self.state.trace.is_some() {
            self.state.current_actions.push(Action::WriteOutput {
                port,
                k,
                value: value.clone(),
            });
        }
        self.state
            .outputs
            .entry((pid, port))
            .or_default()
            .push((k, value));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::ChannelKind;
    use crate::event::EventSpec;
    use crate::network::FppnBuilder;
    use crate::process::ProcessSpec;

    fn ms(v: i64) -> TimeQ {
        TimeQ::from_ms(v)
    }

    /// src writes k², dst reads and forwards to its external output.
    fn pipeline() -> (Fppn, crate::network::BehaviorBank, ChannelId) {
        let mut b = FppnBuilder::new();
        let src = b.process(ProcessSpec::new("src", EventSpec::periodic(ms(100))));
        let dst =
            b.process(ProcessSpec::new("dst", EventSpec::periodic(ms(100))).with_output("out"));
        let ch = b.channel("c", src, dst, ChannelKind::Fifo);
        b.priority(src, dst);
        b.behavior(src, move || {
            Box::new(move |ctx: &mut JobCtx<'_>| {
                let k = ctx.k() as i64;
                ctx.write(ch, Value::Int(k * k));
            })
        });
        b.behavior(dst, move || {
            Box::new(move |ctx: &mut JobCtx<'_>| {
                let v = ctx.read_value(ch);
                ctx.write_output(PortId::from_index(0), v);
            })
        });
        let (net, bank) = b.build().unwrap();
        (net, bank, ch)
    }

    #[test]
    fn run_jobs_and_observe() {
        let (net, bank, ch) = pipeline();
        let mut behaviors = bank.instantiate();
        let stimuli = Stimuli::new();
        let mut st = ExecState::new(&net, &stimuli).record_trace();
        let src = net.process_by_name("src").unwrap();
        let dst = net.process_by_name("dst").unwrap();
        assert_eq!(st.run_next_job(&mut behaviors, src, ms(0)).expect("src[1]"), 1);
        assert_eq!(st.run_next_job(&mut behaviors, dst, ms(0)).expect("dst[1]"), 1);
        assert_eq!(st.run_next_job(&mut behaviors, src, ms(100)).expect("src[2]"), 2);
        assert_eq!(st.run_next_job(&mut behaviors, dst, ms(100)).expect("dst[2]"), 2);
        let obs = st.observables();
        assert_eq!(obs.channels[ch.index()], vec![Value::Int(1), Value::Int(4)]);
        assert_eq!(
            obs.outputs[0].1,
            vec![(1, Value::Int(1)), (2, Value::Int(4))]
        );
        assert_eq!(st.trace().unwrap().len(), 4);
        assert_eq!(st.job_count(src), 2);
    }

    #[test]
    fn dst_sees_absent_when_src_did_not_run() {
        let (net, bank, _ch) = pipeline();
        let mut behaviors = bank.instantiate();
        let stimuli = Stimuli::new();
        let mut st = ExecState::new(&net, &stimuli);
        let dst = net.process_by_name("dst").unwrap();
        assert_eq!(
            st.run_next_job(&mut behaviors, dst, ms(0))
                .expect("a read racing ahead of its writer sees Absent, not an error"),
            1
        );
        let obs = st.observables();
        assert_eq!(obs.outputs[0].1, vec![(1, Value::Absent)]);
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn out_of_order_job_panics() {
        let (net, bank, _) = pipeline();
        let mut behaviors = bank.instantiate();
        let stimuli = Stimuli::new();
        let mut st = ExecState::new(&net, &stimuli);
        let src = net.process_by_name("src").unwrap();
        st.run_job(&mut behaviors, src, 2, ms(0)).unwrap();
    }

    #[test]
    #[should_panic(expected = "whose writer is")]
    fn foreign_write_panics() {
        let mut b = FppnBuilder::new();
        let a = b.process(ProcessSpec::new("a", EventSpec::periodic(ms(1))));
        let c = b.process(ProcessSpec::new("c", EventSpec::periodic(ms(1))));
        let ch = b.channel("x", a, c, ChannelKind::Fifo);
        b.priority(a, c);
        // `c` is the reader but tries to write.
        b.behavior(c, move || {
            Box::new(move |ctx: &mut JobCtx<'_>| ctx.write(ch, Value::Unit))
        });
        let (net, bank) = b.build().unwrap();
        let mut behaviors = bank.instantiate();
        let stimuli = Stimuli::new();
        let mut st = ExecState::new(&net, &stimuli);
        let _ = st.run_next_job(&mut behaviors, c, ms(0));
    }

    #[test]
    fn stimuli_validation() {
        let mut b = FppnBuilder::new();
        let u = b.process(ProcessSpec::new("u", EventSpec::periodic(ms(200))));
        let s = b.process(ProcessSpec::new("s", EventSpec::sporadic(1, ms(500))));
        b.channel("c", s, u, ChannelKind::Blackboard);
        b.priority(s, u);
        let (net, _) = b.build().unwrap();

        let mut ok = Stimuli::new();
        ok.arrivals(s, SporadicTrace::new(vec![ms(0), ms(500)]));
        assert!(ok.validate(&net).is_ok());

        let mut too_dense = Stimuli::new();
        too_dense.arrivals(s, SporadicTrace::new(vec![ms(0), ms(499)]));
        assert!(too_dense.validate(&net).is_err());

        let mut wrong_kind = Stimuli::new();
        wrong_kind.arrivals(u, SporadicTrace::new(vec![ms(0)]));
        assert!(wrong_kind.validate(&net).is_err());
    }

    #[test]
    fn stimuli_content_hash_tracks_structural_equality() {
        let pid = ProcessId::from_index(0);
        let other = ProcessId::from_index(1);
        let port = PortId::from_index(0);
        let hash = |s: &Stimuli| {
            let mut h = fppn_time::ContentHasher::new();
            s.content_hash_into(&mut h);
            h.finish()
        };

        let mut a = Stimuli::new();
        a.input(pid, port, vec![Value::Int(1), Value::Int(2)]);
        a.arrivals(pid, SporadicTrace::new(vec![ms(0), ms(500)]));
        let mut b = Stimuli::new();
        // Same content, different insertion order: BTreeMap iteration makes
        // the streams identical anyway.
        b.arrivals(pid, SporadicTrace::new(vec![ms(0), ms(500)]));
        b.input(pid, port, vec![Value::Int(1), Value::Int(2)]);
        assert_eq!(hash(&a), hash(&b));

        let mut c = b.clone();
        c.input(pid, port, vec![Value::Int(1), Value::Int(3)]);
        assert_ne!(hash(&a), hash(&c), "sample change must change the hash");

        let mut d = a.clone();
        d.arrivals(other, SporadicTrace::new(vec![ms(100)]));
        assert_ne!(hash(&a), hash(&d), "extra trace must change the hash");

        assert_ne!(
            hash(&Stimuli::new()),
            hash(&a),
            "empty stimuli must not collide with populated ones"
        );
    }

    #[test]
    fn input_samples_are_one_based() {
        let mut st = Stimuli::new();
        let pid = ProcessId::from_index(0);
        let port = PortId::from_index(0);
        st.input(pid, port, vec![Value::Int(10), Value::Int(20)]);
        assert_eq!(st.input_sample(pid, port, 1), Some(Value::Int(10)));
        assert_eq!(st.input_sample(pid, port, 2), Some(Value::Int(20)));
        assert_eq!(st.input_sample(pid, port, 3), None);
    }
}
