//! Processes, job behaviors and the job execution context.
//!
//! Def. 2.2 associates each process with a deterministic automaton whose
//! job execution run is "a non-empty sequence of automaton steps that
//! brings it back to its initial location (as a subroutine)". This module
//! provides the runtime face of that definition: a [`Behavior`] is invoked
//! once per job and performs reads, writes and local computation through a
//! [`JobCtx`]. Behaviors can be written as plain Rust closures/structs or
//! interpreted from a formal automaton (see [`crate::automaton`]).

use fppn_time::TimeQ;

use crate::event::EventSpec;
use crate::ids::{ChannelId, PortId, ProcessId};
use crate::value::Value;

/// Static description of a process: a name, its event generator, and its
/// external port lists (`I_e`, `O_e` in Def. 2.1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcessSpec {
    name: String,
    event: EventSpec,
    input_ports: Vec<String>,
    output_ports: Vec<String>,
}

impl ProcessSpec {
    /// Creates a process description with no external ports.
    pub fn new(name: impl Into<String>, event: EventSpec) -> Self {
        ProcessSpec {
            name: name.into(),
            event,
            input_ports: Vec::new(),
            output_ports: Vec::new(),
        }
    }

    /// Declares an external input channel read by this process; sample `[k]`
    /// is consumed by the `k`-th job.
    #[must_use]
    pub fn with_input(mut self, port_name: impl Into<String>) -> Self {
        self.input_ports.push(port_name.into());
        self
    }

    /// Declares an external output channel written by this process; sample
    /// `[k]` is produced by the `k`-th job.
    #[must_use]
    pub fn with_output(mut self, port_name: impl Into<String>) -> Self {
        self.output_ports.push(port_name.into());
        self
    }

    /// The unique process name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The event generator driving this process.
    pub fn event(&self) -> &EventSpec {
        &self.event
    }

    /// Names of the external input ports, in port-id order.
    pub fn input_ports(&self) -> &[String] {
        &self.input_ports
    }

    /// Names of the external output ports, in port-id order.
    pub fn output_ports(&self) -> &[String] {
        &self.output_ports
    }
}

/// The functional body of a process, invoked once per job.
///
/// Implementations must be deterministic: the actions taken may depend only
/// on internal state and on the values observed through the context. Any
/// hidden input (wall-clock time, RNG without a fixed seed, thread id)
/// breaks Prop. 2.1 and will be caught by the determinism test-suite.
///
/// The trait is object-safe; executors store `Box<dyn Behavior>`.
///
/// Plain closures `FnMut(&mut JobCtx<'_>)` implement `Behavior` via a
/// blanket impl (they cannot fail; interpreted automata return
/// [`ExecError`](crate::error::ExecError) on model violations).
pub trait Behavior: Send {
    /// Executes one job run: the `ctx.k()`-th job of this process.
    ///
    /// # Errors
    ///
    /// Implementations that interpret formal models return
    /// [`ExecError`](crate::error::ExecError) on violations such as
    /// non-deterministic automata; executors abort the run and surface the
    /// error.
    fn on_job(&mut self, ctx: &mut JobCtx<'_>) -> Result<(), crate::error::ExecError>;
}

impl<F> Behavior for F
where
    F: FnMut(&mut JobCtx<'_>) + Send,
{
    fn on_job(&mut self, ctx: &mut JobCtx<'_>) -> Result<(), crate::error::ExecError> {
        self(ctx);
        Ok(())
    }
}

/// A boxed process behavior.
pub type BoxedBehavior = Box<dyn Behavior>;

/// A factory producing fresh behavior instances, so the same application can
/// be executed repeatedly (zero-delay reference, simulator, threaded
/// runtime) from identical initial state.
pub type BehaviorFactory = Box<dyn Fn() -> BoxedBehavior + Send + Sync>;

/// Storage backend for channel and external-port data, mediating every
/// read/write action of a job.
///
/// Two implementations exist in the workspace: the sequential
/// [`ExecState`](crate::exec::ExecState) used by the zero-delay semantics
/// and the discrete-event simulator, and the lock-based concurrent store of
/// `fppn-runtime`.
pub trait DataAccess {
    /// Reads (`x?c`) from channel `ch` on behalf of process `pid`.
    fn read_channel(&mut self, pid: ProcessId, ch: ChannelId) -> Option<Value>;
    /// Writes (`x!c`) to channel `ch` on behalf of process `pid`.
    fn write_channel(&mut self, pid: ProcessId, ch: ChannelId, value: Value);
    /// Reads external input sample `[k]` from `port` of process `pid`.
    fn read_external(&mut self, pid: ProcessId, port: PortId, k: u64) -> Option<Value>;
    /// Writes external output sample `[k]` to `port` of process `pid`.
    fn write_external(&mut self, pid: ProcessId, port: PortId, k: u64, value: Value);
}

/// Execution context handed to a [`Behavior`] for one job run.
///
/// The context identifies the job (`process`, `k`, invocation time) and
/// mediates all channel and external I/O through a [`DataAccess`] backend,
/// which enforces the endpoint ownership rules of the model.
pub struct JobCtx<'a> {
    access: &'a mut dyn DataAccess,
    process: ProcessId,
    k: u64,
    invocation: TimeQ,
}

impl<'a> JobCtx<'a> {
    /// Creates a context for the `k`-th job of `process`, invoked at
    /// `invocation`.
    pub fn new(
        access: &'a mut dyn DataAccess,
        process: ProcessId,
        k: u64,
        invocation: TimeQ,
    ) -> Self {
        JobCtx {
            access,
            process,
            k,
            invocation,
        }
    }

    /// The process this job belongs to.
    pub fn process(&self) -> ProcessId {
        self.process
    }

    /// The 1-based invocation count of this job (`k` in `p[k]`).
    pub fn k(&self) -> u64 {
        self.k
    }

    /// The invocation timestamp of this job.
    pub fn invocation_time(&self) -> TimeQ {
        self.invocation
    }

    /// Reads from an internal channel; `None` is the model's
    /// non-availability indicator (empty FIFO / blank blackboard).
    ///
    /// # Panics
    ///
    /// The backend panics if this process is not the reader of `ch`.
    pub fn read(&mut self, ch: ChannelId) -> Option<Value> {
        self.access.read_channel(self.process, ch)
    }

    /// Like [`JobCtx::read`], but maps absence to [`Value::Absent`].
    pub fn read_value(&mut self, ch: ChannelId) -> Value {
        self.read(ch).unwrap_or(Value::Absent)
    }

    /// Writes to an internal channel.
    ///
    /// # Panics
    ///
    /// The backend panics if this process is not the writer of `ch`.
    pub fn write(&mut self, ch: ChannelId, value: impl Into<Value>) {
        self.access.write_channel(self.process, ch, value.into());
    }

    /// Reads this job's sample `[k]` from the external input `port`
    /// (the `x?[k]I_e` action). `None` if the input stream is exhausted.
    pub fn read_input(&mut self, port: PortId) -> Option<Value> {
        self.access.read_external(self.process, port, self.k)
    }

    /// Writes this job's sample `[k]` to the external output `port`
    /// (the `x![k]O_e` action).
    pub fn write_output(&mut self, port: PortId, value: impl Into<Value>) {
        self.access
            .write_external(self.process, port, self.k, value.into());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    /// A toy backend recording every access, for exercising JobCtx.
    #[derive(Default)]
    struct Recorder {
        channel: BTreeMap<u32, Vec<Value>>,
        outputs: Vec<(u64, Value)>,
        input: Vec<Value>,
    }

    impl DataAccess for Recorder {
        fn read_channel(&mut self, _pid: ProcessId, ch: ChannelId) -> Option<Value> {
            self.channel
                .get_mut(&(ch.index() as u32))
                .and_then(|v| v.pop())
        }
        fn write_channel(&mut self, _pid: ProcessId, ch: ChannelId, value: Value) {
            self.channel
                .entry(ch.index() as u32)
                .or_default()
                .push(value);
        }
        fn read_external(&mut self, _pid: ProcessId, _port: PortId, k: u64) -> Option<Value> {
            self.input.get((k - 1) as usize).cloned()
        }
        fn write_external(&mut self, _pid: ProcessId, _port: PortId, k: u64, value: Value) {
            self.outputs.push((k, value));
        }
    }

    #[test]
    fn closure_behaviors_implement_trait() {
        let mut doubler = |ctx: &mut JobCtx<'_>| {
            if let Some(Value::Int(v)) = ctx.read_input(PortId::from_index(0)) {
                ctx.write_output(PortId::from_index(0), Value::Int(2 * v));
            }
        };
        let mut backend = Recorder {
            input: vec![Value::Int(21)],
            ..Recorder::default()
        };
        let mut ctx = JobCtx::new(&mut backend, ProcessId::from_index(0), 1, TimeQ::ZERO);
        Behavior::on_job(&mut doubler, &mut ctx).unwrap();
        assert_eq!(backend.outputs, vec![(1, Value::Int(42))]);
    }

    #[test]
    fn ctx_exposes_job_identity() {
        let mut backend = Recorder::default();
        let ctx = JobCtx::new(
            &mut backend,
            ProcessId::from_index(3),
            7,
            TimeQ::from_ms(400),
        );
        assert_eq!(ctx.process(), ProcessId::from_index(3));
        assert_eq!(ctx.k(), 7);
        assert_eq!(ctx.invocation_time(), TimeQ::from_ms(400));
    }

    #[test]
    fn read_value_maps_absence() {
        let mut backend = Recorder::default();
        let mut ctx = JobCtx::new(&mut backend, ProcessId::from_index(0), 1, TimeQ::ZERO);
        assert_eq!(ctx.read_value(ChannelId::from_index(0)), Value::Absent);
        ctx.write(ChannelId::from_index(0), 5i64);
        assert_eq!(ctx.read_value(ChannelId::from_index(0)), Value::Int(5));
    }

    #[test]
    fn spec_ports_are_ordered() {
        let spec = ProcessSpec::new("p", EventSpec::periodic(TimeQ::from_ms(10)))
            .with_input("in0")
            .with_input("in1")
            .with_output("out0");
        assert_eq!(spec.input_ports(), &["in0".to_owned(), "in1".to_owned()]);
        assert_eq!(spec.output_ports(), &["out0".to_owned()]);
        assert_eq!(spec.name(), "p");
    }
}
