//! # fppn-apps — the paper's applications and workload generators
//!
//! Reference FPPNs reproducing the three networks of the DATE'15 paper:
//!
//! * [`fig1`]: the running example (signal app with reconfigurable filter
//!   coefficients, a feedback loop, and the sporadic `CoefB`) whose derived
//!   task graph is Fig. 3 and whose 2-processor schedule is Fig. 4;
//! * [`fft`]: the §V-A streaming benchmark — a 14-process 4-point FFT
//!   pipeline (Fig. 5) with the MPPA-calibrated WCETs (load 0.93);
//! * [`fms`]: the §V-B avionics Flight Management System (Fig. 7), whose
//!   reduced-hyperperiod task graph has exactly 812 jobs and load ≈ 0.23;
//! * [`workloads`]: seeded random FPPNs for property/stress testing, plus
//!   [`synthetic_task_graph`] layered DAGs (deep pipelines, fan-in/out
//!   skew) for 10k–100k-job scheduler scalability runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fft;
pub mod fig1;
pub mod fms;
pub mod workloads;

pub use fft::{dft4, fft_network, fft_wcet, test_signal, FftIds};
pub use fig1::{fig1_network, fig1_wcet, Fig1Ids};
pub use fms::{fms_network, fms_sporadics, fms_wcet, FmsIds, FmsVariant};
pub use workloads::{
    adversarial_presets, mix64, random_workload, synthetic_fppn, synthetic_task_graph,
    SyntheticFppnConfig,
    SyntheticGraphConfig, Workload, WorkloadConfig,
};
