//! Random FPPN workload generation for stress, property and scalability
//! testing.
//!
//! Networks are generated from a seed: layered periodic processes with
//! FIFO/blackboard channels along a total functional-priority order, plus
//! sporadic configurators attached to random periodic users (satisfying the
//! §III-A subclass restriction by construction). Behaviors are integer
//! state machines, so observables are exactly comparable across execution
//! backends.

use fppn_core::{
    BehaviorBank, ChannelId, ChannelKind, EventSpec, Fppn, FppnBuilder, JobCtx, PortId,
    ProcessId, ProcessSpec, Value,
};
use fppn_taskgraph::{Job, JobId, TaskGraph, WcetModel};
use fppn_time::TimeQ;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of a random workload.
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// Number of periodic processes.
    pub periodic: usize,
    /// Number of sporadic processes (each attached to a periodic user).
    pub sporadic: usize,
    /// Candidate periods (ms). Defaults are harmonic-ish multirate.
    pub periods_ms: Vec<i64>,
    /// Probability (‰) of a channel between each FP-ordered process pair.
    /// Values above 1000 are clamped to 1000 (a channel everywhere).
    pub channel_density_permille: u32,
    /// WCET range (ms), sampled per process; must be ordered `lo <= hi`
    /// (values below 1 ms are raised to 1 ms).
    pub wcet_range_ms: (i64, i64),
    /// RNG seed.
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            periodic: 6,
            sporadic: 2,
            periods_ms: vec![100, 200, 400, 800],
            channel_density_permille: 350,
            wcet_range_ms: (1, 10),
            seed: 0,
        }
    }
}

/// A generated workload: network, behaviors and WCET table.
pub struct Workload {
    /// The generated network.
    pub net: Fppn,
    /// Behavior factories.
    pub bank: BehaviorBank,
    /// Per-process WCETs.
    pub wcet: WcetModel,
}

/// Generates a random, always-valid FPPN workload.
///
/// # Panics
///
/// Panics if `periodic == 0`, `periods_ms` is empty, or
/// `wcet_range_ms.0 > wcet_range_ms.1` — each with a message naming the
/// offending field, instead of an opaque `gen_range` failure mid-build.
pub fn random_workload(cfg: &WorkloadConfig) -> Workload {
    assert!(cfg.periodic > 0, "need at least one periodic process");
    assert!(!cfg.periods_ms.is_empty(), "need candidate periods");
    assert!(
        cfg.wcet_range_ms.0 <= cfg.wcet_range_ms.1,
        "wcet_range_ms must be ordered (lo, hi), got ({}, {})",
        cfg.wcet_range_ms.0,
        cfg.wcet_range_ms.1
    );
    let density = cfg.channel_density_permille.min(1000);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let ms = TimeQ::from_ms;
    let mut b = FppnBuilder::new();

    // Periodic layer: FP follows the index order.
    let mut periodic = Vec::with_capacity(cfg.periodic);
    let mut periods = Vec::with_capacity(cfg.periodic);
    for i in 0..cfg.periodic {
        let t = cfg.periods_ms[rng.gen_range(0..cfg.periods_ms.len())];
        periods.push(t);
        let spec = ProcessSpec::new(format!("p{i}"), EventSpec::periodic(ms(t)));
        periodic.push(b.process(spec));
    }
    // Channels between ordered pairs.
    let mut in_channels: Vec<Vec<(ChannelId, ChannelKind)>> = vec![Vec::new(); cfg.periodic];
    let mut out_channels: Vec<Vec<ChannelId>> = vec![Vec::new(); cfg.periodic];
    for i in 0..cfg.periodic {
        for j in (i + 1)..cfg.periodic {
            if rng.gen_range(0u32..1000) < density {
                let kind = if rng.gen_bool(0.5) {
                    ChannelKind::Fifo
                } else {
                    ChannelKind::Blackboard
                };
                let ch = b.channel(format!("c{i}_{j}"), periodic[i], periodic[j], kind);
                b.priority(periodic[i], periodic[j]);
                out_channels[i].push(ch);
                in_channels[j].push((ch, kind));
            }
        }
    }

    // Sporadic configurators.
    let mut sporadic = Vec::with_capacity(cfg.sporadic);
    for s in 0..cfg.sporadic {
        let user_idx = rng.gen_range(0..cfg.periodic);
        let user = periodic[user_idx];
        let mult = rng.gen_range(1i64..=3);
        let burst = rng.gen_range(1..=3u32);
        let t_sp = periods[user_idx] * mult;
        let spec = ProcessSpec::new(format!("s{s}"), EventSpec::sporadic(burst, ms(t_sp)));
        let sp = b.process(spec);
        let ch = b.channel(format!("cs{s}"), sp, user, ChannelKind::Blackboard);
        if rng.gen_bool(0.5) {
            b.priority(sp, user);
        } else {
            b.priority(user, sp);
        }
        in_channels[user_idx].push((ch, ChannelKind::Blackboard));
        sporadic.push((sp, ch));
        let salt = 7919 * (s as i64 + 1);
        b.behavior(sp, move || {
            Box::new(move |ctx: &mut JobCtx<'_>| {
                ctx.write(ch, Value::Int(salt.wrapping_mul(ctx.k() as i64)))
            })
        });
    }

    // Behaviors: integer folds over everything read. All state flows into
    // channel writes, which `Observables` logs completely, so every
    // process is observable without dedicated output ports.
    for i in 0..cfg.periodic {
        let ins = in_channels[i].clone();
        let outs = out_channels[i].clone();
        let salt = 31 * (i as i64 + 1);
        b.behavior(periodic[i], move || {
            let ins = ins.clone();
            let outs = outs.clone();
            let mut acc: i64 = salt;
            Box::new(move |ctx: &mut JobCtx<'_>| {
                for &(ch, kind) in &ins {
                    match kind {
                        ChannelKind::Blackboard => {
                            if let Some(Value::Int(x)) = ctx.read(ch) {
                                acc = acc.wrapping_mul(31).wrapping_add(x);
                            }
                        }
                        ChannelKind::Fifo => {
                            while let Some(v) = ctx.read(ch) {
                                if let Value::Int(x) = v {
                                    acc = acc.wrapping_mul(31).wrapping_add(x);
                                }
                            }
                        }
                    }
                }
                acc = acc.wrapping_add(ctx.k() as i64);
                for &ch in &outs {
                    ctx.write(ch, Value::Int(acc));
                }
            })
        });
    }

    let mut wcet = WcetModel::uniform(ms(cfg.wcet_range_ms.0.max(1)));
    let (net, bank) = b.build().expect("generated workload is well-formed");
    for pid in net.process_ids() {
        let c = rng.gen_range(cfg.wcet_range_ms.0.max(1)..=cfg.wcet_range_ms.1.max(1));
        wcet.set(pid, ms(c));
    }
    Workload { net, bank, wcet }
}

/// Parameters of a synthetic layered task graph, built directly as a
/// [`TaskGraph`] (no FPPN derivation) so scalability experiments can reach
/// 10k–100k jobs cheaply.
///
/// The two shape knobs map to the structures that stress a list scheduler:
/// `depth` builds deep pipelines (long precedence chains through many
/// layers), `fan_skew_permille` concentrates edges on one *hub* job per
/// layer (heavy fan-out from hubs, heavy fan-in onto the next layer's
/// hub), with `max_fan_in` bounding per-job in-degree.
#[derive(Debug, Clone)]
pub struct SyntheticGraphConfig {
    /// Total number of jobs.
    pub jobs: usize,
    /// Number of pipeline layers; edges only go from layer `l` to `l + 1`.
    pub depth: usize,
    /// Maximum predecessors drawn per non-source job (≥ 1; capped by the
    /// previous layer's size).
    pub max_fan_in: usize,
    /// Probability (‰) that a predecessor pick lands on the previous
    /// layer's hub (its first job) instead of a uniform choice. 0 = uniform
    /// wiring, 1000 = a pure hub-and-spoke cascade. Values above 1000 are
    /// clamped.
    pub fan_skew_permille: u32,
    /// WCET range (ms) per job; must be ordered `lo <= hi` (values below
    /// 1 ms are raised to 1 ms).
    pub wcet_range_ms: (i64, i64),
    /// Source-layer arrivals are drawn uniformly from `[0, spread]` ms,
    /// exercising the scheduler's arrival queue; deeper layers arrive at 0
    /// (enabled purely by precedence).
    pub arrival_spread_ms: i64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SyntheticGraphConfig {
    fn default() -> Self {
        SyntheticGraphConfig {
            jobs: 1_000,
            depth: 50,
            max_fan_in: 3,
            fan_skew_permille: 250,
            wcet_range_ms: (1, 10),
            arrival_spread_ms: 50,
            seed: 0,
        }
    }
}

impl SyntheticGraphConfig {
    /// A deep-pipeline shape: many layers, narrow fan.
    pub fn deep_pipeline(jobs: usize, seed: u64) -> Self {
        SyntheticGraphConfig {
            jobs,
            depth: (jobs / 4).max(1),
            max_fan_in: 2,
            fan_skew_permille: 0,
            seed,
            ..SyntheticGraphConfig::default()
        }
    }

    /// A hub-and-spoke shape: few layers, edges concentrated on hubs.
    pub fn fan_skewed(jobs: usize, seed: u64) -> Self {
        SyntheticGraphConfig {
            jobs,
            depth: 8,
            max_fan_in: 4,
            fan_skew_permille: 850,
            seed,
            ..SyntheticGraphConfig::default()
        }
    }
}

/// Generates a layered DAG of jobs for scheduler scalability experiments.
///
/// The graph is acyclic by construction (edges only cross consecutive
/// layers), every job's deadline is the frame length, and generation is
/// reproducible from the seed.
///
/// # Panics
///
/// Panics with a message naming the offending field if `jobs == 0`,
/// `depth == 0`, `depth > jobs`, `max_fan_in == 0`,
/// `wcet_range_ms.0 > wcet_range_ms.1`, or `arrival_spread_ms < 0`.
pub fn synthetic_task_graph(cfg: &SyntheticGraphConfig) -> TaskGraph {
    assert!(cfg.jobs > 0, "need at least one job");
    assert!(cfg.depth > 0, "depth must be at least one layer");
    assert!(
        cfg.depth <= cfg.jobs,
        "depth ({}) cannot exceed jobs ({}): every layer needs a job",
        cfg.depth,
        cfg.jobs
    );
    assert!(cfg.max_fan_in > 0, "max_fan_in must be at least 1");
    assert!(
        cfg.wcet_range_ms.0 <= cfg.wcet_range_ms.1,
        "wcet_range_ms must be ordered (lo, hi), got ({}, {})",
        cfg.wcet_range_ms.0,
        cfg.wcet_range_ms.1
    );
    assert!(
        cfg.arrival_spread_ms >= 0,
        "arrival_spread_ms must be non-negative, got {}",
        cfg.arrival_spread_ms
    );
    let skew = cfg.fan_skew_permille.min(1000);
    let ms = TimeQ::from_ms;
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    // Layer l covers jobs [bounds[l], bounds[l + 1]): one job guaranteed
    // per layer, the remainder spread evenly from the front.
    let base = cfg.jobs / cfg.depth;
    let extra = cfg.jobs % cfg.depth;
    let mut bounds = Vec::with_capacity(cfg.depth + 1);
    let mut acc = 0usize;
    bounds.push(0);
    for l in 0..cfg.depth {
        acc += base + usize::from(l < extra);
        bounds.push(acc);
    }

    let (wcet_lo, wcet_hi) = (cfg.wcet_range_ms.0.max(1), cfg.wcet_range_ms.1.max(1));
    let wcets: Vec<i64> = (0..cfg.jobs)
        .map(|_| rng.gen_range(wcet_lo..=wcet_hi))
        .collect();
    // Frame length: generous enough that any work-conserving schedule of
    // the whole graph fits on one processor.
    let horizon = ms(wcets.iter().sum::<i64>() + cfg.arrival_spread_ms);
    let jobs: Vec<Job> = (0..cfg.jobs)
        .map(|i| {
            let in_source_layer = i < bounds[1];
            let arrival = if in_source_layer && cfg.arrival_spread_ms > 0 {
                ms(rng.gen_range(0..=cfg.arrival_spread_ms))
            } else {
                TimeQ::ZERO
            };
            Job {
                process: ProcessId::from_index(i),
                k: 1,
                arrival,
                deadline: horizon,
                wcet: ms(wcets[i]),
                is_server: false,
            }
        })
        .collect();

    let mut g = TaskGraph::new(jobs, horizon);
    for l in 1..cfg.depth {
        let (prev_lo, prev_hi) = (bounds[l - 1], bounds[l]);
        let prev_len = prev_hi - prev_lo;
        for i in bounds[l]..bounds[l + 1] {
            let fan_in = rng.gen_range(1..=cfg.max_fan_in.min(prev_len));
            for _ in 0..fan_in {
                let pred = if skew > 0 && rng.gen_range(0u32..1000) < skew {
                    prev_lo // the layer hub
                } else {
                    rng.gen_range(prev_lo..prev_hi)
                };
                g.add_edge(JobId::from_index(pred), JobId::from_index(i));
            }
        }
    }
    g
}

/// Parameters of a behavior-heavy synthetic FPPN: the layered shape of
/// [`synthetic_task_graph`] realized as an actual network whose processes
/// run **generated compute kernels** — deterministic, seed-derived integer
/// mixers — and stream their results through real channels.
///
/// This is the substrate for data-plane scalability experiments: unlike
/// the FMS/random multirate networks (whose behaviors are a handful of
/// integer folds), each job here burns a tunable amount of CPU before
/// writing, so behavior execution dominates the simulation and sharding it
/// is measurable.
#[derive(Debug, Clone)]
pub struct SyntheticFppnConfig {
    /// The layered shape: `jobs` becomes the process count, `depth`,
    /// `max_fan_in` and `fan_skew_permille` wire the channel topology, and
    /// `wcet_range_ms` feeds the WCET table exactly as in
    /// [`synthetic_task_graph`]. (`arrival_spread_ms` is ignored: all
    /// processes share one period.)
    pub shape: SyntheticGraphConfig,
    /// Kernel iterations per job, sampled per process from this inclusive
    /// range with the shape's seed. Each iteration is one round of a
    /// 64-bit avalanche mixer; ~1000 iterations ≈ a few microseconds.
    pub compute_iters: (u32, u32),
    /// Probability (‰) that a generated channel is a FIFO (the rest are
    /// blackboards). Values above 1000 are clamped.
    pub fifo_permille: u32,
    /// The common period (ms) of every process — one frame per period, so
    /// every process contributes exactly one job per hyperperiod.
    pub period_ms: i64,
    /// Number of **sporadic configurator** processes: each is attached to
    /// a random layer process through a blackboard (scaling that target's
    /// kernel state), with a random burst/period drawn from the two ranges
    /// below — so behavior-heavy sweeps also exercise the sporadic→server
    /// transformation, slot windows and false-slot skipping. Configurators
    /// carry an external input port: each executed slot folds one stimulus
    /// sample into its write. `0` (the default) generates the exact same
    /// network as before the knob existed.
    pub sporadic: usize,
    /// Burst (`m` of the sporadic `(m, T)` constraint) range, inclusive,
    /// sampled per configurator.
    pub sporadic_burst: (u32, u32),
    /// Server-period multiplier range, inclusive: a configurator's period
    /// is `period_ms · mult` (the hyperperiod grows to `period_ms ·
    /// lcm(mults)`, so layer processes run several jobs per frame).
    pub sporadic_period_mult: (i64, i64),
    /// Probability (‰) that a layer process declares an **external input
    /// port** whose per-job samples fold into its kernel state — the
    /// streaming-stimuli analogue of the sporadic knob. Values above 1000
    /// are clamped. `0` (the default) changes nothing.
    pub input_permille: u32,
}

impl Default for SyntheticFppnConfig {
    fn default() -> Self {
        SyntheticFppnConfig {
            shape: SyntheticGraphConfig {
                jobs: 64,
                depth: 8,
                ..SyntheticGraphConfig::default()
            },
            compute_iters: (500, 4000),
            fifo_permille: 500,
            period_ms: 100,
            sporadic: 0,
            sporadic_burst: (1, 3),
            sporadic_period_mult: (2, 4),
            input_permille: 0,
        }
    }
}

/// One round of SplitMix64's finalizer — the per-iteration unit of the
/// generated compute kernels. Public so benchmarks/tests can predict
/// kernel outputs without re-running a network.
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Generates a behavior-heavy layered FPPN (see [`SyntheticFppnConfig`]).
///
/// Processes `p0..pN` are laid out in layers exactly like
/// [`synthetic_task_graph`]; every inter-layer edge becomes a channel
/// (duplicate picks collapse) with functional priority along the layer
/// order, so the network is well-formed by construction. Each process
/// folds everything it reads into an accumulator, runs its seed-derived
/// mixer kernel, and writes the result to all its output channels — all
/// state flows into channel writes, so `Observables` captures every
/// process exactly.
///
/// # Panics
///
/// Panics (with the offending field named) on the same shape violations as
/// [`synthetic_task_graph`], or if `compute_iters`, `sporadic_burst` or
/// `sporadic_period_mult` is inverted (or the latter's lower bound < 1).
pub fn synthetic_fppn(cfg: &SyntheticFppnConfig) -> Workload {
    let shape = &cfg.shape;
    assert!(shape.jobs > 0, "need at least one process");
    assert!(shape.depth > 0, "depth must be at least one layer");
    assert!(
        shape.depth <= shape.jobs,
        "depth ({}) cannot exceed jobs ({}): every layer needs a process",
        shape.depth,
        shape.jobs
    );
    assert!(shape.max_fan_in > 0, "max_fan_in must be at least 1");
    assert!(
        cfg.compute_iters.0 <= cfg.compute_iters.1,
        "compute_iters must be ordered (lo, hi), got ({}, {})",
        cfg.compute_iters.0,
        cfg.compute_iters.1
    );
    assert!(
        shape.wcet_range_ms.0 <= shape.wcet_range_ms.1,
        "wcet_range_ms must be ordered (lo, hi), got ({}, {})",
        shape.wcet_range_ms.0,
        shape.wcet_range_ms.1
    );
    assert!(
        cfg.sporadic_burst.0 >= 1 && cfg.sporadic_burst.0 <= cfg.sporadic_burst.1,
        "sporadic_burst must be ordered with lo >= 1, got ({}, {})",
        cfg.sporadic_burst.0,
        cfg.sporadic_burst.1
    );
    assert!(
        cfg.sporadic_period_mult.0 >= 1
            && cfg.sporadic_period_mult.0 <= cfg.sporadic_period_mult.1,
        "sporadic_period_mult must be ordered with lo >= 1, got ({}, {})",
        cfg.sporadic_period_mult.0,
        cfg.sporadic_period_mult.1
    );
    let skew = shape.fan_skew_permille.min(1000);
    let fifo = cfg.fifo_permille.min(1000);
    let input_permille = cfg.input_permille.min(1000);
    let ms = TimeQ::from_ms;
    let mut rng = StdRng::seed_from_u64(shape.seed);
    // The stimulus features (inputs, sporadic configurators) draw from an
    // independently derived stream, so enabling them never reshuffles the
    // base topology — a seed's layered network is stable across the knobs.
    let mut stim_rng = StdRng::seed_from_u64(mix64(shape.seed ^ 0x5710_CF6E_57A7_5EED));
    let mut b = FppnBuilder::new();

    let n = shape.jobs;
    let has_input: Vec<bool> = (0..n)
        .map(|_| input_permille > 0 && stim_rng.gen_range(0u32..1000) < input_permille)
        .collect();
    let processes: Vec<ProcessId> = (0..n)
        .map(|i| {
            let mut spec = ProcessSpec::new(
                format!("p{i}"),
                EventSpec::periodic(ms(cfg.period_ms)),
            );
            if has_input[i] {
                spec = spec.with_input("in");
            }
            b.process(spec)
        })
        .collect();

    // Same layer bounds as synthetic_task_graph.
    let base = n / shape.depth;
    let extra = n % shape.depth;
    let mut bounds = Vec::with_capacity(shape.depth + 1);
    let mut acc = 0usize;
    bounds.push(0);
    for l in 0..shape.depth {
        acc += base + usize::from(l < extra);
        bounds.push(acc);
    }

    // Wire inter-layer channels with the graph generator's edge logic;
    // duplicate predecessor picks collapse into one channel.
    let mut in_channels: Vec<Vec<(ChannelId, ChannelKind)>> = vec![Vec::new(); n];
    let mut out_channels: Vec<Vec<ChannelId>> = vec![Vec::new(); n];
    for l in 1..shape.depth {
        let (prev_lo, prev_hi) = (bounds[l - 1], bounds[l]);
        let prev_len = prev_hi - prev_lo;
        for i in bounds[l]..bounds[l + 1] {
            let fan_in = rng.gen_range(1..=shape.max_fan_in.min(prev_len));
            let mut preds: Vec<usize> = (0..fan_in)
                .map(|_| {
                    if skew > 0 && rng.gen_range(0u32..1000) < skew {
                        prev_lo // the layer hub
                    } else {
                        rng.gen_range(prev_lo..prev_hi)
                    }
                })
                .collect();
            preds.sort_unstable();
            preds.dedup();
            for pred in preds {
                let kind = if rng.gen_range(0u32..1000) < fifo {
                    ChannelKind::Fifo
                } else {
                    ChannelKind::Blackboard
                };
                let ch = b.channel(format!("c{pred}_{i}"), processes[pred], processes[i], kind);
                b.priority(processes[pred], processes[i]);
                out_channels[pred].push(ch);
                in_channels[i].push((ch, kind));
            }
        }
    }

    // Sporadic configurators: one blackboard into a random layer process,
    // burst/period from the stimulus ranges, an external input port whose
    // sample folds into every executed slot's write — the server-slot
    // machinery (windows, false slots, input consumption) under a
    // behavior-heavy load.
    for s in 0..cfg.sporadic {
        let target = stim_rng.gen_range(0..n);
        let burst = stim_rng.gen_range(cfg.sporadic_burst.0..=cfg.sporadic_burst.1);
        let mult =
            stim_rng.gen_range(cfg.sporadic_period_mult.0..=cfg.sporadic_period_mult.1);
        let sp = b.process(
            ProcessSpec::new(
                format!("cfg{s}"),
                EventSpec::sporadic(burst, ms(cfg.period_ms * mult)),
            )
            .with_input("cmd"),
        );
        let ch = b.channel(
            format!("ccfg{s}_{target}"),
            sp,
            processes[target],
            ChannelKind::Blackboard,
        );
        // Either priority direction is admissible (the §III-A subclass
        // only needs *a* total order per channel); both slot-window
        // boundary rules get exercised across a sweep.
        if stim_rng.gen_bool(0.5) {
            b.priority(sp, processes[target]);
        } else {
            b.priority(processes[target], sp);
        }
        in_channels[target].push((ch, ChannelKind::Blackboard));
        let salt = mix64(shape.seed ^ 0xCF61_0000 ^ (s as u64).wrapping_mul(0x94D0_49BB));
        b.behavior(sp, move || {
            Box::new(move |ctx: &mut JobCtx<'_>| {
                let x = match ctx.read_input(PortId::from_index(0)) {
                    Some(Value::Int(v)) => v as u64,
                    _ => 0,
                };
                ctx.write(ch, Value::Int(mix64(salt ^ ctx.k() ^ x) as i64));
            })
        });
    }

    // Generated behaviors: fold stimuli and reads, burn the kernel, write
    // everywhere.
    let (it_lo, it_hi) = cfg.compute_iters;
    for i in 0..n {
        let ins = in_channels[i].clone();
        let outs = out_channels[i].clone();
        let iters = rng.gen_range(it_lo..=it_hi);
        let salt = mix64(shape.seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let with_input = has_input[i];
        b.behavior(processes[i], move || {
            let ins = ins.clone();
            let outs = outs.clone();
            let mut state: u64 = salt;
            Box::new(move |ctx: &mut JobCtx<'_>| {
                if with_input {
                    if let Some(Value::Int(x)) = ctx.read_input(PortId::from_index(0)) {
                        state = mix64(state ^ x as u64);
                    }
                }
                for &(ch, kind) in &ins {
                    match kind {
                        ChannelKind::Blackboard => {
                            if let Some(Value::Int(x)) = ctx.read(ch) {
                                state = mix64(state ^ x as u64);
                            }
                        }
                        ChannelKind::Fifo => {
                            while let Some(v) = ctx.read(ch) {
                                if let Value::Int(x) = v {
                                    state = mix64(state ^ x as u64);
                                }
                            }
                        }
                    }
                }
                state = mix64(state ^ ctx.k());
                // The kernel: `iters` dependent mixer rounds (cannot be
                // reordered or elided — the result feeds the writes).
                for _ in 0..iters {
                    state = mix64(state);
                }
                for &ch in &outs {
                    ctx.write(ch, Value::Int(state as i64));
                }
            })
        });
    }

    let (wcet_lo, wcet_hi) = (
        shape.wcet_range_ms.0.max(1),
        shape.wcet_range_ms.1.max(1),
    );
    let mut wcet = WcetModel::uniform(ms(wcet_lo));
    let (net, bank) = b.build().expect("generated synthetic FPPN is well-formed");
    for pid in net.process_ids() {
        wcet.set(pid, ms(rng.gen_range(wcet_lo..=wcet_hi)));
    }
    Workload { net, bank, wcet }
}

/// Named `synthetic_fppn` presets for the adversarial-stimulus campaign:
/// sporadic-rich shapes where window boundaries, arrival ties and
/// external-input streams all exist to be attacked. Every preset turns on
/// both stimulus knobs (`sporadic` and `input_permille`), since the
/// adversarial classes target exactly the server-slot and input-stream
/// machinery; they differ in how crowded the window structure is.
///
/// The `&'static str` is a stable label for test/golden-trace names.
pub fn adversarial_presets() -> Vec<(&'static str, SyntheticFppnConfig)> {
    vec![
        // Many configurators on a small frame: subsets collide, bursts
        // overlap, and tie storms find several processes to align.
        (
            "crowded-windows",
            SyntheticFppnConfig {
                shape: SyntheticGraphConfig {
                    jobs: 14,
                    depth: 3,
                    seed: 0xADA1,
                    ..SyntheticGraphConfig::default()
                },
                compute_iters: (10, 80),
                sporadic: 4,
                sporadic_burst: (2, 3),
                sporadic_period_mult: (2, 3),
                input_permille: 400,
                ..SyntheticFppnConfig::default()
            },
        ),
        // Long server periods (big windows): boundary-aligned arrivals
        // are maximally distant from the uniform sampler's typical draw.
        (
            "wide-windows",
            SyntheticFppnConfig {
                shape: SyntheticGraphConfig {
                    jobs: 12,
                    depth: 4,
                    seed: 0xADA2,
                    ..SyntheticGraphConfig::default()
                },
                compute_iters: (10, 80),
                sporadic: 2,
                sporadic_burst: (1, 2),
                sporadic_period_mult: (4, 6),
                input_permille: 700,
                ..SyntheticFppnConfig::default()
            },
        ),
        // Deep layered data plane fed by saturating configurators: flood
        // stimuli keep every server slot executable while the layer
        // processes contend for processors.
        (
            "flood-fodder",
            SyntheticFppnConfig {
                shape: SyntheticGraphConfig {
                    jobs: 18,
                    depth: 5,
                    max_fan_in: 4,
                    seed: 0xADA3,
                    ..SyntheticGraphConfig::default()
                },
                compute_iters: (10, 60),
                sporadic: 3,
                sporadic_burst: (1, 3),
                sporadic_period_mult: (2, 4),
                input_permille: 500,
                ..SyntheticFppnConfig::default()
            },
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use fppn_core::{run_zero_delay, JobOrdering, Stimuli};
    use fppn_taskgraph::derive_task_graph;

    #[test]
    fn workloads_build_and_derive_for_many_seeds() {
        for seed in 0..30 {
            let cfg = WorkloadConfig {
                seed,
                ..WorkloadConfig::default()
            };
            let w = random_workload(&cfg);
            assert_eq!(w.net.process_count(), cfg.periodic + cfg.sporadic);
            let derived = derive_task_graph(&w.net, &w.wcet)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert!(derived.graph.job_count() > 0);
            assert!(derived.graph.topological_order().is_some());
        }
    }

    #[test]
    fn workloads_execute_deterministically() {
        for seed in 0..10 {
            let w = random_workload(&WorkloadConfig {
                seed,
                ..WorkloadConfig::default()
            });
            let horizon = TimeQ::from_ms(1600);
            let mut b1 = w.bank.instantiate();
            let r1 = run_zero_delay(&w.net, &mut b1, &Stimuli::new(), horizon, JobOrdering::MinRankFirst)
                .unwrap();
            let mut b2 = w.bank.instantiate();
            let r2 = run_zero_delay(&w.net, &mut b2, &Stimuli::new(), horizon, JobOrdering::MaxRankFirst)
                .unwrap();
            assert_eq!(r1.observables.diff(&r2.observables), None, "seed {seed}");
        }
    }

    #[test]
    #[should_panic(expected = "wcet_range_ms must be ordered")]
    fn inverted_wcet_range_panics_up_front() {
        let _ = random_workload(&WorkloadConfig {
            wcet_range_ms: (10, 1),
            ..WorkloadConfig::default()
        });
    }

    #[test]
    fn oversaturated_channel_density_is_clamped() {
        // > 1000‰ must behave exactly like 1000‰ (a channel everywhere),
        // not panic or skew the RNG stream differently.
        let mk = |density| {
            random_workload(&WorkloadConfig {
                channel_density_permille: density,
                seed: 7,
                ..WorkloadConfig::default()
            })
        };
        let saturated = mk(1000);
        let clamped = mk(u32::MAX);
        assert_eq!(saturated.net.channels().len(), clamped.net.channels().len());
        let n = WorkloadConfig::default().periodic;
        // Every FP-ordered periodic pair plus one channel per sporadic.
        assert_eq!(
            saturated.net.channels().len(),
            n * (n - 1) / 2 + WorkloadConfig::default().sporadic
        );
    }

    #[test]
    fn synthetic_graph_honors_job_count_depth_and_acyclicity() {
        for cfg in [
            SyntheticGraphConfig::default(),
            SyntheticGraphConfig::deep_pipeline(600, 3),
            SyntheticGraphConfig::fan_skewed(600, 4),
        ] {
            let g = synthetic_task_graph(&cfg);
            assert_eq!(g.job_count(), cfg.jobs);
            assert!(g.topological_order().is_some());
            // Every non-source layer job has at least one predecessor, so
            // a longest chain threads all `depth` layers.
            let depth = longest_path_len(&g);
            assert_eq!(depth, cfg.depth, "{cfg:?}");
        }
    }

    fn longest_path_len(g: &TaskGraph) -> usize {
        let order = g.topological_order().unwrap();
        let mut len = vec![1usize; g.job_count()];
        for id in order {
            for s in g.successors(id) {
                len[s.index()] = len[s.index()].max(len[id.index()] + 1);
            }
        }
        len.into_iter().max().unwrap_or(0)
    }

    #[test]
    fn synthetic_graph_fan_skew_concentrates_on_hubs() {
        let uniform = synthetic_task_graph(&SyntheticGraphConfig {
            fan_skew_permille: 0,
            ..SyntheticGraphConfig::default()
        });
        let skewed = synthetic_task_graph(&SyntheticGraphConfig {
            fan_skew_permille: 1000,
            ..SyntheticGraphConfig::default()
        });
        let max_out = |g: &TaskGraph| g.succ_counts().into_iter().max().unwrap();
        assert!(
            max_out(&skewed) > max_out(&uniform),
            "hub wiring should concentrate out-degree: skewed {} vs uniform {}",
            max_out(&skewed),
            max_out(&uniform)
        );
    }

    #[test]
    fn synthetic_graph_is_reproducible() {
        let cfg = SyntheticGraphConfig::default();
        assert_eq!(synthetic_task_graph(&cfg), synthetic_task_graph(&cfg));
    }

    #[test]
    #[should_panic(expected = "depth (9) cannot exceed jobs (3)")]
    fn synthetic_graph_rejects_more_layers_than_jobs() {
        let _ = synthetic_task_graph(&SyntheticGraphConfig {
            jobs: 3,
            depth: 9,
            ..SyntheticGraphConfig::default()
        });
    }

    #[test]
    fn synthetic_fppn_builds_derives_and_runs_deterministically() {
        for seed in 0..6 {
            let cfg = SyntheticFppnConfig {
                shape: SyntheticGraphConfig {
                    jobs: 24,
                    depth: 4,
                    seed,
                    ..SyntheticGraphConfig::default()
                },
                compute_iters: (10, 50),
                ..SyntheticFppnConfig::default()
            };
            let w = synthetic_fppn(&cfg);
            assert_eq!(w.net.process_count(), 24);
            assert!(
                w.net.channels().len() >= 24 - cfg.shape.depth,
                "every non-source-layer process has at least one input"
            );
            let derived = derive_task_graph(&w.net, &w.wcet)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            // Single-rate: one job per process per frame.
            assert_eq!(derived.graph.job_count(), 24);
            // Execution-order independence (Prop. 2.1) holds for the
            // generated kernels.
            let horizon = TimeQ::from_ms(300);
            let mut b1 = w.bank.instantiate();
            let r1 = run_zero_delay(&w.net, &mut b1, &Stimuli::new(), horizon, JobOrdering::MinRankFirst)
                .unwrap();
            let mut b2 = w.bank.instantiate();
            let r2 = run_zero_delay(&w.net, &mut b2, &Stimuli::new(), horizon, JobOrdering::MaxRankFirst)
                .unwrap();
            assert_eq!(r1.observables.diff(&r2.observables), None, "seed {seed}");
            // Behaviors actually write: at least one channel log is
            // non-empty after three frames.
            assert!(r1.observables.channels.iter().any(|c| !c.is_empty()));
        }
    }

    #[test]
    fn synthetic_fppn_kernel_iterations_scale_work() {
        // Not a timing assertion (CI noise), but the kernel must at least
        // be wired through: different compute ranges change no topology.
        let mk = |iters| {
            synthetic_fppn(&SyntheticFppnConfig {
                compute_iters: iters,
                ..SyntheticFppnConfig::default()
            })
        };
        let light = mk((1, 1));
        let heavy = mk((5000, 5000));
        assert_eq!(light.net.channels().len(), heavy.net.channels().len());
        assert_eq!(light.net.process_count(), heavy.net.process_count());
    }

    #[test]
    #[should_panic(expected = "compute_iters must be ordered")]
    fn synthetic_fppn_rejects_inverted_compute_range() {
        let _ = synthetic_fppn(&SyntheticFppnConfig {
            compute_iters: (100, 1),
            ..SyntheticFppnConfig::default()
        });
    }

    #[test]
    #[should_panic(expected = "sporadic_period_mult must be ordered")]
    fn synthetic_fppn_rejects_zero_period_mult() {
        let _ = synthetic_fppn(&SyntheticFppnConfig {
            sporadic_period_mult: (0, 2),
            ..SyntheticFppnConfig::default()
        });
    }

    #[test]
    fn synthetic_fppn_stimulus_knobs_add_sporadics_and_inputs() {
        let base_shape = SyntheticGraphConfig {
            jobs: 20,
            depth: 4,
            seed: 9,
            ..SyntheticGraphConfig::default()
        };
        let plain = synthetic_fppn(&SyntheticFppnConfig {
            shape: base_shape.clone(),
            compute_iters: (5, 20),
            ..SyntheticFppnConfig::default()
        });
        let rich = synthetic_fppn(&SyntheticFppnConfig {
            shape: base_shape,
            compute_iters: (5, 20),
            sporadic: 3,
            input_permille: 600,
            ..SyntheticFppnConfig::default()
        });
        // The knobs add processes/channels without reshuffling the base
        // layered topology (separate stimulus RNG stream).
        assert_eq!(plain.net.process_count(), 20);
        assert_eq!(rich.net.process_count(), 23);
        assert_eq!(
            rich.net.channels().len(),
            plain.net.channels().len() + 3,
            "one blackboard per configurator on top of the same layer wiring"
        );
        for i in 0..3 {
            let sp = rich.net.process_by_name(&format!("cfg{i}")).unwrap();
            let spec = rich.net.process(sp);
            assert_eq!(spec.event().kind(), fppn_core::EventKind::Sporadic);
            assert_eq!(spec.input_ports().len(), 1, "configurators take commands");
        }
        let with_inputs = rich
            .net
            .process_ids()
            .filter(|&p| !rich.net.process(p).input_ports().is_empty())
            .count();
        assert!(
            with_inputs > 3,
            "input_permille=600 should give several layer processes input ports"
        );

        // The richer network still derives, and zero-delay execution under
        // random stimuli is order-independent (Prop. 2.1 with servers +
        // external inputs in play).
        let derived = derive_task_graph(&rich.net, &rich.wcet).unwrap();
        assert!(derived.graph.job_count() > rich.net.process_count());
        let horizon = derived.hyperperiod;
        let stimuli = fppn_sim_free_random_stimuli(&rich.net, horizon, 700, 42);
        let mut b1 = rich.bank.instantiate();
        let r1 = run_zero_delay(&rich.net, &mut b1, &stimuli, horizon, JobOrdering::MinRankFirst)
            .unwrap();
        let mut b2 = rich.bank.instantiate();
        let r2 = run_zero_delay(&rich.net, &mut b2, &stimuli, horizon, JobOrdering::MaxRankFirst)
            .unwrap();
        assert_eq!(r1.observables.diff(&r2.observables), None);
        // The sporadic slots actually executed and wrote.
        assert!(r1
            .observables
            .channels
            .iter()
            .enumerate()
            .filter(|(i, _)| rich.net.channels()[*i].name().starts_with("ccfg"))
            .any(|(_, log)| !log.is_empty()));
    }

    /// A dependency-free stand-in for `fppn_sim::random_stimuli` (fppn-apps
    /// cannot depend on fppn-sim): arrival traces at the maximal admissible
    /// rate plus constant-ish input streams for every declared port.
    fn fppn_sim_free_random_stimuli(
        net: &Fppn,
        horizon: TimeQ,
        _density: u32,
        seed: u64,
    ) -> Stimuli {
        let mut stimuli = Stimuli::new();
        for pid in net.process_ids() {
            let spec = net.process(pid);
            let ev = spec.event();
            let max_jobs = if ev.kind() == fppn_core::EventKind::Sporadic {
                // Max-rate trace: bursts of m at multiples of T.
                let mut arrivals = Vec::new();
                let mut t = TimeQ::ZERO;
                while t < horizon {
                    for _ in 0..ev.burst() {
                        arrivals.push(t);
                    }
                    t += ev.period();
                }
                let count = arrivals.len() as u64;
                stimuli.arrivals(pid, fppn_core::SporadicTrace::new(arrivals));
                count
            } else {
                ((horizon / ev.period()).ceil() as u64 + 2) * ev.burst() as u64
            };
            for (port_idx, _) in spec.input_ports().iter().enumerate() {
                let samples: Vec<Value> = (0..max_jobs)
                    .map(|j| {
                        Value::Int(
                            (mix64(seed ^ (pid.index() as u64) << 16 ^ port_idx as u64 ^ j)
                                % 1000) as i64,
                        )
                    })
                    .collect();
                stimuli.input(pid, PortId::from_index(port_idx), samples);
            }
        }
        stimuli
    }

    #[test]
    fn generation_is_reproducible() {
        let cfg = WorkloadConfig::default();
        let a = random_workload(&cfg);
        let b = random_workload(&cfg);
        assert_eq!(a.net.process_count(), b.net.process_count());
        assert_eq!(a.net.channels().len(), b.net.channels().len());
        for pid in a.net.process_ids() {
            assert_eq!(a.wcet.get(pid), b.wcet.get(pid));
        }
    }
}
