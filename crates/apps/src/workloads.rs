//! Random FPPN workload generation for stress, property and scalability
//! testing.
//!
//! Networks are generated from a seed: layered periodic processes with
//! FIFO/blackboard channels along a total functional-priority order, plus
//! sporadic configurators attached to random periodic users (satisfying the
//! §III-A subclass restriction by construction). Behaviors are integer
//! state machines, so observables are exactly comparable across execution
//! backends.

use fppn_core::{
    BehaviorBank, ChannelId, ChannelKind, EventSpec, Fppn, FppnBuilder, JobCtx, ProcessSpec,
    Value,
};
use fppn_taskgraph::WcetModel;
use fppn_time::TimeQ;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of a random workload.
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// Number of periodic processes.
    pub periodic: usize,
    /// Number of sporadic processes (each attached to a periodic user).
    pub sporadic: usize,
    /// Candidate periods (ms). Defaults are harmonic-ish multirate.
    pub periods_ms: Vec<i64>,
    /// Probability (‰) of a channel between each FP-ordered process pair.
    pub channel_density_permille: u32,
    /// WCET range (ms), sampled per process.
    pub wcet_range_ms: (i64, i64),
    /// RNG seed.
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            periodic: 6,
            sporadic: 2,
            periods_ms: vec![100, 200, 400, 800],
            channel_density_permille: 350,
            wcet_range_ms: (1, 10),
            seed: 0,
        }
    }
}

/// A generated workload: network, behaviors and WCET table.
pub struct Workload {
    /// The generated network.
    pub net: Fppn,
    /// Behavior factories.
    pub bank: BehaviorBank,
    /// Per-process WCETs.
    pub wcet: WcetModel,
}

/// Generates a random, always-valid FPPN workload.
///
/// # Panics
///
/// Panics if `periodic == 0` or the period/WCET ranges are empty.
pub fn random_workload(cfg: &WorkloadConfig) -> Workload {
    assert!(cfg.periodic > 0, "need at least one periodic process");
    assert!(!cfg.periods_ms.is_empty(), "need candidate periods");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let ms = TimeQ::from_ms;
    let mut b = FppnBuilder::new();

    // Periodic layer: FP follows the index order.
    let mut periodic = Vec::with_capacity(cfg.periodic);
    let mut periods = Vec::with_capacity(cfg.periodic);
    for i in 0..cfg.periodic {
        let t = cfg.periods_ms[rng.gen_range(0..cfg.periods_ms.len())];
        periods.push(t);
        let spec = ProcessSpec::new(format!("p{i}"), EventSpec::periodic(ms(t)));
        periodic.push(b.process(spec));
    }
    // Channels between ordered pairs.
    let mut in_channels: Vec<Vec<(ChannelId, ChannelKind)>> = vec![Vec::new(); cfg.periodic];
    let mut out_channels: Vec<Vec<ChannelId>> = vec![Vec::new(); cfg.periodic];
    for i in 0..cfg.periodic {
        for j in (i + 1)..cfg.periodic {
            if rng.gen_range(0u32..1000) < cfg.channel_density_permille {
                let kind = if rng.gen_bool(0.5) {
                    ChannelKind::Fifo
                } else {
                    ChannelKind::Blackboard
                };
                let ch = b.channel(format!("c{i}_{j}"), periodic[i], periodic[j], kind);
                b.priority(periodic[i], periodic[j]);
                out_channels[i].push(ch);
                in_channels[j].push((ch, kind));
            }
        }
    }

    // Sporadic configurators.
    let mut sporadic = Vec::with_capacity(cfg.sporadic);
    for s in 0..cfg.sporadic {
        let user_idx = rng.gen_range(0..cfg.periodic);
        let user = periodic[user_idx];
        let mult = rng.gen_range(1i64..=3);
        let burst = rng.gen_range(1..=3u32);
        let t_sp = periods[user_idx] * mult;
        let spec = ProcessSpec::new(format!("s{s}"), EventSpec::sporadic(burst, ms(t_sp)));
        let sp = b.process(spec);
        let ch = b.channel(format!("cs{s}"), sp, user, ChannelKind::Blackboard);
        if rng.gen_bool(0.5) {
            b.priority(sp, user);
        } else {
            b.priority(user, sp);
        }
        in_channels[user_idx].push((ch, ChannelKind::Blackboard));
        sporadic.push((sp, ch));
        let salt = 7919 * (s as i64 + 1);
        b.behavior(sp, move || {
            Box::new(move |ctx: &mut JobCtx<'_>| {
                ctx.write(ch, Value::Int(salt.wrapping_mul(ctx.k() as i64)))
            })
        });
    }

    // Behaviors: integer folds over everything read. All state flows into
    // channel writes, which `Observables` logs completely, so every
    // process is observable without dedicated output ports.
    for i in 0..cfg.periodic {
        let ins = in_channels[i].clone();
        let outs = out_channels[i].clone();
        let salt = 31 * (i as i64 + 1);
        b.behavior(periodic[i], move || {
            let ins = ins.clone();
            let outs = outs.clone();
            let mut acc: i64 = salt;
            Box::new(move |ctx: &mut JobCtx<'_>| {
                for &(ch, kind) in &ins {
                    match kind {
                        ChannelKind::Blackboard => {
                            if let Some(Value::Int(x)) = ctx.read(ch) {
                                acc = acc.wrapping_mul(31).wrapping_add(x);
                            }
                        }
                        ChannelKind::Fifo => {
                            while let Some(v) = ctx.read(ch) {
                                if let Value::Int(x) = v {
                                    acc = acc.wrapping_mul(31).wrapping_add(x);
                                }
                            }
                        }
                    }
                }
                acc = acc.wrapping_add(ctx.k() as i64);
                for &ch in &outs {
                    ctx.write(ch, Value::Int(acc));
                }
            })
        });
    }

    let mut wcet = WcetModel::uniform(ms(cfg.wcet_range_ms.0.max(1)));
    let (net, bank) = b.build().expect("generated workload is well-formed");
    for pid in net.process_ids() {
        let c = rng.gen_range(cfg.wcet_range_ms.0.max(1)..=cfg.wcet_range_ms.1.max(1));
        wcet.set(pid, ms(c));
    }
    Workload { net, bank, wcet }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fppn_core::{run_zero_delay, JobOrdering, Stimuli};
    use fppn_taskgraph::derive_task_graph;

    #[test]
    fn workloads_build_and_derive_for_many_seeds() {
        for seed in 0..30 {
            let cfg = WorkloadConfig {
                seed,
                ..WorkloadConfig::default()
            };
            let w = random_workload(&cfg);
            assert_eq!(w.net.process_count(), cfg.periodic + cfg.sporadic);
            let derived = derive_task_graph(&w.net, &w.wcet)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert!(derived.graph.job_count() > 0);
            assert!(derived.graph.topological_order().is_some());
        }
    }

    #[test]
    fn workloads_execute_deterministically() {
        for seed in 0..10 {
            let w = random_workload(&WorkloadConfig {
                seed,
                ..WorkloadConfig::default()
            });
            let horizon = TimeQ::from_ms(1600);
            let mut b1 = w.bank.instantiate();
            let r1 = run_zero_delay(&w.net, &mut b1, &Stimuli::new(), horizon, JobOrdering::MinRankFirst)
                .unwrap();
            let mut b2 = w.bank.instantiate();
            let r2 = run_zero_delay(&w.net, &mut b2, &Stimuli::new(), horizon, JobOrdering::MaxRankFirst)
                .unwrap();
            assert_eq!(r1.observables.diff(&r2.observables), None, "seed {seed}");
        }
    }

    #[test]
    fn generation_is_reproducible() {
        let cfg = WorkloadConfig::default();
        let a = random_workload(&cfg);
        let b = random_workload(&cfg);
        assert_eq!(a.net.process_count(), b.net.process_count());
        assert_eq!(a.net.channels().len(), b.net.channels().len());
        for pid in a.net.process_ids() {
            assert_eq!(a.wcet.get(pid), b.wcet.get(pid));
        }
    }
}
