//! The streaming use case of §V-A: a 4-point FFT pipeline (Fig. 5).
//!
//! Fourteen processes — a generator, three columns of four `FFT2_s_i`
//! nodes, and a consumer — all with `T_p = d_p = 200 ms`, FIFO channels
//! along the dataflow, and the functional priority aligned with the data
//! direction, "hence the task graph maps one-to-one to the process-network
//! graph".
//!
//! The computation is a real 4-point decimation-in-time FFT on complex
//! samples: column 0 loads (bit-reversed) samples, column 1 computes the
//! two 2-point butterflies, column 2 combines them with the twiddle factor
//! `-i`, and the consumer emits the spectrum. A unit test checks the
//! pipeline against a direct DFT.

use fppn_core::{
    BehaviorBank, ChannelKind, EventSpec, Fppn, FppnBuilder, JobCtx, PortId, ProcessId,
    ProcessSpec, Value,
};
use fppn_taskgraph::WcetModel;
use fppn_time::TimeQ;

/// Process ids of the FFT network.
#[derive(Debug, Clone)]
pub struct FftIds {
    /// The sample generator.
    pub generator: ProcessId,
    /// `FFT2_s_i` nodes: `stages[s][i]`.
    pub stages: [[ProcessId; 4]; 3],
    /// The spectrum consumer.
    pub consumer: ProcessId,
}

/// All 14 processes in a deterministic order (generator, the 12 stage
/// nodes, consumer).
impl FftIds {
    /// Iterates over every process id of the network.
    pub fn all(&self) -> Vec<ProcessId> {
        let mut v = vec![self.generator];
        for col in &self.stages {
            v.extend_from_slice(col);
        }
        v.push(self.consumer);
        v
    }
}

fn cadd(a: (f64, f64), b: (f64, f64)) -> (f64, f64) {
    (a.0 + b.0, a.1 + b.1)
}

fn csub(a: (f64, f64), b: (f64, f64)) -> (f64, f64) {
    (a.0 - b.0, a.1 - b.1)
}

/// Multiplication by the twiddle factor `-i`.
fn cmul_minus_i(a: (f64, f64)) -> (f64, f64) {
    (a.1, -a.0)
}

/// Reference direct DFT of 4 real samples (for verification).
pub fn dft4(x: [f64; 4]) -> [(f64, f64); 4] {
    let mut out = [(0.0, 0.0); 4];
    for (k, o) in out.iter_mut().enumerate() {
        let mut acc = (0.0, 0.0);
        for (n, &xn) in x.iter().enumerate() {
            let angle = -2.0 * std::f64::consts::PI * (k * n) as f64 / 4.0;
            acc = cadd(acc, (xn * angle.cos(), xn * angle.sin()));
        }
        *o = acc;
    }
    out
}

/// The deterministic test signal of frame `k` (1-based): four samples.
pub fn test_signal(k: u64) -> [f64; 4] {
    let k = k as i64;
    [
        ((k * 7 + 1) % 11 - 5) as f64,
        ((k * 5 + 2) % 13 - 6) as f64,
        ((k * 3 + 4) % 7 - 3) as f64,
        ((k * 11 + 3) % 17 - 8) as f64,
    ]
}

/// Builds the Fig. 5 FFT network.
///
/// The generator reads four-sample frames from its external input port when
/// provided (as `Value::List` of floats), otherwise uses [`test_signal`].
/// The consumer writes the complex spectrum to its external output port.
pub fn fft_network() -> (Fppn, BehaviorBank, FftIds) {
    let ms = TimeQ::from_ms;
    let period = EventSpec::periodic(ms(200));
    let mut b = FppnBuilder::new();

    let generator =
        b.process(ProcessSpec::new("generator", period.clone()).with_input("samples"));
    let mut stages = [[ProcessId::from_index(0); 4]; 3];
    for (s, col) in stages.iter_mut().enumerate() {
        for (i, slot) in col.iter_mut().enumerate() {
            *slot = b.process(ProcessSpec::new(format!("FFT2_{s}_{i}"), period.clone()));
        }
    }
    let consumer = b.process(ProcessSpec::new("consumer", period).with_output("spectrum"));

    // Column 0 loads bit-reversed samples: node i <- x[br(i)],
    // br = [0, 2, 1, 3].
    let gen_ch: Vec<_> = (0..4)
        .map(|i| {
            let ch = b.channel(format!("gen->s0_{i}"), generator, stages[0][i], ChannelKind::Fifo);
            b.priority(generator, stages[0][i]);
            ch
        })
        .collect();
    // Column 1 butterflies: node0 = s00 + s01, node1 = s00 - s01,
    //                       node2 = s02 + s03, node3 = s02 - s03.
    // Each column-0 node feeds two column-1 nodes over dedicated FIFOs.
    let wiring1: [(usize, usize); 4] = [(0, 1), (0, 1), (2, 3), (2, 3)];
    let mut col1_in = Vec::new(); // (left, right) channel per node
    for (i, &(l, r)) in wiring1.iter().enumerate() {
        let cl = b.channel(format!("s0_{l}->s1_{i}"), stages[0][l], stages[1][i], ChannelKind::Fifo);
        let cr = b.channel(format!("s0_{r}->s1_{i}"), stages[0][r], stages[1][i], ChannelKind::Fifo);
        b.priority(stages[0][l], stages[1][i]);
        b.priority(stages[0][r], stages[1][i]);
        col1_in.push((cl, cr));
    }
    // Column 2: X0 = a0 + a2; X1 = a1 + (-i)·a3; X2 = a0 - a2;
    //           X3 = a1 - (-i)·a3.
    let wiring2: [(usize, usize); 4] = [(0, 2), (1, 3), (0, 2), (1, 3)];
    let mut col2_in = Vec::new();
    for (i, &(l, r)) in wiring2.iter().enumerate() {
        let cl = b.channel(format!("s1_{l}->s2_{i}"), stages[1][l], stages[2][i], ChannelKind::Fifo);
        let cr = b.channel(format!("s1_{r}->s2_{i}"), stages[1][r], stages[2][i], ChannelKind::Fifo);
        b.priority(stages[1][l], stages[2][i]);
        b.priority(stages[1][r], stages[2][i]);
        col2_in.push((cl, cr));
    }
    // Column 2 -> consumer.
    let out_ch: Vec<_> = (0..4)
        .map(|i| {
            let ch = b.channel(format!("s2_{i}->cons"), stages[2][i], consumer, ChannelKind::Fifo);
            b.priority(stages[2][i], consumer);
            ch
        })
        .collect();

    // ----- behaviors -----
    let gen_out = gen_ch.clone();
    b.behavior(generator, move || {
        let gen_out = gen_out.clone();
        Box::new(move |ctx: &mut JobCtx<'_>| {
            let x: [f64; 4] = match ctx.read_input(PortId::from_index(0)) {
                Some(Value::List(vs)) if vs.len() == 4 => {
                    let mut arr = [0.0; 4];
                    for (i, v) in vs.iter().enumerate() {
                        arr[i] = v.as_float().unwrap_or(0.0);
                    }
                    arr
                }
                _ => test_signal(ctx.k()),
            };
            let br = [0usize, 2, 1, 3];
            for (i, &ch) in gen_out.iter().enumerate() {
                ctx.write(ch, Value::complex(x[br[i]], 0.0));
            }
        })
    });

    let read_complex = |ctx: &mut JobCtx<'_>, ch| -> (f64, f64) {
        ctx.read_value(ch).as_complex().unwrap_or((0.0, 0.0))
    };

    // Column 0: pass-through (load/window stage).
    for i in 0..4 {
        let input = gen_ch[i];
        let outs: Vec<_> = col1_in
            .iter()
            .enumerate()
            .filter(|(j, _)| wiring1[*j].0 == i || wiring1[*j].1 == i)
            .map(|(j, &(cl, cr))| if wiring1[j].0 == i { cl } else { cr })
            .collect();
        b.behavior(stages[0][i], move || {
            let outs = outs.clone();
            Box::new(move |ctx: &mut JobCtx<'_>| {
                let v = read_complex(ctx, input);
                for &ch in &outs {
                    ctx.write(ch, Value::complex(v.0, v.1));
                }
            })
        });
    }
    // Column 1: 2-point butterflies (+ for even nodes, - for odd).
    for i in 0..4 {
        let (cl, cr) = col1_in[i];
        let outs: Vec<_> = col2_in
            .iter()
            .enumerate()
            .filter(|(j, _)| wiring2[*j].0 == i || wiring2[*j].1 == i)
            .map(|(j, &(l, r))| if wiring2[j].0 == i { l } else { r })
            .collect();
        let minus = i % 2 == 1;
        b.behavior(stages[1][i], move || {
            let outs = outs.clone();
            Box::new(move |ctx: &mut JobCtx<'_>| {
                let a = read_complex(ctx, cl);
                let b_ = read_complex(ctx, cr);
                let v = if minus { csub(a, b_) } else { cadd(a, b_) };
                for &ch in &outs {
                    ctx.write(ch, Value::complex(v.0, v.1));
                }
            })
        });
    }
    // Column 2: final butterflies with the -i twiddle on the odd pair.
    for i in 0..4 {
        let (cl, cr) = col2_in[i];
        let out = out_ch[i];
        b.behavior(stages[2][i], move || {
            Box::new(move |ctx: &mut JobCtx<'_>| {
                let a = read_complex(ctx, cl);
                let b_ = read_complex(ctx, cr);
                let v = match i {
                    0 => cadd(a, b_),
                    1 => cadd(a, cmul_minus_i(b_)),
                    2 => csub(a, b_),
                    _ => csub(a, cmul_minus_i(b_)),
                };
                ctx.write(out, Value::complex(v.0, v.1));
            })
        });
    }
    // Consumer: gather the spectrum.
    let spectrum_in = out_ch;
    b.behavior(consumer, move || {
        let spectrum_in = spectrum_in.clone();
        Box::new(move |ctx: &mut JobCtx<'_>| {
            let bins: Vec<Value> = spectrum_in
                .iter()
                .map(|&ch| ctx.read_value(ch))
                .collect();
            ctx.write_output(PortId::from_index(0), Value::List(bins));
        })
    });

    let (net, bank) = b.build().expect("FFT network is well-formed");
    (
        net,
        bank,
        FftIds {
            generator,
            stages,
            consumer,
        },
    )
}

/// The §V-A WCET calibration: "execution times of all processes were
/// roughly 14 ms, which resulted in a load 0.93". With 14 jobs in a 200 ms
/// frame, a load of exactly 0.93 means `C = 186/14 = 93/7 ms ≈ 13.29 ms`.
pub fn fft_wcet() -> WcetModel {
    WcetModel::uniform(TimeQ::new(93, 7))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fppn_core::{run_zero_delay, JobOrdering, Stimuli};
    use fppn_taskgraph::{derive_task_graph, load};

    fn ms(v: i64) -> TimeQ {
        TimeQ::from_ms(v)
    }

    #[test]
    fn fourteen_processes_single_rate() {
        let (net, _, ids) = fft_network();
        assert_eq!(net.process_count(), 14);
        assert_eq!(ids.all().len(), 14);
        for pid in net.process_ids() {
            assert_eq!(net.process(pid).event().period(), ms(200));
        }
    }

    #[test]
    fn task_graph_maps_one_to_one_to_process_graph() {
        // §V-A: single-rate + FP aligned with dataflow => jobs = processes
        // and (transitively reduced) edges = channels.
        let (net, _, _) = fft_network();
        let d = derive_task_graph(&net, &fft_wcet()).unwrap();
        assert_eq!(d.hyperperiod, ms(200));
        assert_eq!(d.graph.job_count(), 14);
        assert_eq!(d.graph.edge_count(), net.channels().len());
    }

    #[test]
    fn load_is_0_93() {
        let (net, _, _) = fft_network();
        let d = derive_task_graph(&net, &fft_wcet()).unwrap();
        let l = load(&d.graph);
        assert_eq!(l.load, TimeQ::new(93, 100));
    }

    #[test]
    fn pipeline_computes_the_dft() {
        let (net, bank, ids) = fft_network();
        let mut behaviors = bank.instantiate();
        let run = run_zero_delay(
            &net,
            &mut behaviors,
            &Stimuli::new(),
            ms(1000),
            JobOrdering::default(),
        )
        .unwrap();
        let out = run
            .observables
            .outputs
            .iter()
            .find(|((p, _), _)| *p == ids.consumer)
            .map(|(_, v)| v)
            .unwrap();
        assert_eq!(out.len(), 5); // 5 frames in 1000 ms
        for (k, value) in out {
            let expected = dft4(test_signal(*k));
            let bins = value.as_list().unwrap();
            for (bin, exp) in bins.iter().zip(expected) {
                let (re, im) = bin.as_complex().unwrap();
                assert!(
                    (re - exp.0).abs() < 1e-9 && (im - exp.1).abs() < 1e-9,
                    "frame {k}: got ({re}, {im}), expected {exp:?}"
                );
            }
        }
    }

    #[test]
    fn determinism_across_linearizations() {
        let (net, bank, _) = fft_network();
        let mut b1 = bank.instantiate();
        let r1 = run_zero_delay(&net, &mut b1, &Stimuli::new(), ms(600), JobOrdering::MinRankFirst)
            .unwrap();
        let mut b2 = bank.instantiate();
        let r2 = run_zero_delay(&net, &mut b2, &Stimuli::new(), ms(600), JobOrdering::MaxRankFirst)
            .unwrap();
        assert_eq!(r1.observables.diff(&r2.observables), None);
    }
}
