//! The running example of the paper (Fig. 1): "an imaginary signal
//! processing application with input sample period 200 ms, reconfigurable
//! filter coefficients and a feedback loop".
//!
//! The paper specifies the processes, rates, the sporadic `CoefB`
//! (2-per-700 ms, blackboard into `FilterB`) and several facts about the
//! derived task graph (Fig. 3) and its 2-processor schedule (Fig. 4). The
//! channel topology is only partially drawn; this reconstruction is chosen
//! to satisfy every stated fact:
//!
//! * `InputA` has functional priority over `FilterA` **and** `NormA`, and
//!   the derived `InputA[1] → NormA[1]` edge is *redundant* (a path via
//!   `FilterA[1]` exists) — so `FilterA → NormA` is a channel;
//! * `FilterB[1]` waits for `InputA[1]` (§IV example) — so `InputA`
//!   feeds `FilterB` and has priority over it;
//! * the feedback loop is `NormA → FilterA` (blackboard), making the
//!   process-network graph cyclic while `FP` stays acyclic;
//! * `OutputB` runs at 100 ms against `FilterB`'s 200 ms, so it re-reads a
//!   blackboard.

use fppn_core::{
    BehaviorBank, ChannelId, ChannelKind, EventSpec, Fppn, FppnBuilder, JobCtx, PortId,
    ProcessId, ProcessSpec, Value,
};
use fppn_taskgraph::WcetModel;
use fppn_time::TimeQ;

/// Process and channel ids of the Fig. 1 network.
#[derive(Debug, Clone, Copy)]
pub struct Fig1Ids {
    /// `InputA`, 200 ms.
    pub input_a: ProcessId,
    /// `FilterA`, 100 ms.
    pub filter_a: ProcessId,
    /// `FilterB`, 200 ms.
    pub filter_b: ProcessId,
    /// `NormA`, 200 ms.
    pub norm_a: ProcessId,
    /// `OutputA`, 200 ms.
    pub output_a: ProcessId,
    /// `OutputB`, 100 ms.
    pub output_b: ProcessId,
    /// `CoefB`, sporadic 2 per 700 ms.
    pub coef_b: ProcessId,
    /// `InputA → FilterA` FIFO.
    pub c_in_a: ChannelId,
    /// `InputA → FilterB` FIFO.
    pub c_in_b: ChannelId,
    /// `FilterA → NormA` FIFO.
    pub c_a_norm: ChannelId,
    /// `NormA → FilterA` blackboard (the feedback loop).
    pub c_feedback: ChannelId,
    /// `NormA → OutputA` FIFO.
    pub c_norm_out: ChannelId,
    /// `CoefB → FilterB` blackboard (the reconfigurable coefficient).
    pub c_coef: ChannelId,
    /// `FilterB → OutputB` blackboard.
    pub c_b_out: ChannelId,
}

/// Builds the Fig. 1 network with realistic signal-processing behaviors.
///
/// `InputA` reads external input samples (port 0) when provided, otherwise
/// synthesizes a deterministic test signal. `OutputA`/`OutputB` write the
/// external output ports ("Output Channel 1/2" of the figure).
pub fn fig1_network() -> (Fppn, BehaviorBank, Fig1Ids) {
    let ms = TimeQ::from_ms;
    let mut b = FppnBuilder::new();

    let input_a = b.process(
        ProcessSpec::new("InputA", EventSpec::periodic(ms(200))).with_input("input"),
    );
    let filter_b = b.process(ProcessSpec::new("FilterB", EventSpec::periodic(ms(200))));
    let filter_a = b.process(ProcessSpec::new("FilterA", EventSpec::periodic(ms(100))));
    let output_a = b.process(
        ProcessSpec::new("OutputA", EventSpec::periodic(ms(200))).with_output("out1"),
    );
    let norm_a = b.process(ProcessSpec::new("NormA", EventSpec::periodic(ms(200))));
    let coef_b = b.process(ProcessSpec::new("CoefB", EventSpec::sporadic(2, ms(700))));
    let output_b = b.process(
        ProcessSpec::new("OutputB", EventSpec::periodic(ms(100))).with_output("out2"),
    );

    let c_in_a = b.channel("InputA->FilterA", input_a, filter_a, ChannelKind::Fifo);
    let c_in_b = b.channel("InputA->FilterB", input_a, filter_b, ChannelKind::Fifo);
    let c_a_norm = b.channel("FilterA->NormA", filter_a, norm_a, ChannelKind::Fifo);
    let c_feedback = b.channel("NormA->FilterA", norm_a, filter_a, ChannelKind::Blackboard);
    let c_norm_out = b.channel("NormA->OutputA", norm_a, output_a, ChannelKind::Fifo);
    let c_coef = b.channel("CoefB->FilterB", coef_b, filter_b, ChannelKind::Blackboard);
    let c_b_out = b.channel("FilterB->OutputB", filter_b, output_b, ChannelKind::Blackboard);

    // Functional priorities (arrows of Fig. 1). InputA → NormA is the
    // explicit extra relation that yields the redundant Fig. 3 edge.
    b.priority(input_a, filter_a);
    b.priority(input_a, filter_b);
    b.priority(input_a, norm_a);
    b.priority(filter_a, norm_a);
    b.priority(norm_a, output_a);
    b.priority(coef_b, filter_b);
    b.priority(filter_b, output_b);

    // ----- behaviors -----
    // InputA: sample source. Splits the signal to both filter paths.
    b.behavior(input_a, move || {
        Box::new(move |ctx: &mut JobCtx<'_>| {
            let k = ctx.k() as i64;
            let sample = match ctx.read_input(PortId::from_index(0)) {
                Some(Value::Float(v)) => v,
                Some(Value::Int(v)) => v as f64,
                _ => ((k * 37 + 11) % 101 - 50) as f64 / 10.0, // synthetic
            };
            ctx.write(c_in_a, Value::Float(sample));
            ctx.write(c_in_b, Value::Float(sample));
        })
    });
    // FilterA: first-order IIR low-pass whose gain is modulated by the
    // normalization feedback. Runs at 2x the input rate, so every other
    // job sees an empty FIFO and coasts on its state.
    b.behavior(filter_a, move || {
        let mut state = 0.0f64;
        Box::new(move |ctx: &mut JobCtx<'_>| {
            let gain = match ctx.read_value(c_feedback) {
                Value::Float(g) => g,
                _ => 0.5,
            };
            if let Some(Value::Float(x)) = ctx.read(c_in_a) {
                state += gain * (x - state);
            }
            ctx.write(c_a_norm, Value::Float(state));
        })
    });
    // NormA: drains the FilterA queue (2 samples per period), computes a
    // normalization coefficient, feeds it back and forwards the mean.
    b.behavior(norm_a, move || {
        let mut energy = 1.0f64;
        Box::new(move |ctx: &mut JobCtx<'_>| {
            let mut sum = 0.0;
            let mut count = 0u32;
            while let Some(Value::Float(v)) = ctx.read(c_a_norm) {
                sum += v;
                count += 1;
            }
            let mean = if count > 0 { sum / count as f64 } else { 0.0 };
            energy = 0.9 * energy + 0.1 * (mean * mean);
            let coeff = 1.0 / (1.0 + energy);
            ctx.write(c_feedback, Value::Float(coeff));
            ctx.write(c_norm_out, Value::Float(mean));
        })
    });
    // OutputA: sink for output channel 1.
    b.behavior(output_a, move || {
        Box::new(move |ctx: &mut JobCtx<'_>| {
            let v = ctx.read_value(c_norm_out);
            ctx.write_output(PortId::from_index(0), v);
        })
    });
    // CoefB: sporadic reconfiguration of FilterB's coefficient.
    b.behavior(coef_b, move || {
        Box::new(move |ctx: &mut JobCtx<'_>| {
            let c = 0.25 + 0.5 / (1.0 + ctx.k() as f64);
            ctx.write(c_coef, Value::Float(c));
        })
    });
    // FilterB: scales the input by the (reconfigurable) coefficient.
    b.behavior(filter_b, move || {
        Box::new(move |ctx: &mut JobCtx<'_>| {
            let coef = match ctx.read_value(c_coef) {
                Value::Float(c) => c,
                _ => 1.0,
            };
            if let Some(Value::Float(x)) = ctx.read(c_in_b) {
                ctx.write(c_b_out, Value::Float(coef * x));
            }
        })
    });
    // OutputB: 100 ms sink re-reading the 200 ms blackboard.
    b.behavior(output_b, move || {
        Box::new(move |ctx: &mut JobCtx<'_>| {
            let v = ctx.read_value(c_b_out);
            ctx.write_output(PortId::from_index(0), v);
        })
    });

    let (net, bank) = b.build().expect("Fig. 1 network is well-formed");
    let ids = Fig1Ids {
        input_a,
        filter_a,
        filter_b,
        norm_a,
        output_a,
        output_b,
        coef_b,
        c_in_a,
        c_in_b,
        c_a_norm,
        c_feedback,
        c_norm_out,
        c_coef,
        c_b_out,
    };
    (net, bank, ids)
}

/// The Fig. 3 WCET setting: `C_i = 25 ms` for every process.
pub fn fig1_wcet() -> WcetModel {
    WcetModel::uniform(TimeQ::from_ms(25))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fppn_core::{run_zero_delay, JobOrdering, SporadicTrace, Stimuli};
    use fppn_taskgraph::{derive_task_graph, derive_task_graph_unreduced};

    fn ms(v: i64) -> TimeQ {
        TimeQ::from_ms(v)
    }

    #[test]
    fn network_is_valid_and_cyclic_in_channels() {
        let (net, _, ids) = fig1_network();
        assert_eq!(net.process_count(), 7);
        assert_eq!(net.channels().len(), 7);
        // Channel graph has the FilterA <-> NormA cycle; FP is acyclic.
        assert!(net.has_priority(ids.filter_a, ids.norm_a));
        assert!(net.related(ids.norm_a, ids.filter_a));
        assert_eq!(net.user_of(ids.coef_b), Some(ids.filter_b));
    }

    #[test]
    fn fig3_task_graph_structure() {
        let (net, _, ids) = fig1_network();
        let d = derive_task_graph(&net, &fig1_wcet()).unwrap();
        assert_eq!(d.hyperperiod, ms(200));
        assert_eq!(d.graph.job_count(), 10);

        let find = |p, k| d.graph.find(p, k).unwrap();
        let job = |p, k| d.graph.job(find(p, k)).clone();
        // Parameters (A_i, D_i, C_i) exactly as labeled in Fig. 3.
        let expect = [
            (job(ids.input_a, 1), (0, 200)),
            (job(ids.filter_a, 1), (0, 100)),
            (job(ids.filter_a, 2), (100, 200)),
            (job(ids.filter_b, 1), (0, 200)),
            (job(ids.norm_a, 1), (0, 200)),
            (job(ids.output_a, 1), (0, 200)),
            (job(ids.output_b, 1), (0, 100)),
            (job(ids.output_b, 2), (100, 200)),
            (job(ids.coef_b, 1), (0, 200)),
            (job(ids.coef_b, 2), (0, 200)),
        ];
        for (j, (a, dl)) in expect {
            assert_eq!(j.arrival, ms(a), "{j}");
            assert_eq!(j.deadline, ms(dl), "{j}");
            assert_eq!(j.wcet, ms(25), "{j}");
        }
        // CoefB is represented by its 200 ms server with 2 jobs.
        let server = d.server(ids.coef_b).unwrap();
        assert_eq!(server.period, ms(200));
        assert_eq!(server.burst, 2);
        assert_eq!(server.job_deadline, ms(500)); // 700 - 200

        // "InputA ... is joined to both of them. However, in the latter
        // case the edge is redundant": the reduced graph has no direct
        // InputA[1] -> NormA[1] edge but keeps the path.
        let i1 = find(ids.input_a, 1);
        let n1 = find(ids.norm_a, 1);
        assert!(!d.graph.has_edge(i1, n1));
        assert!(d.graph.is_reachable(i1, n1));
        // The unreduced graph has it directly.
        let full = derive_task_graph_unreduced(&net, &fig1_wcet()).unwrap();
        let i1f = full.graph.find(ids.input_a, 1).unwrap();
        let n1f = full.graph.find(ids.norm_a, 1).unwrap();
        assert!(full.graph.has_edge(i1f, n1f));
        assert!(d.reduced_edges >= 1);

        // Server jobs precede the user job; FilterB[1] waits for InputA[1].
        let c1 = find(ids.coef_b, 1);
        let c2 = find(ids.coef_b, 2);
        let fb1 = find(ids.filter_b, 1);
        assert!(d.graph.is_reachable(c1, fb1));
        assert!(d.graph.is_reachable(c2, fb1));
        assert!(d.graph.is_reachable(i1, fb1));
    }

    #[test]
    fn zero_delay_execution_is_deterministic_and_produces_signal() {
        let (net, bank, ids) = fig1_network();
        let mut stimuli = Stimuli::new();
        stimuli.arrivals(ids.coef_b, SporadicTrace::new(vec![ms(100), ms(350)]));
        let mut b1 = bank.instantiate();
        let r1 =
            run_zero_delay(&net, &mut b1, &stimuli, ms(1000), JobOrdering::MinRankFirst).unwrap();
        let mut b2 = bank.instantiate();
        let r2 =
            run_zero_delay(&net, &mut b2, &stimuli, ms(1000), JobOrdering::MaxRankFirst).unwrap();
        assert_eq!(r1.observables.diff(&r2.observables), None);
        // OutputB produced 10 samples (100 ms x 1000 ms horizon).
        let out2 = r1
            .observables
            .outputs
            .iter()
            .find(|((p, _), _)| *p == ids.output_b)
            .map(|(_, v)| v)
            .unwrap();
        assert_eq!(out2.len(), 10);
        // After CoefB fired and FilterB ran, outputs carry scaled samples.
        assert!(out2.iter().any(|(_, v)| matches!(v, Value::Float(_))));
    }
}
